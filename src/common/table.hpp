// Result-table formatting for the benchmark harness.
//
// Every bench binary regenerates one table/figure of the paper; this writer
// prints the rows as an aligned ASCII table on stdout and can additionally
// dump machine-readable CSV, so plots can be regenerated from the bench
// output alone.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <type_traits>
#include <string>
#include <vector>

namespace dfsssp {

class Table {
 public:
  /// `title` is printed above the table (e.g. "Figure 5: eBB on XGFT").
  explicit Table(std::string title, std::vector<std::string> columns);

  /// Starts a new row; subsequent add_* calls fill its cells left to right.
  Table& row();

  Table& cell(std::string value);
  Table& cell(const char* value) { return cell(std::string(value)); }
  Table& cell(double value, int precision = 3);
  template <typename T>
    requires std::is_integral_v<T>
  Table& cell(T value) {
    return cell(std::to_string(value));
  }

  /// Prints the aligned table to stdout.
  void print() const;

  /// Writes the table as CSV (header + rows) to `path`.
  void write_csv(const std::string& path) const;

  /// Writes the table as a JSON object {"title", "columns", "rows"} —
  /// the form embedded in the bench `--json` run reports, so tables
  /// round-trip without re-parsing CSV. `indent` spaces prefix every line;
  /// output ends without a trailing newline.
  void write_json(std::ostream& out, int indent = 0) const;
  void write_json(const std::string& path) const;

  std::size_t num_rows() const { return rows_.size(); }
  const std::string& title() const { return title_; }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dfsssp
