// Length-prefixed frame transport over plain file descriptors.
//
// A frame is `u32 little-endian payload length | payload`. This layer is
// deliberately dumb: it moves byte strings; the service envelope
// (service/envelope.hpp) and the flight-recorder journal segments
// (obs/journal) give them meaning. It started life inside src/service/ and
// was hoisted here so the journal's on-disk segment writer can reuse the
// exact framing (and its tests) without the obs layer depending on the
// service layer.
//
// read_frame polls in short ticks so a serving loop notices a stop flag
// (SIGTERM) between frames without needing signal-interruptible blocking
// reads; once a frame's first byte arrives, the rest is read to
// completion. An oversized length prefix is consumed — payload drained and
// discarded — so the stream stays framed and the server can answer with a
// structured error instead of dropping the connection.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace dfsssp {

/// Hard ceiling on a frame payload. Large enough for any stats body or
/// journal tail batch, small enough that a garbage length prefix cannot
/// make a reader buffer gigabytes.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

enum class FrameResult {
  kFrame,      // payload filled with one complete frame
  kEof,        // peer closed cleanly between frames
  kError,      // read error or mid-frame EOF; connection unusable
  kOversized,  // length prefix above kMaxFramePayload; payload drained
  kStopped,    // stop predicate true and no frame arrived within the grace
};

/// Reads one frame from `fd` into `payload`. `stop`, when set, is polled
/// between ticks (it typically reads a signal flag or the core's draining
/// bit): once it returns true, the reader keeps accepting an
/// already-arriving frame for a few more poll ticks (so it can be answered
/// with kErrDraining) and then returns kStopped.
FrameResult read_frame(int fd, std::string& payload,
                       const std::function<bool()>& stop = {});

/// Writes `u32 len | payload` to `fd`, retrying partial writes. False on
/// any write error (e.g. the peer vanished).
bool write_frame(int fd, std::string_view payload);

}  // namespace dfsssp
