#include "common/rng.hpp"

namespace dfsssp {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t stream_seed(std::uint64_t base, std::uint64_t index) {
  // Decorrelate neighbouring indices with one SplitMix64 scramble; Rng's
  // constructor runs further SplitMix64 steps on top.
  std::uint64_t state = base ^ ((index + 1) * 0x9E3779B97F4A7C15ULL);
  return splitmix64(state);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire's multiply-shift rejection method: unbiased and branch-light.
  std::uint64_t x = next();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<unsigned __int128>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  // 53 high bits → [0,1) with full double precision.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace dfsssp
