#include "common/frame.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>

namespace dfsssp {
namespace {

constexpr int kPollTickMs = 100;
/// Poll ticks a reader keeps serving after the stop predicate turns true,
/// so frames already in flight still get their kErrDraining response.
constexpr int kStopGraceTicks = 5;

/// Blocking full read of exactly `len` bytes. False on EOF or error.
bool read_exact(int fd, char* buf, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, buf + got, len - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF mid-frame or hard error
  }
  return true;
}

/// Reads and discards `len` bytes (the body of an oversized frame).
bool drain_exact(int fd, std::uint32_t len) {
  char scratch[4096];
  while (len > 0) {
    const std::size_t chunk =
        len < sizeof scratch ? static_cast<std::size_t>(len) : sizeof scratch;
    if (!read_exact(fd, scratch, chunk)) return false;
    len -= static_cast<std::uint32_t>(chunk);
  }
  return true;
}

/// Waits until `fd` is readable, ticking so `stop` is noticed. Returns
/// kFrame when readable, kStopped/kError otherwise.
FrameResult wait_readable(int fd, const std::function<bool()>& stop) {
  int grace = kStopGraceTicks;
  for (;;) {
    if (stop && stop() && grace-- <= 0) {
      return FrameResult::kStopped;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, kPollTickMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return FrameResult::kError;
    }
    if (rc > 0) return FrameResult::kFrame;  // readable (or EOF — read tells)
  }
}

}  // namespace

FrameResult read_frame(int fd, std::string& payload,
                       const std::function<bool()>& stop) {
  payload.clear();
  const FrameResult ready = wait_readable(fd, stop);
  if (ready != FrameResult::kFrame) return ready;

  unsigned char len_bytes[4];
  ssize_t first = ::read(fd, len_bytes, sizeof len_bytes);
  while (first < 0 && errno == EINTR) {
    first = ::read(fd, len_bytes, sizeof len_bytes);
  }
  if (first == 0) return FrameResult::kEof;  // clean close between frames
  if (first < 0) return FrameResult::kError;
  if (static_cast<std::size_t>(first) < sizeof len_bytes &&
      !read_exact(fd, reinterpret_cast<char*>(len_bytes) + first,
                  sizeof len_bytes - static_cast<std::size_t>(first))) {
    return FrameResult::kError;
  }

  const std::uint32_t len = static_cast<std::uint32_t>(len_bytes[0]) |
                            (static_cast<std::uint32_t>(len_bytes[1]) << 8) |
                            (static_cast<std::uint32_t>(len_bytes[2]) << 16) |
                            (static_cast<std::uint32_t>(len_bytes[3]) << 24);
  if (len > kMaxFramePayload) {
    if (!drain_exact(fd, len)) return FrameResult::kError;
    return FrameResult::kOversized;
  }
  payload.resize(len);
  if (len > 0 && !read_exact(fd, payload.data(), len)) {
    return FrameResult::kError;
  }
  return FrameResult::kFrame;
}

bool write_frame(int fd, std::string_view payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  const char len_bytes[4] = {
      static_cast<char>(len & 0xFF), static_cast<char>((len >> 8) & 0xFF),
      static_cast<char>((len >> 16) & 0xFF),
      static_cast<char>((len >> 24) & 0xFF)};
  std::string frame(len_bytes, sizeof len_bytes);
  frame.append(payload);

  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + sent, frame.size() - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace dfsssp
