// Wall-clock timing: the Timer used by the routing-runtime experiments
// (Figures 7/8), the monotonic now_ns() the trace spans build on, and a
// ScopedTimer that records elapsed nanoseconds into a named obs histogram.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.hpp"

namespace dfsssp {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last restart.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

  /// Monotonic nanosecond reading (steady clock; epoch is arbitrary but
  /// consistent within the process). Shared timebase of trace spans and
  /// ScopedTimer.
  static std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Times its scope and records the elapsed nanoseconds into an obs timing
/// histogram on destruction. Replaces the ad-hoc Timer + printf pairs: the
/// reading stays queryable through the registry after the scope ends.
class ScopedTimer {
 public:
  explicit ScopedTimer(obs::Histogram& hist)
      : hist_(&hist), start_ns_(Timer::now_ns()) {}
  /// Looks the histogram up by name (Kind::kTiming, exponential ns buckets).
  explicit ScopedTimer(const char* name)
      // Forwarding wrapper: every caller passes a literal, which the check
      // verifies at the call site.
      // NOLINTNEXTLINE(dfs-metric-name-literal): checked at the call site
      : ScopedTimer(obs::registry().timing_histogram(name)) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  std::uint64_t elapsed_ns() const { return Timer::now_ns() - start_ns_; }
  double milliseconds() const {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }

  ~ScopedTimer() { hist_->record(elapsed_ns()); }

 private:
  obs::Histogram* hist_;
  std::uint64_t start_ns_;
};

}  // namespace dfsssp
