// Wall-clock timer used for the routing-runtime experiments (Figures 7/8).
#pragma once

#include <chrono>

namespace dfsssp {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last restart.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dfsssp
