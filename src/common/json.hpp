// Tiny JSON string-quoting helper shared by every writer that emits JSON by
// hand (obs registry snapshots, trace export, Table::write_json, dfcheck).
// The repo deliberately has no JSON library dependency; all emitters build
// documents structurally and only need correct string escaping.
#pragma once

#include <cstdio>
#include <string>

namespace dfsssp {

/// Returns `s` as a double-quoted JSON string literal with all mandatory
/// escapes applied (quote, backslash, control characters).
inline std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace dfsssp
