// Deterministic parallel execution layer.
//
// Everything downstream that loops over independent work items (bisection
// patterns, virtual layers, destination terminals, roster cells) takes an
// ExecContext and runs the loop through parallel_for / parallel_map_reduce.
// Determinism is a hard contract: results must be bitwise identical at any
// thread count. The layer guarantees its half of that contract —
//
//   * work item i is identified by its index, never by arrival order;
//   * parallel_map materialises results into slot i of a pre-sized vector;
//   * parallel_map_reduce folds those slots serially in index order, so
//     floating-point reduction order never depends on scheduling.
//
// Callers supply the other half: any randomness inside a work item must come
// from a generator seeded from the item index (see Rng), never from a stream
// shared across items.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/profile/profile.hpp"

// Clang thread-safety annotations (-Wthread-safety): which mutex guards
// which member, and which functions require it held. GCC and MSVC compile
// them away. The standard library's lock guards are opaque to the static
// analysis (libstdc++ carries no capability attributes), so the few
// functions that juggle a std::unique_lock carry
// DFS_NO_THREAD_SAFETY_ANALYSIS with an explanation; the ThreadSanitizer
// CI job covers those paths dynamically.
#if defined(__clang__)
#define DFS_CAPABILITY(x) __attribute__((capability(x)))
#define DFS_GUARDED_BY(x) __attribute__((guarded_by(x)))
#define DFS_REQUIRES(...) __attribute__((requires_capability(__VA_ARGS__)))
#define DFS_ACQUIRE(...) __attribute__((acquire_capability(__VA_ARGS__)))
#define DFS_RELEASE(...) __attribute__((release_capability(__VA_ARGS__)))
#define DFS_TRY_ACQUIRE(...) \
  __attribute__((try_acquire_capability(__VA_ARGS__)))
#define DFS_NO_THREAD_SAFETY_ANALYSIS \
  __attribute__((no_thread_safety_analysis))
#else
#define DFS_CAPABILITY(x)
#define DFS_GUARDED_BY(x)
#define DFS_REQUIRES(...)
#define DFS_ACQUIRE(...)
#define DFS_RELEASE(...)
#define DFS_TRY_ACQUIRE(...)
#define DFS_NO_THREAD_SAFETY_ANALYSIS
#endif

namespace dfsssp {

/// std::mutex with Clang capability annotations, so GUARDED_BY/REQUIRES
/// declarations on ThreadPool members are statically checkable. Usable
/// with std::lock_guard/std::unique_lock (waits go through
/// std::condition_variable_any).
class DFS_CAPABILITY("mutex") Mutex {
 public:
  void lock() DFS_ACQUIRE() { mu_.lock(); }
  void unlock() DFS_RELEASE() { mu_.unlock(); }
  bool try_lock() DFS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// A persistent pool of worker threads executing one chunked loop at a time.
/// Workers grab contiguous index chunks from a shared cursor, so uneven work
/// items (e.g. patterns of different path lengths) still balance.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(unsigned num_threads);

  /// Joins all workers. Safe while no run_chunked() call is in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Covers [0, n) with calls body(begin, end) of at most `chunk` indices,
  /// distributed over the workers plus the calling thread. Blocks until all
  /// chunks finished; rethrows the first exception a chunk threw (remaining
  /// chunks are abandoned, in-flight ones run to completion).
  /// Serialized: concurrent run_chunked() calls queue on an internal mutex.
  /// Excluded from static analysis: it hands a std::unique_lock to
  /// drain_job and the condition-variable waits.
  void run_chunked(std::size_t n, std::size_t chunk,
                   const std::function<void(std::size_t, std::size_t)>& body)
      DFS_NO_THREAD_SAFETY_ANALYSIS;

 private:
  struct Job {
    std::size_t n = 0;
    std::size_t chunk = 1;
    std::size_t cursor = 0;        // next unclaimed index
    std::size_t in_flight = 0;     // chunks currently executing
    std::uint64_t generation = 0;  // bumps once per run_chunked call
    std::uint64_t posted_ns = 0;   // when run_chunked published the job
    // Submitter's profiler position: chunks executed on workers attribute
    // their spans and PROF_COUNTs to the same tree node the submitting
    // thread was in, keeping attribution thread-count invariant.
    obs::ProfileContext prof_ctx;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::exception_ptr error;
  };

  /// Excluded from static analysis for the same std::unique_lock reason as
  /// run_chunked; ThreadSanitizer covers the wait/wake protocol.
  void worker_loop() DFS_NO_THREAD_SAFETY_ANALYSIS;
  /// Claims and runs chunks until the job is drained. Called with `mu_`
  /// held; releases it around body execution.
  void drain_job(std::unique_lock<Mutex>& lock) DFS_REQUIRES(mu_);

  Mutex run_mu_;  // serializes run_chunked callers
  Mutex mu_;
  std::condition_variable_any work_cv_;  // workers wait for a new generation
  std::condition_variable_any done_cv_;  // run_chunked waits for drain
  Job job_ DFS_GUARDED_BY(mu_);
  bool stopping_ DFS_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

/// Execution policy handed through the library's public APIs. Copyable and
/// cheap to pass by value; copies share the same underlying pool. The
/// default context is serial — existing call sites keep their exact
/// single-threaded behavior and pay no synchronization cost.
class ExecContext {
 public:
  /// Serial context: body runs inline on the calling thread.
  ExecContext() = default;

  /// `num_threads` == 1: serial (no pool). 0: one thread per hardware core.
  explicit ExecContext(unsigned num_threads);

  static ExecContext serial() { return ExecContext(1); }
  static ExecContext hardware() { return ExecContext(0); }

  unsigned num_threads() const { return threads_; }
  bool is_serial() const { return threads_ <= 1; }

  /// Null when serial.
  ThreadPool* pool() const { return pool_.get(); }

 private:
  unsigned threads_ = 1;
  std::shared_ptr<ThreadPool> pool_;
};

/// Runs body(begin, end) over contiguous chunks covering [0, n).
/// Serial contexts call body(0, n) inline.
void parallel_for_chunks(const ExecContext& exec, std::size_t n,
                         const std::function<void(std::size_t, std::size_t)>&
                             body);

/// Runs body(i) for every i in [0, n), chunked under the hood.
template <typename Body>
void parallel_for(const ExecContext& exec, std::size_t n, Body&& body) {
  parallel_for_chunks(exec, n, [&body](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  });
}

/// Maps fn over [0, n) into a vector whose slot i holds fn(i) — output
/// order is index order regardless of scheduling.
template <typename MapFn>
auto parallel_map(const ExecContext& exec, std::size_t n, MapFn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  std::vector<decltype(fn(std::size_t{0}))> out(n);
  parallel_for(exec, n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// Maps fn over [0, n) in parallel, then folds the results serially in
/// index order: acc = reduce(acc, fn(0)), reduce(acc, fn(1)), ... — the
/// fold a serial loop would produce, bit for bit.
template <typename Acc, typename MapFn, typename ReduceFn>
Acc parallel_map_reduce(const ExecContext& exec, std::size_t n, Acc acc,
                        MapFn&& fn, ReduceFn&& reduce) {
  auto mapped = parallel_map(exec, n, std::forward<MapFn>(fn));
  for (auto& item : mapped) acc = reduce(std::move(acc), std::move(item));
  return acc;
}

}  // namespace dfsssp
