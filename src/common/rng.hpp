// Deterministic, seedable pseudo-random number generation.
//
// We deliberately avoid std::mt19937 + std::uniform_int_distribution in the
// library core: their results differ across standard-library implementations,
// which would make the reproduction's simulated numbers non-portable. The
// xoshiro256** generator with a SplitMix64 seeder is fast, well-tested and
// fully specified here.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dfsssp {

/// SplitMix64 step; used to expand a single 64-bit seed into generator state.
std::uint64_t splitmix64(std::uint64_t& state);

/// Seed of the `index`-th independent stream of an experiment keyed by
/// `base`. This is the seed-per-work-item rule of the parallel execution
/// layer: work item i draws from Rng(stream_seed(base, i)) instead of a
/// shared sequential stream, so results cannot depend on thread count.
std::uint64_t stream_seed(std::uint64_t base, std::uint64_t index);

/// xoshiro256** 1.0 (Blackman/Vigna) — the library-wide PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  /// `bound` must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    shuffle(std::span<T>(items));
  }

  /// A fresh generator whose seed is derived from this one; use to give each
  /// repetition of an experiment an independent, reproducible stream.
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace dfsssp
