// Core identifier types shared by every dfsssp module.
//
// Nodes (switches and terminals) and directed channels are identified by
// dense 32-bit indices into the owning Network's storage. Using plain
// integral indices keeps the hot routing loops free of pointer chasing and
// makes every per-node / per-channel attribute a flat array.
#pragma once

#include <cstdint>
#include <limits>

namespace dfsssp {

/// Index of a node (switch or terminal) inside a Network.
using NodeId = std::uint32_t;

/// Index of a directed channel inside a Network.
using ChannelId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Sentinel for "no channel" (e.g. forwarding-table entry for a terminal
/// that is attached to the switch itself).
inline constexpr ChannelId kInvalidChannel =
    std::numeric_limits<ChannelId>::max();

/// Virtual layer (InfiniBand: virtual lane). The IB spec allows 16, current
/// hardware 8; we keep the type wide enough for either.
using Layer = std::uint8_t;

/// Most virtual layers any routing artifact may declare (the IB spec's 16
/// virtual lanes). File readers reject counts beyond this before trusting
/// any per-path layer value.
inline constexpr Layer kMaxLayers = 16;

/// Sentinel for "no layer assigned yet".
inline constexpr Layer kInvalidLayer = std::numeric_limits<Layer>::max();

}  // namespace dfsssp
