// Minimal command-line flag parser for the examples and bench binaries.
//
// Supported syntax: --key=value, --key value, and bare --flag (boolean).
// Unknown positional arguments are collected in order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dfsssp {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace dfsssp
