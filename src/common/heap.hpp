// Addressable 4-ary min-heap with decrease-key, used by the Dijkstra loops.
//
// The heap stores (key, item) pairs where `item` is a dense index in
// [0, capacity). A position table makes decrease_key O(log n) without any
// allocation in the hot path. A 4-ary layout beats binary heaps for Dijkstra
// workloads because sift-down touches one cache line per level.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace dfsssp {

template <typename Key, typename Item = std::uint32_t>
class MinHeap {
 public:
  /// Creates a heap able to hold items with indices in [0, capacity).
  explicit MinHeap(std::size_t capacity = 0) { reset(capacity); }

  /// Clears the heap and resizes the position table.
  void reset(std::size_t capacity) {
    entries_.clear();
    pos_.assign(capacity, kAbsent);
  }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  bool contains(Item item) const { return pos_[item] != kAbsent; }

  /// Key of an item currently in the heap.
  Key key_of(Item item) const {
    assert(contains(item));
    return entries_[pos_[item]].key;
  }

  /// Inserts a new item. Precondition: !contains(item).
  void push(Key key, Item item) {
    assert(!contains(item));
    entries_.push_back({key, item});
    pos_[item] = entries_.size() - 1;
    sift_up(entries_.size() - 1);
  }

  /// Lowers the key of an existing item. Precondition: key <= key_of(item).
  void decrease_key(Key key, Item item) {
    std::size_t i = pos_[item];
    assert(i != kAbsent && key <= entries_[i].key);
    entries_[i].key = key;
    sift_up(i);
  }

  /// Inserts or decreases, whichever applies.
  void push_or_decrease(Key key, Item item) {
    if (contains(item)) {
      if (key < key_of(item)) decrease_key(key, item);
    } else {
      push(key, item);
    }
  }

  /// Removes and returns the minimum entry.
  std::pair<Key, Item> pop() {
    assert(!entries_.empty());
    Entry top = entries_.front();
    pos_[top.item] = kAbsent;
    Entry last = entries_.back();
    entries_.pop_back();
    if (!entries_.empty()) {
      entries_.front() = last;
      pos_[last.item] = 0;
      sift_down(0);
    }
    return {top.key, top.item};
  }

 private:
  struct Entry {
    Key key;
    Item item;
  };

  static constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);
  static constexpr std::size_t kArity = 4;

  void sift_up(std::size_t i) {
    Entry e = entries_[i];
    while (i > 0) {
      std::size_t parent = (i - 1) / kArity;
      if (entries_[parent].key <= e.key) break;
      entries_[i] = entries_[parent];
      pos_[entries_[i].item] = i;
      i = parent;
    }
    entries_[i] = e;
    pos_[e.item] = i;
  }

  void sift_down(std::size_t i) {
    Entry e = entries_[i];
    const std::size_t n = entries_.size();
    for (;;) {
      std::size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      std::size_t last_child = std::min(first_child + kArity, n);
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (entries_[c].key < entries_[best].key) best = c;
      }
      if (entries_[best].key >= e.key) break;
      entries_[i] = entries_[best];
      pos_[entries_[i].item] = i;
      i = best;
    }
    entries_[i] = e;
    pos_[e.item] = i;
  }

  std::vector<Entry> entries_;
  std::vector<std::size_t> pos_;
};

}  // namespace dfsssp
