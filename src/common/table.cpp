#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "common/json.hpp"

namespace dfsssp {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
  return *this;
}

Table& Table::cell(std::string value) {
  if (rows_.empty()) throw std::logic_error("Table::cell before row()");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return cell(std::string(buf));
}


void Table::print() const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::printf("\n== %s ==\n", title_.c_str());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%-*s%s", static_cast<int>(width[c]), columns_[c].c_str(),
                c + 1 == columns_.size() ? "\n" : "  ");
  }
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%s%s", std::string(width[c], '-').c_str(),
                c + 1 == columns_.size() ? "\n" : "  ");
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& v = c < r.size() ? r[c] : std::string();
      std::printf("%-*s%s", static_cast<int>(width[c]), v.c_str(),
                  c + 1 == columns_.size() ? "\n" : "  ");
    }
  }
  std::fflush(stdout);
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open CSV output: " + path);
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    q += '"';
    return q;
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out << quote(columns_[c]) << (c + 1 == columns_.size() ? "\n" : ",");
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      out << (c < r.size() ? quote(r[c]) : std::string())
          << (c + 1 == columns_.size() ? "\n" : ",");
    }
  }
}

void Table::write_json(std::ostream& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  out << "{\n" << pad << "  \"title\": " << json_quote(title_) << ",\n";
  out << pad << "  \"columns\": [";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out << (c ? ", " : "") << json_quote(columns_[c]);
  }
  out << "],\n" << pad << "  \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out << (r ? ",\n" : "\n") << pad << "    [";
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      // Short rows pad with empty cells, mirroring print()/write_csv.
      out << (c ? ", " : "")
          << json_quote(c < rows_[r].size() ? rows_[r][c] : std::string());
    }
    out << "]";
  }
  if (!rows_.empty()) out << "\n" << pad << "  ";
  out << "]\n" << pad << "}";
}

void Table::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open JSON output: " + path);
  write_json(out);
  out << "\n";
}

}  // namespace dfsssp
