#include "common/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace dfsssp {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";
    }
  }
}

bool Cli::has(const std::string& key) const { return flags_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace dfsssp
