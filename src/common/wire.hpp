// Little-endian byte-level codec shared by everything that serializes
// fixed binary records: the service wire envelope (service/envelope.cpp)
// and the flight-recorder journal (obs/journal). Explicit shifts instead
// of memcpy of the host representation so the encoded bytes are identical
// on any endianness — the same reason the DFEL edge-list writer spells its
// integers out.
//
// Writers append to a std::string; the Reader is a bounds-checked cursor
// whose get_* calls return false once the payload is exhausted (decoders
// translate that into their structured "malformed" errors instead of
// reading out of bounds).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dfsssp::wire {

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void put_u16(std::string& out, std::uint16_t v) {
  put_u8(out, static_cast<std::uint8_t>(v & 0xFF));
  put_u8(out, static_cast<std::uint8_t>(v >> 8));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    put_u8(out, static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    put_u8(out, static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

/// Strings travel as u32 length + raw bytes.
inline void put_str(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

/// Bounds-checked cursor over an encoded payload.
struct Reader {
  std::string_view data;
  std::size_t pos = 0;

  std::size_t remaining() const { return data.size() - pos; }

  bool get_u8(std::uint8_t& v) {
    if (pos + 1 > data.size()) return false;
    v = static_cast<std::uint8_t>(data[pos++]);
    return true;
  }

  bool get_u16(std::uint16_t& v) {
    std::uint8_t lo = 0;
    std::uint8_t hi = 0;
    if (!get_u8(lo) || !get_u8(hi)) return false;
    v = static_cast<std::uint16_t>(lo | (static_cast<std::uint16_t>(hi) << 8));
    return true;
  }

  bool get_u32(std::uint32_t& v) {
    v = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      std::uint8_t b = 0;
      if (!get_u8(b)) return false;
      v |= static_cast<std::uint32_t>(b) << shift;
    }
    return true;
  }

  bool get_u64(std::uint64_t& v) {
    v = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      std::uint8_t b = 0;
      if (!get_u8(b)) return false;
      v |= static_cast<std::uint64_t>(b) << shift;
    }
    return true;
  }

  bool get_str(std::string& v) {
    std::uint32_t len = 0;
    if (!get_u32(len)) return false;
    if (pos + len > data.size()) return false;
    v.assign(data.data() + pos, len);
    pos += len;
    return true;
  }
};

}  // namespace dfsssp::wire
