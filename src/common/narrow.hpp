// Throwing checked-narrow helpers — the sanctioned way to shrink a 64-bit
// quantity into the 32-bit index space of the topology layer.
//
// The SoA Network stores every node, channel, and CSR offset as a 32-bit
// index (common/types.hpp); sizes and file offsets arrive as std::size_t or
// std::uint64_t. A raw `static_cast<std::uint32_t>(n)` silently truncates
// on a >4G-element input, so the dfs-checked-narrowing static-analysis
// check (tools/tidy/) bans raw 64->32 casts in src/topology/ and points
// here instead: checked_narrow() throws std::overflow_error with a caller
//-supplied context string, and lo_u32()/hi_u32() cover the intentional
// word-split in binary I/O where truncation is the point.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace dfsssp {

/// `v` as a `To`, throwing std::overflow_error (tagged with `context`) when
/// the value does not fit. Both types must be integral; the comparison is
/// value-correct across signedness (std::in_range).
template <typename To, typename From>
constexpr To checked_narrow(From v, const char* context) {
  if (!std::in_range<To>(v)) {
    throw std::overflow_error(std::string(context) + ": value " +
                              std::to_string(v) + " does not fit the " +
                              std::to_string(sizeof(To) * 8) +
                              "-bit index type");
  }
  // NOLINT(dfs-checked-narrowing): the range check above is the contract.
  return static_cast<To>(v);
}

/// The common case: a size or count into a 32-bit index/offset.
template <typename From>
constexpr std::uint32_t checked_u32(From v, const char* context) {
  return checked_narrow<std::uint32_t>(v, context);
}

/// Low 32 bits of `v` — intentional truncation for binary word splits.
constexpr std::uint32_t lo_u32(std::uint64_t v) {
  return static_cast<std::uint32_t>(v & 0xFFFF'FFFFull);
}

/// High 32 bits of `v`.
constexpr std::uint32_t hi_u32(std::uint64_t v) {
  return static_cast<std::uint32_t>(v >> 32);
}

}  // namespace dfsssp
