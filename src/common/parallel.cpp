#include "common/parallel.hpp"

#include <algorithm>

#include "common/timer.hpp"
#include "obs/metrics.hpp"

namespace dfsssp {

namespace {

// Pool telemetry is Kind::kTiming: chunk counts depend on the chunking
// (hence the thread count) and queue waits on scheduling, so neither
// belongs in the deterministic metric section.
obs::Counter& pool_chunk_counter() {
  static obs::Counter& c =
      obs::registry().counter("pool/chunks_executed", obs::Kind::kTiming);
  return c;
}

obs::Histogram& pool_queue_wait_histogram() {
  static obs::Histogram& h = obs::registry().histogram(
      "pool/queue_wait_ns", obs::exponential_buckets(250, 4.0, 14),
      obs::Kind::kTiming);
  return h;
}

}  // namespace

// ---- ThreadPool -------------------------------------------------------------

ThreadPool::ThreadPool(unsigned num_threads) {
  num_threads = std::max(1u, num_threads);
  workers_.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  // Explicit lock()/unlock() rather than a guard object: the thread-safety
  // analysis follows direct capability calls, so this function stays fully
  // checked.
  mu_.lock();
  stopping_ = true;
  mu_.unlock();
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::drain_job(std::unique_lock<Mutex>& lock) {
  while (job_.cursor < job_.n && !job_.error) {
    const std::size_t begin = job_.cursor;
    const std::size_t end = std::min(job_.n, begin + job_.chunk);
    job_.cursor = end;
    ++job_.in_flight;
    const auto* body = job_.body;
    const std::uint64_t posted_ns = job_.posted_ns;
    const obs::ProfileContext prof_ctx = job_.prof_ctx;
    lock.unlock();
    pool_queue_wait_histogram().record(Timer::now_ns() - posted_ns);
    pool_chunk_counter().inc();
    std::exception_ptr error;
    try {
      obs::ProfileTaskScope prof_scope(prof_ctx);
      (*body)(begin, end);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && !job_.error) job_.error = error;
    --job_.in_flight;
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<Mutex> lock(mu_);
  std::uint64_t seen_generation = 0;
  for (;;) {
    work_cv_.wait(lock, [this, seen_generation] {
      return stopping_ ||
             (job_.generation != seen_generation && job_.cursor < job_.n);
    });
    if (stopping_) return;
    seen_generation = job_.generation;
    drain_job(lock);
    if (job_.in_flight == 0 && (job_.cursor >= job_.n || job_.error)) {
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_chunked(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  std::lock_guard<Mutex> run_lock(run_mu_);
  std::unique_lock<Mutex> lock(mu_);
  job_.n = n;
  job_.chunk = std::max<std::size_t>(1, chunk);
  job_.cursor = 0;
  job_.in_flight = 0;
  ++job_.generation;
  job_.posted_ns = Timer::now_ns();
  job_.prof_ctx = obs::profile_current_context();
  job_.body = &body;
  job_.error = nullptr;
  work_cv_.notify_all();
  // The calling thread works too, so ExecContext{N} uses N cores.
  drain_job(lock);
  done_cv_.wait(lock, [this] { return job_.in_flight == 0; });
  job_.n = 0;  // park the workers until the next generation
  if (job_.error) {
    std::exception_ptr error = job_.error;
    job_.error = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

// ---- ExecContext ------------------------------------------------------------

ExecContext::ExecContext(unsigned num_threads) : threads_(num_threads) {
  if (threads_ == 0) {
    threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
  if (threads_ > 1) {
    // One pool worker per extra thread; the thread calling run_chunked
    // participates as well.
    pool_ = std::make_shared<ThreadPool>(threads_ - 1);
  }
}

void parallel_for_chunks(
    const ExecContext& exec, std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (exec.is_serial() || n == 1) {
    body(0, n);
    return;
  }
  // ~8 chunks per thread: fine enough to balance uneven items, coarse
  // enough to keep cursor contention negligible.
  const std::size_t chunks = static_cast<std::size_t>(exec.num_threads()) * 8;
  const std::size_t chunk = std::max<std::size_t>(1, (n + chunks - 1) / chunks);
  exec.pool()->run_chunked(n, chunk, body);
}

}  // namespace dfsssp
