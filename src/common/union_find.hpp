// Disjoint-set forest with path halving and union by size.
// Used by the random-topology generator to guarantee connectivity and by
// tests that check spanning properties.
#pragma once

#include <cstdint>
#include <vector>

namespace dfsssp {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n = 0) { reset(n); }

  void reset(std::size_t n);

  /// Representative of x's set.
  std::uint32_t find(std::uint32_t x);

  /// Merges the sets of a and b; returns false when already joined.
  bool unite(std::uint32_t a, std::uint32_t b);

  /// Number of disjoint sets remaining.
  std::size_t num_sets() const { return num_sets_; }

  std::size_t size_of(std::uint32_t x) { return size_[find(x)]; }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t num_sets_ = 0;
};

}  // namespace dfsssp
