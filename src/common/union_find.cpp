#include "common/union_find.hpp"

#include <numeric>

namespace dfsssp {

void UnionFind::reset(std::size_t n) {
  parent_.resize(n);
  std::iota(parent_.begin(), parent_.end(), 0U);
  size_.assign(n, 1U);
  num_sets_ = n;
}

std::uint32_t UnionFind::find(std::uint32_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::uint32_t a, std::uint32_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (size_[a] < size_[b]) std::swap(a, b);
  parent_[b] = a;
  size_[a] += size_[b];
  --num_sets_;
  return true;
}

}  // namespace dfsssp
