// Communication-pattern generators.
//
// Patterns are generated in *rank* space (MPI-style, ranks 0..P-1) and
// mapped onto terminals through a RankMap, which models the paper's job
// allocations (one process per node up to 512 cores on Deimos, several
// processes per node at 1024). The simulators consume terminal-pair flows.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "topology/network.hpp"

namespace dfsssp {

/// Directed flows between ranks.
using RankPattern = std::vector<std::pair<std::uint32_t, std::uint32_t>>;
/// Directed flows between terminals.
using Flows = std::vector<std::pair<NodeId, NodeId>>;

/// rank -> terminal.
class RankMap {
 public:
  RankMap() = default;
  explicit RankMap(std::vector<NodeId> terminal_of_rank)
      : map_(std::move(terminal_of_rank)) {}

  /// `num_ranks` ranks round-robin over the first `nodes_used` terminals
  /// (nodes_used = min(num_ranks, #terminals) when 0).
  static RankMap round_robin(const Network& net, std::uint32_t num_ranks,
                             std::uint32_t nodes_used = 0);

  /// Random node allocation: `num_ranks` ranks round-robin over a random
  /// subset of nodes (the scheduler's allocation on a shared cluster).
  static RankMap random_allocation(const Network& net, std::uint32_t num_ranks,
                                   std::uint32_t nodes_used, Rng& rng);

  std::uint32_t num_ranks() const { return static_cast<std::uint32_t>(map_.size()); }
  NodeId terminal(std::uint32_t rank) const { return map_[rank]; }

  Flows to_flows(const RankPattern& pattern) const;

 private:
  std::vector<NodeId> map_;
};

/// Random bisection: ranks are split into two random halves A and B and
/// matched one-to-one; one directed flow per pair A->B (the effective-
/// bisection-bandwidth pattern of ORCS/Netgauge). Odd rank counts drop one
/// rank, matching Netgauge.
RankPattern random_bisection(std::uint32_t num_ranks, Rng& rng);

/// Uniform random permutation with no self-pairs (fixed-point-free).
RankPattern random_permutation(std::uint32_t num_ranks, Rng& rng);

/// All ordered pairs (the congestion shape of MPI_Alltoall).
RankPattern all_to_all(std::uint32_t num_ranks);

/// rank i -> rank (i+shift) mod P.
RankPattern ring_shift(std::uint32_t num_ranks, std::uint32_t shift);

/// 4-neighbor halo exchange on an rx x ry process grid (row-major ranks),
/// periodic boundaries. Both directions of every neighbor relation.
RankPattern stencil2d(std::uint32_t rx, std::uint32_t ry);

/// 6-neighbor halo on an rx x ry x rz grid, periodic boundaries.
RankPattern stencil3d(std::uint32_t rx, std::uint32_t ry, std::uint32_t rz);

/// Recursive-doubling style pairs: for each stage s, rank i <-> i ^ (1<<s).
/// (The communication shape of reduce/allreduce butterflies; one stage.)
RankPattern butterfly_stage(std::uint32_t num_ranks, std::uint32_t stage);

// ---- classical adversarial patterns (ORCS's permutation suite) -------------

/// rank b_{n-1}..b_0 -> rank b_0..b_{n-1}; num_ranks must be a power of two.
RankPattern bit_reversal(std::uint32_t num_ranks);

/// rank i -> rank ~i (within log2(num_ranks) bits); power of two.
RankPattern bit_complement(std::uint32_t num_ranks);

/// Matrix transpose on an rx x ry rank grid: (x,y) -> (y,x); rx == ry.
RankPattern transpose2d(std::uint32_t rx);

/// Tornado: rank i -> (i + ceil(P/2) - 1) mod P, the classical worst case
/// for minimal routing on rings.
RankPattern tornado(std::uint32_t num_ranks);

/// Everyone sends to rank `root` (incast) — ejection-limited by design.
RankPattern gather_to(std::uint32_t num_ranks, std::uint32_t root);

}  // namespace dfsssp
