#include "traffic/patterns.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace dfsssp {

RankMap RankMap::round_robin(const Network& net, std::uint32_t num_ranks,
                             std::uint32_t nodes_used) {
  const std::uint32_t num_terms =
      static_cast<std::uint32_t>(net.num_terminals());
  if (nodes_used == 0) nodes_used = std::min(num_ranks, num_terms);
  if (nodes_used > num_terms) {
    throw std::invalid_argument("RankMap: not enough terminals");
  }
  std::vector<NodeId> map(num_ranks);
  for (std::uint32_t r = 0; r < num_ranks; ++r) {
    map[r] = net.terminal_by_index(r % nodes_used);
  }
  return RankMap(std::move(map));
}

RankMap RankMap::random_allocation(const Network& net, std::uint32_t num_ranks,
                                   std::uint32_t nodes_used, Rng& rng) {
  const std::uint32_t num_terms =
      static_cast<std::uint32_t>(net.num_terminals());
  if (nodes_used == 0) nodes_used = std::min(num_ranks, num_terms);
  if (nodes_used > num_terms) {
    throw std::invalid_argument("RankMap: not enough terminals");
  }
  std::vector<std::uint32_t> indices(num_terms);
  std::iota(indices.begin(), indices.end(), 0U);
  rng.shuffle(indices);
  std::vector<NodeId> map(num_ranks);
  for (std::uint32_t r = 0; r < num_ranks; ++r) {
    map[r] = net.terminal_by_index(indices[r % nodes_used]);
  }
  return RankMap(std::move(map));
}

Flows RankMap::to_flows(const RankPattern& pattern) const {
  Flows flows;
  flows.reserve(pattern.size());
  for (auto [a, b] : pattern) flows.emplace_back(map_.at(a), map_.at(b));
  return flows;
}

RankPattern random_bisection(std::uint32_t num_ranks, Rng& rng) {
  std::vector<std::uint32_t> ranks(num_ranks);
  std::iota(ranks.begin(), ranks.end(), 0U);
  rng.shuffle(ranks);
  const std::uint32_t pairs = num_ranks / 2;
  RankPattern pattern;
  pattern.reserve(pairs);
  // First half is set A, second half set B; the shuffle makes both the
  // bisection and the matching uniformly random.
  for (std::uint32_t i = 0; i < pairs; ++i) {
    pattern.emplace_back(ranks[i], ranks[pairs + i]);
  }
  return pattern;
}

RankPattern random_permutation(std::uint32_t num_ranks, Rng& rng) {
  if (num_ranks < 2) return {};
  std::vector<std::uint32_t> target(num_ranks);
  std::iota(target.begin(), target.end(), 0U);
  // Sattolo's algorithm: a uniformly random cyclic permutation, which is
  // fixed-point-free by construction.
  for (std::uint32_t i = num_ranks - 1; i > 0; --i) {
    std::uint32_t j = static_cast<std::uint32_t>(rng.next_below(i));
    std::swap(target[i], target[j]);
  }
  RankPattern pattern;
  pattern.reserve(num_ranks);
  for (std::uint32_t i = 0; i < num_ranks; ++i) {
    pattern.emplace_back(i, target[i]);
  }
  return pattern;
}

RankPattern all_to_all(std::uint32_t num_ranks) {
  RankPattern pattern;
  pattern.reserve(static_cast<std::size_t>(num_ranks) * (num_ranks - 1));
  for (std::uint32_t i = 0; i < num_ranks; ++i) {
    for (std::uint32_t j = 0; j < num_ranks; ++j) {
      if (i != j) pattern.emplace_back(i, j);
    }
  }
  return pattern;
}

RankPattern ring_shift(std::uint32_t num_ranks, std::uint32_t shift) {
  RankPattern pattern;
  pattern.reserve(num_ranks);
  for (std::uint32_t i = 0; i < num_ranks; ++i) {
    std::uint32_t j = (i + shift) % num_ranks;
    if (i != j) pattern.emplace_back(i, j);
  }
  return pattern;
}

RankPattern stencil2d(std::uint32_t rx, std::uint32_t ry) {
  RankPattern pattern;
  auto rank = [&](std::uint32_t x, std::uint32_t y) { return y * rx + x; };
  for (std::uint32_t y = 0; y < ry; ++y) {
    for (std::uint32_t x = 0; x < rx; ++x) {
      const std::uint32_t r = rank(x, y);
      const std::uint32_t nbrs[4] = {
          rank((x + 1) % rx, y), rank((x + rx - 1) % rx, y),
          rank(x, (y + 1) % ry), rank(x, (y + ry - 1) % ry)};
      for (std::uint32_t n : nbrs) {
        if (n != r) pattern.emplace_back(r, n);
      }
    }
  }
  return pattern;
}

RankPattern stencil3d(std::uint32_t rx, std::uint32_t ry, std::uint32_t rz) {
  RankPattern pattern;
  auto rank = [&](std::uint32_t x, std::uint32_t y, std::uint32_t z) {
    return (z * ry + y) * rx + x;
  };
  for (std::uint32_t z = 0; z < rz; ++z) {
    for (std::uint32_t y = 0; y < ry; ++y) {
      for (std::uint32_t x = 0; x < rx; ++x) {
        const std::uint32_t r = rank(x, y, z);
        const std::uint32_t nbrs[6] = {
            rank((x + 1) % rx, y, z),      rank((x + rx - 1) % rx, y, z),
            rank(x, (y + 1) % ry, z),      rank(x, (y + ry - 1) % ry, z),
            rank(x, y, (z + 1) % rz),      rank(x, y, (z + rz - 1) % rz)};
        for (std::uint32_t n : nbrs) {
          if (n != r) pattern.emplace_back(r, n);
        }
      }
    }
  }
  return pattern;
}

RankPattern butterfly_stage(std::uint32_t num_ranks, std::uint32_t stage) {
  RankPattern pattern;
  const std::uint32_t mask = 1U << stage;
  for (std::uint32_t i = 0; i < num_ranks; ++i) {
    const std::uint32_t j = i ^ mask;
    if (j < num_ranks) pattern.emplace_back(i, j);
  }
  return pattern;
}

namespace {

std::uint32_t log2_exact(std::uint32_t num_ranks, const char* who) {
  if (num_ranks == 0 || (num_ranks & (num_ranks - 1)) != 0) {
    throw std::invalid_argument(std::string(who) +
                                ": rank count must be a power of two");
  }
  std::uint32_t bits = 0;
  while ((1U << bits) < num_ranks) ++bits;
  return bits;
}

}  // namespace

RankPattern bit_reversal(std::uint32_t num_ranks) {
  const std::uint32_t bits = log2_exact(num_ranks, "bit_reversal");
  RankPattern pattern;
  for (std::uint32_t i = 0; i < num_ranks; ++i) {
    std::uint32_t j = 0;
    for (std::uint32_t b = 0; b < bits; ++b) {
      if (i & (1U << b)) j |= 1U << (bits - 1 - b);
    }
    if (i != j) pattern.emplace_back(i, j);
  }
  return pattern;
}

RankPattern bit_complement(std::uint32_t num_ranks) {
  const std::uint32_t bits = log2_exact(num_ranks, "bit_complement");
  RankPattern pattern;
  const std::uint32_t mask = (bits >= 32) ? ~0U : ((1U << bits) - 1);
  for (std::uint32_t i = 0; i < num_ranks; ++i) {
    pattern.emplace_back(i, (~i) & mask);
  }
  return pattern;
}

RankPattern transpose2d(std::uint32_t rx) {
  RankPattern pattern;
  for (std::uint32_t y = 0; y < rx; ++y) {
    for (std::uint32_t x = 0; x < rx; ++x) {
      if (x != y) pattern.emplace_back(y * rx + x, x * rx + y);
    }
  }
  return pattern;
}

RankPattern tornado(std::uint32_t num_ranks) {
  const std::uint32_t shift = (num_ranks + 1) / 2 - 1;
  return ring_shift(num_ranks, shift == 0 ? 1 : shift);
}

RankPattern gather_to(std::uint32_t num_ranks, std::uint32_t root) {
  RankPattern pattern;
  for (std::uint32_t i = 0; i < num_ranks; ++i) {
    if (i != root) pattern.emplace_back(i, root);
  }
  return pattern;
}

}  // namespace dfsssp
