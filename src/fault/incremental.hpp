// Incremental DFSSSP repair.
//
// From-scratch DFSSSP recomputes every destination's forwarding tree and
// re-layers every path on any topology change. But destination-based
// forwarding localizes a fault's blast radius: a dead channel only breaks
// the forwarding trees whose next-hop chains traverse it. IncrementalDfsssp
// exploits that — it keeps the channel weight map, the per-destination
// channel sequences and one OnlineCdg (Pearce-Kelly) per virtual layer
// alive across faults, and on a ChurnDelta:
//
//   1. drops destinations that died with their switch,
//   2. invalidates exactly the destinations whose forwarding entries use a
//      downed channel (one scan of the table columns),
//   3. re-runs weighted SSSP for just those destinations (in destination
//      index order, so repair is deterministic and thread-count invariant),
//   4. re-layers the fresh paths first-fit into the persistent online CDGs,
//   5. falls back to a full recompute only when a layer overflows or a
//      switch comes back up (a revived switch needs forwarding entries for
//      every destination, which is a full recompute by definition),
//
// and emits a fresh deadlock-freedom certificate after every repair, so the
// independent checker (analysis/certificate.hpp) can audit each churn step
// exactly like a from-scratch run.
//
// The engine speaks the unified RouteRequest/RouteResponse API; repairs
// report their provenance in RouteResponse::repair.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/certificate.hpp"
#include "cdg/online.hpp"
#include "common/heap.hpp"
#include "fault/churn.hpp"
#include "routing/router.hpp"

namespace dfsssp {

struct IncrementalOptions {
  /// Default virtual-layer budget; RouteRequest::max_layers overrides.
  Layer max_layers = 8;
  /// Build a fresh certificate on every route()/repair(). Off only for
  /// microbenchmarks that never audit the result.
  bool emit_certificate = true;
};

class IncrementalDfsssp {
 public:
  explicit IncrementalDfsssp(IncrementalOptions options = {});

  /// From-scratch weighted-SSSP + online first-fit layering of the
  /// request's (possibly already degraded) network. Resets all incremental
  /// state and binds the engine to this topology.
  RouteResponse route(const RouteRequest& request);

  /// Incremental repair after `delta` was applied (by ChurnEngine) to the
  /// same topology route() last saw. Falls back to a full recompute — with
  /// RouteResponse::repair.fallback_reason saying why — when it cannot
  /// repair in place.
  RouteResponse repair(const RouteRequest& request, const ChurnDelta& delta);

  /// The certificate of the current table (empty when emit_certificate is
  /// off or nothing was routed yet).
  const Certificate& certificate() const { return certificate_; }

 private:
  enum class DestStatus { kOk, kOverflow, kDisconnected };

  /// Stored forwarding-tree slice of one destination: the channel sequence
  /// and layer per terminal-bearing source switch. These are exactly the
  /// CDG members and weight carriers that must be retracted when the
  /// destination is invalidated.
  struct DestPaths {
    bool routed = false;
    std::vector<std::uint32_t> src;     // switch indices, ascending
    std::vector<std::uint32_t> offset;  // size src.size() + 1
    std::vector<ChannelId> channels;
    std::vector<Layer> layer;  // per src entry
  };

  void reset(const Topology& topo, Layer max_layers);
  /// Retracts a destination's paths from the CDGs and the weight map and
  /// clears its table column.
  void retract_destination(std::uint32_t ti);
  /// Weighted Dijkstra from the destination's switch, weight update, path
  /// storage and first-fit layering. `error` is set on failure.
  DestStatus route_destination(std::uint32_t ti, std::string& error);
  Layer scan_layers_used() const;
  RouteResponse finish(const RouteRequest& request, RouteResponse out);
  std::uint64_t count_paths() const;

  IncrementalOptions options_;

  // Bound state (valid after a successful route()).
  const Topology* topo_ = nullptr;
  Layer max_layers_ = 0;
  RoutingTable table_;
  std::vector<std::uint64_t> weight_;  // per channel, persistent
  std::vector<std::unique_ptr<OnlineCdg>> layers_;
  std::vector<DestPaths> dest_;  // per terminal index
  Certificate certificate_;

  // Dijkstra scratch, reused across destinations.
  std::vector<std::uint64_t> dist_;
  std::vector<ChannelId> parent_;
  std::vector<std::uint32_t> order_;
  std::vector<std::uint64_t> subtree_;
  MinHeap<std::uint64_t> heap_;

  // Per-call accumulators (reset at the top of route()/repair()).
  double dijkstra_seconds_ = 0.0;
  double layering_seconds_ = 0.0;
  std::uint64_t acyclicity_checks_ = 0;
};

}  // namespace dfsssp
