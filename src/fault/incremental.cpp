#include "fault/incremental.hpp"

#include <algorithm>
#include <span>

#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dfsssp {

namespace {
constexpr std::uint64_t kInf = ~0ULL;
}

IncrementalDfsssp::IncrementalDfsssp(IncrementalOptions options)
    : options_(options) {}

void IncrementalDfsssp::reset(const Topology& topo, Layer max_layers) {
  topo_ = &topo;
  max_layers_ = max_layers;
  const Network& net = topo.net;
  table_ = RoutingTable(net);
  // Same initial weight as sssp_fill_planes: |V|^2 forces minimal paths,
  // and because retraction subtracts exactly what was added, the total
  // balance weight on any channel stays below |V|^2 across any fault
  // history — repairs keep producing minimal paths.
  const std::uint64_t n = net.num_nodes();
  weight_.assign(net.num_channels(), n * n);
  layers_.clear();
  dest_.assign(net.num_terminals(), {});
  certificate_ = {};
  dist_.assign(net.num_switches(), kInf);
  parent_.assign(net.num_switches(), kInvalidChannel);
  order_.assign(net.num_switches(), 0);
  subtree_.assign(net.num_switches(), 0);
}

void IncrementalDfsssp::retract_destination(std::uint32_t ti) {
  DestPaths& dp = dest_[ti];
  const Network& net = topo_->net;
  const NodeId d = net.terminal_by_index(ti);
  if (dp.routed) {
    for (std::size_t e = 0; e < dp.src.size(); ++e) {
      const std::span<const ChannelId> seq{dp.channels.data() + dp.offset[e],
                                           dp.offset[e + 1] - dp.offset[e]};
      if (seq.size() >= 2) layers_[dp.layer[e]]->remove_path(seq);
      const std::uint64_t w = net.terminals_on(net.switch_by_index(dp.src[e]));
      for (ChannelId c : seq) weight_[c] -= w;
    }
  }
  for (NodeId sw : net.switches()) {
    table_.set_next(sw, d, kInvalidChannel);
    table_.set_layer(sw, d, 0);
  }
  dp = {};
}

IncrementalDfsssp::DestStatus IncrementalDfsssp::route_destination(
    std::uint32_t ti, std::string& error) {
  const Network& net = topo_->net;
  const NodeId d = net.terminal_by_index(ti);
  const NodeId dst_switch = net.switch_of(d);
  const std::uint32_t dst_index = net.node(dst_switch).type_index;
  const std::size_t num_sw = net.num_switches();
  Timer timer;

  // Weighted Dijkstra outward from the destination switch over the alive
  // adjacency; dead switches are never reached because every channel
  // touching them is filtered out.
  std::fill(dist_.begin(), dist_.end(), kInf);
  std::fill(parent_.begin(), parent_.end(), kInvalidChannel);
  heap_.reset(num_sw);
  dist_[dst_index] = 0;
  heap_.push(0, dst_index);
  std::size_t settled = 0;
  while (!heap_.empty()) {
    auto [du, u_index] = heap_.pop();
    order_[settled++] = u_index;
    const NodeId u = net.switch_by_index(u_index);
    for (ChannelId c : net.out_switch_channels(u)) {
      const NodeId v = net.channel(c).dst;
      const std::uint32_t v_index = net.node(v).type_index;
      const ChannelId fwd = net.channel(c).reverse;  // v -> u, toward dst
      const std::uint64_t cand = du + weight_[fwd];
      if (cand < dist_[v_index]) {
        dist_[v_index] = cand;
        parent_[v_index] = fwd;
        heap_.push_or_decrease(cand, v_index);
      }
    }
  }
  if (settled != net.num_alive_switches()) {
    error = "alive network is disconnected";
    return DestStatus::kDisconnected;
  }

  for (std::size_t i = 1; i < settled; ++i) {  // order_[0] == dst
    table_.set_next(net.switch_by_index(order_[i]), d, parent_[order_[i]]);
  }

  // Algorithm 1's weight update, restricted to the alive subgraph: channel
  // weights grow by the number of (alive terminal, d) paths crossing them.
  for (std::size_t i = 0; i < settled; ++i) {
    subtree_[order_[i]] = net.terminals_on(net.switch_by_index(order_[i]));
  }
  for (std::size_t i = settled; i-- > 1;) {
    const std::uint32_t v_index = order_[i];
    const ChannelId fwd = parent_[v_index];
    weight_[fwd] += subtree_[v_index];
    const NodeId next_sw = net.channel(fwd).dst;
    subtree_[net.node(next_sw).type_index] += subtree_[v_index];
  }
  dijkstra_seconds_ += timer.seconds();

  // Store the terminal-bearing sources' channel sequences and first-fit
  // them into the persistent per-layer CDGs — ascending switch index, so a
  // repair is one deterministic serial pass.
  Timer layering_timer;
  DestPaths dp;
  const std::uint32_t num_channels =
      static_cast<std::uint32_t>(net.num_channels());
  std::vector<ChannelId> seq;
  for (std::uint32_t s = 0; s < num_sw; ++s) {
    if (s == dst_index || dist_[s] == kInf) continue;
    const NodeId sw = net.switch_by_index(s);
    if (net.terminals_on(sw) == 0) continue;
    seq.clear();
    for (ChannelId c = parent_[s]; c != kInvalidChannel;
         c = parent_[net.node(net.channel(c).dst).type_index]) {
      seq.push_back(c);
    }
    Layer assigned = 0;
    if (seq.size() >= 2) {
      assigned = kInvalidLayer;
      for (Layer l = 0; l < max_layers_; ++l) {
        if (l == layers_.size()) {
          layers_.push_back(std::make_unique<OnlineCdg>(num_channels));
        }
        ++acyclicity_checks_;
        if (layers_[l]->try_add_path(seq)) {
          assigned = l;
          break;
        }
      }
      if (assigned == kInvalidLayer) {
        error = "ran out of virtual layers (" + std::to_string(max_layers_) +
                ")";
        layering_seconds_ += layering_timer.seconds();
        return DestStatus::kOverflow;
      }
    }
    dp.src.push_back(s);
    dp.channels.insert(dp.channels.end(), seq.begin(), seq.end());
    dp.offset.push_back(static_cast<std::uint32_t>(dp.channels.size()));
    dp.layer.push_back(assigned);
    table_.set_layer(sw, d, assigned);
  }
  dp.offset.insert(dp.offset.begin(), 0);
  dp.routed = true;
  dest_[ti] = std::move(dp);
  layering_seconds_ += layering_timer.seconds();
  return DestStatus::kOk;
}

Layer IncrementalDfsssp::scan_layers_used() const {
  Layer used = 1;
  for (const DestPaths& dp : dest_) {
    for (Layer l : dp.layer) {
      used = std::max(used, static_cast<Layer>(l + 1));
    }
  }
  return used;
}

std::uint64_t IncrementalDfsssp::count_paths() const {
  std::uint64_t routed = 0;
  for (const DestPaths& dp : dest_) routed += dp.routed ? 1 : 0;
  if (routed == 0) return 0;
  return routed * (topo_->net.num_alive_switches() - 1);
}

RouteResponse IncrementalDfsssp::finish(const RouteRequest& request,
                                        RouteResponse out) {
  const Network& net = topo_->net;
  const Layer layers_used = scan_layers_used();
  table_.set_num_layers(layers_used);

  if (options_.emit_certificate) {
    // The persistent per-layer OnlineCdgs already maintain a topological
    // order (Pearce-Kelly invariant), so the certificate falls out of the
    // repair for free — no Kahn re-sort over the whole path set.
    Timer cert_timer;
    certificate_ = {};
    certificate_.num_layers = layers_used;
    certificate_.order.resize(layers_used);
    for (Layer l = 0; l < layers_used && l < layers_.size(); ++l) {
      certificate_.order[l] = layers_[l]->topological_order();
    }
    layering_seconds_ += cert_timer.seconds();
  }

  out.ok = true;
  out.table = table_;
  out.stats.route_seconds = dijkstra_seconds_;
  out.stats.layering_seconds = layering_seconds_;
  out.stats.layers_used = layers_used;
  out.stats.paths = count_paths();

  obs::Registry& sink = request.sink();
  if (acyclicity_checks_ > 0) {
    sink.counter("fault/acyclicity_checks").add(acyclicity_checks_);
    // finish() runs inside the fault/route_full or fault/repair span, so
    // the re-layer attempts attribute to whichever path ran.
    PROF_COUNT("fault/acyclicity_checks", acyclicity_checks_);
  }
  sink.gauge("fault/active_paths").set(out.stats.paths);
  sink.gauge("fault/layers_used").set(layers_used);
  sink.gauge("fault/dead_channels").set(net.num_dead_channels());
  return out;
}

RouteResponse IncrementalDfsssp::route(const RouteRequest& request) {
  TRACE_SPAN("fault/route_full");
  static obs::Histogram& h_route_full_ns =
      obs::registry().timing_histogram("fault/route_full_ns");
  ScopedTimer phase_timer(h_route_full_ns);
  const Topology& topo = request.topo();
  reset(topo, request.layer_budget(options_.max_layers));
  dijkstra_seconds_ = layering_seconds_ = 0.0;
  acyclicity_checks_ = 0;
  const Network& net = topo.net;

  RouteResponse out;
  std::string error;
  for (std::uint32_t ti = 0; ti < net.num_terminals(); ++ti) {
    if (!net.terminal_alive(net.terminal_by_index(ti))) continue;
    const DestStatus st = route_destination(ti, error);
    if (st != DestStatus::kOk) {
      return RouteResponse::failure("dfsssp-inc: " + error);
    }
  }
  out.repair.destinations_rerouted =
      static_cast<std::uint32_t>(std::count_if(
          dest_.begin(), dest_.end(),
          [](const DestPaths& dp) { return dp.routed; }));
  return finish(request, std::move(out));
}

RouteResponse IncrementalDfsssp::repair(const RouteRequest& request,
                                        const ChurnDelta& delta) {
  TRACE_SPAN("fault/repair");
  static obs::Histogram& h_repair_ns =
      obs::registry().timing_histogram("fault/repair_ns");
  ScopedTimer phase_timer(h_repair_ns);
  obs::Registry& sink = request.sink();
  sink.counter("fault/repairs").add(1);

  auto full_fallback = [&](const std::string& reason) {
    sink.counter("fault/full_recomputes").add(1);
    RouteResponse out = route(request);
    out.repair.fallback_reason = reason;
    return out;
  };

  if (topo_ == nullptr || &request.topo() != topo_) {
    return full_fallback("repair without a matching prior route");
  }
  if (!delta.switches_up.empty()) {
    // A revived switch needs forwarding entries for every destination:
    // that is a full recompute by definition.
    return full_fallback("switch revived");
  }

  dijkstra_seconds_ = layering_seconds_ = 0.0;
  acyclicity_checks_ = 0;
  const Network& net = topo_->net;
  RouteResponse out;
  out.repair.incremental = true;

  if (delta.no_effect()) return finish(request, std::move(out));

  // Invalidate: destinations that died with their switch, and destinations
  // whose forwarding entries (at any alive switch) use a downed channel —
  // the chain s -> ... -> dst crosses a dead channel iff some alive
  // switch's entry for dst is dead, so one scan of the table columns finds
  // exactly the broken forwarding trees.
  std::vector<std::uint8_t> dead(net.num_channels(), 0);
  for (ChannelId c : delta.downed) dead[c] = 1;
  std::vector<std::uint32_t> affected;
  for (std::uint32_t ti = 0; ti < dest_.size(); ++ti) {
    const NodeId d = net.terminal_by_index(ti);
    if (!net.terminal_alive(d)) {
      if (dest_[ti].routed) retract_destination(ti);
      continue;
    }
    if (!dest_[ti].routed) {
      affected.push_back(ti);
      continue;
    }
    for (NodeId sw : net.switches()) {
      if (!net.switch_up(sw)) continue;
      const ChannelId c = table_.next(sw, d);
      if (c != kInvalidChannel && dead[c]) {
        affected.push_back(ti);
        break;
      }
    }
  }

  for (std::uint32_t ti : affected) retract_destination(ti);
  std::string error;
  std::uint64_t migrated = 0;
  for (std::uint32_t ti : affected) {
    const DestStatus st = route_destination(ti, error);
    if (st == DestStatus::kOverflow) {
      return full_fallback("layer overflow during repair: " + error);
    }
    if (st == DestStatus::kDisconnected) {
      return RouteResponse::failure("dfsssp-inc: " + error);
    }
    migrated += dest_[ti].src.size();
  }

  out.repair.destinations_rerouted =
      static_cast<std::uint32_t>(affected.size());
  out.repair.paths_migrated = migrated;
  sink.counter("fault/destinations_rerouted").add(affected.size());
  sink.counter("fault/paths_migrated").add(migrated);
  return finish(request, std::move(out));
}

}  // namespace dfsssp
