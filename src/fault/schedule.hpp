// Deterministic fault-event streams.
//
// A FaultSchedule is a pre-generated, seed-reproducible sequence of link and
// switch down/up events against one frozen Network. Generation simulates the
// fabric's alive state so that (with the default options) no down event ever
// disconnects the alive switches — the schedule models the churn a subnet
// manager survives, not a partition it cannot route across. The schedule is
// pure data: applying it to a Network is ChurnEngine's job (churn.hpp), so
// one schedule can drive the incremental and the from-scratch engine over
// identical fault histories.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "topology/network.hpp"

namespace dfsssp {

enum class FaultKind : std::uint8_t {
  kLinkDown,
  kLinkUp,
  kSwitchDown,
  kSwitchUp,
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kLinkDown;
  /// Link events: the forward directed channel of the physical link (the
  /// reverse direction changes state with it). Unused for switch events.
  ChannelId channel = kInvalidChannel;
  /// Switch events: the switch NodeId. Unused for link events.
  NodeId sw = kInvalidNode;

  std::string describe(const Network& net) const;
};

struct FaultScheduleOptions {
  std::uint32_t num_events = 100;
  /// Relative weights of the four event kinds. Up-kinds only fire when
  /// something of that kind is currently down; their weight is otherwise
  /// redistributed to the down-kinds.
  std::uint32_t link_down_weight = 6;
  std::uint32_t link_up_weight = 3;
  std::uint32_t switch_down_weight = 2;
  std::uint32_t switch_up_weight = 1;
  /// Never emit an event that would disconnect the alive switches: no down
  /// event may partition them (or take the last alive switch down), and no
  /// switch revival may rejoin the alive set isolated (its links downed
  /// while it was dead). Candidates are re-drawn up to `max_attempts`
  /// times; when none survives, the event degenerates to an up event (or
  /// is skipped when nothing is down).
  bool keep_connected = true;
  std::uint32_t max_attempts = 32;
};

class FaultSchedule {
 public:
  /// Generates a schedule against `net`'s physical structure. Deterministic
  /// in (net, options, seed); does not modify `net`. The generated stream
  /// may be shorter than `options.num_events` when no admissible event
  /// exists at some step (e.g. keep_connected on a tree with every leaf
  /// link already down).
  static FaultSchedule random(const Network& net,
                              const FaultScheduleOptions& options,
                              std::uint64_t seed);

  /// A monotone degradation: `count` link-down events, each preserving
  /// alive-switch connectivity, never repaired. This is the classic
  /// fault-resilience sweep (bench_fault_sweep): kill links one by one and
  /// watch the routing survive.
  static FaultSchedule link_kills(const Network& net, std::uint32_t count,
                                  std::uint64_t seed);

  const std::vector<FaultEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const FaultEvent& operator[](std::size_t i) const { return events_[i]; }

  std::vector<FaultEvent>::const_iterator begin() const {
    return events_.begin();
  }
  std::vector<FaultEvent>::const_iterator end() const { return events_.end(); }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace dfsssp
