#include "fault/schedule.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/rng.hpp"

namespace dfsssp {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kSwitchDown: return "switch_down";
    case FaultKind::kSwitchUp: return "switch_up";
  }
  return "?";
}

std::string FaultEvent::describe(const Network& net) const {
  std::string s = to_string(kind);
  if (kind == FaultKind::kLinkDown || kind == FaultKind::kLinkUp) {
    const Channel& ch = net.channel(channel);
    s += " " + net.node_name(ch.src) + "<->" + net.node_name(ch.dst);
  } else {
    s += " " + net.node_name(sw);
  }
  return s;
}

namespace {

/// Scratch model of the fabric's flag state during schedule generation.
/// Mirrors the Network's current fault flags without touching it.
struct FabricModel {
  const Network* net;
  std::vector<ChannelId> links;        // forward channel per physical link
  std::vector<std::uint8_t> link_up;   // per links[] index
  std::vector<std::uint8_t> sw_up;     // per switch index
  std::vector<std::uint32_t> link_index_of;  // per channel, index into links

  explicit FabricModel(const Network& n) : net(&n) {
    link_index_of.assign(n.num_channels(), ~0U);
    for (ChannelId c = 0; c < n.num_channels(); ++c) {
      if (n.is_switch_channel(c) && c < n.channel(c).reverse) {
        link_index_of[c] = static_cast<std::uint32_t>(links.size());
        link_index_of[n.channel(c).reverse] =
            static_cast<std::uint32_t>(links.size());
        links.push_back(c);
        link_up.push_back(n.link_up(c) ? 1 : 0);
      }
    }
    sw_up.assign(n.num_switches(), 1);
    for (NodeId sw : n.switches()) {
      sw_up[n.node(sw).type_index] = n.switch_up(sw) ? 1 : 0;
    }
  }

  std::size_t alive_switches() const {
    return std::accumulate(sw_up.begin(), sw_up.end(), std::size_t{0});
  }

  /// True when every flag-up switch reaches every other over links that are
  /// flag-up with both endpoints flag-up.
  bool connected() const {
    const std::size_t num_sw = net->num_switches();
    std::vector<std::vector<std::uint32_t>> adj(num_sw);
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (!link_up[i]) continue;
      const Channel& ch = net->channel(links[i]);
      const std::uint32_t a = net->node(ch.src).type_index;
      const std::uint32_t b = net->node(ch.dst).type_index;
      if (!sw_up[a] || !sw_up[b]) continue;
      adj[a].push_back(b);
      adj[b].push_back(a);
    }
    const std::size_t alive = alive_switches();
    if (alive <= 1) return true;
    std::uint32_t start = ~0U;
    for (std::uint32_t i = 0; i < num_sw; ++i) {
      if (sw_up[i]) {
        start = i;
        break;
      }
    }
    std::vector<std::uint8_t> seen(num_sw, 0);
    std::queue<std::uint32_t> q;
    q.push(start);
    seen[start] = 1;
    std::size_t reached = 1;
    while (!q.empty()) {
      std::uint32_t u = q.front();
      q.pop();
      for (std::uint32_t v : adj[u]) {
        if (!seen[v]) {
          seen[v] = 1;
          ++reached;
          q.push(v);
        }
      }
    }
    return reached == alive;
  }

  std::vector<std::uint32_t> indices_where(const std::vector<std::uint8_t>& v,
                                           std::uint8_t want) const {
    std::vector<std::uint32_t> out;
    for (std::uint32_t i = 0; i < v.size(); ++i) {
      if (v[i] == want) out.push_back(i);
    }
    return out;
  }
};

}  // namespace

FaultSchedule FaultSchedule::random(const Network& net,
                                    const FaultScheduleOptions& options,
                                    std::uint64_t seed) {
  FaultSchedule sched;
  FabricModel model(net);
  Rng rng(seed);

  for (std::uint32_t step = 0; step < options.num_events; ++step) {
    const std::vector<std::uint32_t> up_links =
        model.indices_where(model.link_up, 1);
    const std::vector<std::uint32_t> down_links =
        model.indices_where(model.link_up, 0);
    const std::vector<std::uint32_t> up_switches =
        model.indices_where(model.sw_up, 1);
    const std::vector<std::uint32_t> down_switches =
        model.indices_where(model.sw_up, 0);

    // Weighted kind draw over the kinds that currently have candidates.
    struct Arm {
      FaultKind kind;
      std::uint32_t weight;
    };
    std::vector<Arm> arms;
    if (!up_links.empty() && options.link_down_weight > 0) {
      arms.push_back({FaultKind::kLinkDown, options.link_down_weight});
    }
    if (!down_links.empty() && options.link_up_weight > 0) {
      arms.push_back({FaultKind::kLinkUp, options.link_up_weight});
    }
    if (!up_switches.empty() && options.switch_down_weight > 0) {
      arms.push_back({FaultKind::kSwitchDown, options.switch_down_weight});
    }
    if (!down_switches.empty() && options.switch_up_weight > 0) {
      arms.push_back({FaultKind::kSwitchUp, options.switch_up_weight});
    }
    if (arms.empty()) break;
    std::uint64_t total = 0;
    for (const Arm& a : arms) total += a.weight;
    std::uint64_t draw = rng.next_below(total);
    FaultKind kind = arms.back().kind;
    for (const Arm& a : arms) {
      if (draw < a.weight) {
        kind = a.kind;
        break;
      }
      draw -= a.weight;
    }

    FaultEvent ev;
    ev.kind = kind;
    bool emitted = false;
    switch (kind) {
      case FaultKind::kLinkUp: {
        const std::uint32_t li = down_links[static_cast<std::size_t>(
            rng.next_below(down_links.size()))];
        model.link_up[li] = 1;
        ev.channel = model.links[li];
        emitted = true;
        break;
      }
      case FaultKind::kSwitchUp: {
        // Revival needs the same connectivity guard as the down events: a
        // switch whose links were independently downed while it was dead
        // would rejoin the alive set isolated — a partition the subnet
        // manager cannot route across.
        for (std::uint32_t attempt = 0;
             attempt < options.max_attempts && !emitted; ++attempt) {
          const std::uint32_t si = down_switches[static_cast<std::size_t>(
              rng.next_below(down_switches.size()))];
          model.sw_up[si] = 1;
          if (!options.keep_connected || model.connected()) {
            ev.sw = net.switch_by_index(si);
            emitted = true;
          } else {
            model.sw_up[si] = 0;
          }
        }
        break;
      }
      case FaultKind::kLinkDown: {
        for (std::uint32_t attempt = 0;
             attempt < options.max_attempts && !emitted; ++attempt) {
          const std::uint32_t li = up_links[static_cast<std::size_t>(
              rng.next_below(up_links.size()))];
          model.link_up[li] = 0;
          if (!options.keep_connected || model.connected()) {
            ev.channel = model.links[li];
            emitted = true;
          } else {
            model.link_up[li] = 1;
          }
        }
        break;
      }
      case FaultKind::kSwitchDown: {
        for (std::uint32_t attempt = 0;
             attempt < options.max_attempts && !emitted; ++attempt) {
          const std::uint32_t si = up_switches[static_cast<std::size_t>(
              rng.next_below(up_switches.size()))];
          model.sw_up[si] = 0;
          if (model.alive_switches() >= 1 &&
              (!options.keep_connected || model.connected())) {
            ev.sw = net.switch_by_index(si);
            emitted = true;
          } else {
            model.sw_up[si] = 1;
          }
        }
        break;
      }
    }
    if (emitted) sched.events_.push_back(ev);
  }
  return sched;
}

FaultSchedule FaultSchedule::link_kills(const Network& net,
                                        std::uint32_t count,
                                        std::uint64_t seed) {
  FaultScheduleOptions opts;
  opts.num_events = count;
  opts.link_up_weight = 0;
  opts.switch_down_weight = 0;
  opts.switch_up_weight = 0;
  // A full scan's worth of attempts: a kill is skipped only when no
  // admissible link exists at all (with high probability).
  opts.max_attempts =
      static_cast<std::uint32_t>(net.num_channels()) + 32;
  return random(net, opts, seed);
}

}  // namespace dfsssp
