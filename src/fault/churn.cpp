#include "fault/churn.hpp"

#include <algorithm>

namespace dfsssp {
namespace {

bool is_link_event(const FaultEvent& e) {
  return e.kind == FaultKind::kLinkDown || e.kind == FaultKind::kLinkUp;
}

bool is_up_event(const FaultEvent& e) {
  return e.kind == FaultKind::kLinkUp || e.kind == FaultKind::kSwitchUp;
}

/// Channels whose effective state one event can change: the link's two
/// directions, or everything physically touching the switch (inter-switch
/// links and the switch's terminals' injection/ejection channels).
/// Sorted, deduplicated.
std::vector<ChannelId> event_candidates(const Network& net,
                                        const FaultEvent& event) {
  std::vector<ChannelId> candidates;
  if (is_link_event(event)) {
    candidates = {event.channel, net.channel(event.channel).reverse};
  } else {
    for (ChannelId c : net.out_channels_all(event.sw)) {
      candidates.push_back(c);
      candidates.push_back(net.channel(c).reverse);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

}  // namespace

ChurnEngine::ChurnEngine(Topology& topo, ChurnOptions options)
    : topo_(&topo), options_(options) {}

void ChurnEngine::maybe_degrade_meta() {
  if (options_.degrade_meta && !topo_->meta.family.empty() &&
      topo_->meta.family.find("/degraded") == std::string::npos) {
    topo_->meta.sw_coord.clear();
    topo_->meta.sw_level.clear();
    topo_->meta.dims.clear();
    topo_->meta.wraparound = false;
    topo_->meta.family += "/degraded";
  }
}

ChurnDelta ChurnEngine::apply(const FaultEvent& event) {
  Network& net = topo_->net;
  ChurnDelta delta;
  delta.event = event;

  const bool is_link = is_link_event(event);
  const std::vector<ChannelId> candidates = event_candidates(net, event);

  std::vector<std::uint8_t> alive_before(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    alive_before[i] = net.channel_alive(candidates[i]) ? 1 : 0;
  }
  const bool sw_up_before = !is_link && net.switch_up(event.sw);

  const bool up = is_up_event(event);
  if (is_link) {
    net.set_link_up(event.channel, up);
  } else {
    net.set_switch_up(event.sw, up);
  }

  if (!up && options_.veto_disconnecting && !net.alive_connected()) {
    // Roll back: this fault would partition the alive fabric.
    if (is_link) {
      net.set_link_up(event.channel, true);
    } else {
      net.set_switch_up(event.sw, true);
    }
    delta.veto_reason = "would disconnect the alive switches";
    ++events_vetoed_;
    return delta;
  }

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const bool alive_after = net.channel_alive(candidates[i]);
    if (alive_before[i] && !alive_after) delta.downed.push_back(candidates[i]);
    if (!alive_before[i] && alive_after) {
      delta.restored.push_back(candidates[i]);
    }
  }
  if (!is_link && net.switch_up(event.sw) != sw_up_before) {
    (up ? delta.switches_up : delta.switches_down).push_back(event.sw);
  }

  delta.applied = !delta.no_effect();
  if (!delta.applied) return delta;  // e.g. re-killing an already-dead link

  ++events_applied_;
  maybe_degrade_meta();
  return delta;
}

ChurnDelta ChurnEngine::apply_all(std::span<const FaultEvent> events) {
  ChurnDelta delta;
  if (events.empty()) return delta;
  if (events.size() == 1) return apply(events.front());
  Network& net = topo_->net;
  delta.event = events.front();

  // Batch-start snapshot over the union of everything any event can touch.
  // The coalesced delta is measured against this, so a channel downed and
  // restored within the batch nets out to no entry at all.
  std::vector<ChannelId> union_ch;
  std::vector<NodeId> union_sw;
  for (const FaultEvent& e : events) {
    if (is_link_event(e)) {
      union_ch.push_back(e.channel);
      union_ch.push_back(net.channel(e.channel).reverse);
    } else {
      union_sw.push_back(e.sw);
      for (ChannelId c : net.out_channels_all(e.sw)) {
        union_ch.push_back(c);
        union_ch.push_back(net.channel(c).reverse);
      }
    }
  }
  std::sort(union_ch.begin(), union_ch.end());
  union_ch.erase(std::unique(union_ch.begin(), union_ch.end()),
                 union_ch.end());
  std::sort(union_sw.begin(), union_sw.end());
  union_sw.erase(std::unique(union_sw.begin(), union_sw.end()),
                 union_sw.end());

  std::vector<std::uint8_t> alive_start(union_ch.size());
  std::vector<std::uint8_t> link_phys_start(union_ch.size());
  for (std::size_t i = 0; i < union_ch.size(); ++i) {
    alive_start[i] = net.channel_alive(union_ch[i]) ? 1 : 0;
    link_phys_start[i] = net.link_up(union_ch[i]) ? 1 : 0;
  }
  std::vector<std::uint8_t> sw_start(union_sw.size());
  for (std::size_t i = 0; i < union_sw.size(); ++i) {
    sw_start[i] = net.switch_up(union_sw[i]) ? 1 : 0;
  }

  // Forward pass: apply every event, tracking per-event effect exactly like
  // apply() does (own candidates, aliveness before/after) so the
  // events_applied counter stays equal to the serial path's.
  std::uint64_t applied_here = 0;
  bool any_down = false;
  for (const FaultEvent& e : events) {
    const bool is_link = is_link_event(e);
    const std::vector<ChannelId> cand = event_candidates(net, e);
    std::vector<std::uint8_t> alive_before(cand.size());
    for (std::size_t i = 0; i < cand.size(); ++i) {
      alive_before[i] = net.channel_alive(cand[i]) ? 1 : 0;
    }
    const bool sw_up_before = !is_link && net.switch_up(e.sw);

    const bool up = is_up_event(e);
    if (!up) any_down = true;
    if (is_link) {
      net.set_link_up(e.channel, up);
    } else {
      net.set_switch_up(e.sw, up);
    }

    bool effect = !is_link && net.switch_up(e.sw) != sw_up_before;
    for (std::size_t i = 0; !effect && i < cand.size(); ++i) {
      effect = (net.channel_alive(cand[i]) ? 1 : 0) != alive_before[i];
    }
    if (effect) ++applied_here;
  }

  if (any_down && options_.veto_disconnecting && !net.alive_connected()) {
    // The single partition pass failed: the batch as a whole disconnects
    // the alive switches. Roll everything back to the batch-start state and
    // replay per event, so exactly the disconnecting events are vetoed and
    // the fabric ends up identical to a serial apply() loop.
    // Restore only links whose physical state moved: terminal
    // injection/ejection channels are in the union (a switch event kills
    // them) but have no independent link state — set_switch_up below
    // revives them.
    for (std::size_t i = 0; i < union_ch.size(); ++i) {
      const bool want = link_phys_start[i] != 0;
      if (net.link_up(union_ch[i]) != want) {
        net.set_link_up(union_ch[i], want);
      }
    }
    for (std::size_t i = 0; i < union_sw.size(); ++i) {
      net.set_switch_up(union_sw[i], sw_start[i] != 0);
    }
    const std::uint64_t vetoed_before = events_vetoed_;
    for (const FaultEvent& e : events) apply(e);
    const std::uint64_t vetoed = events_vetoed_ - vetoed_before;
    if (vetoed > 0) {
      delta.veto_reason = std::to_string(vetoed) + " of " +
                          std::to_string(events.size()) +
                          " events vetoed: would disconnect the alive "
                          "switches";
    }
  } else {
    events_applied_ += applied_here;
    if (applied_here > 0) maybe_degrade_meta();
  }

  // Coalesced delta: batch start vs wherever the fabric ended up.
  for (std::size_t i = 0; i < union_ch.size(); ++i) {
    const bool alive_now = net.channel_alive(union_ch[i]);
    if (alive_start[i] != 0 && !alive_now) delta.downed.push_back(union_ch[i]);
    if (alive_start[i] == 0 && alive_now) {
      delta.restored.push_back(union_ch[i]);
    }
  }
  for (std::size_t i = 0; i < union_sw.size(); ++i) {
    const bool up_now = net.switch_up(union_sw[i]);
    if (sw_start[i] != 0 && !up_now) delta.switches_down.push_back(union_sw[i]);
    if (sw_start[i] == 0 && up_now) delta.switches_up.push_back(union_sw[i]);
  }
  delta.applied = !delta.no_effect();
  return delta;
}

}  // namespace dfsssp
