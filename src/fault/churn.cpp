#include "fault/churn.hpp"

#include <algorithm>

namespace dfsssp {

ChurnEngine::ChurnEngine(Topology& topo, ChurnOptions options)
    : topo_(&topo), options_(options) {}

ChurnDelta ChurnEngine::apply(const FaultEvent& event) {
  Network& net = topo_->net;
  ChurnDelta delta;
  delta.event = event;

  // Channels whose effective state can change: the link's two directions,
  // or everything physically touching the switch (inter-switch links and
  // the switch's terminals' injection/ejection channels).
  std::vector<ChannelId> candidates;
  const bool is_link = event.kind == FaultKind::kLinkDown ||
                       event.kind == FaultKind::kLinkUp;
  if (is_link) {
    candidates = {event.channel, net.channel(event.channel).reverse};
  } else {
    for (ChannelId c : net.out_channels_all(event.sw)) {
      candidates.push_back(c);
      candidates.push_back(net.channel(c).reverse);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  std::vector<std::uint8_t> alive_before(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    alive_before[i] = net.channel_alive(candidates[i]) ? 1 : 0;
  }
  const bool sw_up_before = !is_link && net.switch_up(event.sw);

  const bool up = event.kind == FaultKind::kLinkUp ||
                  event.kind == FaultKind::kSwitchUp;
  if (is_link) {
    net.set_link_up(event.channel, up);
  } else {
    net.set_switch_up(event.sw, up);
  }

  if (!up && options_.veto_disconnecting && !net.alive_connected()) {
    // Roll back: this fault would partition the alive fabric.
    if (is_link) {
      net.set_link_up(event.channel, true);
    } else {
      net.set_switch_up(event.sw, true);
    }
    delta.veto_reason = "would disconnect the alive switches";
    ++events_vetoed_;
    return delta;
  }

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const bool alive_after = net.channel_alive(candidates[i]);
    if (alive_before[i] && !alive_after) delta.downed.push_back(candidates[i]);
    if (!alive_before[i] && alive_after) {
      delta.restored.push_back(candidates[i]);
    }
  }
  if (!is_link && net.switch_up(event.sw) != sw_up_before) {
    (up ? delta.switches_up : delta.switches_down).push_back(event.sw);
  }

  delta.applied = !delta.no_effect();
  if (!delta.applied) return delta;  // e.g. re-killing an already-dead link

  ++events_applied_;
  if (options_.degrade_meta && !topo_->meta.family.empty() &&
      topo_->meta.family.find("/degraded") == std::string::npos) {
    topo_->meta.sw_coord.clear();
    topo_->meta.sw_level.clear();
    topo_->meta.dims.clear();
    topo_->meta.wraparound = false;
    topo_->meta.family += "/degraded";
  }
  return delta;
}

}  // namespace dfsssp
