// In-place fault application with effective-change deltas.
//
// ChurnEngine is the mutation side of the fault subsystem: it applies
// FaultEvents to one Topology IN PLACE (Network::set_link_up /
// set_switch_up — no rebuild, every NodeId/ChannelId stable) and reports
// exactly which directed channels and switches changed effective state as a
// ChurnDelta. That delta is the contract with IncrementalDfsssp: the
// repair engine invalidates precisely the destinations whose paths touch
// `delta.downed` channels.
//
// Events that would disconnect the alive switches are vetoed (rolled back,
// `applied == false`) by default — the same degraded-connectivity detection
// a subnet manager performs before reprogramming a fabric it can no longer
// span.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fault/schedule.hpp"
#include "topology/topology.hpp"

namespace dfsssp {

struct ChurnDelta {
  FaultEvent event{};
  /// False when the event was vetoed (see veto_reason) or changed nothing.
  bool applied = false;
  std::string veto_reason;
  /// Directed channels that were traversable before and are not now.
  std::vector<ChannelId> downed;
  /// Directed channels that were dead before and are traversable now.
  std::vector<ChannelId> restored;
  /// Switches whose up flag flipped (at most one per event).
  std::vector<NodeId> switches_down;
  std::vector<NodeId> switches_up;

  bool no_effect() const {
    return downed.empty() && restored.empty() && switches_down.empty() &&
           switches_up.empty();
  }
};

struct ChurnOptions {
  /// Roll back any event after which the alive switches are disconnected.
  bool veto_disconnecting = true;
  /// On the first applied fault, drop the topology's generator metadata
  /// (coordinates, tree levels): a degraded fabric is no longer the regular
  /// structure the generator promised, so structure-dependent engines (DOR,
  /// fat-tree) must refuse it rather than route it wrong — exactly how a
  /// subnet manager re-discovers a broken fabric as an arbitrary graph.
  bool degrade_meta = true;
};

class ChurnEngine {
 public:
  explicit ChurnEngine(Topology& topo, ChurnOptions options = {});

  /// Applies one event and returns the effective change. The Topology
  /// mutates in place; a vetoed event leaves it untouched.
  ChurnDelta apply(const FaultEvent& event);

  /// Applies a batch of events and returns ONE coalesced delta: channel and
  /// switch flips are measured batch-start vs batch-end (a link downed and
  /// restored within the batch appears in neither list, duplicates collapse),
  /// and connectivity is vetoed with a single partition pass at the end
  /// instead of per event. This is what lets a daemon fold a burst of fault
  /// notifications into one repair. When the batch as a whole would
  /// disconnect the alive switches, it is rolled back and replayed per event
  /// so exactly the disconnecting events are vetoed — the net topology state
  /// is then identical to calling apply() in a loop. `delta.event` is the
  /// first event of the batch; an empty batch returns a no-effect delta.
  ChurnDelta apply_all(std::span<const FaultEvent> events);

  const Topology& topo() const { return *topo_; }
  std::uint64_t events_applied() const { return events_applied_; }
  std::uint64_t events_vetoed() const { return events_vetoed_; }

 private:
  /// Drops generator metadata once the fabric diverges from its generated
  /// structure (see ChurnOptions::degrade_meta).
  void maybe_degrade_meta();

  Topology* topo_;
  ChurnOptions options_;
  std::uint64_t events_applied_ = 0;
  std::uint64_t events_vetoed_ = 0;
};

}  // namespace dfsssp
