// Scoped trace spans with a Chrome trace_event JSON exporter.
//
// TRACE_SPAN("dfsssp/cycle_search") opens a span for the enclosing scope;
// spans nest lexically and are timed with Timer::now_ns(). When no trace
// session is active (the default) a span is one relaxed atomic load —
// effectively free. Bench binaries and dfcheck activate a session with
// --trace=FILE; the file loads in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
//
// Building with -DDFS_OBS_TRACING=OFF (CMake) defines DFS_OBS_NO_TRACING and
// compiles every TRACE_SPAN to literally nothing.
#pragma once

#include <cstdint>
#include <string>

#include "obs/profile/profile.hpp"

namespace dfsssp::obs {

/// True while a trace session is collecting spans.
bool tracing_active();

/// Starts collecting spans; they are buffered in memory and written to
/// `path` by stop_tracing(). A session left active at process exit is
/// flushed by an atexit hook, so callers may simply start and forget.
/// Starting while active restarts the session (prior spans are dropped).
void start_tracing(std::string path);

/// Writes the Chrome trace_event JSON file and ends the session. No-op when
/// no session is active. Returns the number of spans written.
std::size_t stop_tracing();

/// RAII span. `name` must outlive the span (string literals in practice).
/// Feeds two consumers: the Chrome-trace event buffer (when a trace
/// session is active) and the hierarchical profiler (when a profiling
/// session is active) — either, both, or neither.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint32_t prof_node_ = kNoProfileNode;
};

}  // namespace dfsssp::obs

#if defined(DFS_OBS_NO_TRACING)
#define TRACE_SPAN(name) static_cast<void>(0)
#else
#define DFS_OBS_CAT2(a, b) a##b
#define DFS_OBS_CAT(a, b) DFS_OBS_CAT2(a, b)
#define TRACE_SPAN(name) \
  ::dfsssp::obs::TraceSpan DFS_OBS_CAT(dfs_trace_span_, __COUNTER__)(name)
#endif
