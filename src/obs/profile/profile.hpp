// Hierarchical span-tree profiler with deterministic work attribution.
//
// A profiling session aggregates the TRACE_SPAN stream into a canonical
// call tree: every span entered while profiling is active becomes (or
// revisits) a node keyed by its name under the innermost enclosing span.
// Each node carries
//
//   * invocations — how many times the span opened (deterministic),
//   * total/self wall time — Kind::kTiming, never exact-compared,
//   * deterministic cost counters — PROF_COUNT tallies (cycle-search
//     steps, heap pushes/pops, edge relaxations, re-layer attempts, CDG
//     edge insertions) attributed to the innermost enclosing span.
//
// The deterministic columns (invocations + counters) are bitwise identical
// at any --threads=N. Two mechanisms make that hold:
//
//   1. The current tree position lives in a thread_local cursor, and the
//      ThreadPool propagates the submitting thread's cursor to workers
//      (ProfileContext captured in run_chunked, applied by a
//      ProfileTaskScope around each chunk) — so spans opened inside a
//      parallel region attach to the same parent regardless of which
//      thread runs the work item.
//   2. Instrumentation only opens spans and flushes counters at work-item
//      granularity (per pass, per pattern, per layer), never per pool
//      chunk, so invocation counts do not depend on the chunking.
//
// Wall times do vary run to run and thread to thread; they are exported
// separately as timing stats ("prof/<path>/total_ms", "prof/<path>/self_ms")
// and only ever compared through the MAD noise model.
//
// Like tracing, an inactive profiler costs one relaxed atomic load per
// span; -DDFS_OBS_TRACING=OFF compiles PROF_COUNT (and the spans that feed
// the tree) to nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace dfsssp::obs {

/// Sentinel: "span not recorded" (profiler inactive at entry).
inline constexpr std::uint32_t kNoProfileNode = 0xFFFFFFFFu;

/// True while a profiling session is aggregating spans.
bool profiling_active();

/// Starts (or restarts) a profiling session. The tree resets to a single
/// root node; span node ids from a previous session become invalid (their
/// exits are dropped via a generation check, so restarting mid-span on
/// another thread is safe).
void start_profiling();

/// Opens a span named `name` under the calling thread's current node and
/// returns the node id, or kNoProfileNode when inactive. `name` must
/// outlive the session (string literals in practice). Called by TraceSpan.
std::uint32_t profile_enter(const char* name);

/// Closes a span previously returned by profile_enter, adding its elapsed
/// wall time to the node. No-op on kNoProfileNode or when the session
/// restarted in between.
void profile_exit(std::uint32_t node, std::uint64_t elapsed_ns);

/// Adds `delta` to the deterministic counter `counter` on the calling
/// thread's innermost enclosing span (the root when none is open).
/// Counter names follow the registry convention ("family/name").
void profile_count(const char* counter, std::uint64_t delta);

/// The calling thread's position in the tree, capturable before handing
/// work to another thread. generation == 0 means "no session".
struct ProfileContext {
  std::uint64_t generation = 0;
  std::uint32_t node = 0;
};

ProfileContext profile_current_context();

/// Applies a captured ProfileContext to the current thread for a scope —
/// used by the ThreadPool so worker-side spans attach to the submitter's
/// node. Purely thread-local; no-op for an empty context.
class ProfileTaskScope {
 public:
  explicit ProfileTaskScope(const ProfileContext& ctx);
  ~ProfileTaskScope();

  ProfileTaskScope(const ProfileTaskScope&) = delete;
  ProfileTaskScope& operator=(const ProfileTaskScope&) = delete;

 private:
  std::uint64_t saved_gen_ = 0;
  std::uint32_t saved_node_ = 0;
  bool applied_ = false;
};

/// One aggregated call-tree node in canonical order (DFS preorder,
/// children sorted by name). `path` joins span names from the root with
/// ';' — the collapsed-stack convention, e.g.
/// "root;dfsssp/layering;dfsssp/cycle_search".
struct ProfileNode {
  std::string path;
  std::string name;
  std::uint32_t depth = 0;
  std::uint64_t invocations = 0;
  std::uint64_t total_ns = 0;  // kTiming: wall clock, noisy
  std::uint64_t self_ns = 0;   // total minus children, clamped at 0
  std::map<std::string, std::uint64_t> counters;  // deterministic
};

struct Profile {
  std::vector<ProfileNode> nodes;  // nodes[0] is always the root
};

/// Snapshots the current session's tree (session stays active; totals keep
/// accumulating). The root's total is the session wall clock so far.
/// Returns an empty profile when inactive.
Profile collect_profile();

/// Snapshots the tree and ends the session.
Profile stop_profiling();

/// Fraction of the root's wall time attributed to spans below it:
/// 1 - root_self / root_total. 0 for an empty or zero-length profile.
double attributed_fraction(const Profile& profile);

/// Top-N nodes by self time as an aligned text table (self/total ms,
/// invocations, deterministic counter totals, path).
void write_profile_text(std::ostream& out, const Profile& profile,
                        std::size_t top_n);

/// Collapsed-stack flamegraph format: one "path value" line per node with
/// nonzero self time, value in nanoseconds. Feed to flamegraph.pl or
/// speedscope.
void write_folded(std::ostream& out, const Profile& profile);

}  // namespace dfsssp::obs

#if defined(DFS_OBS_NO_TRACING)
#define PROF_COUNT(counter, delta) static_cast<void>(0)
#else
#define PROF_COUNT(counter, delta) \
  ::dfsssp::obs::profile_count(counter, delta)
#endif
