#include "obs/profile/profile.hpp"

#include <algorithm>
#include <atomic>
#include <iomanip>
#include <mutex>
#include <ostream>
#include <utility>

#include "common/timer.hpp"

namespace dfsssp::obs {

namespace {

/// Mutable tree node. Children are keyed by span name so the same name
/// under the same parent always resolves to the same node, regardless of
/// which thread opens it first.
struct NodeImpl {
  std::string name;
  std::uint32_t parent = 0;
  std::uint64_t invocations = 0;
  std::uint64_t total_ns = 0;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::uint32_t> children;
};

struct ProfState {
  std::atomic<bool> active{false};
  std::mutex mu;
  // Bumps on every start/stop; node ids and thread cursors from an older
  // generation are silently discarded.
  std::uint64_t generation = 0;
  std::uint64_t session_start_ns = 0;
  std::vector<NodeImpl> nodes;
};

ProfState& state() {
  static ProfState* s = new ProfState();  // leaked: usable during atexit
  return *s;
}

/// Per-thread tree position. gen pins it to a session: a cursor from a
/// previous session (worker thread outliving a restart) resets to root on
/// its next use.
struct Cursor {
  std::uint64_t gen = 0;
  std::uint32_t node = 0;
};

Cursor& cursor() {
  thread_local Cursor c;
  return c;
}

/// Resyncs the cursor to the live generation (root on mismatch). Caller
/// holds s.mu.
void sync_cursor(ProfState& s, Cursor& c) {
  if (c.gen != s.generation) {
    c.gen = s.generation;
    c.node = 0;
  }
}

void collect_subtree(const std::vector<NodeImpl>& nodes, std::uint32_t id,
                     const std::string& prefix, std::uint32_t depth,
                     Profile& out) {
  const NodeImpl& n = nodes[id];
  const std::string path = prefix.empty() ? n.name : prefix + ";" + n.name;
  ProfileNode pn;
  pn.path = path;
  pn.name = n.name;
  pn.depth = depth;
  pn.invocations = n.invocations;
  pn.total_ns = n.total_ns;
  pn.counters = n.counters;
  std::uint64_t children_total = 0;
  for (const auto& [name, child] : n.children) {
    children_total += nodes[child].total_ns;
  }
  pn.self_ns = n.total_ns > children_total ? n.total_ns - children_total : 0;
  out.nodes.push_back(std::move(pn));
  for (const auto& [name, child] : n.children) {
    collect_subtree(nodes, child, path, depth + 1, out);
  }
}

/// Snapshot under s.mu. Stamps the root with the session wall clock so the
/// attribution fraction has a denominator.
Profile collect_locked(ProfState& s) {
  Profile out;
  if (s.nodes.empty()) return out;
  s.nodes[0].total_ns = Timer::now_ns() - s.session_start_ns;
  s.nodes[0].invocations = 1;
  collect_subtree(s.nodes, 0, std::string(), 0, out);
  return out;
}

}  // namespace

bool profiling_active() {
  return state().active.load(std::memory_order_relaxed);
}

void start_profiling() {
  ProfState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  ++s.generation;
  s.nodes.clear();
  NodeImpl root;
  root.name = "root";
  s.nodes.push_back(std::move(root));
  s.session_start_ns = Timer::now_ns();
  s.active.store(true, std::memory_order_relaxed);
}

std::uint32_t profile_enter(const char* name) {
  ProfState& s = state();
  if (!s.active.load(std::memory_order_relaxed)) return kNoProfileNode;
  Cursor& c = cursor();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.active.load(std::memory_order_relaxed)) return kNoProfileNode;
  sync_cursor(s, c);
  NodeImpl& parent = s.nodes[c.node];
  auto it = parent.children.find(name);
  std::uint32_t child;
  if (it != parent.children.end()) {
    child = it->second;
  } else {
    child = static_cast<std::uint32_t>(s.nodes.size());
    parent.children.emplace(name, child);
    NodeImpl n;
    n.name = name;
    n.parent = c.node;
    s.nodes.push_back(std::move(n));  // may invalidate `parent`
  }
  ++s.nodes[child].invocations;
  c.node = child;
  return child;
}

void profile_exit(std::uint32_t node, std::uint64_t elapsed_ns) {
  if (node == kNoProfileNode) return;
  ProfState& s = state();
  Cursor& c = cursor();
  std::lock_guard<std::mutex> lock(s.mu);
  // A restart between enter and exit invalidates the node id; the cursor
  // generation proves whether this thread's position is still live.
  if (c.gen != s.generation || !s.active.load(std::memory_order_relaxed)) {
    return;
  }
  s.nodes[node].total_ns += elapsed_ns;
  c.node = s.nodes[node].parent;
}

void profile_count(const char* counter, std::uint64_t delta) {
  ProfState& s = state();
  if (!s.active.load(std::memory_order_relaxed)) return;
  Cursor& c = cursor();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.active.load(std::memory_order_relaxed)) return;
  sync_cursor(s, c);
  s.nodes[c.node].counters[counter] += delta;
}

ProfileContext profile_current_context() {
  ProfState& s = state();
  if (!s.active.load(std::memory_order_relaxed)) return ProfileContext{};
  Cursor& c = cursor();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.active.load(std::memory_order_relaxed)) return ProfileContext{};
  sync_cursor(s, c);
  return ProfileContext{c.gen, c.node};
}

ProfileTaskScope::ProfileTaskScope(const ProfileContext& ctx) {
  if (ctx.generation == 0) return;
  Cursor& c = cursor();
  saved_gen_ = c.gen;
  saved_node_ = c.node;
  c.gen = ctx.generation;
  c.node = ctx.node;
  applied_ = true;
}

ProfileTaskScope::~ProfileTaskScope() {
  if (!applied_) return;
  Cursor& c = cursor();
  c.gen = saved_gen_;
  c.node = saved_node_;
}

Profile collect_profile() {
  ProfState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.active.load(std::memory_order_relaxed)) return Profile{};
  return collect_locked(s);
}

Profile stop_profiling() {
  ProfState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.active.load(std::memory_order_relaxed)) return Profile{};
  Profile out = collect_locked(s);
  s.active.store(false, std::memory_order_relaxed);
  ++s.generation;  // invalidate in-flight node ids and thread cursors
  s.nodes.clear();
  return out;
}

double attributed_fraction(const Profile& profile) {
  if (profile.nodes.empty() || profile.nodes[0].total_ns == 0) return 0.0;
  const ProfileNode& root = profile.nodes[0];
  return 1.0 - static_cast<double>(root.self_ns) /
                   static_cast<double>(root.total_ns);
}

void write_profile_text(std::ostream& out, const Profile& profile,
                        std::size_t top_n) {
  std::vector<const ProfileNode*> by_self;
  by_self.reserve(profile.nodes.size());
  for (const ProfileNode& n : profile.nodes) by_self.push_back(&n);
  std::sort(by_self.begin(), by_self.end(),
            [](const ProfileNode* a, const ProfileNode* b) {
              if (a->self_ns != b->self_ns) return a->self_ns > b->self_ns;
              return a->path < b->path;
            });
  if (top_n < by_self.size()) by_self.resize(top_n);
  out << std::setw(12) << "self_ms" << std::setw(12) << "total_ms"
      << std::setw(12) << "calls"
      << "  path\n";
  const auto flags = out.flags();
  out << std::fixed << std::setprecision(3);
  for (const ProfileNode* n : by_self) {
    out << std::setw(12) << static_cast<double>(n->self_ns) / 1e6
        << std::setw(12) << static_cast<double>(n->total_ns) / 1e6
        << std::setw(12) << n->invocations << "  " << n->path << "\n";
    for (const auto& [name, value] : n->counters) {
      out << std::setw(36) << " "
          << "  " << name << " = " << value << "\n";
    }
  }
  out.flags(flags);
}

void write_folded(std::ostream& out, const Profile& profile) {
  for (const ProfileNode& n : profile.nodes) {
    if (n.self_ns == 0) continue;
    out << n.path << " " << n.self_ns << "\n";
  }
}

}  // namespace dfsssp::obs
