#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "common/json.hpp"

namespace dfsssp::obs {

namespace detail {

std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kMaxShards;
  return index;
}

}  // namespace detail

// ---- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<std::uint64_t> edges)
    : edges_(std::move(edges)) {
  if (edges_.empty()) throw std::logic_error("Histogram needs >= 1 edge");
  if (!std::is_sorted(edges_.begin(), edges_.end()) ||
      std::adjacent_find(edges_.begin(), edges_.end()) != edges_.end()) {
    throw std::logic_error("Histogram edges must be strictly ascending");
  }
  for (Shard& s : shards_) {
    s.counts =
        std::make_unique<std::atomic<std::uint64_t>[]>(edges_.size() + 1);
  }
}

void Histogram::record(std::uint64_t v) {
  // First edge >= v; values above the last edge land in the overflow slot.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(edges_.begin(), edges_.end(), v) - edges_.begin());
  Shard& s = shards_[detail::shard_index()];
  s.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = s.max.load(std::memory_order_relaxed);
  while (v > cur &&
         !s.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramValue Histogram::value() const {
  HistogramValue out;
  out.edges = edges_;
  out.counts.assign(edges_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (std::size_t b = 0; b <= edges_.size(); ++b) {
      out.counts[b] += s.counts[b].load(std::memory_order_relaxed);
    }
    out.sum += s.sum.load(std::memory_order_relaxed);
    out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
  }
  for (std::uint64_t c : out.counts) out.count += c;
  return out;
}

void Histogram::reset() {
  for (Shard& s : shards_) {
    for (std::size_t b = 0; b <= edges_.size(); ++b) {
      s.counts[b].store(0, std::memory_order_relaxed);
    }
    s.sum.store(0, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

std::vector<std::uint64_t> exponential_buckets(std::uint64_t start,
                                               double factor, std::size_t n) {
  std::vector<std::uint64_t> edges;
  edges.reserve(n);
  double edge = static_cast<double>(start);
  for (std::size_t i = 0; i < n; ++i) {
    const auto rounded = static_cast<std::uint64_t>(std::llround(edge));
    // factor close to 1 can round two consecutive edges together; keep them
    // strictly ascending.
    edges.push_back(edges.empty() ? rounded
                                  : std::max(rounded, edges.back() + 1));
    edge *= factor;
  }
  return edges;
}

double histogram_quantile(const HistogramValue& h, double q) {
  if (h.count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample (1-based, nearest-rank).
  const auto rank = static_cast<std::uint64_t>(std::max(
      1.0, std::ceil(q * static_cast<double>(h.count))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < h.counts.size(); ++b) {
    const std::uint64_t in_bucket = h.counts[b];
    if (seen + in_bucket < rank) {
      seen += in_bucket;
      continue;
    }
    if (b >= h.edges.size()) return static_cast<double>(h.max);  // overflow
    // Linear interpolation between the bucket's bounds by the rank's
    // position inside it.
    const double lo =
        b == 0 ? 0.0 : static_cast<double>(h.edges[b - 1]);
    const double hi = static_cast<double>(h.edges[b]);
    const double frac = in_bucket == 0
                            ? 1.0
                            : static_cast<double>(rank - seen) /
                                  static_cast<double>(in_bucket);
    // Bucket resolution can place the estimate above the largest value
    // actually observed; the tracked max is a tighter upper bound.
    return std::min(lo + (hi - lo) * frac, static_cast<double>(h.max));
  }
  return static_cast<double>(h.max);
}

// ---- Registry ---------------------------------------------------------------

Counter& Registry::counter(const std::string& name, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = metrics_[name];
  if (!e.counter) {
    if (e.gauge || e.histogram) {
      throw std::logic_error("metric '" + name + "' is not a counter");
    }
    e.kind = kind;
    e.counter.reset(new Counter());
  }
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = metrics_[name];
  if (!e.gauge) {
    if (e.counter || e.histogram) {
      throw std::logic_error("metric '" + name + "' is not a gauge");
    }
    e.kind = kind;
    e.gauge.reset(new Gauge());
  }
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<std::uint64_t> edges, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = metrics_[name];
  if (!e.histogram) {
    if (e.counter || e.gauge) {
      throw std::logic_error("metric '" + name + "' is not a histogram");
    }
    e.kind = kind;
    e.histogram.reset(new Histogram(std::move(edges)));
  }
  return *e.histogram;
}

Histogram& Registry::timing_histogram(const std::string& name) {
  // 1us .. ~4.4min in x4 steps: coarse, but timing histograms are for
  // orders of magnitude, not microbenchmarking.
  return histogram(name, exponential_buckets(1000, 4.0, 14), Kind::kTiming);
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, e] : metrics_) {
    MetricValue v;
    v.kind = e.kind;
    if (e.counter) {
      v.type = MetricValue::Type::kCounter;
      v.value = e.counter->value();
    } else if (e.gauge) {
      v.type = MetricValue::Type::kGauge;
      v.value = e.gauge->value();
    } else {
      v.type = MetricValue::Type::kHistogram;
      v.hist = e.histogram->value();
    }
    snap.emplace(name, std::move(v));
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : metrics_) {
    if (e.counter) e.counter->reset();
    if (e.gauge) e.gauge->reset();
    if (e.histogram) e.histogram->reset();
  }
}

Registry& registry() {
  static Registry r;
  return r;
}

Snapshot snapshot_delta(const Snapshot& after, const Snapshot& before) {
  Snapshot delta = after;
  for (auto& [name, v] : delta) {
    auto it = before.find(name);
    if (it == before.end()) continue;
    const MetricValue& b = it->second;
    switch (v.type) {
      case MetricValue::Type::kCounter:
        v.value -= std::min(v.value, b.value);
        break;
      case MetricValue::Type::kGauge:
        break;  // last reading stands
      case MetricValue::Type::kHistogram:
        if (b.hist.counts.size() == v.hist.counts.size()) {
          for (std::size_t i = 0; i < v.hist.counts.size(); ++i) {
            v.hist.counts[i] -= std::min(v.hist.counts[i], b.hist.counts[i]);
          }
          v.hist.count -= std::min(v.hist.count, b.hist.count);
          v.hist.sum -= std::min(v.hist.sum, b.hist.sum);
        }
        break;  // hist.max stands (not accumulative)
    }
  }
  return delta;
}

namespace {

void write_histogram_json(std::ostream& out, const HistogramValue& h) {
  out << "{\"edges\": [";
  for (std::size_t i = 0; i < h.edges.size(); ++i) {
    out << (i ? ", " : "") << h.edges[i];
  }
  out << "], \"counts\": [";
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    out << (i ? ", " : "") << h.counts[i];
  }
  out << "], \"count\": " << h.count << ", \"sum\": " << h.sum
      << ", \"max\": " << h.max << "}";
}

}  // namespace

void write_metrics_json(std::ostream& out, const Snapshot& snap, Kind kind,
                        int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  out << "{";
  bool first = true;
  for (const auto& [name, v] : snap) {
    if (v.kind != kind) continue;
    out << (first ? "\n" : ",\n") << pad << "  " << json_quote(name) << ": ";
    if (v.type == MetricValue::Type::kHistogram) {
      write_histogram_json(out, v.hist);
    } else {
      out << v.value;
    }
    first = false;
  }
  if (!first) out << "\n" << pad;
  out << "}";
}

}  // namespace dfsssp::obs
