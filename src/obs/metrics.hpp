// Deterministic metrics registry: counters, gauges, fixed-bucket histograms.
//
// Instrumented code looks metrics up by name once (function-local static
// reference) and then records through lock-free per-thread shards; readings
// merge the shards in index order. Because counters and histogram buckets
// hold integers and integer addition is associative and commutative, every
// *deterministic* metric reads identically no matter how many threads of the
// PR-1 execution layer produced it — the same contract the parallel layer
// gives result values.
//
// Metrics come in two kinds:
//   * Kind::kDeterministic (default) — derived from the work itself (cycles
//     found, paths migrated, patterns simulated). Thread-count invariant;
//     these feed the `metrics` section of the bench `--json` run reports,
//     which CI diffs across thread counts.
//   * Kind::kTiming — wall-clock or scheduling observations (queue waits,
//     scoped timers, pool chunk counts). Inherently run-dependent; exported
//     separately as `timing_metrics` and never diffed.
//
// Recording costs one relaxed atomic add on a thread-private cache line, so
// instrumentation stays in the noise even on hot paths; the hot kernels
// additionally aggregate in locals and flush once per pass (see sssp.cpp).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dfsssp::obs {

/// Per-thread shard slots per metric. Threads hash onto slots (wrapping
/// beyond kMaxShards); sharing a slot costs contention, never correctness.
inline constexpr std::size_t kMaxShards = 64;

enum class Kind : std::uint8_t {
  kDeterministic,  // thread-count invariant by construction
  kTiming,         // wall-clock / scheduling; varies run to run
};

namespace detail {

/// Stable per-thread shard index in [0, kMaxShards).
std::size_t shard_index();

struct alignas(64) Slot {
  std::atomic<std::uint64_t> v{0};
};

}  // namespace detail

/// Monotonically increasing event count. add() is wait-free on a
/// thread-private slot; value() sums the slots in index order.
class Counter {
 public:
  void add(std::uint64_t n) {
    slots_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() { add(1); }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const detail::Slot& s : slots_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  friend class Registry;
  Counter() = default;
  void reset() {
    for (detail::Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }
  std::array<detail::Slot, kMaxShards> slots_;
};

/// Last-written value. Unsharded: gauges must be set from serial code (or
/// points that are serial per the determinism contract), where last-write
/// order is well defined.
class Gauge {
 public:
  void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  Gauge() = default;
  void reset() { set(0); }
  std::atomic<std::uint64_t> v_{0};
};

/// Merged reading of a Histogram.
struct HistogramValue {
  /// Ascending inclusive upper bounds; counts[i] tallies values v with
  /// edges[i-1] < v <= edges[i]. counts.back() is the overflow bucket
  /// (v > edges.back()), so counts.size() == edges.size() + 1.
  std::vector<std::uint64_t> edges;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;  // total recorded values
  std::uint64_t sum = 0;    // sum of recorded values
  std::uint64_t max = 0;    // largest recorded value (0 when count == 0)
};

/// Fixed-bucket histogram over unsigned integer samples (counts, sizes,
/// nanoseconds). Bucket edges are fixed at creation, so merged counts are
/// exact integers and thread-count invariant for deterministic workloads.
class Histogram {
 public:
  void record(std::uint64_t v);
  HistogramValue value() const;
  const std::vector<std::uint64_t>& edges() const { return edges_; }

 private:
  friend class Registry;
  explicit Histogram(std::vector<std::uint64_t> edges);
  void reset();

  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;  // edges + overflow
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };

  std::vector<std::uint64_t> edges_;
  std::array<Shard, kMaxShards> shards_;
};

/// `start, start*factor, start*factor^2, ...` rounded to integers —
/// the usual shape for nanosecond and size histograms.
std::vector<std::uint64_t> exponential_buckets(std::uint64_t start,
                                               double factor, std::size_t n);

/// Quantile estimate from a merged histogram reading: finds the bucket
/// holding the q-th sample and interpolates linearly inside it (overflow
/// bucket reports `max`). Returns 0 when the histogram is empty. q is
/// clamped to [0, 1].
double histogram_quantile(const HistogramValue& h, double q);

/// One metric's merged reading inside a Snapshot.
struct MetricValue {
  enum class Type : std::uint8_t { kCounter, kGauge, kHistogram };
  Type type = Type::kCounter;
  Kind kind = Kind::kDeterministic;
  std::uint64_t value = 0;  // counter / gauge reading
  HistogramValue hist;      // histogram reading
};

/// Name -> merged reading; std::map so iteration (and hence JSON output)
/// is deterministic.
using Snapshot = std::map<std::string, MetricValue>;

/// Owns all metrics. Lookup by name takes a mutex (call sites cache the
/// returned reference in a function-local static); recording is lock-free.
/// Re-registering a name returns the existing metric; a name registered as
/// a different type throws std::logic_error.
class Registry {
 public:
  Counter& counter(const std::string& name,
                   Kind kind = Kind::kDeterministic);
  Gauge& gauge(const std::string& name, Kind kind = Kind::kDeterministic);
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> edges,
                       Kind kind = Kind::kDeterministic);
  /// Histogram with exponential nanosecond buckets (1us .. ~4.4min),
  /// Kind::kTiming. What ScopedTimer records into.
  Histogram& timing_histogram(const std::string& name);

  /// Merged reading of every registered metric.
  Snapshot snapshot() const;

  /// Zeroes every metric (registrations survive). Tests only; concurrent
  /// recorders make the wiped state ill-defined.
  void reset();

 private:
  struct Entry {
    Kind kind = Kind::kDeterministic;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;
};

/// The process-wide registry all instrumentation records into.
Registry& registry();

/// `after - before`, for isolating one run's contribution on the global
/// registry: counters and histogram tallies subtract; gauges and histogram
/// `max` keep the `after` reading (they are not accumulative). Metrics
/// absent from `before` pass through unchanged.
Snapshot snapshot_delta(const Snapshot& after, const Snapshot& before);

/// Writes the metrics of one kind as a JSON object:
///   {"cdg/cycles_found": 12,
///    "sim/max_congestion": {"edges": [...], "counts": [...],
///                           "count": 9, "sum": 31, "max": 7}}
/// `indent` spaces prefix every line; output ends without a newline.
void write_metrics_json(std::ostream& out, const Snapshot& snap, Kind kind,
                        int indent = 0);

}  // namespace dfsssp::obs
