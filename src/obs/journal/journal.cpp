#include "obs/journal/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/frame.hpp"

namespace dfsssp::obs::journal {
namespace {

constexpr char kMagic[4] = {'D', 'F', 'J', 'R'};
constexpr std::uint16_t kFormatVersion = 1;

// Frame payload kinds inside a DFJR segment.
constexpr std::uint8_t kFrameHeader = 1;
constexpr std::uint8_t kFrameRecord = 2;

/// FaultKind names, mirrored from fault/schedule.hpp by raw value (the
/// journal lives below the fault layer and stores the u8 wire value).
const char* fault_kind_name(std::uint8_t raw) {
  switch (raw) {
    case 0: return "link_down";
    case 1: return "link_up";
    case 2: return "switch_down";
    case 3: return "switch_up";
  }
  return "fault?";
}

/// Reads exactly `len` bytes from a regular file, resuming on EINTR.
/// Returns the byte count actually read (short only at EOF/error).
std::size_t read_fully(int fd, char* buf, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, buf + got, len - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  return got;
}

/// Wraps `kind | body` into a CRC-framed segment payload.
std::string seal_frame(std::uint8_t kind, std::string_view body) {
  std::string payload;
  payload.reserve(1 + body.size() + 4);
  wire::put_u8(payload, kind);
  payload.append(body.data(), body.size());
  wire::put_u32(payload, crc32(payload));
  return payload;
}

}  // namespace

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kRoute: return "route";
    case EventKind::kRepair: return "repair";
    case EventKind::kFaultEvent: return "fault_event";
    case EventKind::kCoalescedBatch: return "coalesced_batch";
    case EventKind::kSnapshotSwap: return "snapshot_swap";
    case EventKind::kVeto: return "veto";
  }
  return "unknown";
}

bool known_kind(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(EventKind::kRoute) &&
         raw <= static_cast<std::uint8_t>(EventKind::kVeto);
}

std::uint32_t crc32(std::string_view data) {
  // IEEE 802.3 reflected polynomial, table built on first use.
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<std::uint8_t>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void encode_record(std::string& out, const Record& r) {
  wire::put_u64(out, r.seq);
  wire::put_u64(out, r.logical_ts);
  wire::put_u8(out, static_cast<std::uint8_t>(r.kind));
  wire::put_u8(out, r.fault_kind);
  wire::put_u8(out, r.layers);
  wire::put_u8(out, r.flags);
  wire::put_u32(out, r.channel);
  wire::put_u32(out, r.sw);
  wire::put_u32(out, r.count);
  wire::put_u32(out, r.destinations_rerouted);
  wire::put_u64(out, r.version_before);
  wire::put_u64(out, r.version_after);
  wire::put_u64(out, r.paths);
  wire::put_u64(out, r.table_digest);
  wire::put_u64(out, r.cert_digest);
  wire::put_u64(out, r.latency_ns);
  wire::put_u16(out, r.req_max_layers);
  // The format doc (docs/file-formats.md) and kRecordBytes both promise
  // this exact size; a drifted field list should fail loudly in tests.
  static_assert(kRecordBytes == 8 + 8 + 4 + 4 * 4 + 6 * 8 + 2);
}

bool decode_record(wire::Reader& r, Record& out) {
  out = Record{};
  std::uint8_t kind = 0;
  if (!r.get_u64(out.seq) || !r.get_u64(out.logical_ts) || !r.get_u8(kind) ||
      !r.get_u8(out.fault_kind) || !r.get_u8(out.layers) ||
      !r.get_u8(out.flags) || !r.get_u32(out.channel) || !r.get_u32(out.sw) ||
      !r.get_u32(out.count) || !r.get_u32(out.destinations_rerouted) ||
      !r.get_u64(out.version_before) || !r.get_u64(out.version_after) ||
      !r.get_u64(out.paths) || !r.get_u64(out.table_digest) ||
      !r.get_u64(out.cert_digest) || !r.get_u64(out.latency_ns) ||
      !r.get_u16(out.req_max_layers)) {
    return false;
  }
  if (!known_kind(kind)) return false;
  out.kind = static_cast<EventKind>(kind);
  return true;
}

std::string describe(const Record& r) {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof buf, "#%llu ts=%llu %-15s",
                static_cast<unsigned long long>(r.seq),
                static_cast<unsigned long long>(r.logical_ts),
                to_string(r.kind));
  out += buf;
  switch (r.kind) {
    case EventKind::kRoute:
    case EventKind::kRepair: {
      std::string flags;
      flags += (r.flags & kFlagOk) != 0 ? "ok" : "failed";
      if ((r.flags & kFlagIncremental) != 0) flags += ",incr";
      if ((r.flags & kFlagFallback) != 0) flags += ",fallback";
      std::snprintf(buf, sizeof buf, " %s v%llu->%llu layers=%u paths=%llu",
                    flags.c_str(),
                    static_cast<unsigned long long>(r.version_before),
                    static_cast<unsigned long long>(r.version_after),
                    unsigned{r.layers},
                    static_cast<unsigned long long>(r.paths));
      out += buf;
      if (r.kind == EventKind::kRepair) {
        std::snprintf(buf, sizeof buf, " coalesced=%u rerouted=%u", r.count,
                      r.destinations_rerouted);
        out += buf;
      } else {
        std::snprintf(buf, sizeof buf, " max_layers=%u",
                      unsigned{r.req_max_layers});
        out += buf;
      }
      std::snprintf(buf, sizeof buf,
                    " table=%016llx cert=%016llx %.2fms",
                    static_cast<unsigned long long>(r.table_digest),
                    static_cast<unsigned long long>(r.cert_digest),
                    static_cast<double>(r.latency_ns) / 1e6);
      out += buf;
      break;
    }
    case EventKind::kFaultEvent:
      std::snprintf(buf, sizeof buf, " %s ch=%u sw=%u pending=%u",
                    fault_kind_name(r.fault_kind), r.channel, r.sw, r.count);
      out += buf;
      break;
    case EventKind::kCoalescedBatch:
      std::snprintf(buf, sizeof buf, " events=%u v%llu", r.count,
                    static_cast<unsigned long long>(r.version_before));
      out += buf;
      break;
    case EventKind::kSnapshotSwap:
      std::snprintf(buf, sizeof buf,
                    " v%llu->%llu layers=%u paths=%llu table=%016llx",
                    static_cast<unsigned long long>(r.version_before),
                    static_cast<unsigned long long>(r.version_after),
                    unsigned{r.layers},
                    static_cast<unsigned long long>(r.paths),
                    static_cast<unsigned long long>(r.table_digest));
      out += buf;
      break;
    case EventKind::kVeto:
      std::snprintf(buf, sizeof buf, " vetoed=%u", r.count);
      out += buf;
      break;
  }
  return out;
}

Journal::Journal(Options opts)
    : opts_(std::move(opts)),
      ring_(opts_.capacity > 0 ? opts_.capacity : 1),
      appended_((opts_.metrics != nullptr ? *opts_.metrics : registry())
                    .counter("journal/records_appended")),
      dropped_((opts_.metrics != nullptr ? *opts_.metrics : registry())
                   .counter("journal/records_dropped")),
      bytes_written_((opts_.metrics != nullptr ? *opts_.metrics : registry())
                         .counter("journal/bytes_written")),
      sink_errors_((opts_.metrics != nullptr ? *opts_.metrics : registry())
                       .counter("journal/sink_errors")) {
  if (opts_.capacity == 0) opts_.capacity = 1;
  if (opts_.path.empty()) return;
  fd_ = ::open(opts_.path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    sink_failed_ = true;
    error_ = "open " + opts_.path + ": " + std::strerror(errno);
    sink_errors_.inc();
    return;
  }
  // Preamble (unframed): magic + format version.
  std::string preamble(kMagic, sizeof kMagic);
  wire::put_u16(preamble, kFormatVersion);
  std::string header;
  wire::put_str(header, opts_.topo_config);
  wire::put_str(header, opts_.engine);
  wire::put_u16(header, opts_.max_layers);
  wire::put_u16(header, kRecordBytes);
  const std::string frame = seal_frame(kFrameHeader, header);
  const bool wrote = [&] {
    std::size_t sent = 0;
    while (sent < preamble.size()) {
      const ssize_t n =
          ::write(fd_, preamble.data() + sent, preamble.size() - sent);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return write_frame(fd_, frame);
  }();
  if (!wrote) {
    sink_failed_ = true;
    error_ = "write " + opts_.path + ": " + std::strerror(errno);
    sink_errors_.inc();
    ::close(fd_);
    fd_ = -1;
    return;
  }
  disk_bytes_ = preamble.size() + 4 + frame.size();
  bytes_written_.add(disk_bytes_);
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint64_t Journal::append(Record r) {
  std::lock_guard<std::mutex> lock(mu_);
  r.seq = next_seq_++;
  const std::uint32_t capacity = opts_.capacity;
  if (r.seq > capacity) {
    dropped_.inc();  // the slot we are about to overwrite falls out
  }
  const auto raw = static_cast<std::uint8_t>(r.kind);
  if (raw < 7) by_kind_[raw]++;
  ring_[static_cast<std::size_t>((r.seq - 1) % capacity)] = r;
  appended_.inc();

  if (fd_ >= 0 && !sink_failed_) {
    std::string body;
    body.reserve(kRecordBytes);
    encode_record(body, r);
    const std::string frame = seal_frame(kFrameRecord, body);
    if (write_frame(fd_, frame)) {
      disk_bytes_ += 4 + frame.size();
      bytes_written_.add(4 + frame.size());
    } else {
      // First failure wins; stop writing rather than interleave garbage.
      sink_failed_ = true;
      error_ = "write " + opts_.path + ": " + std::strerror(errno);
      sink_errors_.inc();
    }
  }
  return r.seq;
}

std::uint64_t Journal::tail(std::uint64_t from_seq, std::uint32_t max,
                            std::uint8_t kind_filter,
                            std::vector<Record>& out) const {
  out.clear();
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint32_t capacity = opts_.capacity;
  const std::uint64_t appended = next_seq_ - 1;
  std::uint64_t first_live = appended > capacity ? next_seq_ - capacity : 1;
  std::uint64_t cursor = from_seq > first_live ? from_seq : first_live;
  if (cursor < 1) cursor = 1;
  while (cursor < next_seq_) {
    if (max != 0 && out.size() >= max) break;
    const Record& rec = ring_[static_cast<std::size_t>((cursor - 1) %
                                                       capacity)];
    if (kind_filter == 0 ||
        static_cast<std::uint8_t>(rec.kind) == kind_filter) {
      out.push_back(rec);
    }
    ++cursor;
  }
  return cursor;
}

JournalStats Journal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  JournalStats s;
  s.next_seq = next_seq_;
  s.appended = next_seq_ - 1;
  s.capacity = opts_.capacity;
  s.size = static_cast<std::uint32_t>(
      s.appended < s.capacity ? s.appended : s.capacity);
  s.dropped = s.appended - s.size;
  for (int i = 0; i < 7; ++i) s.by_kind[i] = by_kind_[i];
  s.disk_bytes = disk_bytes_;
  s.sink_open = fd_ >= 0 && !sink_failed_;
  s.sink_failed = sink_failed_;
  s.sink_path = opts_.path;
  return s;
}

bool Journal::sink_ok() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !sink_failed_;
}

std::string Journal::error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

bool read_journal(const std::string& path, JournalFile& out,
                  std::string& error) {
  out = JournalFile{};
  error.clear();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    error = "open " + path + ": " + std::strerror(errno);
    return false;
  }
  char preamble[6];
  if (read_fully(fd, preamble, sizeof preamble) != sizeof preamble ||
      std::memcmp(preamble, kMagic, sizeof kMagic) != 0) {
    error = path + ": not a DFJR journal (bad magic)";
    ::close(fd);
    return false;
  }
  const std::uint16_t version =
      static_cast<std::uint16_t>(static_cast<std::uint8_t>(preamble[4])) |
      static_cast<std::uint16_t>(
          static_cast<std::uint16_t>(static_cast<std::uint8_t>(preamble[5]))
          << 8);
  if (version != kFormatVersion) {
    error = path + ": unsupported DFJR format version " +
            std::to_string(version);
    ::close(fd);
    return false;
  }

  bool saw_header = false;
  std::string payload;
  for (;;) {
    const FrameResult fr = read_frame(fd, payload);
    if (fr == FrameResult::kEof) break;
    if (fr == FrameResult::kError) {
      // Mid-frame EOF: a crash truncated the final append. The complete
      // prefix is intact and usable.
      out.truncated_tail = true;
      break;
    }
    if (fr != FrameResult::kFrame) {
      error = path + ": oversized or unreadable frame";
      ::close(fd);
      return false;
    }
    if (payload.size() < 5) {
      error = path + ": frame too short for kind+crc";
      ::close(fd);
      return false;
    }
    const std::string_view sealed(payload);
    const std::string_view body_and_kind = sealed.substr(0, sealed.size() - 4);
    wire::Reader crc_reader{sealed.substr(sealed.size() - 4)};
    std::uint32_t stored_crc = 0;
    crc_reader.get_u32(stored_crc);
    if (crc32(body_and_kind) != stored_crc) {
      error = path + ": CRC mismatch in frame after record " +
              std::to_string(out.records.size());
      ::close(fd);
      return false;
    }
    wire::Reader r{body_and_kind};
    std::uint8_t frame_kind = 0;
    r.get_u8(frame_kind);
    if (!saw_header) {
      if (frame_kind != kFrameHeader) {
        error = path + ": first frame is not the journal header";
        ::close(fd);
        return false;
      }
      std::uint16_t record_bytes = 0;
      if (!r.get_str(out.topo_config) || !r.get_str(out.engine) ||
          !r.get_u16(out.max_layers) || !r.get_u16(record_bytes)) {
        error = path + ": malformed journal header";
        ::close(fd);
        return false;
      }
      if (record_bytes < kRecordBytes) {
        error = path + ": header record_bytes " +
                std::to_string(record_bytes) + " below this build's " +
                std::to_string(kRecordBytes);
        ::close(fd);
        return false;
      }
      out.record_bytes = record_bytes;
      saw_header = true;
      continue;
    }
    if (frame_kind != kFrameRecord) {
      error = path + ": unknown frame kind " + std::to_string(frame_kind);
      ::close(fd);
      return false;
    }
    Record rec;
    if (!decode_record(r, rec)) {
      error = path + ": malformed record after " +
              std::to_string(out.records.size()) + " records";
      ::close(fd);
      return false;
    }
    // Records written by a future minor format may carry trailing fields
    // (record_bytes > kRecordBytes); skip them.
    out.records.push_back(rec);
  }
  ::close(fd);
  if (!saw_header) {
    error = path + ": empty journal (no header frame)";
    return false;
  }
  return true;
}

}  // namespace dfsssp::obs::journal
