// Flight recorder for the routing service: a bounded, deterministic event
// journal every ServiceCore mutation flows through.
//
// One fixed-size binary record per event (kRecordBytes, codec in
// common/wire.hpp). Records carry a monotonic sequence number, a logical
// timestamp (the core's mutation clock — every record emitted by one
// request shares a tick, which is what lets dfreplay group a stream back
// into transactions), the event kind, and a structured payload: fault
// channel/switch ids, snapshot version before/after, layer count, FNV-1a
// digests of the published forwarding table and its deadlock-freedom
// certificate, and the request's wall-clock latency. Everything except
// latency_ns is deterministic — replaying the same mutation sequence on a
// fresh core reproduces the same records bit for bit (latency excluded),
// and `dfreplay --verify` holds the daemon to exactly that.
//
// Storage is two-tier:
//   * an in-memory ring of the last `capacity` records, served live over
//     the wire via the journal_tail envelope kind (dfroutectl tail);
//   * optionally an append-only on-disk segment ("DFJR", format in
//     docs/file-formats.md): CRC-framed records written through the common
//     frame layer, so a crash mid-write costs at most the final frame
//     (readers tolerate a truncated tail, never a bad CRC).
//
// The recorder is deliberately cheap: appending is one mutex-protected
// ring store plus, when a sink is open, one buffered frame write. Lookups
// are NOT journaled — they mutate nothing, and the recorder must not tax
// the lock-free lookup path.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/wire.hpp"
#include "obs/metrics.hpp"

namespace dfsssp::obs::journal {

enum class EventKind : std::uint8_t {
  kRoute = 1,           // from-scratch recompute completed
  kRepair = 2,          // repair request completed (incremental or full)
  kFaultEvent = 3,      // one fault event accepted into the pending batch
  kCoalescedBatch = 4,  // a repair drained N pending events into one delta
  kSnapshotSwap = 5,    // a new forwarding snapshot generation published
  kVeto = 6,            // events rejected by the partition guard
};

const char* to_string(EventKind kind);
bool known_kind(std::uint8_t raw);

/// Encoded size of one record; the on-disk header repeats it so future
/// formats can grow records by appending fields (readers skip the excess).
inline constexpr std::uint16_t kRecordBytes = 86;

// Record.flags bits.
inline constexpr std::uint8_t kFlagOk = 1;           // request succeeded
inline constexpr std::uint8_t kFlagIncremental = 2;  // repair was incremental
inline constexpr std::uint8_t kFlagFallback = 4;     // full-recompute fallback

/// One journal event. `count` is kind-dependent: pending queue depth after
/// a fault_event, batch size for coalesced_batch, events_coalesced for a
/// repair, vetoed-event count for a veto.
struct Record {
  std::uint64_t seq = 0;         // assigned by Journal::append, starts at 1
  std::uint64_t logical_ts = 0;  // core mutation clock; shared per request
  EventKind kind = EventKind::kRoute;
  std::uint8_t fault_kind = 0;  // fault_event: FaultKind as u8
  std::uint8_t layers = 0;      // layer count of the (new) snapshot
  std::uint8_t flags = 0;
  std::uint32_t channel = 0;  // fault_event: channel id (link faults)
  std::uint32_t sw = 0;       // fault_event: switch id (switch faults)
  std::uint32_t count = 0;    // kind-dependent, see above
  std::uint32_t destinations_rerouted = 0;  // repair
  std::uint64_t version_before = 0;  // snapshot version when work started
  std::uint64_t version_after = 0;   // snapshot version when it finished
  std::uint64_t paths = 0;           // paths in the (new) snapshot
  std::uint64_t table_digest = 0;    // FNV-1a of the forwarding table
  std::uint64_t cert_digest = 0;     // FNV-1a of the certificate orders
  std::uint64_t latency_ns = 0;      // wall clock; excluded from verify
  std::uint16_t req_max_layers = 0;  // route: the request's layer budget
};

/// Appends exactly kRecordBytes to `out`.
void encode_record(std::string& out, const Record& r);
/// False when fewer than kRecordBytes remain at the cursor.
bool decode_record(wire::Reader& r, Record& out);

/// One-line human rendering, e.g. for `dfroutectl tail` / `dfreplay dump`:
///   #12 ts=5 repair ok,incr layers=3 coalesced=4 rerouted=118 v4->v5
///   paths=9216 table=0f3a.. cert=77b1.. 1.24ms
std::string describe(const Record& r);

/// IEEE 802.3 CRC-32 (the zlib polynomial), table-driven.
std::uint32_t crc32(std::string_view data);

/// Point-in-time counters of one Journal.
struct JournalStats {
  std::uint64_t next_seq = 1;  // seq the next append will get
  std::uint64_t appended = 0;  // total records ever appended
  std::uint64_t dropped = 0;   // records overwritten out of the ring
  std::uint32_t size = 0;      // records currently held in the ring
  std::uint32_t capacity = 0;
  std::uint64_t by_kind[7] = {0, 0, 0, 0, 0, 0, 0};  // indexed by raw kind
  std::uint64_t disk_bytes = 0;  // bytes written to the sink (0 = no sink)
  bool sink_open = false;
  bool sink_failed = false;
  std::string sink_path;  // empty when memory-only
};

/// The recorder. Thread-safe; ServiceCore appends under its engine mutex
/// anyway, but `tail`/`stats` arrive from lookup-path connection threads.
class Journal {
 public:
  struct Options {
    std::uint32_t capacity = 8192;  // ring size, records
    std::string path;               // on-disk segment; empty = memory-only
    // Header metadata, so a segment is self-describing for dfreplay:
    std::string topo_config;  // configs.hpp registry key or kary-tree:K:N
    std::string engine;       // routing engine registry key
    std::uint16_t max_layers = 0;  // the core's default layer budget
    Registry* metrics = nullptr;   // nullptr = process-global registry()
  };

  explicit Journal(Options opts);
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Assigns the next sequence number, stores the record in the ring, and
  /// appends a CRC frame to the sink (if open). Returns the assigned seq.
  std::uint64_t append(Record r);

  /// Copies records with seq >= from_seq (and kind == kind_filter, when
  /// non-zero) into `out`, at most `max` of them. Returns the seq to
  /// resume from: pass it as the next call's from_seq to stream without
  /// gaps or duplicates. Records that fell out of the ring are silently
  /// skipped (the gap shows in the seq numbers).
  std::uint64_t tail(std::uint64_t from_seq, std::uint32_t max,
                     std::uint8_t kind_filter, std::vector<Record>& out) const;

  JournalStats stats() const;

  /// False when the sink failed to open or a write failed; `error` says
  /// why. The ring keeps recording either way.
  bool sink_ok() const;
  std::string error() const;

 private:
  mutable std::mutex mu_;
  Options opts_;
  std::vector<Record> ring_;      // slot = (seq - 1) % capacity
  std::uint64_t next_seq_ = 1;    // guarded by mu_
  std::uint64_t by_kind_[7] = {0, 0, 0, 0, 0, 0, 0};
  int fd_ = -1;
  std::uint64_t disk_bytes_ = 0;
  bool sink_failed_ = false;
  std::string error_;

  Counter& appended_;
  Counter& dropped_;
  Counter& bytes_written_;
  Counter& sink_errors_;
};

/// A fully parsed on-disk journal segment.
struct JournalFile {
  std::string topo_config;
  std::string engine;
  std::uint16_t max_layers = 0;
  std::uint16_t record_bytes = kRecordBytes;
  std::vector<Record> records;
  /// True when the file ended mid-frame (crash during the final append).
  /// The complete prefix is still in `records`; a CRC mismatch, by
  /// contrast, is a hard error.
  bool truncated_tail = false;
};

/// Reads a DFJR segment. False (with `error` set) on open failure, bad
/// magic, unsupported format version, missing header, or CRC mismatch.
bool read_journal(const std::string& path, JournalFile& out,
                  std::string& error);

}  // namespace dfsssp::obs::journal
