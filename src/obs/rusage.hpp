// Process resource readings for run reports. Hoisted out of the warehouse
// bench so every bench's --json report can carry a peak-RSS gauge.
#pragma once

#include <cstdint>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace dfsssp::obs {

/// Peak resident set size of the calling process in bytes, 0 when the
/// platform offers no reading. Monotonic over the process lifetime (the
/// kernel high-water mark), so "after phase X" samples are upper bounds.
inline std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  return static_cast<std::uint64_t>(ru.ru_maxrss);
#else
  // Linux reports ru_maxrss in KiB.
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

}  // namespace dfsssp::obs
