#include "obs/report/build_info.hpp"

#ifndef DFS_GIT_REV
#define DFS_GIT_REV "unknown"
#endif
#ifndef DFS_BUILD_FLAGS
#define DFS_BUILD_FLAGS "unknown"
#endif

namespace dfsssp::obs {

const char* git_rev() { return DFS_GIT_REV; }

const char* build_flags() { return DFS_BUILD_FLAGS; }

}  // namespace dfsssp::obs
