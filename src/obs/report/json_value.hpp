// Minimal JSON document model with a recursive-descent parser and a
// writer, used by the run-report library (obs/report) to read back the
// documents the repo's hand-rolled emitters produce (bench --json reports,
// dfcheck reports, google-benchmark output).
//
// Deliberately small: no SAX interface, no allocator tuning, no NaN/Inf
// extensions. Integers that fit int64 are kept exactly (metric counters go
// far beyond 2^53, where doubles lose integer precision); other numbers are
// doubles and re-serialize via shortest-round-trip formatting, so
// parse(dump(v)) == v holds for every document the repo emits.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dfsssp::obs {

class JsonValue {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  /// Object members as an ordered list: emission order is preserved on
  /// round trip, while find() and operator== treat keys as a map (object
  /// keys are unique in every document this repo produces).
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  // null
  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool b);
  static JsonValue number(double d);
  static JsonValue integer(std::int64_t i);
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  /// Parses one JSON document (trailing non-whitespace is an error).
  /// Throws std::runtime_error with a byte offset on malformed input.
  static JsonValue parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  /// True for numbers written without '.', 'e' and representable in int64.
  bool is_integer() const { return type_ == Type::kNumber && is_int_; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;  // throws unless is_integer()
  /// Integer reading clamped into uint64 semantics for metric values.
  std::uint64_t as_uint() const;
  const std::string& as_string() const;

  std::vector<JsonValue>& items();              // array elements
  const std::vector<JsonValue>& items() const;
  std::vector<Member>& members();               // object members
  const std::vector<Member>& members() const;

  /// First member with `key`, or nullptr. Objects only.
  const JsonValue* find(std::string_view key) const;
  /// find() that throws std::runtime_error when the key is absent.
  const JsonValue& at(std::string_view key) const;
  bool contains(std::string_view key) const { return find(key) != nullptr; }

  /// Appends to an array.
  JsonValue& push_back(JsonValue v);
  /// Sets (or replaces) an object member; returns the stored value.
  JsonValue& set(std::string key, JsonValue v);

  std::size_t size() const;  // array/object element count, else 0

  /// Structural equality. Object comparison is key-based (order
  /// insensitive); numbers compare exactly (integer vs integer by value,
  /// anything else by bit-identical double).
  friend bool operator==(const JsonValue& a, const JsonValue& b);
  friend bool operator!=(const JsonValue& a, const JsonValue& b) {
    return !(a == b);
  }

  /// Serializes with 2-space indentation per `depth`; scalars and empty
  /// containers stay inline. Output ends without a newline.
  void write(std::ostream& out, int depth = 0) const;
  std::string dump() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  bool is_int_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

}  // namespace dfsssp::obs
