// Noise-aware baseline comparison for run reports — the dfbench regression
// gate.
//
// Two regimes, matching the two metric kinds:
//   * deterministic quality metrics (the `metrics` section, plus `tables`
//     when both sides declare them deterministic): compared for EXACT
//     equality. These are bitwise-stable at any --threads=N by the repo's
//     determinism contract, so any difference is a real behavior change —
//     there is no noise to allow for. A changed value is REGRESSED
//     regardless of direction (fewer layers might be an improvement, but
//     the gate cannot know; a human refreshes the baseline deliberately).
//   * timing stats: |run - baseline| medians compared against a threshold
//     of max(mad_k * kMadToSigma * baseline MAD,
//             rel_epsilon * baseline median, abs_epsilon_ms).
//     The MAD term adapts to each timing's measured noise; the relative
//     and absolute floors keep the zero-MAD case (single repetition, or a
//     perfectly repeatable phase) from gating on sub-noise deltas.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/report/report.hpp"

namespace dfsssp::obs {

enum class Verdict : std::uint8_t {
  kPass,       // unchanged (exact for quality, within noise for timing)
  kImproved,   // timing median dropped below the noise threshold
  kRegressed,  // quality drift, or timing median rose above the threshold
  kNew,        // present in the run but not in the baseline
  kMissing,    // present in the baseline but gone from the run
};

const char* to_string(Verdict v);

struct CompareOptions {
  /// Timing threshold in MAD-sigmas (MAD * kMadToSigma approximates one
  /// standard deviation).
  double mad_k = 3.0;
  /// Relative floor on the timing threshold (fraction of baseline median).
  double rel_epsilon = 0.10;
  /// Absolute floor on the timing threshold, milliseconds.
  double abs_epsilon_ms = 0.5;
  /// When true, timing regressions fail the gate too. Off by default:
  /// committed baselines travel across machines (laptop -> CI runner),
  /// where absolute wall clock is incomparable; quality metrics are not.
  bool fail_on_timing = false;
};

struct Finding {
  std::string metric;       // "dfsssp/layers_used", "tables", "bench/wall_ms"
  Verdict verdict = Verdict::kPass;
  bool deterministic = true;  // quality-gate finding vs timing finding
  std::string baseline;       // rendered baseline value ("-" when absent)
  std::string run;            // rendered run value
  std::string note;           // threshold / delta detail for timing rows
};

struct CompareResult {
  std::vector<Finding> findings;     // every comparison, PASS rows included
  std::uint32_t quality_drift = 0;   // deterministic REGRESSED + MISSING
  std::uint32_t timing_regressions = 0;
  std::uint32_t timing_improvements = 0;
  std::uint32_t new_metrics = 0;

  /// The gate: quality drift always fails; timing regressions fail only
  /// under opts.fail_on_timing.
  bool gate_ok(const CompareOptions& opts) const {
    return quality_drift == 0 &&
           (!opts.fail_on_timing || timing_regressions == 0);
  }
};

CompareResult compare_reports(const RunReport& baseline, const RunReport& run,
                              const CompareOptions& opts = {});

}  // namespace dfsssp::obs
