#include "obs/report/report.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/report/stats.hpp"

namespace dfsssp::obs {

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open report: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

double get_double_or(const JsonValue& obj, std::string_view key,
                     double fallback) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->as_double() : fallback;
}

}  // namespace

RunReport parse_run_report(const std::string& text) {
  const JsonValue doc = JsonValue::parse(text);
  if (!doc.is_object()) throw std::runtime_error("run report is not an object");

  RunReport r;
  const JsonValue* version = doc.find("schema_version");
  r.schema_version = version != nullptr ? static_cast<int>(version->as_int())
                                        : 1;
  if (r.schema_version < 1 || r.schema_version > kReportSchemaVersion) {
    throw std::runtime_error("unsupported run-report schema_version " +
                             std::to_string(r.schema_version));
  }
  r.bench = doc.at("bench").as_string();
  if (const JsonValue* v = doc.find("git_rev")) r.git_rev = v->as_string();
  if (const JsonValue* v = doc.find("build_flags")) {
    r.build_flags = v->as_string();
  }
  if (const JsonValue* v = doc.find("repetitions")) {
    r.repetitions = static_cast<std::uint32_t>(v->as_uint());
  }
  if (const JsonValue* v = doc.find("tables_deterministic")) {
    r.tables_deterministic = v->as_bool();
  } else if (r.schema_version == 1) {
    // Schema 1 predates the flag and fig7/fig8-style reports embed wall
    // clock in their cells; never treat v1 tables as gateable.
    r.tables_deterministic = false;
  }
  if (const JsonValue* v = doc.find("config")) r.config = *v;
  r.wall_seconds = get_double_or(doc, "wall_seconds", 0.0);
  if (const JsonValue* v = doc.find("tables")) r.tables = *v;
  if (const JsonValue* v = doc.find("metrics")) r.metrics = *v;
  if (const JsonValue* v = doc.find("timing_metrics")) r.timing_metrics = *v;
  if (const JsonValue* v = doc.find("timing_stats")) {
    for (const JsonValue::Member& m : v->members()) {
      TimingStat st;
      st.median_ms = get_double_or(m.second, "median_ms", 0.0);
      st.mad_ms = get_double_or(m.second, "mad_ms", 0.0);
      st.reps = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(get_double_or(m.second, "reps", 1)));
      r.timing_stats.emplace(m.first, st);
    }
  }
  if (const JsonValue* v = doc.find("profile")) r.profile = *v;
  if (r.schema_version == 1) derive_timing_stats(r);
  // Reader upgrades in place: v1 gains derived timing_stats, v1/v2 keep the
  // default empty profile section.
  r.schema_version = kReportSchemaVersion;
  return r;
}

RunReport read_run_report(const std::string& path) {
  try {
    return parse_run_report(read_file(path));
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

void write_run_report(const RunReport& report, std::ostream& out) {
  JsonValue doc = JsonValue::object();
  doc.set("schema_version", JsonValue::integer(kReportSchemaVersion));
  doc.set("bench", JsonValue::string(report.bench));
  doc.set("git_rev", JsonValue::string(report.git_rev));
  doc.set("build_flags", JsonValue::string(report.build_flags));
  doc.set("repetitions",
          JsonValue::integer(static_cast<std::int64_t>(report.repetitions)));
  doc.set("tables_deterministic",
          JsonValue::boolean(report.tables_deterministic));
  doc.set("config", report.config);
  doc.set("wall_seconds", JsonValue::number(report.wall_seconds));
  doc.set("tables", report.tables);
  doc.set("metrics", report.metrics);
  doc.set("timing_metrics", report.timing_metrics);
  JsonValue stats = JsonValue::object();
  for (const auto& [name, st] : report.timing_stats) {
    JsonValue entry = JsonValue::object();
    entry.set("median_ms", JsonValue::number(st.median_ms));
    entry.set("mad_ms", JsonValue::number(st.mad_ms));
    entry.set("reps", JsonValue::integer(static_cast<std::int64_t>(st.reps)));
    stats.set(name, std::move(entry));
  }
  doc.set("timing_stats", std::move(stats));
  doc.set("profile", report.profile);
  doc.write(out);
  out << "\n";
}

void write_run_report(const RunReport& report, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open report output: " + path);
  write_run_report(report, out);
}

void derive_timing_stats(RunReport& report) {
  if (report.timing_metrics.is_object()) {
    for (const JsonValue::Member& m : report.timing_metrics.members()) {
      if (report.timing_stats.count(m.first) != 0) continue;
      if (!m.second.is_object()) continue;
      const JsonValue* sum = m.second.find("sum");
      if (sum == nullptr || !sum->is_number()) continue;
      TimingStat st;
      st.median_ms = sum->as_double() / 1e6;  // summed nanoseconds
      st.mad_ms = 0.0;
      st.reps = 1;
      report.timing_stats.emplace(m.first, st);
    }
  }
  if (report.timing_stats.count("bench/wall_ms") == 0) {
    TimingStat st;
    st.median_ms = report.wall_seconds * 1e3;
    st.mad_ms = 0.0;
    st.reps = 1;
    report.timing_stats.emplace("bench/wall_ms", st);
  }
}

RunReport aggregate_runs(const std::vector<RunReport>& reps) {
  if (reps.empty()) throw std::runtime_error("aggregate_runs: no repetitions");
  RunReport out = reps.front();
  out.repetitions = static_cast<std::uint32_t>(reps.size());
  for (std::size_t i = 1; i < reps.size(); ++i) {
    const RunReport& r = reps[i];
    if (r.bench != out.bench) {
      throw std::runtime_error("aggregate_runs: bench name differs ('" +
                               out.bench + "' vs '" + r.bench + "')");
    }
    if (!(r.config == out.config)) {
      throw std::runtime_error("aggregate_runs: config differs between "
                               "repetitions of " + out.bench);
    }
    if (!(r.metrics == out.metrics)) {
      throw std::runtime_error(
          "aggregate_runs: deterministic metrics differ between identical "
          "invocations of " + out.bench +
          " — the bench violates the determinism contract");
    }
    if (out.tables_deterministic && r.tables_deterministic &&
        !(r.tables == out.tables)) {
      throw std::runtime_error(
          "aggregate_runs: deterministic tables differ between identical "
          "invocations of " + out.bench);
    }
    if (!(r.profile == out.profile)) {
      throw std::runtime_error(
          "aggregate_runs: deterministic profile sections differ between "
          "identical invocations of " + out.bench +
          " — span attribution violates the determinism contract");
    }
  }

  // Per timing quantity: one sample per repetition (that repetition's
  // median — a plain value for single-rep inputs), then median/MAD across.
  std::map<std::string, std::vector<double>> samples;
  std::vector<double> wall_ms;
  for (const RunReport& r : reps) {
    RunReport derived = r;
    derive_timing_stats(derived);
    for (const auto& [name, st] : derived.timing_stats) {
      samples[name].push_back(st.median_ms);
    }
    wall_ms.push_back(r.wall_seconds * 1e3);
  }
  out.timing_stats.clear();
  for (auto& [name, vals] : samples) {
    TimingStat st;
    st.median_ms = median(vals);
    st.mad_ms = mad(vals, st.median_ms);
    st.reps = static_cast<std::uint32_t>(vals.size());
    out.timing_stats.emplace(name, st);
  }
  out.wall_seconds = median(wall_ms) / 1e3;
  return out;
}

JsonValue profile_to_json(const Profile& profile) {
  JsonValue out = JsonValue::array();
  for (const ProfileNode& n : profile.nodes) {
    JsonValue node = JsonValue::object();
    node.set("path", JsonValue::string(n.path));
    node.set("invocations",
             JsonValue::integer(static_cast<std::int64_t>(n.invocations)));
    JsonValue counters = JsonValue::object();
    for (const auto& [name, value] : n.counters) {
      counters.set(name, JsonValue::integer(static_cast<std::int64_t>(value)));
    }
    node.set("counters", std::move(counters));
    out.push_back(std::move(node));
  }
  return out;
}

void profile_timing_stats(const Profile& profile,
                          std::map<std::string, TimingStat>& out) {
  for (const ProfileNode& n : profile.nodes) {
    TimingStat total;
    total.median_ms = static_cast<double>(n.total_ns) / 1e6;
    out["prof/" + n.path + "/total_ms"] = total;
    TimingStat self;
    self.median_ms = static_cast<double>(n.self_ns) / 1e6;
    out["prof/" + n.path + "/self_ms"] = self;
  }
}

JsonValue metrics_to_json(const Snapshot& snap, Kind kind) {
  JsonValue out = JsonValue::object();
  for (const auto& [name, v] : snap) {
    if (v.kind != kind) continue;
    if (v.type == MetricValue::Type::kHistogram) {
      JsonValue h = JsonValue::object();
      JsonValue edges = JsonValue::array();
      for (std::uint64_t e : v.hist.edges) {
        edges.push_back(JsonValue::integer(static_cast<std::int64_t>(e)));
      }
      JsonValue counts = JsonValue::array();
      for (std::uint64_t c : v.hist.counts) {
        counts.push_back(JsonValue::integer(static_cast<std::int64_t>(c)));
      }
      h.set("edges", std::move(edges));
      h.set("counts", std::move(counts));
      h.set("count",
            JsonValue::integer(static_cast<std::int64_t>(v.hist.count)));
      h.set("sum", JsonValue::integer(static_cast<std::int64_t>(v.hist.sum)));
      h.set("max", JsonValue::integer(static_cast<std::int64_t>(v.hist.max)));
      out.set(name, std::move(h));
    } else {
      out.set(name, JsonValue::integer(static_cast<std::int64_t>(v.value)));
    }
  }
  return out;
}

}  // namespace dfsssp::obs
