#include "obs/report/compare.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "obs/report/stats.hpp"

namespace dfsssp::obs {

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kPass: return "PASS";
    case Verdict::kImproved: return "IMPROVED";
    case Verdict::kRegressed: return "REGRESSED";
    case Verdict::kNew: return "NEW";
    case Verdict::kMissing: return "MISSING";
  }
  return "?";
}

namespace {

std::string render(const JsonValue& v) {
  if (v.is_object() && v.contains("count") && v.contains("sum")) {
    // Histograms render as their invariants, not the full bucket vector.
    return "hist{count=" + v.at("count").dump() + ", sum=" +
           v.at("sum").dump() + ", max=" + v.at("max").dump() + "}";
  }
  std::string s = v.dump();
  if (s.size() > 48) s = s.substr(0, 45) + "...";
  return s;
}

std::string render_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f ms", ms);
  return buf;
}

}  // namespace

CompareResult compare_reports(const RunReport& baseline, const RunReport& run,
                              const CompareOptions& opts) {
  CompareResult out;

  // ---- deterministic quality metrics: exact equality --------------------
  if (baseline.metrics.is_object() && run.metrics.is_object()) {
    for (const JsonValue::Member& m : baseline.metrics.members()) {
      Finding f;
      f.metric = m.first;
      f.baseline = render(m.second);
      const JsonValue* other = run.metrics.find(m.first);
      if (other == nullptr) {
        f.verdict = Verdict::kMissing;
        f.run = "-";
        f.note = "metric disappeared from the run";
        ++out.quality_drift;
      } else if (m.second == *other) {
        f.verdict = Verdict::kPass;
        f.run = f.baseline;
      } else {
        f.verdict = Verdict::kRegressed;
        f.run = render(*other);
        f.note = "deterministic metric must match the baseline exactly";
        ++out.quality_drift;
      }
      out.findings.push_back(std::move(f));
    }
    for (const JsonValue::Member& m : run.metrics.members()) {
      if (baseline.metrics.contains(m.first)) continue;
      Finding f;
      f.metric = m.first;
      f.verdict = Verdict::kNew;
      f.baseline = "-";
      f.run = render(m.second);
      f.note = "not in the baseline; refresh baselines to start tracking";
      ++out.new_metrics;
      out.findings.push_back(std::move(f));
    }
  }

  // ---- tables: exact equality when both sides vouch for determinism -----
  if (baseline.tables_deterministic && run.tables_deterministic) {
    Finding f;
    f.metric = "tables";
    if (baseline.tables == run.tables) {
      f.verdict = Verdict::kPass;
      f.baseline = f.run = std::to_string(baseline.tables.size()) + " table(s)";
    } else {
      f.verdict = Verdict::kRegressed;
      f.baseline = std::to_string(baseline.tables.size()) + " table(s)";
      f.run = std::to_string(run.tables.size()) + " table(s)";
      f.note = "deterministic table cells differ from the baseline";
      ++out.quality_drift;
    }
    out.findings.push_back(std::move(f));
  }

  // ---- profile: deterministic attribution, exact per node path ----------
  // Only the deterministic columns live in the profile section
  // (invocations + cost counters); they obey the same contract as
  // `metrics`, so any drift against a non-empty baseline profile gates.
  // Baselines recorded before schema 3 carry an empty profile and skip
  // the section entirely.
  if (baseline.profile.is_array() && baseline.profile.size() > 0) {
    std::map<std::string, const JsonValue*> run_nodes;
    if (run.profile.is_array()) {
      for (const JsonValue& node : run.profile.items()) {
        const JsonValue* path = node.find("path");
        if (path != nullptr && path->is_string()) {
          run_nodes[path->as_string()] = &node;
        }
      }
    }
    for (const JsonValue& node : baseline.profile.items()) {
      const JsonValue* path = node.find("path");
      if (path == nullptr || !path->is_string()) continue;
      Finding f;
      f.metric = "profile:" + path->as_string();
      f.baseline = render(node);
      auto it = run_nodes.find(path->as_string());
      if (it == run_nodes.end()) {
        f.verdict = Verdict::kMissing;
        f.run = "-";
        f.note = "profile node disappeared from the run";
        ++out.quality_drift;
      } else if (node == *it->second) {
        f.verdict = Verdict::kPass;
        f.run = f.baseline;
        run_nodes.erase(it);
      } else {
        f.verdict = Verdict::kRegressed;
        f.run = render(*it->second);
        f.note = "deterministic profile attribution must match exactly";
        ++out.quality_drift;
        run_nodes.erase(it);
      }
      out.findings.push_back(std::move(f));
    }
    for (const auto& [path, node] : run_nodes) {
      Finding f;
      f.metric = "profile:" + path;
      f.verdict = Verdict::kNew;
      f.baseline = "-";
      f.run = render(*node);
      f.note = "not in the baseline; refresh baselines to start tracking";
      ++out.new_metrics;
      out.findings.push_back(std::move(f));
    }
  }

  // ---- timing stats: MAD-scaled noise model -----------------------------
  for (const auto& [name, base] : baseline.timing_stats) {
    auto it = run.timing_stats.find(name);
    Finding f;
    f.metric = name;
    f.deterministic = false;
    f.baseline = render_ms(base.median_ms);
    if (it == run.timing_stats.end()) {
      // A vanished timing is not a quality failure (instrumentation may
      // move); surface it without gating.
      f.verdict = Verdict::kMissing;
      f.run = "-";
      out.findings.push_back(std::move(f));
      continue;
    }
    const TimingStat& cur = it->second;
    const double threshold =
        std::max({opts.mad_k * kMadToSigma * base.mad_ms,
                  opts.rel_epsilon * std::fabs(base.median_ms),
                  opts.abs_epsilon_ms});
    const double delta = cur.median_ms - base.median_ms;
    f.run = render_ms(cur.median_ms);
    char note[96];
    std::snprintf(note, sizeof(note), "delta %+0.3f ms vs threshold %.3f ms",
                  delta, threshold);
    f.note = note;
    if (delta > threshold) {
      f.verdict = Verdict::kRegressed;
      ++out.timing_regressions;
    } else if (delta < -threshold) {
      f.verdict = Verdict::kImproved;
      ++out.timing_improvements;
    } else {
      f.verdict = Verdict::kPass;
    }
    out.findings.push_back(std::move(f));
  }
  for (const auto& [name, cur] : run.timing_stats) {
    if (baseline.timing_stats.count(name) != 0) continue;
    Finding f;
    f.metric = name;
    f.deterministic = false;
    f.verdict = Verdict::kNew;
    f.baseline = "-";
    f.run = render_ms(cur.median_ms);
    out.findings.push_back(std::move(f));
  }

  return out;
}

}  // namespace dfsssp::obs
