// Robust statistics for multi-repetition bench runs: median and MAD
// (median absolute deviation). Wall-clock samples are heavy-tailed — one
// scheduler hiccup blows a mean/stddev gate wide open — so the compare
// logic scales its thresholds by MAD instead.
#pragma once

#include <vector>

namespace dfsssp::obs {

/// Median of `samples` (even count: mean of the middle two). Returns 0 for
/// an empty vector. The input is copied; callers keep their order.
double median(std::vector<double> samples);

/// Median absolute deviation around `center` (usually median(samples)).
/// Multiply by kMadToSigma for a sigma-equivalent scale under normality.
double mad(const std::vector<double>& samples, double center);

/// 1 / Phi^-1(3/4): MAD * kMadToSigma estimates the standard deviation of
/// normally distributed samples.
inline constexpr double kMadToSigma = 1.4826;

}  // namespace dfsssp::obs
