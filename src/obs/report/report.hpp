// Versioned bench run reports — the continuous-benchmarking schema behind
// the committed BENCH_*.json trajectory and the dfbench regression gate.
//
// Schema (version 3):
//   {
//     "schema_version": 3,
//     "bench": "bench_fig9_vl_random",
//     "git_rev": "2a7720f1c9e4",          // configure-time, see build_info
//     "build_flags": "Release ",
//     "repetitions": 3,
//     "tables_deterministic": true,        // false when cells hold wall time
//     "config": {"full": false, "patterns": 100, "seeds": 3, "threads": 0},
//     "wall_seconds": 6.12,                // median over repetitions
//     "tables": [{"title", "columns", "rows"}, ...],
//     "metrics": {...},                    // deterministic section, exact
//     "timing_metrics": {...},             // rep-0 raw timing histograms
//     "timing_stats": {                    // median/MAD over repetitions
//       "bench/wall_ms": {"median_ms": 6120.0, "mad_ms": 31.2, "reps": 3},
//       "sssp/fill_planes_ns": {...},
//       "prof/root;dfsssp/layering/total_ms": {...}  // profile wall times
//     },
//     "profile": [                         // schema 3: span-tree profile,
//       {"path": "root", "invocations": 1, "counters": {}},
//       {"path": "root;dfsssp/layering",   // deterministic columns only
//        "invocations": 6,
//        "counters": {"dfsssp/acyclicity_checks": 1234}},
//       ...
//     ]
//   }
//
// The `metrics` section (plus `tables` when tables_deterministic, plus the
// `profile` node list) is the quality gate: derived from the work itself,
// bitwise identical at any --threads=N, so ANY diff against a baseline is
// a real behavior change. Everything under timing_* is wall clock and only
// ever compared through the MAD-scaled noise model in compare.hpp; profile
// wall times live in timing_stats as "prof/<path>/{total,self}_ms", never
// in the profile section itself.
//
// The reader also accepts the schema-1 documents PR 3's benches emitted
// (no schema_version field) — their timing_stats are derived from the
// timing histogram sums — and schema-2 documents (no profile section);
// both upgrade in place so old trajectory points stay comparable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profile/profile.hpp"
#include "obs/report/json_value.hpp"

namespace dfsssp::obs {

inline constexpr int kReportSchemaVersion = 3;

/// Median/MAD of one wall-clock quantity over a run's repetitions, in
/// milliseconds. reps == 1 pins mad_ms to 0 (the zero-MAD path: compare
/// then falls back to its relative/absolute floors).
struct TimingStat {
  double median_ms = 0.0;
  double mad_ms = 0.0;
  std::uint32_t reps = 1;
};

struct RunReport {
  int schema_version = kReportSchemaVersion;
  std::string bench;
  std::string git_rev = "unknown";
  std::string build_flags = "unknown";
  std::uint32_t repetitions = 1;
  bool tables_deterministic = true;
  JsonValue config = JsonValue::object();
  double wall_seconds = 0.0;
  JsonValue tables = JsonValue::array();
  JsonValue metrics = JsonValue::object();
  JsonValue timing_metrics = JsonValue::object();
  std::map<std::string, TimingStat> timing_stats;
  /// Schema 3: deterministic span-tree profile (array of {path,
  /// invocations, counters} in canonical preorder). Empty array when the
  /// bench ran without profiling or the document predates schema 3.
  JsonValue profile = JsonValue::array();
};

/// Parses a schema-1, -2, or -3 document. Throws std::runtime_error on
/// malformed input or an unknown (newer) schema_version.
RunReport parse_run_report(const std::string& text);
RunReport read_run_report(const std::string& path);

void write_run_report(const RunReport& report, std::ostream& out);
void write_run_report(const RunReport& report, const std::string& path);

/// Fills report.timing_stats from its timing_metrics histograms (one
/// sample per histogram: the summed nanoseconds, as milliseconds) plus the
/// "bench/wall_ms" entry from wall_seconds. Used by single-repetition
/// emitters and by the schema-1 upgrade path; existing entries are kept.
void derive_timing_stats(RunReport& report);

/// Collapses N repetitions of the same bench into one canonical report:
/// config/tables/metrics must be identical across repetitions (any
/// mismatch throws — a bench whose deterministic sections differ between
/// identical invocations is broken); timing_stats become median/MAD over
/// the per-repetition medians and wall_seconds becomes the median wall
/// clock. timing_metrics keeps repetition 0's raw histograms.
RunReport aggregate_runs(const std::vector<RunReport>& reps);

/// The obs registry metrics of one kind as a JSON object, in the exact
/// shape write_metrics_json() emits ({"name": count, "hist": {edges,
/// counts, count, sum, max}}).
JsonValue metrics_to_json(const Snapshot& snap, Kind kind);

/// The deterministic columns of a collected profile as the schema-3
/// `profile` section: [{path, invocations, counters}, ...] in canonical
/// preorder. Wall times are deliberately absent.
JsonValue profile_to_json(const Profile& profile);

/// Adds the profile's wall times to a timing_stats map as
/// "prof/<path>/total_ms" and "prof/<path>/self_ms" single-rep entries,
/// where they aggregate and compare exactly like any other timing.
void profile_timing_stats(const Profile& profile,
                          std::map<std::string, TimingStat>& out);

}  // namespace dfsssp::obs
