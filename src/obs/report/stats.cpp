#include "obs/report/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dfsssp::obs {

double median(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t mid = samples.size() / 2;
  if (samples.size() % 2 == 1) return samples[mid];
  return (samples[mid - 1] + samples[mid]) / 2.0;
}

double mad(const std::vector<double>& samples, double center) {
  std::vector<double> dev;
  dev.reserve(samples.size());
  for (double s : samples) dev.push_back(std::fabs(s - center));
  return median(std::move(dev));
}

}  // namespace dfsssp::obs
