// Build provenance stamped into every versioned run report, so a committed
// BENCH_*.json trajectory point records which revision and flags produced
// it. Values are injected by CMake at configure time (see src/obs/
// CMakeLists.txt); out-of-git builds report "unknown".
#pragma once

namespace dfsssp::obs {

/// Short git revision of the source tree at configure time ("unknown"
/// outside a git checkout). Configure-time, not build-time: a stale value
/// after local commits is refreshed by the next CMake run, which CI always
/// performs from scratch.
const char* git_rev();

/// Build type plus user CXX flags, e.g. "Release -O3".
const char* build_flags();

}  // namespace dfsssp::obs
