#include "obs/report/json_value.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/json.hpp"

namespace dfsssp::obs {

// ---- constructors -----------------------------------------------------------

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::integer(std::int64_t i) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.is_int_ = true;
  v.int_ = i;
  v.num_ = static_cast<double>(i);
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

// ---- accessors --------------------------------------------------------------

namespace {

[[noreturn]] void type_error(const char* want, JsonValue::Type got) {
  throw std::runtime_error(std::string("JSON value is not ") + want +
                           " (type " +
                           std::to_string(static_cast<int>(got)) + ")");
}

}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_error("a bool", type_);
  return bool_;
}

double JsonValue::as_double() const {
  if (type_ != Type::kNumber) type_error("a number", type_);
  return is_int_ ? static_cast<double>(int_) : num_;
}

std::int64_t JsonValue::as_int() const {
  if (!is_integer()) type_error("an integer", type_);
  return int_;
}

std::uint64_t JsonValue::as_uint() const {
  const std::int64_t v = as_int();
  if (v < 0) throw std::runtime_error("JSON integer is negative");
  return static_cast<std::uint64_t>(v);
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_error("a string", type_);
  return str_;
}

std::vector<JsonValue>& JsonValue::items() {
  if (type_ != Type::kArray) type_error("an array", type_);
  return items_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::kArray) type_error("an array", type_);
  return items_;
}

std::vector<JsonValue::Member>& JsonValue::members() {
  if (type_ != Type::kObject) type_error("an object", type_);
  return members_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  if (type_ != Type::kObject) type_error("an object", type_);
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) type_error("an object", type_);
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("JSON object has no key '" + std::string(key) +
                             "'");
  }
  return *v;
}

JsonValue& JsonValue::push_back(JsonValue v) {
  items().push_back(std::move(v));
  return items_.back();
}

JsonValue& JsonValue::set(std::string key, JsonValue v) {
  for (Member& m : members()) {
    if (m.first == key) {
      m.second = std::move(v);
      return m.second;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
  return members_.back().second;
}

std::size_t JsonValue::size() const {
  if (type_ == Type::kArray) return items_.size();
  if (type_ == Type::kObject) return members_.size();
  return 0;
}

bool operator==(const JsonValue& a, const JsonValue& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case JsonValue::Type::kNull: return true;
    case JsonValue::Type::kBool: return a.bool_ == b.bool_;
    case JsonValue::Type::kNumber:
      if (a.is_int_ && b.is_int_) return a.int_ == b.int_;
      return a.as_double() == b.as_double();
    case JsonValue::Type::kString: return a.str_ == b.str_;
    case JsonValue::Type::kArray: return a.items_ == b.items_;
    case JsonValue::Type::kObject: {
      if (a.members_.size() != b.members_.size()) return false;
      for (const JsonValue::Member& m : a.members_) {
        const JsonValue* other = b.find(m.first);
        if (other == nullptr || !(m.second == *other)) return false;
      }
      return true;
    }
  }
  return false;
}

// ---- parser -----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue::null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members().emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items().push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // The repo's emitters only \u-escape control characters; encode
          // the general case as UTF-8 anyway so foreign documents survive.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = c == '+' || c == '-' ? integral : false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (integral) {
      std::int64_t i = 0;
      const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), i);
      if (ec == std::errc() && p == tok.data() + tok.size()) {
        return JsonValue::integer(i);
      }
      // Out of int64 range: fall through to double.
    }
    const std::string owned(tok);
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(owned.c_str(), &end);
    if (end != owned.c_str() + owned.size() || errno == ERANGE) {
      fail("bad number '" + owned + "'");
    }
    return JsonValue::number(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void write_number(std::ostream& out, const JsonValue& v) {
  if (v.is_integer()) {
    out << v.as_int();
    return;
  }
  const double d = v.as_double();
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; the repo never emits them, but don't produce an
    // unparseable document if one sneaks in through arithmetic.
    out << (d > 0 ? "1e308" : (d < 0 ? "-1e308" : "0"));
    return;
  }
  char buf[32];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  if (ec == std::errc()) {
    out.write(buf, p - buf);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out << buf;
  }
}

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

void JsonValue::write(std::ostream& out, int depth) const {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  switch (type_) {
    case Type::kNull: out << "null"; break;
    case Type::kBool: out << (bool_ ? "true" : "false"); break;
    case Type::kNumber: write_number(out, *this); break;
    case Type::kString: out << json_quote(str_); break;
    case Type::kArray: {
      if (items_.empty()) {
        out << "[]";
        break;
      }
      out << "[";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out << (i ? ",\n" : "\n") << pad << "  ";
        items_[i].write(out, depth + 1);
      }
      out << "\n" << pad << "]";
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out << "{}";
        break;
      }
      out << "{";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out << (i ? ",\n" : "\n") << pad << "  "
            << json_quote(members_[i].first) << ": ";
        members_[i].second.write(out, depth + 1);
      }
      out << "\n" << pad << "}";
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::ostringstream out;
  write(out);
  return out.str();
}

}  // namespace dfsssp::obs
