#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "common/json.hpp"
#include "common/timer.hpp"

namespace dfsssp::obs {

namespace {

struct Event {
  const char* name;
  std::uint64_t start_ns;
  std::uint64_t end_ns;
  std::uint32_t tid;
};

/// Per-thread span buffer. Appended only by the owning thread; the little
/// mutex exists so stop_tracing() can collect from another thread.
struct ThreadBuf {
  std::mutex mu;
  std::vector<Event> events;
  std::uint32_t tid = 0;
};

struct TraceState {
  std::atomic<bool> active{false};
  std::mutex mu;
  std::string path;
  // Buffers are registered once per thread and never deallocated: worker
  // threads (ThreadPool) can outlive a session, and their thread_local
  // pointer must stay valid.
  std::deque<std::unique_ptr<ThreadBuf>> bufs;
  std::uint32_t next_tid = 0;
  bool atexit_registered = false;
};

TraceState& state() {
  static TraceState* s = new TraceState();  // leaked: usable during atexit
  return *s;
}

ThreadBuf& local_buf() {
  thread_local ThreadBuf* buf = nullptr;
  if (buf == nullptr) {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.bufs.push_back(std::make_unique<ThreadBuf>());
    buf = s.bufs.back().get();
    buf->tid = s.next_tid++;
  }
  return *buf;
}

void write_chrome_trace(std::ostream& out, std::vector<Event> events) {
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    if (a.end_ns != b.end_ns) return a.end_ns > b.end_ns;  // parents first
    return a.tid < b.tid;
  });
  const std::uint64_t epoch = events.empty() ? 0 : events.front().start_ns;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  out << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
         "\"args\": {\"name\": \"dfsssp\"}}";
  char buf[64];
  for (const Event& e : events) {
    // Chrome trace timestamps are microseconds; keep ns resolution with
    // three decimals.
    out << ",\n{\"name\": " << json_quote(e.name)
        << ", \"cat\": \"dfsssp\", \"ph\": \"X\", \"ts\": ";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.start_ns - epoch) / 1000.0);
    out << buf << ", \"dur\": ";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.end_ns - e.start_ns) / 1000.0);
    out << buf << ", \"pid\": 1, \"tid\": " << e.tid << "}";
  }
  out << "\n]}\n";
}

}  // namespace

bool tracing_active() {
  return state().active.load(std::memory_order_relaxed);
}

void start_tracing(std::string path) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.path = std::move(path);
  for (auto& buf : s.bufs) {
    std::lock_guard<std::mutex> bl(buf->mu);
    buf->events.clear();
  }
  if (!s.atexit_registered) {
    s.atexit_registered = true;
    std::atexit([] { stop_tracing(); });
  }
  s.active.store(true, std::memory_order_relaxed);
}

std::size_t stop_tracing() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.active.load(std::memory_order_relaxed)) return 0;
  s.active.store(false, std::memory_order_relaxed);
  std::vector<Event> events;
  for (auto& buf : s.bufs) {
    std::lock_guard<std::mutex> bl(buf->mu);
    events.insert(events.end(), buf->events.begin(), buf->events.end());
    buf->events.clear();
  }
  std::ofstream out(s.path);
  if (!out) throw std::runtime_error("cannot open trace output: " + s.path);
  const std::size_t n = events.size();
  write_chrome_trace(out, std::move(events));
  return n;
}

TraceSpan::TraceSpan(const char* name) {
  const bool tracing = tracing_active();
  const bool profiling = profiling_active();
  if (!tracing && !profiling) return;
  if (tracing) name_ = name;
  start_ns_ = Timer::now_ns();
  if (profiling) prof_node_ = profile_enter(name);
}

TraceSpan::~TraceSpan() {
  if (name_ == nullptr && prof_node_ == kNoProfileNode) return;
  const std::uint64_t end_ns = Timer::now_ns();
  if (prof_node_ != kNoProfileNode) {
    profile_exit(prof_node_, end_ns - start_ns_);
  }
  if (name_ == nullptr || !tracing_active()) return;
  ThreadBuf& buf = local_buf();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back({name_, start_ns_, end_ns, buf.tid});
}

}  // namespace dfsssp::obs
