// Minimal deadlock witnesses: when a layer's channel dependency graph is
// cyclic, produce the *shortest* cycle through it plus, for every cycle
// edge, the routed paths that induce the edge. The witness is the
// diagnostic counterpart of the certificate — instead of "not deadlock-free"
// the user sees the concrete channel cycle (the paper's Figure 2 picture)
// and which (source switch, destination terminal) paths create each
// dependency, i.e. exactly what to reroute or relayer.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "cdg/paths.hpp"
#include "common/types.hpp"
#include "routing/table.hpp"
#include "topology/network.hpp"

namespace dfsssp {

/// One routed path inducing a witness edge.
struct WitnessPathRef {
  std::uint32_t path = 0;          // index into the PathSet
  std::uint32_t src_switch = 0;    // switch index (Network::switch_by_index)
  std::uint32_t dst_terminal = 0;  // terminal index
  std::uint32_t weight = 0;
};

/// One edge of the witness cycle with its inducing paths.
struct WitnessEdge {
  ChannelId from = 0;
  ChannelId to = 0;
  /// Total number of member paths inducing this edge.
  std::uint32_t inducing_paths = 0;
  /// Up to `max_paths_per_edge` concrete examples (at least one).
  std::vector<WitnessPathRef> examples;
};

/// A directed cycle in one layer's CDG: edges[i].to == edges[i+1].from and
/// the last edge closes back to edges[0].from. Empty when the layer is
/// acyclic.
struct DeadlockWitness {
  Layer layer = 0;
  std::vector<WitnessEdge> edges;

  bool empty() const { return edges.empty(); }
};

/// Finds a shortest cycle in layer `which`'s CDG (BFS over the cyclic core
/// that remains after Kahn peeling) and attaches up to `max_paths_per_edge`
/// inducing paths per edge. Returns an empty witness when the layer is
/// acyclic.
DeadlockWitness extract_witness(const PathSet& paths,
                                std::span<const Layer> layer, Layer which,
                                std::uint32_t num_channels,
                                std::uint32_t max_paths_per_edge = 3);

/// Convenience: collect paths/layers from a routing, then find the first
/// cyclic layer (ascending) and extract its witness. Empty witness when the
/// whole routing is deadlock-free.
DeadlockWitness extract_witness(const Network& net, const RoutingTable& table,
                                std::uint32_t max_paths_per_edge = 3);

/// Human-readable rendering with node names from `net`:
///   deadlock witness: layer 0, cycle of 3 channels
///     s0->s1 => s1->s2  (4 inducing paths)
///       via s0 -> t4 (weight 2)
///   ...
void write_witness(const Network& net, const DeadlockWitness& witness,
                   std::ostream& out);

}  // namespace dfsssp
