// Static lint suite over a finished routing — the class of offline
// configuration checks OpenSM's ibdmchk runs against a production fabric's
// LFT/SL dump. None of these affect deadlock freedom (the certificate
// covers that); they catch the quality and consistency defects that make a
// routing slow or its dump file untrustworthy: unreachable destinations,
// detours past the BFS distance, skewed virtual-layer load, more layers
// than the hardware has virtual lanes (the paper's Figure 9/10 LASH
// comparison counts exactly this), dangling or duplicate LFT entries, and
// SL entries referencing layers that do not exist.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/types.hpp"
#include "routing/dump.hpp"
#include "routing/table.hpp"
#include "topology/network.hpp"

namespace dfsssp {

enum class LintKind : std::uint8_t {
  /// Missing LFT entry, dead end, or forwarding loop toward a destination.
  kUnreachableDestination,
  /// Path longer than the BFS hop distance between the switches.
  kNonMinimalPath,
  /// Weighted layer load max/mean above the threshold.
  kLayerSkew,
  /// More layers than the hardware has virtual lanes.
  kExcessVirtualLayers,
  /// LFT entry for a terminal attached to the switch itself (the packet
  /// should be ejected; the entry forwards it back into the fabric).
  kDanglingLftEntry,
  /// Duplicate lft/sl line in the dump file (later line overwrote earlier).
  kDuplicateLftEntry,
  /// SL entry >= the declared layer count.
  kSlOutOfRange,
  /// Declared layer carrying zero paths (a wasted virtual lane).
  kEmptyLayer,
  /// Minimal routing declaring fewer layers than the provable existence
  /// lower bound (analysis/existence.hpp): the dump is truncated or the
  /// routing cannot actually be deadlock-free.
  kLayersBelowExistenceBound,
};
inline constexpr std::size_t kNumLintKinds = 9;

const char* to_string(LintKind kind);

struct Lint {
  LintKind kind;
  std::string message;
};

struct LintOptions {
  /// Virtual lanes the target hardware offers (InfiniBand: 8).
  Layer hardware_vls = 8;
  /// kLayerSkew fires when max weighted layer load / mean exceeds this.
  double skew_threshold = 2.0;
  /// Detailed messages are capped per kind; counts are always exact.
  std::uint32_t max_reports_per_kind = 8;
  /// Compare the declared layer count against the existence lower bound
  /// (only meaningful for minimal routings; skipped when any
  /// kNonMinimalPath fired).
  bool existence_bound = true;
  /// The existence bound is an O(S^2) analysis; networks with more
  /// switches than this skip it.
  std::uint32_t existence_max_switches = 96;
};

struct LintReport {
  /// Detailed findings, at most max_reports_per_kind per kind, in
  /// destination order (deterministic at any thread count).
  std::vector<Lint> lints;
  /// Exact per-kind totals, indexed by LintKind.
  std::array<std::uint64_t, kNumLintKinds> counts{};
  std::uint64_t paths_checked = 0;

  std::uint64_t count(LintKind kind) const {
    return counts[static_cast<std::size_t>(kind)];
  }
  bool clean() const {
    for (std::uint64_t c : counts) {
      if (c != 0) return false;
    }
    return true;
  }
};

/// Runs every lint over the routing. Destination terminals are independent
/// (each owns its BFS distance field and its path walks) and fan out over
/// `exec`'s threads; findings are folded back in destination order. `dump`,
/// when non-null, adds the file-level lints (duplicates, local LFT lines)
/// that are invisible in the loaded table.
LintReport lint_routing(const Network& net, const RoutingTable& table,
                        const LintOptions& options = {},
                        const DumpStats* dump = nullptr,
                        const ExecContext& exec = {});

}  // namespace dfsssp
