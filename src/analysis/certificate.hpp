// Machine-checkable deadlock-freedom certificates.
//
// `layering_is_deadlock_free` answers "is this routing deadlock-free?" with
// a boolean by *searching* each layer's channel dependency graph for cycles.
// A certificate turns that answer into a proof a third party can re-check
// without trusting (or re-running) the cycle search: per virtual layer it
// records a topological order of the layer's CDG nodes. Checking the proof
// is a single O(V + E) pass — walk every forwarding path and verify that
// consecutive channels appear in strictly increasing order positions — and
// a topological order *exists* iff the layer's CDG is acyclic, so an
// accepted certificate is exactly the paper's sufficient deadlock-freedom
// condition (Section III), made auditable. This mirrors what OpenSM's
// `ibdmchk` provides for production fabrics: offline validation of a dumped
// routing configuration.
//
// Channels are named in the serialized form by (source node, destination
// node, parallel index), the same stable slot naming forwarding dumps use,
// so a certificate stays valid across save/load of the topology.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "cdg/paths.hpp"
#include "common/parallel.hpp"
#include "common/types.hpp"
#include "routing/table.hpp"
#include "topology/network.hpp"

namespace dfsssp {

/// Per layer, the channels of that layer's CDG in topological order.
/// Channels that induce no dependency in the layer (paths of a single
/// channel) are not listed; the checker only constrains consecutive pairs.
struct Certificate {
  Layer num_layers = 1;
  std::vector<std::vector<ChannelId>> order;  // one entry per layer

  bool empty() const { return order.empty(); }
};

struct CertificateResult {
  bool ok = false;
  /// First layer whose CDG is cyclic (when !ok) — feed it to
  /// extract_witness to see why.
  Layer cyclic_layer = kInvalidLayer;
  Certificate cert;
};

/// Builds the certificate for a path set + layer assignment: one Kahn
/// topological sort per layer, layers fanned out over `exec`'s threads.
/// The order within each layer is canonical (smallest channel id first
/// among ready nodes), so the result is identical at any thread count.
CertificateResult make_certificate(const PathSet& paths,
                                   std::span<const Layer> layer,
                                   std::uint32_t num_channels,
                                   const ExecContext& exec = {});

/// Convenience: collect paths and layers out of a finished routing first.
/// Throws std::runtime_error when a forwarding walk is broken.
CertificateResult make_certificate(const Network& net,
                                   const RoutingTable& table,
                                   const ExecContext& exec = {});

/// Text serialization:
///   # dfsssp deadlock-freedom certificate
///   cert 1
///   layers <L>
///   layer <l> <n>        (for each l in 0..L-1, in order)
///   c <src> <dst> <slot> (exactly n per layer, topological order)
///   end
void write_certificate(const Network& net, const Certificate& cert,
                       std::ostream& out);
void write_certificate_path(const Network& net, const Certificate& cert,
                            const std::string& path);

/// Parses a certificate against the topology it was produced on. Throws
/// std::runtime_error ("<source>:<line>: <what>") on malformed input,
/// unknown node names or channel slots, a layer count outside
/// [1, kMaxLayers], out-of-order layer blocks, or truncation (missing
/// channel lines or a missing trailing `end`).
Certificate read_certificate(const Network& net, std::istream& in,
                             const std::string& source = "certificate");
Certificate read_certificate_path(const Network& net,
                                  const std::string& path);

struct CertCheckResult {
  bool ok = false;
  /// First violation, human-readable; empty when ok.
  std::string error;
  std::uint64_t paths_checked = 0;
  /// Consecutive-channel dependencies verified against the order.
  std::uint64_t deps_checked = 0;
};

/// The independent checker: validates `cert` against a routing in one
/// O(V + E) pass with no cycle search. Rejects when the layer counts
/// disagree, a layer's order lists a channel twice, a path's layer has no
/// order, a dependency's channel is missing from its layer's order, a
/// dependency violates the order, or a forwarding walk is broken (a path
/// that cannot be walked cannot be certified).
CertCheckResult check_certificate(const Network& net,
                                  const RoutingTable& table,
                                  const Certificate& cert);

}  // namespace dfsssp
