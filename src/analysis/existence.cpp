#include "analysis/existence.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace dfsssp {

namespace {

constexpr std::uint32_t kInf = 0xFFFFFFFFu;
/// Path counts saturate here; a saturated count can never witness a forced
/// dependency (the product comparison below fails), which errs toward the
/// weaker bound.
constexpr std::uint64_t kSat = std::uint64_t{1} << 62;

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;
  return (s >= kSat || s < a) ? kSat : s;
}

/// Per-source BFS over the alive switch graph: hop distances and
/// channel-distinct shortest-path counts (parallel channels count as
/// distinct paths, matching how a routing must pick one channel).
struct ShortestPaths {
  std::vector<std::uint32_t> dist;  // by switch index
  std::vector<std::uint64_t> cnt;   // by switch index, saturating
};

ShortestPaths bfs_counts(const Network& net, std::uint32_t src_idx) {
  const std::size_t S = net.num_switches();
  ShortestPaths sp{std::vector<std::uint32_t>(S, kInf),
                   std::vector<std::uint64_t>(S, 0)};
  sp.dist[src_idx] = 0;
  sp.cnt[src_idx] = 1;
  std::vector<std::uint32_t> frontier{src_idx}, next;
  while (!frontier.empty()) {
    next.clear();
    for (std::uint32_t ui : frontier) {
      const NodeId u = net.switch_by_index(ui);
      const std::uint32_t du = sp.dist[ui];
      for (ChannelId c : net.out_switch_channels(u)) {
        const std::uint32_t vi = net.node(net.channel(c).dst).type_index;
        if (sp.dist[vi] == kInf) {
          sp.dist[vi] = du + 1;
          next.push_back(vi);
        }
        if (sp.dist[vi] == du + 1) {
          sp.cnt[vi] = sat_add(sp.cnt[vi], sp.cnt[ui]);
        }
      }
    }
    frontier.swap(next);
  }
  return sp;
}

using DepEdge = std::pair<ChannelId, ChannelId>;

/// Kahn's algorithm over an explicit dependency edge list. Channel ids are
/// compacted on the fly; edge lists here are small (forced deps only).
bool has_cycle(std::vector<DepEdge> edges) {
  if (edges.empty()) return false;
  std::vector<ChannelId> ids;
  ids.reserve(edges.size() * 2);
  for (const DepEdge& e : edges) {
    ids.push_back(e.first);
    ids.push_back(e.second);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  auto index_of = [&](ChannelId c) {
    return static_cast<std::uint32_t>(
        std::lower_bound(ids.begin(), ids.end(), c) - ids.begin());
  };
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  const std::uint32_t n = static_cast<std::uint32_t>(ids.size());
  std::vector<std::vector<std::uint32_t>> adj(n);
  std::vector<std::uint32_t> indeg(n, 0);
  for (const DepEdge& e : edges) {
    const std::uint32_t a = index_of(e.first), b = index_of(e.second);
    adj[a].push_back(b);
    ++indeg[b];
  }
  std::vector<std::uint32_t> ready;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready.push_back(i);
  }
  std::uint32_t removed = 0;
  while (!ready.empty()) {
    const std::uint32_t u = ready.back();
    ready.pop_back();
    ++removed;
    for (std::uint32_t v : adj[u]) {
      if (--indeg[v] == 0) ready.push_back(v);
    }
  }
  return removed != n;
}

}  // namespace

ExistenceBound existence_lower_bound(const Network& net,
                                     std::uint32_t max_switches) {
  ExistenceBound bound;
  const std::size_t S = net.num_switches();
  if (S == 0 || S > max_switches) return bound;
  bound.computed = true;

  // All-pairs shortest-path structure. The switch graph is channel-wise
  // symmetric (every channel has a reverse), so distances and counts from d
  // double as distances and counts *to* d.
  std::vector<ShortestPaths> sp;
  sp.reserve(S);
  for (std::uint32_t i = 0; i < S; ++i) sp.push_back(bfs_counts(net, i));

  auto routed = [&](std::uint32_t i) {
    const NodeId sw = net.switch_by_index(i);
    return net.switch_up(sw) && net.terminals_on(sw) > 0;
  };

  // Forced dependencies per routed pair, pairs in (s, d) index order.
  std::vector<std::vector<DepEdge>> pair_deps;
  std::vector<DepEdge> all_deps;
  for (std::uint32_t si = 0; si < S; ++si) {
    if (!routed(si)) continue;
    const ShortestPaths& from_s = sp[si];
    for (std::uint32_t di = 0; di < S; ++di) {
      if (di == si || !routed(di)) continue;
      const ShortestPaths& from_d = sp[di];
      const std::uint32_t dsd = from_s.dist[di];
      const std::uint64_t total = from_s.cnt[di];
      if (dsd == kInf || dsd < 2 || total >= kSat) continue;
      std::vector<DepEdge> deps;
      // A dependency u -> v pivots on the middle switch b: u = (a -> b),
      // v = (b -> c), with a, b, c consecutive on a shortest s -> d path.
      for (std::uint32_t bi = 0; bi < S; ++bi) {
        const std::uint32_t db = from_s.dist[bi];
        if (bi == si || bi == di || db == kInf ||
            db + from_d.dist[bi] != dsd) {
          continue;
        }
        const NodeId b = net.switch_by_index(bi);
        for (ChannelId out : net.out_switch_channels(b)) {
          // `out` reversed is a channel into b: u = (a -> b).
          const ChannelId u = net.channel(out).reverse;
          const std::uint32_t ai =
              net.node(net.channel(u).src).type_index;
          if (from_s.dist[ai] + 1 != db ||
              from_s.dist[ai] + from_d.dist[ai] != dsd) {
            continue;
          }
          for (ChannelId v : net.out_switch_channels(b)) {
            const std::uint32_t ci =
                net.node(net.channel(v).dst).type_index;
            if (from_s.dist[ci] != db + 1 ||
                from_s.dist[ci] + from_d.dist[ci] != dsd) {
              continue;
            }
            // Shortest paths through u then v: (s ~> a) * u * v * (c ~> d).
            // Forced exactly when that is ALL of them.
            const std::uint64_t na = from_s.cnt[ai];
            const std::uint64_t nc = from_d.cnt[ci];
            if (na >= kSat || nc >= kSat) continue;
            const unsigned __int128 through =
                static_cast<unsigned __int128>(na) * nc;
            if (through == total) deps.push_back({u, v});
          }
        }
      }
      if (!deps.empty()) {
        bound.forced_deps += deps.size();
        ++bound.pairs_with_forced;
        all_deps.insert(all_deps.end(), deps.begin(), deps.end());
        pair_deps.push_back(std::move(deps));
      }
    }
  }

  bound.union_cyclic = has_cycle(all_deps);

  // Greedy conflict clique: pairs that pairwise cannot share a layer.
  // Deterministic pair order makes the clique (and the bound) reproducible.
  std::vector<std::uint32_t> clique;
  for (std::uint32_t p = 0; p < pair_deps.size(); ++p) {
    bool conflicts_all = true;
    for (std::uint32_t m : clique) {
      std::vector<DepEdge> merged = pair_deps[p];
      merged.insert(merged.end(), pair_deps[m].begin(), pair_deps[m].end());
      if (!has_cycle(std::move(merged))) {
        conflicts_all = false;
        break;
      }
    }
    if (conflicts_all) clique.push_back(p);
  }
  bound.conflict_clique =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(clique.size()));

  std::uint32_t layers = bound.conflict_clique;
  if (bound.union_cyclic) layers = std::max<std::uint32_t>(layers, 2);
  bound.min_layers = static_cast<Layer>(std::min<std::uint32_t>(layers, 255));
  return bound;
}

}  // namespace dfsssp
