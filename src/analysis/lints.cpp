#include "analysis/lints.hpp"

#include <algorithm>
#include <cstdio>
#include <queue>

#include "analysis/existence.hpp"

namespace dfsssp {

const char* to_string(LintKind kind) {
  switch (kind) {
    case LintKind::kUnreachableDestination: return "unreachable-destination";
    case LintKind::kNonMinimalPath: return "non-minimal-path";
    case LintKind::kLayerSkew: return "layer-skew";
    case LintKind::kExcessVirtualLayers: return "excess-virtual-layers";
    case LintKind::kDanglingLftEntry: return "dangling-lft-entry";
    case LintKind::kDuplicateLftEntry: return "duplicate-lft-entry";
    case LintKind::kSlOutOfRange: return "sl-out-of-range";
    case LintKind::kEmptyLayer: return "empty-layer";
    case LintKind::kLayersBelowExistenceBound:
      return "layers-below-existence-bound";
  }
  return "unknown";
}

namespace {

/// Everything one destination terminal contributes, produced independently
/// per destination and folded in destination order.
struct DestFindings {
  std::vector<Lint> lints;  // capped at max_reports_per_kind per kind
  std::array<std::uint64_t, kNumLintKinds> counts{};
  std::vector<std::uint64_t> layer_weight;  // indexed by layer
  std::uint64_t paths_checked = 0;
};

/// BFS hop distance from every switch to `dst_sw`. Links are bidirectional
/// (every channel has a reverse), so the forward BFS distance equals the
/// reverse one.
std::vector<std::uint32_t> bfs_distances(const Network& net, NodeId dst_sw) {
  constexpr std::uint32_t kInf = 0xFFFFFFFFu;
  std::vector<std::uint32_t> dist(net.num_switches(), kInf);
  std::queue<NodeId> bfs;
  dist[net.node(dst_sw).type_index] = 0;
  bfs.push(dst_sw);
  while (!bfs.empty()) {
    const NodeId u = bfs.front();
    bfs.pop();
    const std::uint32_t du = dist[net.node(u).type_index];
    for (ChannelId c : net.out_switch_channels(u)) {
      const NodeId v = net.channel(c).dst;
      std::uint32_t& dv = dist[net.node(v).type_index];
      if (dv == kInf) {
        dv = du + 1;
        bfs.push(v);
      }
    }
  }
  return dist;
}

}  // namespace

LintReport lint_routing(const Network& net, const RoutingTable& table,
                        const LintOptions& options, const DumpStats* dump,
                        const ExecContext& exec) {
  const Layer num_layers = std::max<Layer>(1, table.num_layers());
  const std::uint32_t cap = std::max<std::uint32_t>(1,
                                                    options.max_reports_per_kind);

  auto per_dest = parallel_map(
      exec, net.num_terminals(), [&](std::size_t ti) {
        DestFindings f;
        f.layer_weight.assign(num_layers, 0);
        const NodeId dst = net.terminal_by_index(
            static_cast<std::uint32_t>(ti));
        if (!net.terminal_alive(dst)) return f;  // fell off with its switch
        const NodeId dst_sw = net.switch_of(dst);
        const auto dist = bfs_distances(net, dst_sw);
        auto emit = [&](LintKind kind, std::string msg) {
          const auto k = static_cast<std::size_t>(kind);
          ++f.counts[k];
          std::uint32_t reported = 0;
          for (const Lint& l : f.lints) reported += l.kind == kind ? 1 : 0;
          if (reported < cap) f.lints.push_back({kind, std::move(msg)});
        };
        std::vector<ChannelId> seq;
        for (NodeId sw : net.switches()) {
          if (sw == dst_sw) {
            if (table.next(sw, dst) != kInvalidChannel) {
              emit(LintKind::kDanglingLftEntry,
                   "lft entry at " + net.node_name(sw) + " for local terminal " +
                       net.node_name(dst) + " (should eject, not forward)");
            }
            continue;
          }
          // Source switches without terminals originate no paths; their LFT
          // entries are exercised as transit hops of the walks below. Down
          // switches originate nothing either.
          if (net.terminals_on(sw) == 0 || !net.switch_up(sw)) continue;
          const std::string pair_name =
              net.node_name(sw) + " -> " + net.node_name(dst);
          const Layer l = table.layer(sw, dst);
          if (l >= table.num_layers()) {
            emit(LintKind::kSlOutOfRange,
                 "sl entry " + pair_name + " selects layer " +
                     std::to_string(unsigned(l)) + " but only " +
                     std::to_string(unsigned(table.num_layers())) +
                     " layers are declared");
          }
          if (table.next(sw, dst) == kInvalidChannel) {
            emit(LintKind::kUnreachableDestination,
                 "no lft entry for " + pair_name);
            continue;
          }
          if (!table.extract_path(net, sw, dst, seq)) {
            emit(LintKind::kUnreachableDestination,
                 "forwarding walk " + pair_name + " dead-ends or loops");
            continue;
          }
          ++f.paths_checked;
          if (l < num_layers && net.terminals_on(sw) > 0) {
            f.layer_weight[l] += net.terminals_on(sw);
          }
          const std::uint32_t d = dist[net.node(sw).type_index];
          if (seq.size() > d) {
            emit(LintKind::kNonMinimalPath,
                 "path " + pair_name + " takes " +
                     std::to_string(seq.size()) + " hops, BFS distance is " +
                     std::to_string(d));
          }
        }
        return f;
      });

  LintReport report;
  std::vector<std::uint64_t> layer_weight(num_layers, 0);
  std::array<std::uint32_t, kNumLintKinds> reported{};
  for (DestFindings& f : per_dest) {
    report.paths_checked += f.paths_checked;
    for (std::size_t k = 0; k < kNumLintKinds; ++k) {
      report.counts[k] += f.counts[k];
    }
    for (Layer l = 0; l < num_layers; ++l) layer_weight[l] += f.layer_weight[l];
    for (Lint& lint : f.lints) {
      std::uint32_t& seen = reported[static_cast<std::size_t>(lint.kind)];
      if (seen < cap) {
        ++seen;
        report.lints.push_back(std::move(lint));
      }
    }
  }

  auto emit_global = [&](LintKind kind, std::string msg) {
    ++report.counts[static_cast<std::size_t>(kind)];
    report.lints.push_back({kind, std::move(msg)});
  };

  // Layer-level lints (global, computed after the fold).
  if (table.num_layers() > options.hardware_vls) {
    emit_global(
        LintKind::kExcessVirtualLayers,
        "routing declares " + std::to_string(unsigned(table.num_layers())) +
            " virtual layers but the hardware offers " +
            std::to_string(unsigned(options.hardware_vls)) +
            " VLs (cf. the paper's Figure 9/10 LASH-vs-DFSSSP VL counts)");
  }
  std::uint64_t total_weight = 0, max_weight = 0;
  for (Layer l = 0; l < num_layers; ++l) {
    total_weight += layer_weight[l];
    max_weight = std::max(max_weight, layer_weight[l]);
    if (table.num_layers() > 1 && layer_weight[l] == 0) {
      emit_global(LintKind::kEmptyLayer,
                  "layer " + std::to_string(unsigned(l)) +
                      " is declared but carries no paths");
    }
  }
  if (total_weight > 0 && num_layers > 1) {
    const double mean =
        static_cast<double>(total_weight) / static_cast<double>(num_layers);
    const double skew = static_cast<double>(max_weight) / mean;
    if (skew > options.skew_threshold) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "weighted layer load is skewed: max/mean = %.2f "
                    "(threshold %.2f); consider balancing",
                    skew, options.skew_threshold);
      emit_global(LintKind::kLayerSkew, buf);
    }
  }

  // Existence lower bound: only binds minimal routings (every non-minimal
  // path is a routed-around dependency the bound knows nothing about). A
  // valid minimal routing can never trip this — the bound is provably below
  // the layer count of every certificate-passing minimal routing — so a hit
  // means the dump is truncated or the claimed routing is deadlock-prone.
  if (options.existence_bound && report.paths_checked > 0 &&
      report.count(LintKind::kNonMinimalPath) == 0) {
    const ExistenceBound bound =
        existence_lower_bound(net, options.existence_max_switches);
    if (bound.computed && num_layers < bound.min_layers) {
      emit_global(
          LintKind::kLayersBelowExistenceBound,
          "routing declares " + std::to_string(unsigned(num_layers)) +
              " layer(s) but any minimal deadlock-free routing of this "
              "fabric needs at least " +
              std::to_string(unsigned(bound.min_layers)) +
              (bound.union_cyclic
                   ? " (the forced-dependency union is cyclic;"
                   : " (conflict clique of " +
                         std::to_string(bound.conflict_clique) + " pairs;") +
              " conservative Mendlovic-Matias existence bound, "
              "arXiv:2503.04583)");
    }
  }

  // File-level lints only the dump reader can see.
  if (dump != nullptr) {
    if (dump->duplicate_lft > 0) {
      emit_global(LintKind::kDuplicateLftEntry,
                  std::to_string(dump->duplicate_lft) +
                      " duplicate lft line(s) in the dump "
                      "(later lines overwrote earlier ones)");
    }
    if (dump->duplicate_sl > 0) {
      emit_global(LintKind::kDuplicateLftEntry,
                  std::to_string(dump->duplicate_sl) +
                      " duplicate sl line(s) in the dump");
    }
    // dump->local_lft needs no extra lint: the loaded table carries those
    // entries, so the per-destination dangling check above reports them.
  }
  return report;
}

}  // namespace dfsssp
