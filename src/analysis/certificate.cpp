#include "analysis/certificate.hpp"

#include <algorithm>
#include <fstream>
#include <functional>
#include <limits>
#include <map>
#include <ostream>
#include <queue>
#include <sstream>
#include <stdexcept>

#include "cdg/cdg.hpp"
#include "routing/collect.hpp"
#include "routing/dump.hpp"

namespace dfsssp {

namespace {

constexpr std::uint32_t kNoPos = std::numeric_limits<std::uint32_t>::max();

std::string channel_name(const Network& net, ChannelId c) {
  const Channel& ch = net.channel(c);
  return net.node_name(ch.src) + "->" + net.node_name(ch.dst);
}

/// Canonical topological order of one layer's CDG: Kahn's algorithm with a
/// min-heap over channel ids, so the order depends only on the graph, never
/// on scheduling. Empty result + present nodes => the layer is cyclic.
struct LayerOrder {
  bool acyclic = true;
  std::vector<ChannelId> order;
};

LayerOrder order_one_layer(const PathSet& paths,
                           std::span<const Layer> layer, Layer which,
                           std::uint32_t num_channels) {
  std::vector<std::uint32_t> members;
  for (std::uint32_t p = 0; p < paths.size(); ++p) {
    if (layer[p] == which && paths.channels(p).size() >= 2) {
      members.push_back(p);
    }
  }
  LayerOrder result;
  if (members.empty()) return result;

  Cdg cdg(paths, members, num_channels);
  std::vector<std::uint32_t> indegree(num_channels, 0);
  std::vector<std::uint8_t> present(num_channels, 0);
  for (ChannelId u = 0; u < num_channels; ++u) {
    for (const Cdg::Edge& e : cdg.out_edges(u)) {
      ++indegree[e.to];
      present[u] = 1;
      present[e.to] = 1;
    }
  }
  std::uint32_t num_present = 0;
  std::priority_queue<ChannelId, std::vector<ChannelId>,
                      std::greater<ChannelId>>
      ready;
  for (ChannelId u = 0; u < num_channels; ++u) {
    if (!present[u]) continue;
    ++num_present;
    if (indegree[u] == 0) ready.push(u);
  }
  result.order.reserve(num_present);
  while (!ready.empty()) {
    const ChannelId u = ready.top();
    ready.pop();
    result.order.push_back(u);
    for (const Cdg::Edge& e : cdg.out_edges(u)) {
      if (--indegree[e.to] == 0) ready.push(e.to);
    }
  }
  if (result.order.size() < num_present) {
    result.acyclic = false;
    result.order.clear();
  }
  return result;
}

}  // namespace

CertificateResult make_certificate(const PathSet& paths,
                                   std::span<const Layer> layer,
                                   std::uint32_t num_channels,
                                   const ExecContext& exec) {
  Layer num_layers = 1;
  for (std::uint32_t p = 0; p < paths.size(); ++p) {
    num_layers = std::max<Layer>(num_layers, layer[p] + 1);
  }
  auto per_layer =
      parallel_map(exec, num_layers, [&](std::size_t l) {
        return order_one_layer(paths, layer, static_cast<Layer>(l),
                               num_channels);
      });
  CertificateResult result;
  result.cert.num_layers = num_layers;
  result.cert.order.resize(num_layers);
  for (std::size_t l = 0; l < per_layer.size(); ++l) {
    if (!per_layer[l].acyclic) {
      result.ok = false;
      result.cyclic_layer = static_cast<Layer>(l);
      result.cert = Certificate{};
      return result;
    }
    result.cert.order[l] = std::move(per_layer[l].order);
  }
  result.ok = true;
  return result;
}

CertificateResult make_certificate(const Network& net,
                                   const RoutingTable& table,
                                   const ExecContext& exec) {
  const PathSet paths = collect_paths(net, table);
  const std::vector<Layer> layers = collect_layers(net, table, paths);
  CertificateResult result = make_certificate(
      paths, layers, static_cast<std::uint32_t>(net.num_channels()), exec);
  if (result.ok && result.cert.num_layers < table.num_layers()) {
    // Declared-but-unused layers have empty CDGs: vacuously acyclic, and
    // the checker requires the layer counts to agree.
    result.cert.order.resize(table.num_layers());
    result.cert.num_layers = table.num_layers();
  }
  return result;
}

void write_certificate(const Network& net, const Certificate& cert,
                       std::ostream& out) {
  out << "# dfsssp deadlock-freedom certificate\n";
  out << "cert 1\n";
  out << "layers " << unsigned(cert.num_layers) << "\n";
  for (std::size_t l = 0; l < cert.order.size(); ++l) {
    out << "layer " << l << " " << cert.order[l].size() << "\n";
    for (ChannelId c : cert.order[l]) {
      auto [neighbor, index] = channel_slot(net, c);
      out << "c " << net.node_name(net.channel(c).src) << " "
          << net.node_name(neighbor) << " " << index << "\n";
    }
  }
  out << "end\n";
}

void write_certificate_path(const Network& net, const Certificate& cert,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_certificate(net, cert, out);
}

Certificate read_certificate(const Network& net, std::istream& in,
                             const std::string& source) {
  std::map<std::string, NodeId> by_name;
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    by_name[net.node_name(n)] = n;
  }

  std::size_t lineno = 0;
  auto fail = [&](const std::string& msg) -> void {
    throw std::runtime_error(source + ":" + std::to_string(lineno) + ": " +
                             msg);
  };
  // Next non-blank, non-comment line split into tokens; empty at EOF.
  auto next_tokens = [&]() {
    std::vector<std::string> tokens;
    std::string line;
    while (std::getline(in, line)) {
      ++lineno;
      auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      std::istringstream ls(line);
      std::string tok;
      while (ls >> tok) tokens.push_back(tok);
      if (!tokens.empty()) return tokens;
    }
    return tokens;
  };
  auto parse_u32 = [&](const std::string& tok, const char* what) {
    std::uint64_t v = 0;
    std::size_t used = 0;
    try {
      v = std::stoull(tok, &used);
    } catch (...) {
      used = 0;
    }
    if (used != tok.size() ||
        v > std::numeric_limits<std::uint32_t>::max()) {
      fail(std::string("bad ") + what + " '" + tok + "'");
    }
    return static_cast<std::uint32_t>(v);
  };

  auto header = next_tokens();
  if (header.size() != 2 || header[0] != "cert" || header[1] != "1") {
    fail("expected 'cert 1' header");
  }
  auto layers_line = next_tokens();
  if (layers_line.size() != 2 || layers_line[0] != "layers") {
    fail("expected 'layers <count>'");
  }
  const std::uint32_t num_layers = parse_u32(layers_line[1], "layer count");
  if (num_layers == 0 || num_layers > kMaxLayers) {
    fail("layer count " + std::to_string(num_layers) + " outside [1, " +
         std::to_string(unsigned(kMaxLayers)) + "]");
  }

  Certificate cert;
  cert.num_layers = static_cast<Layer>(num_layers);
  cert.order.resize(num_layers);
  for (std::uint32_t l = 0; l < num_layers; ++l) {
    auto head = next_tokens();
    if (head.size() != 3 || head[0] != "layer") {
      fail("expected 'layer " + std::to_string(l) + " <n>' (truncated?)");
    }
    if (parse_u32(head[1], "layer index") != l) {
      fail("layer blocks out of order: expected layer " + std::to_string(l) +
           ", got " + head[1]);
    }
    const std::uint32_t n = parse_u32(head[2], "channel count");
    cert.order[l].reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      auto chan = next_tokens();
      if (chan.size() != 4 || chan[0] != "c") {
        fail("expected 'c <src> <dst> <slot>' (truncated?)");
      }
      auto src_it = by_name.find(chan[1]);
      auto dst_it = by_name.find(chan[2]);
      if (src_it == by_name.end() || dst_it == by_name.end()) {
        fail("unknown node in channel '" + chan[1] + "->" + chan[2] + "'");
      }
      const ChannelId c = channel_from_slot(net, src_it->second,
                                            dst_it->second,
                                            parse_u32(chan[3], "slot"));
      if (c == kInvalidChannel) {
        fail("no such channel slot '" + chan[1] + " " + chan[2] + " " +
             chan[3] + "'");
      }
      cert.order[l].push_back(c);
    }
  }
  auto tail = next_tokens();
  if (tail.size() != 1 || tail[0] != "end") fail("missing 'end' (truncated?)");
  if (!next_tokens().empty()) fail("trailing garbage after 'end'");
  return cert;
}

Certificate read_certificate_path(const Network& net,
                                  const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open certificate: " + path);
  return read_certificate(net, in, path);
}

CertCheckResult check_certificate(const Network& net,
                                  const RoutingTable& table,
                                  const Certificate& cert) {
  CertCheckResult result;
  auto reject = [&](std::string why) {
    result.ok = false;
    result.error = std::move(why);
    return result;
  };

  if (cert.num_layers != table.num_layers()) {
    return reject("layer count mismatch: certificate declares " +
                  std::to_string(unsigned(cert.num_layers)) +
                  ", routing declares " +
                  std::to_string(unsigned(table.num_layers())));
  }
  if (cert.order.size() != cert.num_layers) {
    return reject("malformed certificate: " +
                  std::to_string(cert.order.size()) + " layer orders for " +
                  std::to_string(unsigned(cert.num_layers)) + " layers");
  }

  // Position of each channel within its layer's topological order.
  const std::uint32_t num_channels =
      static_cast<std::uint32_t>(net.num_channels());
  std::vector<std::vector<std::uint32_t>> pos(
      cert.num_layers, std::vector<std::uint32_t>(num_channels, kNoPos));
  for (std::size_t l = 0; l < cert.order.size(); ++l) {
    for (std::size_t i = 0; i < cert.order[l].size(); ++i) {
      const ChannelId c = cert.order[l][i];
      if (pos[l][c] != kNoPos) {
        return reject("layer " + std::to_string(l) +
                      ": channel " + channel_name(net, c) +
                      " listed twice in the order");
      }
      pos[l][c] = static_cast<std::uint32_t>(i);
    }
  }

  // One pass over every forwarding path; no cycle search anywhere.
  std::vector<ChannelId> seq;
  for (NodeId sw : net.switches()) {
    if (net.terminals_on(sw) == 0 || !net.switch_up(sw)) continue;
    for (NodeId t : net.terminals()) {
      if (net.switch_of(t) == sw || !net.terminal_alive(t)) continue;
      const std::string pair_name =
          net.node_name(sw) + " -> " + net.node_name(t);
      if (!table.extract_path(net, sw, t, seq)) {
        return reject("broken forwarding path " + pair_name +
                      " (dead end or loop); nothing to certify");
      }
      const Layer l = table.layer(sw, t);
      if (l >= cert.num_layers) {
        return reject("path " + pair_name + " on layer " +
                      std::to_string(unsigned(l)) +
                      " beyond the certificate's " +
                      std::to_string(unsigned(cert.num_layers)) + " layers");
      }
      ++result.paths_checked;
      for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
        const std::uint32_t pa = pos[l][seq[i]];
        const std::uint32_t pb = pos[l][seq[i + 1]];
        if (pa == kNoPos || pb == kNoPos) {
          const ChannelId missing = pa == kNoPos ? seq[i] : seq[i + 1];
          return reject("layer " + std::to_string(unsigned(l)) +
                        ": channel " + channel_name(net, missing) +
                        " used by path " + pair_name +
                        " is missing from the order");
        }
        if (pa >= pb) {
          return reject("layer " + std::to_string(unsigned(l)) +
                        ": dependency " + channel_name(net, seq[i]) +
                        " => " + channel_name(net, seq[i + 1]) +
                        " of path " + pair_name +
                        " violates the topological order");
        }
        ++result.deps_checked;
      }
    }
  }
  result.ok = true;
  return result;
}

}  // namespace dfsssp
