#include "analysis/witness.hpp"

#include <algorithm>
#include <limits>
#include <ostream>
#include <queue>

#include "cdg/cdg.hpp"
#include "routing/collect.hpp"

namespace dfsssp {

namespace {

constexpr std::uint32_t kUnset = std::numeric_limits<std::uint32_t>::max();

/// Global edge index of u -> v in the Cdg, or kUnset.
std::uint32_t find_cdg_edge(const Cdg& cdg, ChannelId u, ChannelId v) {
  const auto edges = cdg.out_edges(u);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (edges[i].to == v) return cdg.first_edge(u) + static_cast<std::uint32_t>(i);
  }
  return kUnset;
}

}  // namespace

DeadlockWitness extract_witness(const PathSet& paths,
                                std::span<const Layer> layer, Layer which,
                                std::uint32_t num_channels,
                                std::uint32_t max_paths_per_edge) {
  DeadlockWitness witness;
  witness.layer = which;

  std::vector<std::uint32_t> members;
  for (std::uint32_t p = 0; p < paths.size(); ++p) {
    if (layer[p] == which && paths.channels(p).size() >= 2) {
      members.push_back(p);
    }
  }
  if (members.empty()) return witness;
  Cdg cdg(paths, members, num_channels);

  // Kahn peel; what survives is the cyclic core plus its descendants, and
  // every shortest cycle lives entirely inside it.
  std::vector<std::uint32_t> indegree(num_channels, 0);
  std::vector<std::uint8_t> present(num_channels, 0);
  for (ChannelId u = 0; u < num_channels; ++u) {
    for (const Cdg::Edge& e : cdg.out_edges(u)) {
      ++indegree[e.to];
      present[u] = 1;
      present[e.to] = 1;
    }
  }
  std::queue<ChannelId> ready;
  for (ChannelId u = 0; u < num_channels; ++u) {
    if (present[u] && indegree[u] == 0) ready.push(u);
  }
  std::vector<std::uint8_t> residual = present;
  while (!ready.empty()) {
    const ChannelId u = ready.front();
    ready.pop();
    residual[u] = 0;
    for (const Cdg::Edge& e : cdg.out_edges(u)) {
      if (--indegree[e.to] == 0) ready.push(e.to);
    }
  }
  bool any_residual = false;
  for (ChannelId u = 0; u < num_channels; ++u) any_residual |= residual[u] != 0;
  if (!any_residual) return witness;  // acyclic

  // Shortest cycle: BFS from every residual node over residual edges until
  // an edge closes back to the BFS root. Roots ascend, strictly shorter
  // cycles win, so the witness is deterministic.
  std::vector<ChannelId> best_cycle;  // node sequence, first != last
  std::vector<std::uint32_t> dist(num_channels);
  std::vector<ChannelId> parent(num_channels);
  for (ChannelId s = 0; s < num_channels; ++s) {
    if (!residual[s]) continue;
    if (!best_cycle.empty() && best_cycle.size() <= 2) break;  // can't beat 2
    std::fill(dist.begin(), dist.end(), kUnset);
    std::fill(parent.begin(), parent.end(), kUnset);
    dist[s] = 0;
    std::queue<ChannelId> bfs;
    bfs.push(s);
    bool closed = false;
    while (!bfs.empty() && !closed) {
      const ChannelId u = bfs.front();
      bfs.pop();
      if (!best_cycle.empty() && dist[u] + 1 >= best_cycle.size()) break;
      for (const Cdg::Edge& e : cdg.out_edges(u)) {
        if (!residual[e.to]) continue;
        if (e.to == s) {
          // Cycle s -> ... -> u -> s of length dist[u] + 1.
          std::vector<ChannelId> cycle;
          for (ChannelId n = u; n != kUnset; n = parent[n]) cycle.push_back(n);
          std::reverse(cycle.begin(), cycle.end());  // now s, ..., u
          if (best_cycle.empty() || cycle.size() < best_cycle.size()) {
            best_cycle = std::move(cycle);
          }
          closed = true;
          break;
        }
        if (dist[e.to] == kUnset) {
          dist[e.to] = dist[u] + 1;
          parent[e.to] = u;
          bfs.push(e.to);
        }
      }
    }
  }

  for (std::size_t i = 0; i < best_cycle.size(); ++i) {
    const ChannelId u = best_cycle[i];
    const ChannelId v = best_cycle[(i + 1) % best_cycle.size()];
    const std::uint32_t edge_index = find_cdg_edge(cdg, u, v);
    WitnessEdge edge;
    edge.from = u;
    edge.to = v;
    if (edge_index != kUnset) {
      edge.inducing_paths = cdg.edge(edge_index).path_count;
      for (std::uint32_t p : cdg.edge_paths(edge_index)) {
        if (edge.examples.size() >= max_paths_per_edge) break;
        edge.examples.push_back({p, paths.src_switch_index(p),
                                 paths.dst_terminal_index(p),
                                 paths.weight(p)});
      }
    }
    witness.edges.push_back(std::move(edge));
  }
  return witness;
}

DeadlockWitness extract_witness(const Network& net, const RoutingTable& table,
                                std::uint32_t max_paths_per_edge) {
  const PathSet paths = collect_paths(net, table);
  const std::vector<Layer> layers = collect_layers(net, table, paths);
  Layer num_layers = table.num_layers();
  for (std::size_t p = 0; p < paths.size(); ++p) {
    num_layers = std::max<Layer>(num_layers, layers[p] + 1);
  }
  for (Layer l = 0; l < num_layers; ++l) {
    DeadlockWitness w = extract_witness(
        paths, layers, l, static_cast<std::uint32_t>(net.num_channels()),
        max_paths_per_edge);
    if (!w.empty()) return w;
  }
  return DeadlockWitness{};
}

void write_witness(const Network& net, const DeadlockWitness& witness,
                   std::ostream& out) {
  if (witness.empty()) {
    out << "no deadlock witness (layer CDGs are acyclic)\n";
    return;
  }
  auto channel_name = [&](ChannelId c) {
    const Channel& ch = net.channel(c);
    return net.node_name(ch.src) + "->" + net.node_name(ch.dst);
  };
  out << "deadlock witness: layer " << unsigned(witness.layer)
      << ", cycle of " << witness.edges.size() << " channels\n";
  for (const WitnessEdge& e : witness.edges) {
    out << "  " << channel_name(e.from) << " => " << channel_name(e.to)
        << "  (" << e.inducing_paths << " inducing path"
        << (e.inducing_paths == 1 ? "" : "s") << ")\n";
    for (const WitnessPathRef& p : e.examples) {
      out << "    via " << net.node_name(net.switch_by_index(p.src_switch))
          << " -> " << net.node_name(net.terminal_by_index(p.dst_terminal))
          << " (weight " << p.weight << ")\n";
    }
  }
}

}  // namespace dfsssp
