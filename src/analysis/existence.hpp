// Provable lower bound on the virtual-layer count of any minimal
// deadlock-free routing — a conservative, certificate-compatible
// approximation of the existence condition of Mendlovic & Matias,
// "Deadlock-free routing for arbitrary networks" (arXiv:2503.04583).
//
// A minimal routing must assign every routed switch pair (s, d) one
// shortest path, and the channel dependencies that path induces must be
// acyclic within the pair's virtual layer (the paper's one-CDG-per-layer
// certificate). Some dependencies cannot be routed around: when EVERY
// shortest s->d path crosses channel u and then channel v, the dependency
// u->v is *forced* — it appears in whichever layer (s, d) lands in. Two
// sound bounds follow:
//
//   * If the union of all pairs' forced dependencies contains a cycle,
//     one layer can never be enough: min_layers >= 2. (Classic example:
//     a ring, where the distance-2 pairs force the full cycle.)
//   * Pairs p, q *conflict* when F_p ∪ F_q is cyclic — they can never
//     share a layer. Pairs that conflict pairwise need pairwise-distinct
//     layers, so a conflict clique of size k gives min_layers >= k. A
//     greedy clique (deterministic pair order) keeps this cheap.
//
// Both arguments are conservative: forced-dependency counts saturate
// toward "not forced", non-forced dependencies are ignored entirely, and
// the clique is greedy, so the reported bound can only be BELOW the true
// optimum, never above it. A dump that declares fewer layers than this
// bound while claiming minimal paths is therefore inconsistent — either
// truncated or deadlock-prone (lint kLayersBelowExistenceBound).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "topology/network.hpp"

namespace dfsssp {

struct ExistenceBound {
  /// Provable lower bound on layers for any minimal deadlock-free routing
  /// of the routed pairs. 1 when nothing stronger could be proven (also
  /// the value when the network exceeded `max_switches`).
  Layer min_layers = 1;
  /// The union of all forced dependencies contains a cycle.
  bool union_cyclic = false;
  /// Size of the greedy pairwise-conflict clique (>= 1).
  std::uint32_t conflict_clique = 1;
  /// Total forced channel dependencies across all routed pairs.
  std::uint64_t forced_deps = 0;
  /// Routed pairs contributing at least one forced dependency.
  std::uint64_t pairs_with_forced = 0;
  /// False when the network was larger than `max_switches` and the
  /// computation was skipped (min_layers stays at its trivial value).
  bool computed = false;
};

/// Computes the bound over the routed pairs (s, d): switches that are up
/// and carry at least one terminal each, s != d. O(S^2 * C) worst case,
/// so callers cap it: networks with more than `max_switches` switches
/// return the trivial bound with computed == false. Deterministic.
ExistenceBound existence_lower_bound(const Network& net,
                                     std::uint32_t max_switches = 96);

}  // namespace dfsssp
