// Packet-level network simulator with per-virtual-lane buffers.
//
// Exists to demonstrate, not just assert, the paper's deadlock claims:
// SSSP on the Figure 2 ring really wedges — every buffer fills and no packet
// can ever move — while the DFSSSP layer assignment drains the identical
// traffic. Store-and-forward switching, credit-style backpressure (a packet
// advances only when the next channel's buffer for its VL has a free slot),
// one packet per channel per cycle, round-robin arbitration per channel.
//
// Deadlock detection is exact for this model: the simulator state changes
// only when a packet moves, so a cycle in which nothing moved while packets
// remain in flight (and injections are stalled) can never make progress.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "routing/table.hpp"
#include "topology/network.hpp"
#include "traffic/patterns.hpp"

namespace dfsssp {

struct FlitSimOptions {
  /// Buffer slots per (channel, virtual lane).
  std::uint32_t buffer_slots = 2;
  /// Number of packets each flow injects.
  std::uint32_t packets_per_flow = 8;
  /// Serialization length: a packet occupies a channel for this many cycles
  /// per hop (1 = unit packets; larger models MTU-sized packets on the
  /// cycle granularity of a flit).
  std::uint32_t flits_per_packet = 1;
  /// Give up after this many cycles (counts as neither drained nor deadlock).
  std::uint64_t max_cycles = 1'000'000;
};

struct FlitSimResult {
  bool deadlocked = false;
  bool drained = false;  // every packet delivered
  std::uint64_t cycles = 0;
  std::uint64_t delivered = 0;
  std::uint64_t in_flight_at_end = 0;
  /// Mean over flows of packets_per_flow / completion-cycle: the per-flow
  /// throughput in packets/cycle (1.0 = a fully pipelined uncontended
  /// flow). Zero when nothing drained.
  double avg_flow_throughput = 0.0;
};

/// Injects `packets_per_flow` packets per flow and runs until the network
/// drains, wedges, or the cycle limit hits. The virtual lane of each packet
/// is the routing table's layer for its (source switch, destination).
FlitSimResult simulate_flit_level(const Network& net, const RoutingTable& table,
                                  const Flows& flows,
                                  const FlitSimOptions& options, Rng& rng);

}  // namespace dfsssp
