// Analytic application-benchmark model (paper Section VI-B).
//
// The paper measures NAS Parallel Benchmarks on the Deimos cluster; we do
// not have a 724-node machine, so each kernel is replaced by its published
// communication structure (the same patterns the NPB 2.4 sources produce)
// replayed through the congestion simulator, plus an analytic compute term:
//
//   t_iter = t_compute + sum over phases of bytes / min-flow-bandwidth
//
// where the per-flow bandwidth comes from simulate_pattern() under the
// evaluated routing. This reproduces what the paper actually demonstrates —
// how much the routing function's congestion costs each kernel — without
// claiming absolute Gflop/s fidelity (see DESIGN.md §4).
//
// Kernel shapes (NPB 2.4):
//  * BT/SP: multi-partition solvers on a sqrt(P) x sqrt(P) process grid;
//    face exchanges along each sweep direction, BT with coarser grain
//    (more compute per byte) than SP.
//  * FT: 3-D FFT; the transpose is a full MPI_Alltoall.
//  * CG: conjugate gradient on a 2-row-decomposition; transpose-pair and
//    row-neighbor exchanges (butterfly stages).
//  * MG: multigrid V-cycles; 3-D halo exchanges shrinking per level.
//  * LU: SSOR with pipelined 2-D nearest-neighbor wavefronts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "routing/table.hpp"
#include "sim/congestion.hpp"
#include "topology/network.hpp"
#include "traffic/patterns.hpp"

namespace dfsssp {

struct CommPhase {
  RankPattern pattern;
  double bytes_per_flow = 0.0;
  /// Back-to-back repetitions of this phase per iteration (e.g. the q
  /// pipeline stages of a BT sweep share one congestion pattern).
  std::uint32_t repeat = 1;
};

struct AppKernel {
  std::string name;
  std::vector<CommPhase> phases;   // one iteration of communication
  double flops_per_iteration = 0;  // aggregate over all ranks
  double compute_flops_per_rank_per_second = 1.0e9;
};

/// NPB-like kernel factories. `num_ranks` follows the NPB constraints
/// (square for BT/SP, power of two for FT/CG/MG); factories round the rank
/// count *down* to the nearest valid configuration, mirroring how the paper
/// ran BT/SP on 121/256/484/1024 cores.
AppKernel make_nas_bt(std::uint32_t num_ranks);
AppKernel make_nas_sp(std::uint32_t num_ranks);
AppKernel make_nas_ft(std::uint32_t num_ranks);
AppKernel make_nas_cg(std::uint32_t num_ranks);
AppKernel make_nas_mg(std::uint32_t num_ranks);
AppKernel make_nas_lu(std::uint32_t num_ranks);

struct AppRunResult {
  double seconds_per_iteration = 0;
  double comm_seconds = 0;
  double compute_seconds = 0;
  double gflops = 0;  // aggregate Gflop/s
};

struct AppModelOptions {
  /// Per-link bandwidth; Deimos' PCIe-1.1 HCAs peak at 946 MiB/s.
  double link_bandwidth_bytes = 946.0 * 1024 * 1024;
  /// Per-message constant overhead.
  double message_latency_seconds = 4e-6;
};

/// Number of ranks the kernel was actually built for (after rounding).
std::uint32_t kernel_ranks(const AppKernel& kernel);

/// Replays one iteration of the kernel under the given routing and mapping.
/// The kernel's communication phases simulate as one batch on `exec`'s
/// threads; the phase-time reduction runs in phase order.
AppRunResult run_app_model(const Network& net, const RoutingTable& table,
                           const RankMap& map, const AppKernel& kernel,
                           const AppModelOptions& options = {},
                           const ExecContext& exec = {});

}  // namespace dfsssp
