#include "sim/appmodel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dfsssp {

namespace {

std::uint32_t largest_square(std::uint32_t p) {
  std::uint32_t q = static_cast<std::uint32_t>(std::sqrt(double(p)));
  while (q * q > p) --q;
  return q;
}

std::uint32_t largest_pow2(std::uint32_t p) {
  std::uint32_t v = 1;
  while (v * 2 <= p) v *= 2;
  return v;
}

/// Near-cubic 3-D factorization of a power of two.
void factor3(std::uint32_t p, std::uint32_t& x, std::uint32_t& y,
             std::uint32_t& z) {
  x = y = z = 1;
  std::uint32_t* dims[3] = {&x, &y, &z};
  int i = 0;
  while (p > 1) {
    *dims[i % 3] *= 2;
    p /= 2;
    ++i;
  }
}

/// rank (x,y) -> x + y*qx helpers for grid patterns.
RankPattern grid_shift(std::uint32_t qx, std::uint32_t qy, std::uint32_t dx,
                       std::uint32_t dy) {
  RankPattern pattern;
  for (std::uint32_t y = 0; y < qy; ++y) {
    for (std::uint32_t x = 0; x < qx; ++x) {
      const std::uint32_t src = y * qx + x;
      const std::uint32_t dst = ((y + dy) % qy) * qx + ((x + dx) % qx);
      if (src != dst) pattern.emplace_back(src, dst);
    }
  }
  return pattern;
}

AppKernel make_multipartition(std::string name, std::uint32_t num_ranks,
                              double values_per_cell, double flops_per_iter) {
  // BT/SP: square process grid, each sweep direction is a pipeline of q
  // identical neighbor-shift stages (multi-partition scheme of NPB 2.4).
  const std::uint32_t q = largest_square(num_ranks);
  if (q < 2) throw std::invalid_argument(name + ": needs >= 4 ranks");
  const double n = 102.0;  // class B grid points per dimension
  // A sweep stage exchanges a slab of the rank's sub-domain: (n/q) x n
  // cells (NPB's multi-partition splits only two dimensions over q x q).
  const double face_bytes = values_per_cell * 8.0 * (n / q) * n;
  AppKernel k;
  k.name = std::move(name);
  k.flops_per_iteration = flops_per_iter;
  k.phases.push_back({grid_shift(q, q, 1, 0), face_bytes, q});
  k.phases.push_back({grid_shift(q, q, 0, 1), face_bytes, q});
  k.phases.push_back({grid_shift(q, q, 1, 1), face_bytes, q});
  return k;
}

}  // namespace

AppKernel make_nas_bt(std::uint32_t num_ranks) {
  // Class B: ~681 Gop over 200 iterations; block-tridiagonal solves move
  // 5x5 blocks => coarse grain.
  return make_multipartition("BT", num_ranks, 15.0, 3.4e9);
}

AppKernel make_nas_sp(std::uint32_t num_ranks) {
  // Class B: ~447 Gop over 400 iterations; scalar-pentadiagonal solves are
  // finer-grained: less compute per exchanged byte than BT.
  return make_multipartition("SP", num_ranks, 10.0, 1.1e9);
}

AppKernel make_nas_ft(std::uint32_t num_ranks) {
  const std::uint32_t p = largest_pow2(num_ranks);
  // Class B: 512x256x256 complex grid; the FFT transpose is an alltoall of
  // the whole array, total/P^2 bytes per flow; ~92.5 Gop over 20 iterations.
  const double total_bytes = 512.0 * 256.0 * 256.0 * 16.0;
  AppKernel k;
  k.name = "FT";
  k.flops_per_iteration = 4.6e9;
  k.phases.push_back({all_to_all(p), total_bytes / (double(p) * p), 1});
  // The residual all-reduce (tiny, latency-only).
  for (std::uint32_t s = 0; (1U << s) < p; ++s) {
    k.phases.push_back({butterfly_stage(p, s), 16.0, 1});
  }
  return k;
}

AppKernel make_nas_cg(std::uint32_t num_ranks) {
  const std::uint32_t p = largest_pow2(num_ranks);
  // Class B: n = 75000; vector-segment swaps with transpose partners along
  // recursive-doubling stages; ~54.9 Gop over 75 iterations.
  AppKernel k;
  k.name = "CG";
  k.flops_per_iteration = 7.3e8;
  const double seg_bytes = 8.0 * 75000.0 / std::sqrt(double(p));
  for (std::uint32_t s = 0; (1U << s) < p; ++s) {
    k.phases.push_back({butterfly_stage(p, s), seg_bytes, 1});
  }
  return k;
}

AppKernel make_nas_mg(std::uint32_t num_ranks) {
  const std::uint32_t p = largest_pow2(num_ranks);
  std::uint32_t x, y, z;
  factor3(p, x, y, z);
  // Class B: 256^3 grid, V-cycle halos; coarser levels add roughly one more
  // finest-level exchange in total => repeat 2; ~58.7 Gop over 20 iterations.
  const double cells_per_rank = 256.0 * 256.0 * 256.0 / p;
  const double face_bytes = 8.0 * std::pow(cells_per_rank, 2.0 / 3.0);
  AppKernel k;
  k.name = "MG";
  k.flops_per_iteration = 2.9e9;
  k.phases.push_back({stencil3d(x, y, z), face_bytes, 2});
  return k;
}

AppKernel make_nas_lu(std::uint32_t num_ranks) {
  const std::uint32_t q = largest_square(num_ranks);
  // Class B: 102^3, SSOR wavefront pipeline on a 2-D grid: many small
  // north/east messages per sweep; ~1.19 Top over 250 iterations.
  const double n = 102.0;
  const double msg_bytes = 5.0 * 8.0 * (n / q) * 2.0;
  AppKernel k;
  k.name = "LU";
  k.flops_per_iteration = 4.8e9;
  k.phases.push_back({grid_shift(q, q, 1, 0), msg_bytes, q});
  k.phases.push_back({grid_shift(q, q, 0, 1), msg_bytes, q});
  return k;
}

std::uint32_t kernel_ranks(const AppKernel& kernel) {
  std::uint32_t max_rank = 0;
  for (const auto& phase : kernel.phases) {
    for (auto [a, b] : phase.pattern) {
      max_rank = std::max({max_rank, a, b});
    }
  }
  return max_rank + 1;
}

AppRunResult run_app_model(const Network& net, const RoutingTable& table,
                           const RankMap& map, const AppKernel& kernel,
                           const AppModelOptions& options,
                           const ExecContext& exec) {
  AppRunResult result;
  CongestionOptions copts;
  copts.link_capacity = options.link_bandwidth_bytes;
  std::vector<Flows> phase_flows;
  phase_flows.reserve(kernel.phases.size());
  for (const auto& phase : kernel.phases) {
    phase_flows.push_back(map.to_flows(phase.pattern));
  }
  const std::vector<PatternResult> sims =
      simulate_patterns(net, table, phase_flows, copts, exec);
  for (std::size_t i = 0; i < kernel.phases.size(); ++i) {
    if (phase_flows[i].empty()) continue;
    // Phases are synchronized: the slowest flow gates each repetition.
    const double once = options.message_latency_seconds +
                        kernel.phases[i].bytes_per_flow /
                            sims[i].min_flow_bandwidth;
    result.comm_seconds += once * kernel.phases[i].repeat;
  }
  const std::uint32_t p = map.num_ranks();
  result.compute_seconds = kernel.flops_per_iteration /
                           (double(p) * kernel.compute_flops_per_rank_per_second);
  result.seconds_per_iteration = result.comm_seconds + result.compute_seconds;
  result.gflops =
      kernel.flops_per_iteration / result.seconds_per_iteration / 1e9;
  return result;
}

}  // namespace dfsssp
