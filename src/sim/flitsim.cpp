#include "sim/flitsim.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

namespace dfsssp {

namespace {

struct Packet {
  NodeId dst;
  Layer vl;
  std::uint32_t flow;
};

}  // namespace

FlitSimResult simulate_flit_level(const Network& net, const RoutingTable& table,
                                  const Flows& flows,
                                  const FlitSimOptions& options, Rng& rng) {
  FlitSimResult result;
  const std::uint32_t num_vls = table.num_layers();
  const std::size_t num_channels = net.num_channels();

  // queue[c * num_vls + vl]: packets buffered at the downstream end of
  // channel c (meaningful only when the downstream node is a switch).
  std::vector<std::deque<Packet>> queue(num_channels * num_vls);
  auto qid = [&](ChannelId c, Layer vl) {
    return static_cast<std::size_t>(c) * num_vls + vl;
  };

  struct Source {
    NodeId src, dst;
    Layer vl;
    std::uint32_t remaining;
  };
  std::vector<Source> sources;
  std::vector<std::uint32_t> flow_delivered;
  std::vector<std::uint64_t> flow_done_cycle;
  std::uint64_t pending = 0;
  for (auto [src, dst] : flows) {
    if (src == dst) continue;
    const Layer vl = table.layer(net.switch_of(src), dst);
    sources.push_back({src, dst, vl, options.packets_per_flow});
    pending += options.packets_per_flow;
  }
  flow_delivered.assign(sources.size(), 0);
  flow_done_cycle.assign(sources.size(), 0);

  std::uint64_t in_flight = 0;
  std::vector<std::uint32_t> order(queue.size());
  std::iota(order.begin(), order.end(), 0U);
  std::vector<std::uint32_t> src_order(sources.size());
  std::iota(src_order.begin(), src_order.end(), 0U);
  // busy_until[c]: first cycle at which channel c can accept the next
  // packet; multi-flit packets occupy a channel for flits_per_packet cycles.
  std::vector<std::uint64_t> busy_until(num_channels, 0);
  const std::uint64_t occupancy = std::max<std::uint32_t>(1, options.flits_per_packet);
  std::uint64_t last_busy_cycle = 0;

  while (result.cycles < options.max_cycles) {
    ++result.cycles;
    std::uint64_t moved = 0;

    // Forward buffered packets (random arbitration order per cycle).
    rng.shuffle(order);
    for (std::uint32_t q : order) {
      auto& buf = queue[q];
      if (buf.empty()) continue;
      const ChannelId c = static_cast<ChannelId>(q / num_vls);
      const Packet pkt = buf.front();
      const NodeId sw = net.channel(c).dst;
      const ChannelId next = net.switch_of(pkt.dst) == sw
                                 ? net.ejection_channel(pkt.dst)
                                 : table.next(sw, pkt.dst);
      if (busy_until[next] >= result.cycles) continue;
      if (net.is_terminal(net.channel(next).dst)) {
        // Ejection: the terminal consumes the packet.
        busy_until[next] = result.cycles + occupancy - 1;
        --in_flight;
        ++result.delivered;
        ++moved;
        if (++flow_delivered[pkt.flow] == options.packets_per_flow) {
          flow_done_cycle[pkt.flow] = result.cycles;
        }
        buf.pop_front();
      } else if (queue[qid(next, pkt.vl)].size() < options.buffer_slots) {
        busy_until[next] = result.cycles + occupancy - 1;
        buf.pop_front();
        queue[qid(next, pkt.vl)].push_back(pkt);
        ++moved;
      }
    }

    // Inject new packets.
    rng.shuffle(src_order);
    for (std::uint32_t si : src_order) {
      Source& s = sources[si];
      if (s.remaining == 0) continue;
      const ChannelId inj = net.injection_channel(s.src);
      if (busy_until[inj] >= result.cycles ||
          queue[qid(inj, s.vl)].size() >= options.buffer_slots) {
        continue;
      }
      busy_until[inj] = result.cycles + occupancy - 1;
      queue[qid(inj, s.vl)].push_back({s.dst, s.vl, si});
      --s.remaining;
      --pending;
      ++in_flight;
      ++moved;
    }

    if (in_flight == 0 && pending == 0) {
      result.drained = true;
      break;
    }
    if (moved > 0) {
      last_busy_cycle = std::max(last_busy_cycle, result.cycles + occupancy - 1);
    } else if (result.cycles > last_busy_cycle) {
      // Nothing moved, no channel is still serializing a packet, and every
      // head packet and injection was offered a chance: the state can never
      // change again.
      result.deadlocked = true;
      break;
    }
  }
  result.in_flight_at_end = in_flight + pending;
  if (!sources.empty() && options.packets_per_flow > 0) {
    double sum = 0.0;
    std::size_t done = 0;
    for (std::size_t f = 0; f < sources.size(); ++f) {
      if (flow_done_cycle[f] > 0) {
        sum += double(options.packets_per_flow) / double(flow_done_cycle[f]);
        ++done;
      }
    }
    if (done > 0) result.avg_flow_throughput = sum / double(sources.size());
  }
  return result;
}

}  // namespace dfsssp
