// Congestion simulation over LMC multipath routings (see
// routing/multipath.hpp): flow i takes plane (i mod #planes), the
// round-robin path selection a source applies over a destination's LIDs.
#pragma once

#include <vector>

#include "routing/multipath.hpp"
#include "sim/congestion.hpp"
#include "traffic/patterns.hpp"

namespace dfsssp {

PatternResult simulate_pattern_multipath(const Network& net,
                                         const std::vector<RoutingTable>& planes,
                                         const Flows& flows,
                                         const CongestionOptions& options = {});

/// Same pattern-index seeding and ordered reduction as
/// effective_bisection_bandwidth: bitwise identical at any thread count.
EbbResult effective_bisection_bandwidth_multipath(
    const Network& net, const std::vector<RoutingTable>& planes,
    const RankMap& map, std::uint32_t num_patterns, Rng& rng,
    const CongestionOptions& options = {}, const ExecContext& exec = {});

}  // namespace dfsssp
