#include "sim/multipath_sim.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace dfsssp {

PatternResult simulate_pattern_multipath(const Network& net,
                                         const std::vector<RoutingTable>& planes,
                                         const Flows& flows,
                                         const CongestionOptions& options) {
  PatternResult result;
  if (flows.empty()) return result;

  std::vector<std::uint32_t> load(net.num_channels(), 0);
  std::vector<std::vector<ChannelId>> flow_paths(flows.size());
  std::vector<ChannelId> inter;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    const RoutingTable& plane = planes[f % planes.size()];
    auto [src, dst] = flows[f];
    auto& path = flow_paths[f];
    path.push_back(net.injection_channel(src));
    if (!plane.extract_path(net, net.switch_of(src), dst, inter)) {
      throw std::runtime_error("multipath: broken forwarding");
    }
    path.insert(path.end(), inter.begin(), inter.end());
    path.push_back(net.ejection_channel(dst));
    for (ChannelId c : path) ++load[c];
  }
  for (std::uint32_t l : load) {
    result.max_congestion = std::max(result.max_congestion, l);
  }
  double sum = 0.0, mn = std::numeric_limits<double>::infinity();
  for (const auto& path : flow_paths) {
    std::uint32_t worst = 1;
    for (ChannelId c : path) worst = std::max(worst, load[c]);
    const double bw = options.link_capacity / worst;
    sum += bw;
    mn = std::min(mn, bw);
  }
  result.avg_flow_bandwidth = sum / static_cast<double>(flows.size());
  result.min_flow_bandwidth = mn;
  return result;
}

EbbResult effective_bisection_bandwidth_multipath(
    const Network& net, const std::vector<RoutingTable>& planes,
    const RankMap& map, std::uint32_t num_patterns, Rng& rng,
    const CongestionOptions& options, const ExecContext& exec) {
  EbbResult out;
  out.min_pattern = std::numeric_limits<double>::infinity();
  const std::uint64_t base = rng.next();
  double sum = parallel_map_reduce(
      exec, num_patterns, 0.0,
      [&](std::size_t i) {
        Rng pattern_rng(stream_seed(base, i));
        Flows flows = map.to_flows(random_bisection(map.num_ranks(),
                                                    pattern_rng));
        return simulate_pattern_multipath(net, planes, flows, options)
            .avg_flow_bandwidth;
      },
      [&out](double acc, double avg) {
        out.min_pattern = std::min(out.min_pattern, avg);
        out.max_pattern = std::max(out.max_pattern, avg);
        return acc + avg;
      });
  out.ebb = num_patterns > 0 ? sum / num_patterns : 0.0;
  return out;
}

}  // namespace dfsssp
