#include "sim/congestion.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dfsssp {

namespace {

/// Full channel sequence of a flow, including injection and ejection.
void flow_channels(const Network& net, const RoutingTable& table, NodeId src,
                   NodeId dst, std::vector<ChannelId>& out) {
  out.clear();
  out.push_back(net.injection_channel(src));
  const NodeId src_sw = net.switch_of(src);
  std::vector<ChannelId> inter;
  if (!table.extract_path(net, src_sw, dst, inter)) {
    throw std::runtime_error("simulate_pattern: broken forwarding");
  }
  out.insert(out.end(), inter.begin(), inter.end());
  out.push_back(net.ejection_channel(dst));
}

}  // namespace

PatternResult simulate_pattern(const Network& net, const RoutingTable& table,
                               const Flows& flows,
                               const CongestionOptions& options) {
  PatternResult result;
  if (flows.empty()) return result;
  // One span per pattern (work item), never per pool chunk: the profile's
  // invocation count equals the pattern count at any --threads=N.
  TRACE_SPAN("sim/pattern");
  std::uint64_t freeze_rounds = 0;

  // Per-channel flow counts.
  std::vector<std::uint32_t> load(net.num_channels(), 0);
  std::vector<std::vector<ChannelId>> paths(flows.size());
  for (std::size_t f = 0; f < flows.size(); ++f) {
    flow_channels(net, table, flows[f].first, flows[f].second, paths[f]);
    for (ChannelId c : paths[f]) ++load[c];
  }
  for (std::uint32_t l : load) {
    result.max_congestion = std::max(result.max_congestion, l);
  }

  std::vector<double> bw(flows.size(), 0.0);
  if (options.metric == BandwidthMetric::kBottleneckShare) {
    for (std::size_t f = 0; f < flows.size(); ++f) {
      std::uint32_t worst = 1;
      for (ChannelId c : paths[f]) worst = std::max(worst, load[c]);
      bw[f] = options.link_capacity / worst;
    }
  } else {
    // Progressive filling: raise all unfrozen flows together; at each step
    // the tightest channel saturates and freezes its flows at the fair rate.
    //
    // Per freeze round only the channels still carrying an unfrozen flow
    // (`used`) and the unfrozen flows themselves (`alive`) are visited;
    // both lists compact as flows freeze, so a round costs O(used + alive)
    // instead of rescanning every channel and every flow. Both lists stay
    // in ascending order, which keeps the arithmetic (and therefore the
    // result bits) identical to the full-scan formulation.
    std::vector<double> remaining(net.num_channels(), options.link_capacity);
    std::vector<std::uint32_t> active(net.num_channels(), 0);
    for (const auto& p : paths) {
      for (ChannelId c : p) ++active[c];
    }
    std::vector<ChannelId> used;
    for (ChannelId c = 0; c < net.num_channels(); ++c) {
      if (active[c] > 0) used.push_back(c);
    }
    std::vector<std::uint32_t> alive(flows.size());
    for (std::uint32_t f = 0; f < flows.size(); ++f) alive[f] = f;
    while (!alive.empty()) {
      ++freeze_rounds;
      double tightest = std::numeric_limits<double>::infinity();
      for (ChannelId c : used) {
        tightest = std::min(tightest, remaining[c] / active[c]);
      }
      // Freeze every flow crossing a channel that saturates at `tightest`.
      std::size_t kept = 0;
      for (std::uint32_t f : alive) {
        bool saturated = false;
        for (ChannelId c : paths[f]) {
          if (active[c] > 0 &&
              remaining[c] / active[c] <= tightest * (1 + 1e-12)) {
            saturated = true;
            break;
          }
        }
        if (!saturated) {
          alive[kept++] = f;
          continue;
        }
        bw[f] += tightest;
        for (ChannelId c : paths[f]) {
          remaining[c] -= tightest;
          --active[c];
        }
      }
      if (kept == alive.size()) break;  // numerical safety net
      alive.resize(kept);
      // Unfrozen flows keep the allocation they accumulated so far.
      for (std::uint32_t f : alive) bw[f] += tightest;
      std::size_t used_kept = 0;
      for (ChannelId c : used) {
        if (active[c] == 0) continue;
        remaining[c] -= tightest * active[c];
        used[used_kept++] = c;
      }
      used.resize(used_kept);
    }
  }

  double sum = 0.0, mn = std::numeric_limits<double>::infinity();
  for (double b : bw) {
    sum += b;
    mn = std::min(mn, b);
  }
  result.avg_flow_bandwidth = sum / static_cast<double>(flows.size());
  result.min_flow_bandwidth = mn;

  // Pattern telemetry; recorded from worker threads, merged shard-wise.
  // All integer tallies over an index-identified work set, so readings are
  // thread-count invariant.
  static obs::Counter& c_patterns =
      obs::registry().counter("sim/patterns_simulated");
  static obs::Counter& c_rounds =
      obs::registry().counter("sim/freeze_rounds");
  static obs::Histogram& h_maxcong = obs::registry().histogram(
      "sim/max_congestion", {1, 2, 4, 8, 16, 32, 64, 128, 256});
  c_patterns.inc();
  if (freeze_rounds > 0) c_rounds.add(freeze_rounds);
  h_maxcong.record(result.max_congestion);
  PROF_COUNT("sim/patterns_simulated", 1);
  if (freeze_rounds > 0) PROF_COUNT("sim/freeze_rounds", freeze_rounds);
  return result;
}

LoadReport analyze_load(const Network& net, const RoutingTable& table,
                        const Flows& flows) {
  LoadReport report;
  std::vector<std::uint32_t> load(net.num_channels(), 0);
  std::vector<ChannelId> path;
  for (auto [src, dst] : flows) {
    flow_channels(net, table, src, dst, path);
    for (ChannelId c : path) ++load[c];
  }
  std::uint64_t fabric_sum = 0;
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    if (net.is_switch_channel(c)) {
      ++report.total_fabric_channels;
      if (load[c] > 0) {
        ++report.used_fabric_channels;
        fabric_sum += load[c];
        report.max_fabric_load = std::max(report.max_fabric_load, load[c]);
      }
    } else {
      report.max_terminal_load = std::max(report.max_terminal_load, load[c]);
    }
  }
  if (report.used_fabric_channels > 0) {
    report.avg_fabric_load =
        static_cast<double>(fabric_sum) / report.used_fabric_channels;
    report.imbalance = report.max_fabric_load / report.avg_fabric_load;
  }
  return report;
}

std::vector<PatternResult> simulate_patterns(const Network& net,
                                             const RoutingTable& table,
                                             const std::vector<Flows>& patterns,
                                             const CongestionOptions& options,
                                             const ExecContext& exec) {
  return parallel_map(exec, patterns.size(), [&](std::size_t i) {
    return simulate_pattern(net, table, patterns[i], options);
  });
}

EbbResult effective_bisection_bandwidth(const Network& net,
                                        const RoutingTable& table,
                                        const RankMap& map,
                                        std::uint32_t num_patterns, Rng& rng,
                                        const CongestionOptions& options,
                                        const ExecContext& exec) {
  EbbResult out;
  TRACE_SPAN("sim/ebb");
  static obs::Histogram& h_ebb_ns =
      obs::registry().timing_histogram("sim/ebb_ns");
  ScopedTimer phase_timer(h_ebb_ns);
  out.min_pattern = std::numeric_limits<double>::infinity();
  // One base value from the caller's stream; pattern i generates and
  // simulates with its own Rng seeded from (base, i), and the reduction
  // below runs in pattern order — bitwise identical at any thread count.
  const std::uint64_t base = rng.next();
  double sum = parallel_map_reduce(
      exec, num_patterns, 0.0,
      [&](std::size_t i) {
        Rng pattern_rng(stream_seed(base, i));
        Flows flows = map.to_flows(random_bisection(map.num_ranks(),
                                                    pattern_rng));
        return simulate_pattern(net, table, flows, options).avg_flow_bandwidth;
      },
      [&out](double acc, double avg) {
        out.min_pattern = std::min(out.min_pattern, avg);
        out.max_pattern = std::max(out.max_pattern, avg);
        return acc + avg;
      });
  out.ebb = num_patterns > 0 ? sum / num_patterns : 0.0;
  return out;
}

}  // namespace dfsssp
