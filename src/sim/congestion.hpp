// ORCS-style oblivious-routing congestion simulation (paper Section V).
//
// For a set of simultaneous flows, the simulator walks every flow's routed
// path (injection channel, inter-switch channels, ejection channel), counts
// the flows sharing each channel, and scores each flow by the most congested
// channel on its path: bandwidth = capacity / max_sharers. The effective
// bisection bandwidth is the mean flow bandwidth averaged over many random
// bisection patterns — exactly the paper's "relative effective bisection
// bandwidth" (1.0 = congestion-free).
//
// A max-min-fair mode (progressive filling) is provided as an extension;
// the paper's plots use the share metric.
#pragma once

#include <cstdint>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "routing/table.hpp"
#include "topology/network.hpp"
#include "traffic/patterns.hpp"

namespace dfsssp {

enum class BandwidthMetric : std::uint8_t {
  /// flow bw = capacity / (max #flows on any channel of the path).
  kBottleneckShare,
  /// Global max-min fairness via progressive filling.
  kMaxMinFair,
};

struct CongestionOptions {
  BandwidthMetric metric = BandwidthMetric::kBottleneckShare;
  /// Per-channel capacity; 1.0 gives relative bandwidths.
  double link_capacity = 1.0;
};

struct PatternResult {
  /// Mean over flows of the per-flow bandwidth.
  double avg_flow_bandwidth = 0.0;
  double min_flow_bandwidth = 0.0;
  /// Largest number of flows sharing one channel.
  std::uint32_t max_congestion = 0;
  /// Completion-time estimate for equal-size messages: every flow must move
  /// one message, the slowest flow dominates (used by the all-to-all and
  /// application models).
  double slowest_flow_time(double message_size) const {
    return min_flow_bandwidth > 0.0 ? message_size / min_flow_bandwidth : 0.0;
  }
};

/// Simulates one set of simultaneous flows.
PatternResult simulate_pattern(const Network& net, const RoutingTable& table,
                               const Flows& flows,
                               const CongestionOptions& options = {});

/// Simulates a batch of flow sets, one result per input set, in input order.
/// Patterns are independent, so they spread across `exec`'s threads; the
/// returned vector is identical at any thread count.
std::vector<PatternResult> simulate_patterns(
    const Network& net, const RoutingTable& table,
    const std::vector<Flows>& patterns, const CongestionOptions& options = {},
    const ExecContext& exec = {});

/// Per-channel load distribution of one flow set — the balancing quality
/// the weight updates of Algorithm 1 are after.
struct LoadReport {
  /// Highest flow count on any inter-switch channel / ejection channel.
  std::uint32_t max_fabric_load = 0;
  std::uint32_t max_terminal_load = 0;
  /// Mean load over inter-switch channels carrying at least one flow.
  double avg_fabric_load = 0.0;
  std::uint32_t used_fabric_channels = 0;
  std::uint32_t total_fabric_channels = 0;
  /// max_fabric_load / avg_fabric_load (1.0 = perfectly even).
  double imbalance = 0.0;
};

LoadReport analyze_load(const Network& net, const RoutingTable& table,
                        const Flows& flows);

struct EbbResult {
  /// Mean over patterns of avg_flow_bandwidth (the paper's eBB value).
  double ebb = 0.0;
  double min_pattern = 0.0;
  double max_pattern = 0.0;
};

/// Effective bisection bandwidth over `num_patterns` random bisections of
/// the ranks in `map` (use all terminals for the paper's Figures 4-6).
///
/// `rng` contributes a single base value; pattern i then draws from its own
/// stream seeded from (base, i) and the per-pattern results are reduced in
/// pattern order, so the outcome is bitwise identical at any thread count.
EbbResult effective_bisection_bandwidth(const Network& net,
                                        const RoutingTable& table,
                                        const RankMap& map,
                                        std::uint32_t num_patterns, Rng& rng,
                                        const CongestionOptions& options = {},
                                        const ExecContext& exec = {});

}  // namespace dfsssp
