#include "cdg/app.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace dfsssp::app {

namespace {

/// DFS acyclicity over an edge-set adjacency.
bool acyclic(std::uint32_t num_nodes,
             const std::map<Node, std::set<Node>>& adj) {
  std::vector<std::uint8_t> color(num_nodes, 0);
  std::vector<Node> order;  // iterative DFS with explicit finish handling
  for (const auto& [root, _] : adj) {
    if (color[root] != 0) continue;
    std::vector<std::pair<Node, std::size_t>> stack{{root, 0}};
    color[root] = 1;
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      auto it = adj.find(node);
      const std::set<Node>* succ = it == adj.end() ? nullptr : &it->second;
      if (succ == nullptr || idx >= succ->size()) {
        color[node] = 2;
        stack.pop_back();
        continue;
      }
      auto sit = succ->begin();
      std::advance(sit, static_cast<std::ptrdiff_t>(idx));
      ++idx;
      Node next = *sit;
      if (color[next] == 1) return false;
      if (color[next] == 0) {
        color[next] = 1;
        stack.emplace_back(next, 0);
      }
    }
  }
  return true;
}

std::map<Node, std::set<Node>> build_adj(
    const Instance& inst, std::span<const std::uint32_t> members) {
  std::map<Node, std::set<Node>> adj;
  for (std::uint32_t p : members) {
    const Path& path = inst.paths[p];
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      adj[path[i]].insert(path[i + 1]);
    }
  }
  return adj;
}

}  // namespace

bool union_is_acyclic(const Instance& inst,
                      std::span<const std::uint32_t> member_path_ids) {
  return acyclic(inst.num_nodes, build_adj(inst, member_path_ids));
}

bool is_cover(const Instance& inst, std::span<const std::uint32_t> assignment,
              std::uint32_t k) {
  if (assignment.size() != inst.paths.size()) return false;
  for (std::uint32_t c : assignment) {
    if (c >= k) return false;
  }
  for (std::uint32_t cls = 0; cls < k; ++cls) {
    std::vector<std::uint32_t> members;
    for (std::uint32_t p = 0; p < assignment.size(); ++p) {
      if (assignment[p] == cls) members.push_back(p);
    }
    if (!union_is_acyclic(inst, members)) return false;
  }
  return true;
}

namespace {

bool backtrack(const Instance& inst, std::uint32_t k,
               std::vector<std::uint32_t>& assignment, std::size_t next,
               std::uint32_t classes_open) {
  if (next == inst.paths.size()) return true;
  // Symmetry pruning: path `next` may join an open class or open exactly
  // the next fresh one.
  const std::uint32_t limit = std::min(k, classes_open + 1);
  for (std::uint32_t cls = 0; cls < limit; ++cls) {
    assignment[next] = cls;
    // Incremental feasibility: the class the path joined must stay acyclic.
    std::vector<std::uint32_t> members;
    for (std::size_t p = 0; p <= next; ++p) {
      if (assignment[p] == cls) members.push_back(static_cast<std::uint32_t>(p));
    }
    if (union_is_acyclic(inst, members) &&
        backtrack(inst, k, assignment, next + 1,
                  std::max(classes_open, cls + 1))) {
      return true;
    }
  }
  assignment[next] = 0;
  return false;
}

}  // namespace

std::uint32_t exact_min_layers(const Instance& inst, std::uint32_t max_k) {
  if (inst.paths.empty()) return 1;
  std::vector<std::uint32_t> assignment(inst.paths.size(), 0);
  for (std::uint32_t k = 1; k <= max_k; ++k) {
    if (backtrack(inst, k, assignment, 0, 0)) return k;
  }
  return 0;
}

std::uint32_t first_fit_layers(const Instance& inst, std::uint32_t max_k) {
  std::vector<std::vector<std::uint32_t>> classes;
  for (std::uint32_t p = 0; p < inst.paths.size(); ++p) {
    bool placed = false;
    for (auto& cls : classes) {
      cls.push_back(p);
      if (union_is_acyclic(inst, cls)) {
        placed = true;
        break;
      }
      cls.pop_back();
    }
    if (!placed) {
      if (classes.size() == max_k) return 0;
      classes.push_back({p});
      if (!union_is_acyclic(inst, classes.back())) return 0;  // self-cycle
    }
  }
  return static_cast<std::uint32_t>(std::max<std::size_t>(classes.size(), 1));
}

Instance reduction_from_coloring(
    std::uint32_t num_vertices,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> edges) {
  Instance inst;
  inst.paths.resize(num_vertices);
  // Node layout: per vertex one private node (so isolated vertices still
  // yield a non-empty path), then two nodes a_e, b_e per undirected edge.
  inst.num_nodes = num_vertices + 2 * static_cast<std::uint32_t>(edges.size());
  for (std::uint32_t v = 0; v < num_vertices; ++v) {
    inst.paths[v].push_back(v);
  }
  for (std::uint32_t e = 0; e < edges.size(); ++e) {
    const auto [v, w] = edges[e];
    const Node a = num_vertices + 2 * e;
    const Node b = a + 1;
    // The smaller endpoint traverses a then b, the larger b then a; any
    // partition putting p_v and p_w into one class closes the 2-cycle a<->b.
    inst.paths[std::min(v, w)].push_back(a);
    inst.paths[std::min(v, w)].push_back(b);
    inst.paths[std::max(v, w)].push_back(b);
    inst.paths[std::max(v, w)].push_back(a);
  }
  return inst;
}

namespace {

bool colorable(std::uint32_t num_vertices,
               const std::vector<std::vector<std::uint32_t>>& adj,
               std::uint32_t k, std::vector<std::uint32_t>& color,
               std::uint32_t v, std::uint32_t open) {
  if (v == num_vertices) return true;
  const std::uint32_t limit = std::min(k, open + 1);
  for (std::uint32_t c = 0; c < limit; ++c) {
    bool ok = true;
    for (std::uint32_t w : adj[v]) {
      if (w < v && color[w] == c) {
        ok = false;
        break;
      }
    }
    if (ok) {
      color[v] = c;
      if (colorable(num_vertices, adj, k, color, v + 1,
                    std::max(open, c + 1))) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

std::uint32_t chromatic_number(
    std::uint32_t num_vertices,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> edges,
    std::uint32_t max_k) {
  if (num_vertices == 0) return 1;
  std::vector<std::vector<std::uint32_t>> adj(num_vertices);
  for (auto [v, w] : edges) {
    adj[v].push_back(w);
    adj[w].push_back(v);
  }
  std::vector<std::uint32_t> color(num_vertices, 0);
  for (std::uint32_t k = 1; k <= max_k; ++k) {
    if (colorable(num_vertices, adj, k, color, 0, 0)) return k;
  }
  return 0;
}

}  // namespace dfsssp::app
