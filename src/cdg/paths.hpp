// A set of routed paths in channel-sequence form.
//
// This is the interchange format between the routing engines and the
// deadlock machinery: each path is the sequence of inter-switch channels a
// message traverses, keyed by (source switch, destination terminal) and
// weighted by the number of terminals on the source switch (destination-
// based forwarding makes all of them take the identical channel sequence,
// so one entry represents `weight` of the paper's |N|^2 terminal pairs).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace dfsssp {

class PathSet {
 public:
  /// Appends a path; `channels` may be empty (intra-switch traffic).
  void add(std::uint32_t src_switch_index, std::uint32_t dst_terminal_index,
           std::span<const ChannelId> channels, std::uint32_t weight = 1) {
    src_switch_.push_back(src_switch_index);
    dst_terminal_.push_back(dst_terminal_index);
    weight_.push_back(weight);
    channels_.insert(channels_.end(), channels.begin(), channels.end());
    offset_.push_back(static_cast<std::uint32_t>(channels_.size()));
  }

  std::size_t size() const { return src_switch_.size(); }
  bool empty() const { return src_switch_.empty(); }

  std::span<const ChannelId> channels(std::size_t p) const {
    return {channels_.data() + offset_[p], offset_[p + 1] - offset_[p]};
  }
  std::uint32_t src_switch_index(std::size_t p) const { return src_switch_[p]; }
  std::uint32_t dst_terminal_index(std::size_t p) const {
    return dst_terminal_[p];
  }
  std::uint32_t weight(std::size_t p) const { return weight_[p]; }

  /// Total number of channel entries across all paths.
  std::size_t total_channels() const { return channels_.size(); }

 private:
  std::vector<std::uint32_t> offset_{0};
  std::vector<ChannelId> channels_;
  std::vector<std::uint32_t> src_switch_;
  std::vector<std::uint32_t> dst_terminal_;
  std::vector<std::uint32_t> weight_;
};

}  // namespace dfsssp
