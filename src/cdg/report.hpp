// Introspection helpers for channel dependency graphs: per-layer statistics
// (how Algorithm 2 distributed the paths) and DOT export for visualizing a
// layer's CDG — the pictures in the paper's Figures 1-3, generated from a
// live routing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "cdg/paths.hpp"
#include "common/types.hpp"
#include "topology/network.hpp"

namespace dfsssp {

struct CdgLayerStats {
  Layer layer = 0;
  std::uint64_t paths = 0;        // paths assigned to this layer
  std::uint64_t weight = 0;       // terminal-pair weighted
  std::uint32_t nodes = 0;        // channels with at least one dependency
  std::uint32_t edges = 0;        // distinct dependency edges
  std::uint64_t max_edge_weight = 0;
};

/// One entry per layer 0..max(layer); empty layers included.
std::vector<CdgLayerStats> cdg_layer_stats(const PathSet& paths,
                                           std::span<const Layer> layer,
                                           std::uint32_t num_channels);

/// Writes one layer's CDG as a graphviz digraph. Channel nodes are labeled
/// "src->dst" using node names from `net`; edge labels carry the inducing
/// path weight.
void write_cdg_dot(const Network& net, const PathSet& paths,
                   std::span<const Layer> layer, Layer which,
                   std::ostream& out);

}  // namespace dfsssp
