#include "cdg/verify.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <set>

namespace dfsssp {

bool paths_are_acyclic(const PathSet& paths,
                       std::span<const std::uint32_t> members,
                       std::uint32_t num_channels) {
  // Adjacency as a set of edges (dumb and obviously correct).
  std::map<ChannelId, std::set<ChannelId>> adj;
  for (std::uint32_t p : members) {
    auto seq = paths.channels(p);
    for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
      adj[seq[i]].insert(seq[i + 1]);
    }
  }
  // Iterative three-color DFS.
  std::vector<std::uint8_t> color(num_channels, 0);
  std::vector<std::pair<ChannelId, std::set<ChannelId>::const_iterator>> stack;
  for (const auto& [root, _] : adj) {
    if (color[root] != 0) continue;
    color[root] = 1;
    stack.emplace_back(root, adj[root].begin());
    while (!stack.empty()) {
      auto& [node, it] = stack.back();
      auto list_it = adj.find(node);
      if (list_it == adj.end() || it == list_it->second.end()) {
        color[node] = 2;
        stack.pop_back();
        continue;
      }
      ChannelId next = *it;
      ++it;
      if (color[next] == 1) return false;
      if (color[next] == 0) {
        color[next] = 1;
        auto next_it = adj.find(next);
        stack.emplace_back(next, next_it == adj.end()
                                     ? std::set<ChannelId>::const_iterator{}
                                     : next_it->second.begin());
      }
    }
  }
  return true;
}

bool layering_is_deadlock_free(const PathSet& paths,
                               std::span<const Layer> layer,
                               std::uint32_t num_channels,
                               const ExecContext& exec) {
  if (layer.size() != paths.size()) return false;
  Layer max_layer = 0;
  for (std::uint32_t p = 0; p < paths.size(); ++p) {
    max_layer = std::max(max_layer, layer[p]);
  }
  std::vector<std::vector<std::uint32_t>> members(max_layer + 1);
  for (std::uint32_t p = 0; p < paths.size(); ++p) {
    members[layer[p]].push_back(p);
  }
  // One independent CDG build + cycle search per virtual layer.
  std::atomic<bool> all_acyclic{true};
  parallel_for(exec, members.size(), [&](std::size_t l) {
    if (!paths_are_acyclic(paths, members[l], num_channels)) {
      all_acyclic.store(false, std::memory_order_relaxed);
    }
  });
  return all_acyclic.load();
}

Layer count_used_layers(const PathSet& paths, std::span<const Layer> layer) {
  std::set<Layer> used;
  for (std::uint32_t p = 0; p < paths.size(); ++p) {
    if (!paths.channels(p).empty()) used.insert(layer[p]);
  }
  return used.empty() ? 1 : static_cast<Layer>(*used.rbegin() + 1);
}

}  // namespace dfsssp
