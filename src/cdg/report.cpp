#include "cdg/report.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>

namespace dfsssp {

std::vector<CdgLayerStats> cdg_layer_stats(const PathSet& paths,
                                           std::span<const Layer> layer,
                                           std::uint32_t num_channels) {
  (void)num_channels;
  Layer max_layer = 0;
  for (std::uint32_t p = 0; p < paths.size(); ++p) {
    max_layer = std::max(max_layer, layer[p]);
  }
  std::vector<CdgLayerStats> stats(static_cast<std::size_t>(max_layer) + 1);
  std::vector<std::map<std::pair<ChannelId, ChannelId>, std::uint64_t>> edges(
      stats.size());
  std::vector<std::set<ChannelId>> nodes(stats.size());
  for (std::uint32_t p = 0; p < paths.size(); ++p) {
    const Layer l = layer[p];
    stats[l].layer = l;
    auto seq = paths.channels(p);
    if (seq.empty()) continue;
    ++stats[l].paths;
    stats[l].weight += paths.weight(p);
    for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
      edges[l][{seq[i], seq[i + 1]}] += paths.weight(p);
      nodes[l].insert(seq[i]);
      nodes[l].insert(seq[i + 1]);
    }
  }
  for (std::size_t l = 0; l < stats.size(); ++l) {
    stats[l].layer = static_cast<Layer>(l);
    stats[l].nodes = static_cast<std::uint32_t>(nodes[l].size());
    stats[l].edges = static_cast<std::uint32_t>(edges[l].size());
    for (const auto& [edge, w] : edges[l]) {
      stats[l].max_edge_weight = std::max(stats[l].max_edge_weight, w);
    }
  }
  return stats;
}

void write_cdg_dot(const Network& net, const PathSet& paths,
                   std::span<const Layer> layer, Layer which,
                   std::ostream& out) {
  std::map<std::pair<ChannelId, ChannelId>, std::uint64_t> edges;
  std::set<ChannelId> nodes;
  for (std::uint32_t p = 0; p < paths.size(); ++p) {
    if (layer[p] != which) continue;
    auto seq = paths.channels(p);
    for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
      edges[{seq[i], seq[i + 1]}] += paths.weight(p);
      nodes.insert(seq[i]);
      nodes.insert(seq[i + 1]);
    }
  }
  auto label = [&](ChannelId c) {
    const Channel& ch = net.channel(c);
    return net.node_name(ch.src) + "->" + net.node_name(ch.dst);
  };
  out << "digraph cdg_layer_" << unsigned(which) << " {\n";
  for (ChannelId c : nodes) {
    out << "  \"" << label(c) << "\";\n";
  }
  for (const auto& [edge, weight] : edges) {
    out << "  \"" << label(edge.first) << "\" -> \"" << label(edge.second)
        << "\" [label=\"" << weight << "\"];\n";
  }
  out << "}\n";
}

}  // namespace dfsssp
