#include "cdg/cdg.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <stdexcept>

#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dfsssp {

// ---- Cdg --------------------------------------------------------------------

Cdg::Cdg(const PathSet& paths, std::span<const std::uint32_t> members,
         std::uint32_t num_channels)
    : num_channels_(num_channels) {
  in_cdg_.assign(paths.size(), 0);

  // Collect (u, v, path) triples for every consecutive channel pair.
  struct Triple {
    ChannelId u, v;
    std::uint32_t p;
  };
  std::vector<Triple> triples;
  alive_members_ = static_cast<std::uint32_t>(members.size());
  for (std::uint32_t p : members) {
    in_cdg_[p] = 1;
    auto seq = paths.channels(p);
    for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
      triples.push_back({seq[i], seq[i + 1], p});
    }
  }
  std::sort(triples.begin(), triples.end(),
            [](const Triple& a, const Triple& b) {
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });

  offset_.assign(num_channels_ + 1, 0);
  path_refs_.reserve(triples.size());
  for (std::size_t i = 0; i < triples.size();) {
    std::size_t j = i;
    Edge e;
    e.to = triples[i].v;
    e.path_begin = static_cast<std::uint32_t>(path_refs_.size());
    while (j < triples.size() && triples[j].u == triples[i].u &&
           triples[j].v == triples[i].v) {
      path_refs_.push_back(triples[j].p);
      e.alive_weight += paths.weight(triples[j].p);
      ++j;
    }
    e.path_count = static_cast<std::uint32_t>(j - i);
    e.alive_count = e.path_count;
    edge_src_.push_back(triples[i].u);
    edges_.push_back(e);
    ++offset_[triples[i].u + 1];
    i = j;
  }
  for (std::uint32_t u = 0; u < num_channels_; ++u) {
    offset_[u + 1] += offset_[u];
  }
}

std::span<const std::uint32_t> Cdg::edge_paths(std::uint32_t edge_index) const {
  const Edge& e = edges_[edge_index];
  return {path_refs_.data() + e.path_begin, e.path_count};
}

std::vector<std::uint32_t> Cdg::alive_paths(std::uint32_t edge_index) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t p : edge_paths(edge_index)) {
    if (in_cdg_[p]) out.push_back(p);
  }
  return out;
}

std::uint32_t Cdg::find_edge(ChannelId u, ChannelId v) const {
  std::uint32_t lo = offset_[u], hi = offset_[u + 1];
  while (lo < hi) {
    std::uint32_t mid = lo + (hi - lo) / 2;
    if (edges_[mid].to < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  assert(lo < offset_[u + 1] && edges_[lo].to == v);
  return lo;
}

void Cdg::remove_path(const PathSet& paths, std::uint32_t p) {
  assert(in_cdg_[p]);
  in_cdg_[p] = 0;
  --alive_members_;
  auto seq = paths.channels(p);
  const std::uint32_t w = paths.weight(p);
  for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
    Edge& e = edges_[find_edge(seq[i], seq[i + 1])];
    assert(e.alive_count > 0);
    --e.alive_count;
    e.alive_weight -= w;
  }
}

bool Cdg::empty_alive() const {
  for (const Edge& e : edges_) {
    if (e.alive_count > 0) return false;
  }
  return true;
}

// ---- CycleFinder ------------------------------------------------------------

CycleFinder::CycleFinder(const Cdg& cdg) : cdg_(cdg) {
  color_.assign(cdg.num_nodes(), 0);
  stack_pos_.assign(cdg.num_nodes(), kNone);
}

void CycleFinder::push(ChannelId node, std::uint32_t entry_edge) {
  color_[node] = 1;
  stack_pos_[node] = static_cast<std::uint32_t>(stack_.size());
  stack_.push_back({node, cdg_.first_edge(node), entry_edge});
}

void CycleFinder::pop_whiten() {
  const Frame& f = stack_.back();
  color_[f.node] = 0;
  stack_pos_[f.node] = kNone;
  stack_.pop_back();
}

bool CycleFinder::next_cycle(std::vector<std::uint32_t>& cycle_edges) {
  cycle_edges.clear();
  for (;;) {
    if (stack_.empty()) {
      while (next_root_ < cdg_.num_nodes() && color_[next_root_] != 0) {
        ++next_root_;
      }
      if (next_root_ >= cdg_.num_nodes()) return false;
      push(next_root_, kNone);
    }
    Frame& f = stack_.back();
    const std::uint32_t end = cdg_.first_edge(f.node) +
        static_cast<std::uint32_t>(cdg_.out_edges(f.node).size());
    bool descended = false;
    while (f.cursor < end) {
      ++steps_;
      const std::uint32_t eidx = f.cursor;
      const Cdg::Edge& e = cdg_.edge(eidx);
      if (e.alive_count == 0) {
        ++f.cursor;
        continue;
      }
      if (color_[e.to] == 1) {
        // Found a cycle: tree edges from e.to's stack frame downward, plus
        // the closing edge. Do not advance the cursor — after the caller's
        // cut either this edge is dead (skipped next time) or the stack was
        // repaired.
        for (std::uint32_t s = stack_pos_[e.to] + 1; s < stack_.size(); ++s) {
          cycle_edges.push_back(stack_[s].entry_edge);
        }
        cycle_edges.push_back(eidx);
        return true;
      }
      if (color_[e.to] == 2) {
        ++f.cursor;
        continue;
      }
      ++f.cursor;
      push(e.to, eidx);
      descended = true;
      break;
    }
    if (descended) continue;
    if (f.cursor >= end) {
      color_[f.node] = 2;  // fully explored, cannot lie on a future cycle
      stack_pos_[f.node] = kNone;
      stack_.pop_back();
    }
  }
}

void CycleFinder::repair() {
  // Find the shallowest frame whose tree entry edge died; everything from
  // there up was reached through a removed dependency and must be re-opened.
  std::size_t bad = stack_.size();
  for (std::size_t i = 1; i < stack_.size(); ++i) {
    if (cdg_.edge(stack_[i].entry_edge).alive_count == 0) {
      bad = i;
      break;
    }
  }
  while (stack_.size() > bad) pop_whiten();
}

// ---- offline layer assignment ----------------------------------------------

const char* to_string(CycleHeuristic h) {
  switch (h) {
    case CycleHeuristic::kWeakestEdge: return "weakest-edge";
    case CycleHeuristic::kHeaviestEdge: return "heaviest-edge";
    case CycleHeuristic::kFirstEdge: return "first-edge";
  }
  return "?";
}

namespace {

constexpr std::uint32_t kNoEdge = 0xFFFFFFFFu;

std::uint32_t pick_cycle_edge(const Cdg& cdg,
                              std::span<const std::uint32_t> cycle,
                              CycleHeuristic heuristic) {
  // Progress guard: an edge induced by *every* alive path would move the
  // whole layer forward unchanged and livelock the heaviest-edge heuristic
  // across layers. Every cycle has an edge induced by a strict subset (a
  // simple path cannot contain a complete cycle), so restrict to those.
  auto makes_progress = [&](std::uint32_t eidx) {
    return cdg.edge(eidx).alive_count < cdg.alive_members();
  };
  std::uint32_t best = kNoEdge;
  for (std::uint32_t eidx : cycle) {
    if (!makes_progress(eidx)) continue;
    if (best == kNoEdge) {
      best = eidx;
      if (heuristic == CycleHeuristic::kFirstEdge) return best;
      continue;
    }
    const std::uint64_t w = cdg.edge(eidx).alive_weight;
    const std::uint64_t bw = cdg.edge(best).alive_weight;
    if (heuristic == CycleHeuristic::kWeakestEdge ? (w < bw) : (w > bw)) {
      best = eidx;
    }
  }
  return best == kNoEdge ? cycle.front() : best;
}

}  // namespace

LayerResult assign_layers_offline(const PathSet& paths,
                                  std::uint32_t num_channels,
                                  const LayerOptions& options) {
  LayerResult result;
  result.layer.assign(paths.size(), 0);
  if (options.max_layers == 0) {
    result.error = "max_layers must be >= 1";
    return result;
  }

  // Paths shorter than two channels induce no dependencies; they stay in
  // layer 0 and never appear in any CDG.
  std::vector<std::uint32_t> members;
  for (std::uint32_t p = 0; p < paths.size(); ++p) {
    if (paths.channels(p).size() >= 2) members.push_back(p);
  }

  // Registry telemetry for the cycle-breaking loop — the numbers behind the
  // paper's Figures 7-10. Aggregated in locals and flushed once per call.
  std::uint64_t cycles_found = 0, paths_migrated = 0;
  static obs::Histogram& h_migration_layer = obs::registry().histogram(
      "cdg/migration_target_layer",
      {1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16});

  std::vector<std::uint32_t> cycle;
  Layer layers_used = 1;
  for (Layer l = 0; l < options.max_layers; ++l) {
    if (members.empty()) break;
    layers_used = static_cast<Layer>(l + 1);
    TRACE_SPAN("dfsssp/cycle_search");
    static obs::Histogram& h_cycle_search_ns =
        obs::registry().timing_histogram("cdg/cycle_search_ns");
    ScopedTimer phase_timer(h_cycle_search_ns);
    Cdg cdg(paths, members, num_channels);
    CycleFinder finder(cdg);
    std::vector<std::uint32_t> moved;
    std::uint64_t layer_cycles = 0;
    while (finder.next_cycle(cycle)) {
      ++cycles_found;
      ++layer_cycles;
      if (l + 1 >= options.max_layers) {
        result.error = "cycle remains in the last virtual layer (" +
                       std::to_string(options.max_layers) +
                       " layers are not enough)";
        return result;
      }
      const std::uint32_t cut = pick_cycle_edge(cdg, cycle, options.heuristic);
      for (std::uint32_t p : cdg.alive_paths(cut)) {
        cdg.remove_path(paths, p);
        result.layer[p] = static_cast<Layer>(l + 1);
        moved.push_back(p);
      }
      ++result.cycles_broken;
      h_migration_layer.record(static_cast<std::uint64_t>(l) + 1);
      finder.repair();
    }
    paths_migrated += moved.size();
    // Deterministic search cost for this layer, counted in registry totals
    // and attributed to the enclosing dfsssp/cycle_search span: DFS edge
    // examinations plus the CDG edges materialised for this layer's build.
    static obs::Counter& c_steps =
        obs::registry().counter("cdg/cycle_search_steps");
    static obs::Counter& c_inserts =
        obs::registry().counter("cdg/edge_insertions");
    c_steps.add(finder.steps());
    c_inserts.add(cdg.num_edges());
    PROF_COUNT("cdg/cycle_search_steps", finder.steps());
    PROF_COUNT("cdg/edge_insertions", cdg.num_edges());
    PROF_COUNT("cdg/cycles_found", layer_cycles);
    PROF_COUNT("cdg/paths_migrated", moved.size());
    members = std::move(moved);
  }

  result.layers_used = layers_used;
  if (options.balance && layers_used < options.max_layers) {
    result.layers_used =
        balance_layers(paths, result.layer, layers_used, options.max_layers);
  }

  static obs::Counter& c_cycles = obs::registry().counter("cdg/cycles_found");
  static obs::Counter& c_migrated =
      obs::registry().counter("cdg/paths_migrated");
  c_cycles.add(cycles_found);
  c_migrated.add(paths_migrated);
  // Edges broken, attributed to the heuristic that chose them (== cycles
  // broken: one cut edge per cycle).
  obs::registry()
      // One name per Heuristic enum value: cardinality is bounded by the
      // enum, not by input data.
      // NOLINTNEXTLINE(dfs-metric-name-literal): bounded by Heuristic enum
      .counter(std::string("cdg/edges_broken/") + to_string(options.heuristic))
      .add(result.cycles_broken);
  // Final per-layer occupancy (after balancing when enabled): one recorded
  // sample per used layer, valued at the layer's member count.
  static obs::Histogram& h_occupancy = obs::registry().histogram(
      "cdg/layer_occupancy", obs::exponential_buckets(1, 4.0, 10));
  std::vector<std::uint64_t> occupancy(result.layers_used, 0);
  for (std::uint32_t p = 0; p < paths.size(); ++p) {
    if (paths.channels(p).empty()) continue;
    ++occupancy[result.layer[p]];
  }
  for (std::uint64_t o : occupancy) h_occupancy.record(o);

  result.ok = true;
  return result;
}

Layer balance_layers(const PathSet& paths, std::vector<Layer>& layer,
                     Layer layers_used, Layer max_layers) {
  if (layers_used >= max_layers) return layers_used;

  // Member lists and weighted loads per used layer.
  std::vector<std::vector<std::uint32_t>> members(layers_used);
  std::vector<std::uint64_t> load(layers_used, 0);
  for (std::uint32_t p = 0; p < paths.size(); ++p) {
    if (paths.channels(p).empty()) continue;  // intra-switch: layer is moot
    members[layer[p]].push_back(p);
    load[layer[p]] += paths.weight(p);
  }

  // Give each empty layer to the used layer with the highest per-share load.
  std::vector<std::uint32_t> shares(layers_used, 1);
  for (Layer extra = layers_used; extra < max_layers; ++extra) {
    std::size_t best = 0;
    double best_share = -1.0;
    for (std::size_t i = 0; i < shares.size(); ++i) {
      double share = static_cast<double>(load[i]) / shares[i];
      if (share > best_share) {
        best_share = share;
        best = i;
      }
    }
    ++shares[best];
  }

  // Split each layer's member list into `shares` weight-balanced chunks and
  // move every chunk but the first onto a fresh (previously empty) layer.
  // A subset of an acyclic path set stays acyclic, so no re-search needed.
  Layer next_free = layers_used;
  for (Layer l = 0; l < layers_used; ++l) {
    if (shares[l] <= 1) continue;
    const std::uint64_t target = (load[l] + shares[l] - 1) / shares[l];
    std::uint64_t acc = 0;
    std::uint32_t chunk = 0;
    for (std::uint32_t p : members[l]) {
      if (acc >= target * (chunk + 1) && chunk + 1 < shares[l]) ++chunk;
      if (chunk > 0) layer[p] = static_cast<Layer>(next_free + chunk - 1);
      acc += paths.weight(p);
    }
    next_free = static_cast<Layer>(next_free + shares[l] - 1);
  }
  return next_free;
}

}  // namespace dfsssp
