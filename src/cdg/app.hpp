// The Acyclic Path Partitioning (APP) problem, abstractly (paper §III-A).
//
// Instance: a generator P of paths over the nodes of a directed graph and an
// integer k. Question: can P be partitioned into k classes such that each
// class induces an acyclic graph? The paper proves the decision problem
// NP-complete by reduction from graph k-coloring (Theorem 1).
//
// This module provides:
//  * an exact exponential solver (for small instances) used to measure the
//    optimality gap of the practical heuristics;
//  * a greedy first-fit upper bound;
//  * the k-coloring reduction, so tests can exercise the NP-completeness
//    argument constructively: a graph is k-colorable iff the reduced APP
//    instance admits a k-cover.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace dfsssp::app {

using Node = std::uint32_t;
using Path = std::vector<Node>;

struct Instance {
  std::uint32_t num_nodes = 0;
  std::vector<Path> paths;
};

/// True when the union of the given paths' edges is acyclic.
bool union_is_acyclic(const Instance& inst,
                      std::span<const std::uint32_t> member_path_ids);

/// True when `assignment` (one class id per path, values < k) is a k-cover.
bool is_cover(const Instance& inst, std::span<const std::uint32_t> assignment,
              std::uint32_t k);

/// Exact minimum number of classes via backtracking with symmetry pruning
/// (a path may open at most one new class). Returns 0 when no cover with
/// <= max_k classes exists. Exponential — small instances only.
std::uint32_t exact_min_layers(const Instance& inst, std::uint32_t max_k);

/// Greedy first-fit upper bound; returns 0 when max_k is exceeded.
std::uint32_t first_fit_layers(const Instance& inst, std::uint32_t max_k);

/// Theorem 1's polynomial transformation: undirected graph -> APP instance
/// with one path per vertex, such that the graph is k-colorable iff the
/// instance has a k-cover. For each edge {v,w} the instance has two nodes
/// a,b; p_v traverses a then b and p_w traverses b then a, so paths of
/// adjacent vertices close a 2-cycle while paths of an independent set are
/// node-disjoint.
Instance reduction_from_coloring(
    std::uint32_t num_vertices,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> edges);

/// Brute-force chromatic number (tests only). Returns 0 when > max_k.
std::uint32_t chromatic_number(
    std::uint32_t num_vertices,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> edges,
    std::uint32_t max_k);

}  // namespace dfsssp::app
