#include "cdg/online.hpp"

#include <algorithm>
#include <cassert>

namespace dfsssp {

namespace {

/// Sorted-adjacency lookup; returns index or size() when absent.
std::size_t find_adj(const std::vector<OnlineCdg::Adj>& list, ChannelId to);

}  // namespace

OnlineCdg::OnlineCdg(std::uint32_t num_channels)
    : out_(num_channels), in_(num_channels), ord_(num_channels),
      mark_(num_channels, 0) {
  for (std::uint32_t i = 0; i < num_channels; ++i) ord_[i] = i;
}

namespace {

std::size_t find_adj(const std::vector<OnlineCdg::Adj>& list, ChannelId to) {
  auto it = std::lower_bound(
      list.begin(), list.end(), to,
      [](const OnlineCdg::Adj& a, ChannelId t) { return a.to < t; });
  if (it == list.end() || it->to != to) return list.size();
  return static_cast<std::size_t>(it - list.begin());
}

void insert_adj(std::vector<OnlineCdg::Adj>& list, ChannelId to) {
  auto it = std::lower_bound(
      list.begin(), list.end(), to,
      [](const OnlineCdg::Adj& a, ChannelId t) { return a.to < t; });
  list.insert(it, {to, 1});
}

void erase_adj(std::vector<OnlineCdg::Adj>& list, ChannelId to) {
  std::size_t i = find_adj(list, to);
  assert(i < list.size());
  if (--list[i].refcount == 0) {
    list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

}  // namespace

bool OnlineCdg::has_edge(ChannelId u, ChannelId v) const {
  return find_adj(out_[u], v) < out_[u].size();
}

std::vector<ChannelId> OnlineCdg::topological_order() const {
  std::vector<ChannelId> order;
  for (ChannelId c = 0; c < out_.size(); ++c) {
    if (!out_[c].empty() || !in_[c].empty()) order.push_back(c);
  }
  std::sort(order.begin(), order.end(),
            [&](ChannelId a, ChannelId b) { return ord_[a] < ord_[b]; });
  return order;
}

bool OnlineCdg::add_edge(ChannelId u, ChannelId v) {
  if (u == v) return false;
  std::size_t i = find_adj(out_[u], v);
  if (i < out_[u].size()) {  // already present, just bump refcounts
    ++out_[u][i].refcount;
    ++in_[v][find_adj(in_[v], u)].refcount;
    return true;
  }
  if (ord_[u] > ord_[v] && !reorder(u, v)) return false;
  insert_adj(out_[u], v);
  insert_adj(in_[v], u);
  ++num_edges_;
  ++num_insertions_;
  return true;
}

void OnlineCdg::remove_edge(ChannelId u, ChannelId v) {
  const bool last = out_[u][find_adj(out_[u], v)].refcount == 1;
  erase_adj(out_[u], v);
  erase_adj(in_[v], u);
  if (last) --num_edges_;
}

bool OnlineCdg::reorder(ChannelId u, ChannelId v) {
  ++num_reorders_;
  // Because every existing edge (a,b) satisfies ord_[a] < ord_[b], any
  // directed path has strictly increasing order values; both searches stay
  // inside the affected window [ord_[v], ord_[u]] automatically.
  const std::uint32_t ub = ord_[u];
  const std::uint32_t lb = ord_[v];

  std::vector<ChannelId> fwd{v}, stack{v};
  mark_[v] = 1;
  bool cycle = false;
  while (!stack.empty() && !cycle) {
    ChannelId w = stack.back();
    stack.pop_back();
    for (const Adj& a : out_[w]) {
      if (a.to == u) {
        cycle = true;  // v reaches u, so edge (u,v) would close a cycle
        break;
      }
      if (!mark_[a.to] && ord_[a.to] < ub) {
        mark_[a.to] = 1;
        fwd.push_back(a.to);
        stack.push_back(a.to);
      }
    }
  }
  if (cycle) {
    for (ChannelId w : fwd) mark_[w] = 0;
    return false;
  }

  std::vector<ChannelId> bwd{u};
  stack.assign(1, u);
  mark_[u] = 2;
  while (!stack.empty()) {
    ChannelId w = stack.back();
    stack.pop_back();
    for (const Adj& a : in_[w]) {
      assert(mark_[a.to] != 1);  // overlap with fwd would be a missed cycle
      if (!mark_[a.to] && ord_[a.to] > lb) {
        mark_[a.to] = 2;
        bwd.push_back(a.to);
        stack.push_back(a.to);
      }
    }
  }

  // Reassign the union's order slots: the backward region (ending in u)
  // first, then the forward region (starting at v).
  auto by_ord = [this](ChannelId a, ChannelId b) { return ord_[a] < ord_[b]; };
  std::sort(fwd.begin(), fwd.end(), by_ord);
  std::sort(bwd.begin(), bwd.end(), by_ord);
  std::vector<std::uint32_t> pool;
  pool.reserve(fwd.size() + bwd.size());
  for (ChannelId w : fwd) pool.push_back(ord_[w]);
  for (ChannelId w : bwd) pool.push_back(ord_[w]);
  std::sort(pool.begin(), pool.end());
  std::size_t idx = 0;
  for (ChannelId w : bwd) ord_[w] = pool[idx++];
  for (ChannelId w : fwd) ord_[w] = pool[idx++];

  for (ChannelId w : fwd) mark_[w] = 0;
  for (ChannelId w : bwd) mark_[w] = 0;
  return true;
}

bool OnlineCdg::try_add_path(std::span<const ChannelId> channels) {
  std::size_t added = 0;
  bool ok = true;
  for (std::size_t i = 0; i + 1 < channels.size(); ++i) {
    if (!add_edge(channels[i], channels[i + 1])) {
      ok = false;
      break;
    }
    ++added;
  }
  if (!ok) {
    for (std::size_t i = 0; i < added; ++i) {
      remove_edge(channels[i], channels[i + 1]);
    }
    return false;
  }
  ++num_paths_;
  return true;
}

void OnlineCdg::remove_path(std::span<const ChannelId> channels) {
  for (std::size_t i = 0; i + 1 < channels.size(); ++i) {
    remove_edge(channels[i], channels[i + 1]);
  }
  --num_paths_;
}

}  // namespace dfsssp
