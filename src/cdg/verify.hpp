// Independent deadlock-freedom verification.
//
// Deliberately implemented without reusing CycleFinder's resumable search:
// a straightforward iterative DFS per layer, so tests can cross-check the
// production machinery against a dumb oracle.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cdg/paths.hpp"
#include "common/parallel.hpp"
#include "common/types.hpp"

namespace dfsssp {

/// True when the directed graph induced by the given paths is acyclic.
/// Nodes are channels; edges are consecutive channel pairs of each path.
bool paths_are_acyclic(const PathSet& paths,
                       std::span<const std::uint32_t> members,
                       std::uint32_t num_channels);

/// True when every layer's CDG is acyclic for the given assignment —
/// the paper's (sufficient) deadlock-freedom condition. Layers are
/// independent, so each layer's CDG is built and searched on its own
/// thread under `exec`.
bool layering_is_deadlock_free(const PathSet& paths,
                               std::span<const Layer> layer,
                               std::uint32_t num_channels,
                               const ExecContext& exec = {});

/// Number of distinct layers carrying at least one dependency-inducing path.
Layer count_used_layers(const PathSet& paths, std::span<const Layer> layer);

}  // namespace dfsssp
