// Incremental (online) channel dependency graph.
//
// The paper's first approach — and LASH — assign each path to a layer by
// checking, per path, that its dependency edges keep the layer's CDG
// acyclic. A fresh depth-first search per path makes that
// O(|N|^2 * (|C|+|E|)) (Section IV). We instead maintain a topological
// order with the Pearce-Kelly algorithm: inserting an edge (u,v) does work
// only when ord(v) < ord(u), and only within the affected region, which
// keeps the online assignment practical while remaining exact.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace dfsssp {

class OnlineCdg {
 public:
  struct Adj {
    ChannelId to;
    std::uint32_t refcount;
  };

  explicit OnlineCdg(std::uint32_t num_channels);

  /// Adds the dependency edges of one path (consecutive channel pairs).
  /// Returns true and commits when the graph stays acyclic; returns false
  /// and rolls back every edge of this call otherwise.
  bool try_add_path(std::span<const ChannelId> channels);

  /// Removes a previously committed path's edges (refcount-decrement).
  /// Used to roll back multi-path transactions (e.g. LASH's bidirectional
  /// switch-pair assignment).
  void remove_path(std::span<const ChannelId> channels);

  std::uint64_t num_paths() const { return num_paths_; }
  std::uint64_t num_edges() const { return num_edges_; }
  /// Monotonic count of distinct edge materialisations (num_edges_ goes
  /// down on removals; this never does) — the deterministic insertion work
  /// the profiler attributes to the enclosing span.
  std::uint64_t num_insertions() const { return num_insertions_; }
  /// Pearce-Kelly reorder passes run so far (the non-trivial acyclicity
  /// checks); exposed so callers can flush it into the obs registry.
  std::uint64_t num_reorders() const { return num_reorders_; }

  /// Exposed for tests: true when (u,v) is currently present.
  bool has_edge(ChannelId u, ChannelId v) const;

  /// Channels currently participating in at least one dependency edge,
  /// sorted by the maintained order — a valid topological order of the
  /// CDG (the Pearce-Kelly invariant), ready to serve as a certificate
  /// layer without re-running Kahn over the whole graph.
  std::vector<ChannelId> topological_order() const;

 private:
  /// Returns false when the edge would close a cycle (nothing inserted).
  bool add_edge(ChannelId u, ChannelId v);
  void remove_edge(ChannelId u, ChannelId v);

  /// Pearce-Kelly reorder after inserting (u,v) with ord_[v] < ord_[u].
  /// Returns false when v reaches u (cycle).
  bool reorder(ChannelId u, ChannelId v);

  // Sorted-by-`to` adjacency per node; refcounted because many paths can
  // induce the same dependency edge.
  std::vector<std::vector<Adj>> out_;
  std::vector<std::vector<Adj>> in_;
  std::vector<std::uint32_t> ord_;    // topological order, a permutation
  std::vector<std::uint8_t> mark_;    // scratch for the reorder DFS
  std::uint64_t num_paths_ = 0;
  std::uint64_t num_edges_ = 0;
  std::uint64_t num_insertions_ = 0;
  std::uint64_t num_reorders_ = 0;
};

}  // namespace dfsssp
