// Channel dependency graph (CDG) and the offline layer-assignment algorithm.
//
// Following Dally/Seitz, the CDG of a routing has one node per (inter-switch)
// channel and an edge (c_i, c_j) whenever some routed path uses c_i directly
// before c_j. A routing is deadlock-free if every virtual layer's CDG is
// acyclic (sufficient condition; Section III of the paper).
//
// The offline algorithm (paper Algorithm 2) puts all paths into layer 0,
// searches the layer's CDG for a cycle, breaks the cycle by moving every
// path that induces one chosen cycle edge into the next layer, and resumes
// the *same* depth-first search — edge removals never create cycles, so the
// search state stays valid after a repair step. Each layer therefore costs
// one (resumable) cycle search, which is what makes the offline algorithm
// scale (Section IV: 170 s instead of 2 h on a 4096-node network).
//
// Cycle-edge choice implements the paper's three heuristics: weakest edge
// (fewest inducing paths — the recommended one), heaviest edge, and the
// pseudo-random first edge of the discovered cycle.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cdg/paths.hpp"
#include "common/types.hpp"

namespace dfsssp {

/// Immutable-topology CDG over one layer's member paths; supports removing
/// paths (alive counters) but never adding, which is all Algorithm 2 needs.
class Cdg {
 public:
  /// Builds the CDG induced by `members` (indices into `paths`).
  /// `num_channels` sizes the node set; `num_paths` the membership bitmap.
  Cdg(const PathSet& paths, std::span<const std::uint32_t> members,
      std::uint32_t num_channels);

  struct Edge {
    ChannelId to = 0;
    std::uint32_t path_begin = 0;  // range into path_refs()
    std::uint32_t path_count = 0;
    std::uint32_t alive_count = 0;
    std::uint64_t alive_weight = 0;
  };

  std::uint32_t num_nodes() const { return num_channels_; }
  std::size_t num_edges() const { return edges_.size(); }

  std::span<const Edge> out_edges(ChannelId u) const {
    return {edges_.data() + offset_[u], offset_[u + 1] - offset_[u]};
  }
  const Edge& edge(std::uint32_t edge_index) const {
    return edges_[edge_index];
  }
  ChannelId edge_source(std::uint32_t edge_index) const {
    return edge_src_[edge_index];
  }
  /// Global edge index range of node u: [first_edge(u), first_edge(u)+deg).
  std::uint32_t first_edge(ChannelId u) const { return offset_[u]; }

  /// Paths (dead or alive) that ever induced this edge.
  std::span<const std::uint32_t> edge_paths(std::uint32_t edge_index) const;

  /// Member paths still alive on this edge.
  std::vector<std::uint32_t> alive_paths(std::uint32_t edge_index) const;

  bool path_alive(std::uint32_t p) const { return in_cdg_[p] != 0; }

  /// Member paths not yet removed.
  std::uint32_t alive_members() const { return alive_members_; }

  /// Removes a member path: decrements alive counters on every edge the
  /// path induces. Precondition: path_alive(p).
  void remove_path(const PathSet& paths, std::uint32_t p);

  /// True when every edge's alive count is zero.
  bool empty_alive() const;

 private:
  std::uint32_t find_edge(ChannelId u, ChannelId v) const;

  std::uint32_t num_channels_;
  std::vector<std::uint32_t> offset_;    // per node, into edges_
  std::vector<Edge> edges_;
  std::vector<ChannelId> edge_src_;      // per edge
  std::vector<std::uint32_t> path_refs_; // concatenated per-edge path lists
  std::vector<std::uint8_t> in_cdg_;     // per global path id
  std::uint32_t alive_members_ = 0;
};

/// Resumable iterative depth-first cycle search over a Cdg.
///
/// Usage: while (next_cycle(out)) { cut something; repair(); }.
/// next_cycle returns edges (global edge indices) of one directed cycle
/// through currently-alive edges; after the caller removed paths, repair()
/// re-validates the suspended DFS stack (black nodes stay black — removals
/// cannot create cycles — and any subtree entered through a now-dead tree
/// edge is re-whitened).
class CycleFinder {
 public:
  explicit CycleFinder(const Cdg& cdg);

  bool next_cycle(std::vector<std::uint32_t>& cycle_edges);
  void repair();

  /// Edge examinations performed by next_cycle so far — the deterministic
  /// cost of the search, independent of wall clock and thread count.
  std::uint64_t steps() const { return steps_; }

 private:
  struct Frame {
    ChannelId node;
    std::uint32_t cursor;      // next edge index (global) to examine
    std::uint32_t entry_edge;  // global edge index used to enter, or kNone
  };
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  void push(ChannelId node, std::uint32_t entry_edge);
  void pop_whiten();

  const Cdg& cdg_;
  std::vector<std::uint8_t> color_;  // 0 white, 1 gray, 2 black
  std::vector<std::uint32_t> stack_pos_;
  std::vector<Frame> stack_;
  ChannelId next_root_ = 0;
  std::uint64_t steps_ = 0;
};

enum class CycleHeuristic : std::uint8_t {
  kWeakestEdge,   // fewest inducing paths (paper's winner)
  kHeaviestEdge,  // most inducing paths
  kFirstEdge,     // pseudo-random: first edge of the discovered cycle
};

const char* to_string(CycleHeuristic h);

struct LayerOptions {
  Layer max_layers = 8;
  CycleHeuristic heuristic = CycleHeuristic::kWeakestEdge;
  /// Spread paths over unused layers afterwards (Algorithm 2's last loop).
  bool balance = false;
};

struct LayerResult {
  bool ok = false;
  std::string error;
  /// Per path (index into the PathSet) the assigned virtual layer.
  std::vector<Layer> layer;
  /// Layers carrying at least one path (after balancing, if enabled).
  Layer layers_used = 1;
  std::uint64_t cycles_broken = 0;
};

/// Algorithm 2: offline acyclic path partitioning.
LayerResult assign_layers_offline(const PathSet& paths,
                                  std::uint32_t num_channels,
                                  const LayerOptions& options);

/// Algorithm 2's final loop: redistributes paths from used layers onto empty
/// ones to even out the weighted load, without any new cycle search (moving
/// a subset of an acyclic layer into an *empty* layer keeps both acyclic).
/// Returns the new number of used layers.
Layer balance_layers(const PathSet& paths, std::vector<Layer>& layer,
                     Layer layers_used, Layer max_layers);

}  // namespace dfsssp
