#include "routing/dor_dateline.hpp"

#include "common/timer.hpp"
#include "routing/dor.hpp"

namespace dfsssp {

RouteResponse DorDatelineRouter::route(const RouteRequest& request) const {
  const Topology& topo = request.topo();
  const Network& net = topo.net;
  const TopologyMeta& meta = topo.meta;
  Timer timer;

  // The forwarding tables are plain DOR.
  RouteResponse out = DorRouter().route(request);
  if (!out.ok) return out;

  const std::size_t nd = meta.dims.size();
  if (nd > 0 && (1ULL << nd) > max_layers_) {
    return RouteResponse::failure(
        "DOR-dateline: " + std::to_string(nd) + " dimensions need " +
        std::to_string(1ULL << nd) + " layers (> " +
        std::to_string(max_layers_) + ")");
  }

  auto coord = [&](std::uint32_t sw_index, std::size_t dim) {
    return meta.sw_coord[sw_index * nd + dim];
  };

  // A path crosses dimension `dim`'s dateline iff DOR sends it the short
  // way around through the k-1 -> 0 boundary (either direction). Radix-2
  // rings have no wrap link at all.
  Layer layers_used = 1;
  for (NodeId d : net.terminals()) {
    const std::uint32_t di = net.node(net.switch_of(d)).type_index;
    for (NodeId s : net.switches()) {
      if (s == net.switch_of(d)) continue;
      const std::uint32_t si = net.node(s).type_index;
      Layer mask = 0;
      for (std::size_t dim = 0; dim < nd; ++dim) {
        const std::uint32_t k = meta.dims[dim];
        if (!meta.wraparound || k <= 2) continue;
        const std::uint32_t from = coord(si, dim);
        const std::uint32_t to = coord(di, dim);
        if (from == to) continue;
        const std::uint32_t fwd_dist = (to + k - from) % k;
        const std::uint32_t bwd_dist = (from + k - to) % k;
        const bool go_forward = fwd_dist <= bwd_dist;  // DOR's tie rule
        // Forward travel wraps iff it passes k-1 -> 0, i.e. to < from;
        // backward travel wraps iff it passes 0 -> k-1, i.e. to > from.
        const bool wraps = go_forward ? (to < from) : (to > from);
        if (wraps) mask |= static_cast<Layer>(1U << dim);
      }
      out.table.set_layer(s, d, mask);
      layers_used = std::max(layers_used, static_cast<Layer>(mask + 1));
    }
  }
  out.table.set_num_layers(layers_used);
  out.stats.layers_used = layers_used;
  out.stats.layering_seconds = timer.seconds() - out.stats.route_seconds;
  return out;
}

}  // namespace dfsssp
