#include "routing/collect.hpp"

#include <stdexcept>

#include "cdg/verify.hpp"

namespace dfsssp {

PathSet collect_paths(const Network& net, const RoutingTable& table) {
  PathSet paths;
  std::vector<ChannelId> seq;
  for (NodeId src_sw : net.switches()) {
    const std::uint32_t weight = net.terminals_on(src_sw);
    if (weight == 0 || !net.switch_up(src_sw)) continue;
    for (NodeId t : net.terminals()) {
      if (net.switch_of(t) == src_sw || !net.terminal_alive(t)) continue;
      if (!table.extract_path(net, src_sw, t, seq)) {
        throw std::runtime_error("collect_paths: broken forwarding from " +
                                 net.node_name(src_sw) + " to " +
                                 net.node_name(t));
      }
      paths.add(net.node(src_sw).type_index, net.node(t).type_index, seq,
                weight);
    }
  }
  return paths;
}

std::vector<Layer> collect_layers(const Network& net, const RoutingTable& table,
                                  const PathSet& paths) {
  std::vector<Layer> layers(paths.size());
  for (std::uint32_t p = 0; p < paths.size(); ++p) {
    layers[p] = table.layer(net.switch_by_index(paths.src_switch_index(p)),
                            net.terminal_by_index(paths.dst_terminal_index(p)));
  }
  return layers;
}

bool routing_is_deadlock_free(const Network& net, const RoutingTable& table,
                              const ExecContext& exec) {
  PathSet paths = collect_paths(net, table);
  std::vector<Layer> layers = collect_layers(net, table, paths);
  return layering_is_deadlock_free(
      paths, layers, static_cast<std::uint32_t>(net.num_channels()), exec);
}

}  // namespace dfsssp
