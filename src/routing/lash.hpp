// LASH — LAyered SHortest path routing (Skeie/Lysne et al.), the paper's
// deadlock-free baseline.
//
// Plain (unbalanced) shortest paths per switch pair, then an online layer
// assignment: each path goes to the first virtual layer whose channel
// dependency graph stays acyclic after adding the path's edges. Our layer
// CDGs maintain a Pearce-Kelly incremental topological order, so the check
// costs work only in the affected region instead of a full DFS per path.
#pragma once

#include <cstdint>

#include "routing/router.hpp"

namespace dfsssp {

struct LashOptions {
  Layer max_layers = 8;
  /// How the single minimal path per switch pair is chosen. LASH's layer
  /// demand is very sensitive to this: kHashed models an arbitrary fabric-
  /// discovery order (used for the paper's Figures 9/10); kFirstCandidate
  /// follows construction order, which on generated tori yields structured,
  /// DOR-like paths — the regime LASH was designed for.
  enum class PathSelection : std::uint8_t { kHashed, kFirstCandidate };
  PathSelection selection = PathSelection::kHashed;
};

class LashRouter final : public Router {
 public:
  explicit LashRouter(LashOptions options = {}) : options_(options) {}

  std::string name() const override { return "LASH"; }
  bool deadlock_free() const override { return true; }
  RouteResponse route(const RouteRequest& request) const override;

 private:
  LashOptions options_;
};

}  // namespace dfsssp
