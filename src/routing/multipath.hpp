// LMC-style multipath routing (InfiniBand: each port owns 2^lmc LIDs, each
// with its own forwarding entry, giving sources up to 2^lmc distinct paths
// per destination). OpenSM's SSSP/DFSSSP engines route every LID, so their
// balancing naturally diversifies the planes; we reproduce that: `planes`
// holds one complete destination-based RoutingTable per LID offset, all
// filled against one shared weight map, and DFSSSP's layer assignment runs
// over the union of all planes' paths so the whole multipath routing is
// deadlock-free on the same virtual lanes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "routing/dfsssp.hpp"
#include "routing/router.hpp"
#include "topology/topology.hpp"

namespace dfsssp {

struct MultipathOutcome {
  bool ok = false;
  std::string error;
  /// One full RoutingTable per LID offset (2^lmc of them).
  std::vector<RoutingTable> planes;
  RoutingStats stats;

  static MultipathOutcome failure(std::string why) {
    MultipathOutcome o;
    o.error = std::move(why);
    return o;
  }
};

/// SSSP over 2^lmc planes (no deadlock protection).
MultipathOutcome route_sssp_multipath(const Topology& topo, std::uint8_t lmc,
                                      bool balance = true);

/// DFSSSP over 2^lmc planes: SSSP planes plus ONE joint virtual-layer
/// assignment over all planes' paths (heuristic/balance/max_layers from
/// `options`; options.mode selects offline/online as usual).
MultipathOutcome route_dfsssp_multipath(const Topology& topo, std::uint8_t lmc,
                                        DfssspOptions options = {});

/// True when the union of every plane's paths is deadlock-free under the
/// planes' layer assignments.
bool multipath_is_deadlock_free(const Network& net,
                                const std::vector<RoutingTable>& planes);

}  // namespace dfsssp
