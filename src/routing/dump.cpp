#include "routing/dump.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace dfsssp {

std::pair<NodeId, std::uint32_t> channel_slot(const Network& net,
                                              ChannelId target) {
  const Channel& ch = net.channel(target);
  std::uint32_t index = 0;
  // Physical adjacency: slot naming must not shift when links or switches
  // are down, or dumps and certificates written under churn would not be
  // comparable across fault states.
  for (ChannelId c : net.out_channels_all(ch.src)) {
    if (c == target) return {ch.dst, index};
    if (net.channel(c).dst == ch.dst) ++index;
  }
  throw std::logic_error("channel not in its source's adjacency");
}

ChannelId channel_from_slot(const Network& net, NodeId src, NodeId neighbor,
                            std::uint32_t index) {
  std::uint32_t seen = 0;
  for (ChannelId c : net.out_channels_all(src)) {
    if (net.channel(c).dst == neighbor) {
      if (seen == index) return c;
      ++seen;
    }
  }
  return kInvalidChannel;
}

void write_forwarding_dump(const Network& net, const RoutingTable& table,
                           std::ostream& out) {
  out << "# dfsssp forwarding dump\n";
  out << "layers " << unsigned(table.num_layers()) << "\n";
  for (NodeId sw : net.switches()) {
    if (!net.switch_up(sw)) continue;
    for (NodeId t : net.terminals()) {
      if (net.switch_of(t) == sw || !net.terminal_alive(t)) continue;
      const ChannelId c = table.next(sw, t);
      if (c == kInvalidChannel) continue;
      auto [neighbor, index] = channel_slot(net, c);
      out << "lft " << net.node_name(sw) << " " << net.node_name(t) << " "
          << net.node_name(neighbor) << " " << index << "\n";
    }
  }
  for (NodeId sw : net.switches()) {
    if (!net.switch_up(sw)) continue;
    for (NodeId t : net.terminals()) {
      if (net.switch_of(t) == sw || !net.terminal_alive(t)) continue;
      const Layer l = table.layer(sw, t);
      if (l != 0) {
        out << "sl " << net.node_name(sw) << " " << net.node_name(t) << " "
            << unsigned(l) << "\n";
      }
    }
  }
}

void write_forwarding_dump(const Network& net, const RoutingTable& table,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_forwarding_dump(net, table, out);
}

RoutingTable read_forwarding_dump(const Network& net, std::istream& in,
                                  const std::string& source,
                                  DumpStats* stats) {
  std::map<std::string, NodeId> by_name;
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    by_name[net.node_name(n)] = n;
  }

  RoutingTable table(net);
  // Per (switch index, terminal index) "already set" flags so duplicate
  // lines are reported instead of silently overwriting.
  const std::size_t slots = net.num_switches() * net.num_terminals();
  std::vector<std::uint8_t> lft_seen(slots, 0), sl_seen(slots, 0);
  auto slot_of = [&](NodeId sw, NodeId dst) {
    return static_cast<std::size_t>(net.node(sw).type_index) *
               net.num_terminals() +
           net.node(dst).type_index;
  };

  DumpStats local_stats;
  bool layers_declared = false;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;
    auto fail = [&](const std::string& msg) {
      throw std::runtime_error(source + ":" + std::to_string(lineno) + ": " +
                               msg);
    };
    auto lookup = [&](const std::string& name) {
      auto it = by_name.find(name);
      if (it == by_name.end()) fail("unknown node '" + name + "'");
      return it->second;
    };
    if (kind == "layers") {
      unsigned n = 0;
      if (!(ls >> n)) fail("bad layer count");
      if (n == 0 || n > kMaxLayers) {
        fail("layer count " + std::to_string(n) + " outside [1, " +
             std::to_string(unsigned(kMaxLayers)) + "]");
      }
      if (layers_declared) fail("duplicate layers line");
      layers_declared = true;
      table.set_num_layers(static_cast<Layer>(n));
    } else if (kind == "lft") {
      std::string sw_name, dst_name, nbr_name;
      std::uint32_t index = 0;
      if (!(ls >> sw_name >> dst_name >> nbr_name >> index)) {
        fail("lft needs <switch> <dst> <neighbor> <index>");
      }
      const NodeId sw = lookup(sw_name);
      const NodeId dst = lookup(dst_name);
      const NodeId nbr = lookup(nbr_name);
      if (!net.is_switch(sw) || !net.is_terminal(dst)) fail("bad node kinds");
      const ChannelId c = channel_from_slot(net, sw, nbr, index);
      if (c == kInvalidChannel) fail("no such channel slot");
      ++local_stats.lft_entries;
      if (net.switch_of(dst) == sw) ++local_stats.local_lft;
      std::uint8_t& seen = lft_seen[slot_of(sw, dst)];
      if (seen) ++local_stats.duplicate_lft;
      seen = 1;
      table.set_next(sw, dst, c);
    } else if (kind == "sl") {
      std::string sw_name, dst_name;
      unsigned layer = 0;
      if (!(ls >> sw_name >> dst_name >> layer)) {
        fail("sl needs <switch> <dst> <layer>");
      }
      if (!layers_declared) fail("sl line before layers line");
      if (layer >= table.num_layers()) {
        fail("layer " + std::to_string(layer) + " >= declared count " +
             std::to_string(unsigned(table.num_layers())));
      }
      const NodeId sw = lookup(sw_name);
      const NodeId dst = lookup(dst_name);
      if (!net.is_switch(sw) || !net.is_terminal(dst)) fail("bad node kinds");
      ++local_stats.sl_entries;
      std::uint8_t& seen = sl_seen[slot_of(sw, dst)];
      if (seen) ++local_stats.duplicate_sl;
      seen = 1;
      table.set_layer(sw, dst, static_cast<Layer>(layer));
    } else {
      fail("unknown keyword '" + kind + "'");
    }
  }
  if (stats != nullptr) *stats = local_stats;
  return table;
}

RoutingTable read_forwarding_dump_path(const Network& net,
                                       const std::string& path,
                                       DumpStats* stats) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open dump: " + path);
  return read_forwarding_dump(net, in, path, stats);
}

}  // namespace dfsssp
