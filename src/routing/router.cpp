#include "routing/router.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "routing/registry.hpp"

namespace dfsssp {

const Topology& RouteRequest::topo() const {
  if (topology == nullptr) {
    throw std::logic_error("RouteRequest without a topology");
  }
  return *topology;
}

obs::Registry& RouteRequest::sink() const {
  return metrics != nullptr ? *metrics : obs::registry();
}

std::vector<std::unique_ptr<Router>> make_all_routers(Layer max_layers) {
  // The registry is the source of truth; this keeps the historical
  // "Figure 4 plot order" contract by construction (roster order).
  std::vector<std::unique_ptr<Router>> routers;
  for (const routing::EngineInfo& e : routing::engine_roster()) {
    if (!e.in_default_roster) continue;
    routers.push_back(routing::make_router(e.name, max_layers));
  }
  return routers;
}

}  // namespace dfsssp
