#include "routing/router.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "routing/dfsssp.hpp"
#include "routing/dor.hpp"
#include "routing/fattree.hpp"
#include "routing/lash.hpp"
#include "routing/minhop.hpp"
#include "routing/sssp.hpp"
#include "routing/updown.hpp"

namespace dfsssp {

const Topology& RouteRequest::topo() const {
  if (topology == nullptr) {
    throw std::logic_error("RouteRequest without a topology");
  }
  return *topology;
}

obs::Registry& RouteRequest::sink() const {
  return metrics != nullptr ? *metrics : obs::registry();
}

std::vector<std::unique_ptr<Router>> make_all_routers(Layer max_layers) {
  std::vector<std::unique_ptr<Router>> routers;
  routers.push_back(std::make_unique<MinHopRouter>());
  routers.push_back(std::make_unique<UpDownRouter>());
  routers.push_back(std::make_unique<FatTreeRouter>());
  routers.push_back(std::make_unique<DorRouter>());
  routers.push_back(std::make_unique<LashRouter>(LashOptions{max_layers}));
  routers.push_back(std::make_unique<SsspRouter>());
  routers.push_back(
      std::make_unique<DfssspRouter>(DfssspOptions{.max_layers = max_layers}));
  return routers;
}

}  // namespace dfsssp
