// DFSSSP — deadlock-free single-source-shortest-path routing, the paper's
// primary contribution (Section IV).
//
// Runs SSSP (Algorithm 1) for globally balanced minimal paths, then
// partitions the paths over virtual layers so every layer's channel
// dependency graph is acyclic:
//  * offline mode (Algorithm 2, the paper's recommended scheme): one
//    resumable cycle search per layer, breaking each found cycle at the
//    edge chosen by the configured heuristic and moving that edge's paths
//    to the next layer; optionally balances paths onto unused layers;
//  * online mode (the paper's first, LASH-like approach): first-fit layer
//    per path with incremental acyclicity checks.
#pragma once

#include "cdg/cdg.hpp"
#include "routing/router.hpp"

namespace dfsssp {

enum class LayeringMode : std::uint8_t {
  /// Algorithm 2: one resumable cycle search per layer (the paper's pick).
  kOffline,
  /// First-fit per path with Pearce-Kelly incremental acyclicity checks —
  /// our improvement over the paper's first approach.
  kOnline,
  /// First-fit per path with a full DFS cycle search per attempt — the
  /// paper's original online algorithm, O(|N|^2 * (|C|+|E|)), kept for the
  /// Section IV runtime comparison.
  kOnlineNaive,
};

struct DfssspOptions {
  Layer max_layers = 8;
  CycleHeuristic heuristic = CycleHeuristic::kWeakestEdge;
  /// Spread paths over unused layers (Algorithm 2's final loop).
  bool balance = true;
  /// Backwards-compatible alias: true selects LayeringMode::kOnline.
  bool online = false;
  LayeringMode mode = LayeringMode::kOffline;

  LayeringMode effective_mode() const {
    return online && mode == LayeringMode::kOffline ? LayeringMode::kOnline
                                                    : mode;
  }
};

class DfssspRouter final : public Router {
 public:
  explicit DfssspRouter(DfssspOptions options = {}) : options_(options) {}

  std::string name() const override {
    switch (options_.effective_mode()) {
      case LayeringMode::kOnline: return "DFSSSP(online)";
      case LayeringMode::kOnlineNaive: return "DFSSSP(naive-online)";
      case LayeringMode::kOffline: break;
    }
    return "DFSSSP";
  }
  bool deadlock_free() const override { return true; }
  RouteResponse route(const RouteRequest& request) const override;

 private:
  DfssspOptions options_;
};

}  // namespace dfsssp
