// Dimension-order routing for meshes and tori (OpenSM's DOR engine).
//
// Requires the generator's coordinate metadata; refuses any topology
// without it. Corrects each dimension in order, taking the shorter way
// around wraparound rings. Deadlock-free on meshes; on tori the wraparound
// rings make the channel dependency graph cyclic (the classical dateline
// problem), which the paper pairs with LASH as the cycle-free variant.
#pragma once

#include "routing/router.hpp"

namespace dfsssp {

class DorRouter final : public Router {
 public:
  std::string name() const override { return "DOR"; }
  bool deadlock_free() const override { return false; }
  RouteResponse route(const RouteRequest& request) const override;
};

}  // namespace dfsssp
