#include "routing/dfsssp.hpp"

#include <memory>

#include "cdg/online.hpp"
#include "cdg/verify.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/collect.hpp"
#include "routing/sssp.hpp"

namespace dfsssp {

RouteResponse DfssspRouter::route(const RouteRequest& request) const {
  const Topology& topo = request.topo();
  const Network& net = topo.net;
  const Layer max_layers = request.layer_budget(options_.max_layers);
  RouteResponse out = route_sssp(net, SsspOptions{.balance = true});
  if (!out.ok) return out;

  TRACE_SPAN("dfsssp/layering");
  static obs::Histogram& h_layering_ns =
      obs::registry().timing_histogram("dfsssp/layering_ns");
  ScopedTimer phase_timer(h_layering_ns);
  Timer timer;
  std::uint64_t acyclicity_checks = 0, pk_reorders = 0;
  const std::uint32_t num_channels =
      static_cast<std::uint32_t>(net.num_channels());
  PathSet paths = collect_paths(net, out.table);

  std::vector<Layer> layer;
  Layer layers_used = 1;
  const LayeringMode mode = options_.effective_mode();
  if (mode == LayeringMode::kOnline) {
    layer.assign(paths.size(), 0);
    std::vector<std::unique_ptr<OnlineCdg>> layers;
    for (std::uint32_t p = 0; p < paths.size(); ++p) {
      auto seq = paths.channels(p);
      if (seq.size() < 2) continue;  // no dependencies, stays in layer 0
      Layer assigned = kInvalidLayer;
      for (Layer l = 0; l < max_layers; ++l) {
        if (l == layers.size()) {
          layers.push_back(std::make_unique<OnlineCdg>(num_channels));
        }
        ++acyclicity_checks;
        if (layers[l]->try_add_path(seq)) {
          assigned = l;
          break;
        }
      }
      if (assigned == kInvalidLayer) {
        return RouteResponse::failure(
            "DFSSSP(online): ran out of virtual layers (" +
            std::to_string(max_layers) + ")");
      }
      layer[p] = assigned;
      layers_used = std::max(layers_used, static_cast<Layer>(assigned + 1));
    }
    for (const auto& l : layers) pk_reorders += l->num_reorders();
    std::uint64_t cdg_insertions = 0;
    for (const auto& l : layers) cdg_insertions += l->num_insertions();
    PROF_COUNT("cdg/edge_insertions", cdg_insertions);
    if (options_.balance) {
      layers_used =
          balance_layers(paths, layer, layers_used, max_layers);
    }
  } else if (mode == LayeringMode::kOnlineNaive) {
    // The paper's first approach: per path, per candidate layer, rebuild
    // the layer's member set and run a full depth-first cycle search.
    layer.assign(paths.size(), 0);
    std::vector<std::vector<std::uint32_t>> members(max_layers);
    for (std::uint32_t p = 0; p < paths.size(); ++p) {
      auto seq = paths.channels(p);
      if (seq.size() < 2) continue;
      Layer assigned = kInvalidLayer;
      for (Layer l = 0; l < max_layers; ++l) {
        members[l].push_back(p);
        ++acyclicity_checks;
        if (paths_are_acyclic(paths, members[l], num_channels)) {
          assigned = l;
          break;
        }
        members[l].pop_back();
      }
      if (assigned == kInvalidLayer) {
        return RouteResponse::failure(
            "DFSSSP(naive-online): ran out of virtual layers (" +
            std::to_string(max_layers) + ")");
      }
      layer[p] = assigned;
      layers_used = std::max(layers_used, static_cast<Layer>(assigned + 1));
    }
    if (options_.balance) {
      layers_used =
          balance_layers(paths, layer, layers_used, max_layers);
    }
  } else {
    LayerOptions lopts;
    lopts.max_layers = max_layers;
    lopts.heuristic = options_.heuristic;
    lopts.balance = options_.balance;
    LayerResult res = assign_layers_offline(paths, num_channels, lopts);
    if (!res.ok) {
      return RouteResponse::failure("DFSSSP: " + res.error);
    }
    layer = std::move(res.layer);
    layers_used = res.layers_used;
    out.stats.cycles_broken = res.cycles_broken;
  }

  for (std::uint32_t p = 0; p < paths.size(); ++p) {
    out.table.set_layer(net.switch_by_index(paths.src_switch_index(p)),
                        net.terminal_by_index(paths.dst_terminal_index(p)),
                        layer[p]);
  }
  out.table.set_num_layers(layers_used);
  out.stats.layers_used = layers_used;
  out.stats.layering_seconds = timer.seconds();
  // Flush through the request's sink: one registry lookup per route() call,
  // so a caller-supplied registry (fault repair, tests) sees these too.
  obs::Registry& sink = request.sink();
  if (acyclicity_checks > 0) {
    sink.counter("dfsssp/acyclicity_checks").add(acyclicity_checks);
    // Re-layer attempts, attributed to the dfsssp/layering span.
    PROF_COUNT("dfsssp/acyclicity_checks", acyclicity_checks);
  }
  if (pk_reorders > 0) {
    sink.counter("dfsssp/pk_reorders").add(pk_reorders);
    PROF_COUNT("dfsssp/pk_reorders", pk_reorders);
  }
  sink.gauge("dfsssp/layers_used").set(layers_used);
  return out;
}

}  // namespace dfsssp
