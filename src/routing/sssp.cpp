#include "routing/sssp.hpp"

#include <algorithm>
#include <numeric>
#include <span>

#include "common/heap.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/spath.hpp"

namespace dfsssp {

bool sssp_fill_planes(const Network& net, const SsspOptions& options,
                      std::span<RoutingTable> planes, RoutingStats& stats,
                      std::string& error) {
  TRACE_SPAN("sssp/fill_planes");
  // Phase timing for the run reports' timing_metrics section: what --trace
  // records as a span, --json reports as a histogram sample. Static
  // reference so the hot path pays no registry lookup.
  static obs::Histogram& h_fill_ns =
      obs::registry().timing_histogram("sssp/fill_planes_ns");
  ScopedTimer phase_timer(h_fill_ns);
  Timer timer;
  // Heap traffic is aggregated in locals and flushed once per call, so the
  // Dijkstra inner loop sees plain register increments, not atomics.
  std::uint64_t num_passes = 0, num_pops = 0, num_relaxations = 0;
  std::uint64_t num_pushes = 0;
  const std::size_t num_sw = net.num_switches();
  const std::uint64_t n = net.num_nodes();
  // Initial weight |V|^2 forces minimal paths (§II): the extra weight a
  // channel can accrue over the whole run stays below the cost of one
  // additional channel on a detour.
  const std::uint64_t initial_weight =
      options.initial_weight != 0 ? options.initial_weight
                                  : n * n * planes.size();
  std::vector<std::uint64_t> weight(net.num_channels(), initial_weight);

  std::vector<std::uint64_t> dist(num_sw);
  std::vector<ChannelId> parent(num_sw);        // forwarding channel toward dst
  std::vector<std::uint32_t> order(num_sw);     // switches by settle order
  std::vector<std::uint64_t> subtree(num_sw);   // path-count accumulation
  MinHeap<std::uint64_t> heap(num_sw);
  constexpr std::uint64_t kInf = ~0ULL;

  for (NodeId d : net.terminals()) {
    const NodeId dst_switch = net.switch_of(d);
    const std::uint32_t dst_index = net.node(dst_switch).type_index;
    for (RoutingTable& plane : planes) {
      // Dijkstra outward from the destination switch. The forwarding
      // channel of a settled switch v is the reverse of the relaxing
      // channel, because packets flow toward the destination.
      std::fill(dist.begin(), dist.end(), kInf);
      std::fill(parent.begin(), parent.end(), kInvalidChannel);
      heap.reset(num_sw);
      dist[dst_index] = 0;
      heap.push(0, dst_index);
      ++num_passes;
      ++num_pushes;
      std::size_t settled = 0;
      while (!heap.empty()) {
        auto [du, u_index] = heap.pop();
        ++num_pops;
        order[settled++] = u_index;
        NodeId u = net.switch_by_index(u_index);
        for (ChannelId c : net.out_switch_channels(u)) {
          const NodeId v = net.channel(c).dst;
          const std::uint32_t v_index = net.node(v).type_index;
          const ChannelId fwd = net.channel(c).reverse;  // v -> u
          const std::uint64_t cand = du + weight[fwd];
          if (cand < dist[v_index]) {
            // A relaxation from infinity is a fresh heap insert; any other
            // is a decrease-key on an already-queued switch.
            num_pushes += dist[v_index] == kInf ? 1 : 0;
            dist[v_index] = cand;
            parent[v_index] = fwd;
            heap.push_or_decrease(cand, v_index);
            ++num_relaxations;
          }
        }
      }
      if (settled != num_sw) {
        error = "network is disconnected";
        return false;
      }

      for (std::size_t i = 0; i < num_sw; ++i) {
        NodeId s = net.switch_by_index(static_cast<std::uint32_t>(i));
        if (s == dst_switch) continue;
        plane.set_next(s, d, parent[i]);
      }
      stats.paths += num_sw - 1;

      if (options.balance) {
        // Algorithm 1's weight update: every channel's weight grows by the
        // number of (terminal, d) paths crossing it. Accumulate subtree
        // terminal counts from the farthest settled switch inward.
        for (std::size_t i = 0; i < num_sw; ++i) {
          subtree[i] = net.terminals_on(net.switch_by_index(
              static_cast<std::uint32_t>(i)));
        }
        for (std::size_t i = num_sw; i-- > 1;) {  // order[0] == dst, skip it
          const std::uint32_t v_index = order[i];
          const ChannelId fwd = parent[v_index];
          weight[fwd] += subtree[v_index];
          const NodeId next_sw = net.channel(fwd).dst;
          subtree[net.node(next_sw).type_index] += subtree[v_index];
        }
      }
    }
  }

  static obs::Counter& c_passes =
      obs::registry().counter("sssp/dijkstra_passes");
  static obs::Counter& c_pops = obs::registry().counter("sssp/heap_pops");
  static obs::Counter& c_pushes = obs::registry().counter("sssp/heap_pushes");
  static obs::Counter& c_relaxations =
      obs::registry().counter("sssp/relaxations");
  c_passes.add(num_passes);
  c_pops.add(num_pops);
  c_pushes.add(num_pushes);
  c_relaxations.add(num_relaxations);
  // Profile attribution: the same deterministic tallies land on the
  // innermost enclosing span (the sssp/fill_planes span opened above).
  PROF_COUNT("sssp/dijkstra_passes", num_passes);
  PROF_COUNT("sssp/heap_pops", num_pops);
  PROF_COUNT("sssp/heap_pushes", num_pushes);
  PROF_COUNT("sssp/relaxations", num_relaxations);
  stats.route_seconds += timer.seconds();
  return true;
}

RouteResponse route_sssp(const Network& net, const SsspOptions& options) {
  RouteResponse out;
  out.table = RoutingTable(net);
  std::span<RoutingTable> planes(&out.table, 1);
  if (!sssp_fill_planes(net, options, planes, out.stats, out.error)) {
    return out;
  }
  out.ok = true;
  return out;
}

RouteResponse SsspRouter::route(const RouteRequest& request) const {
  const Topology& topo = request.topo();
  return route_sssp(topo.net, options_);
}

}  // namespace dfsssp
