#include "routing/updown.hpp"

#include <algorithm>

#include "common/heap.hpp"
#include "common/timer.hpp"
#include "routing/spath.hpp"

namespace dfsssp {

RouteResponse UpDownRouter::route(const RouteRequest& request) const {
  const Topology& topo = request.topo();
  const Network& net = topo.net;
  Timer timer;
  RouteResponse out;
  out.table = RoutingTable(net);

  const std::size_t num_sw = net.num_switches();
  const NodeId root = find_center_switch(net);
  std::vector<std::uint32_t> rank;
  bfs_hops_to(net, root, rank);
  if (std::count(rank.begin(), rank.end(), kUnreachable) > 0) {
    return RouteResponse::failure("network is disconnected");
  }

  // Up = toward the root: strictly lower rank, or equal rank and lower id
  // (the id tie-break makes the up-relation a total order => acyclic).
  auto is_up = [&](ChannelId c) {
    const Channel& ch = net.channel(c);
    const std::uint32_t rs = rank[net.node(ch.src).type_index];
    const std::uint32_t rd = rank[net.node(ch.dst).type_index];
    return rd < rs || (rd == rs && ch.dst < ch.src);
  };

  std::vector<std::uint64_t> usage(net.num_channels(), 0);
  constexpr std::uint32_t kInf = kUnreachable;
  std::vector<std::uint32_t> down_dist(num_sw);  // hops to dst, down-only
  std::vector<std::uint32_t> legal_dist(num_sw); // hops to dst, legal path
  MinHeap<std::uint32_t> heap(num_sw);

  for (NodeId d : net.terminals()) {
    const NodeId dst_switch = net.switch_of(d);
    const std::uint32_t dst_index = net.node(dst_switch).type_index;

    // down_dist[s]: BFS from the destination crossing only channels that
    // are *down* in the forwarding direction s -> neighbor.
    std::fill(down_dist.begin(), down_dist.end(), kInf);
    down_dist[dst_index] = 0;
    std::vector<NodeId> queue{dst_switch};
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      NodeId x = queue[qi];
      const std::uint32_t dx = down_dist[net.node(x).type_index];
      for (ChannelId c : net.out_switch_channels(x)) {
        const ChannelId fwd = net.channel(c).reverse;  // neighbor -> x
        if (is_up(fwd)) continue;                      // must be a down move
        const std::uint32_t s_index =
            net.node(net.channel(c).dst).type_index;
        if (down_dist[s_index] == kInf) {
          down_dist[s_index] = dx + 1;
          queue.push_back(net.channel(c).dst);
        }
      }
    }

    // legal_dist[s] = min(down_dist[s], 1 + min over up-neighbors u of
    // legal_dist[u]); a unit-weight Dijkstra settles it.
    std::fill(legal_dist.begin(), legal_dist.end(), kInf);
    heap.reset(num_sw);
    for (std::uint32_t i = 0; i < num_sw; ++i) {
      if (down_dist[i] != kInf) {
        legal_dist[i] = down_dist[i];
        heap.push(legal_dist[i], i);
      }
    }
    while (!heap.empty()) {
      auto [gu, u_index] = heap.pop();
      if (gu > legal_dist[u_index]) continue;
      NodeId u = net.switch_by_index(u_index);
      for (ChannelId c : net.out_switch_channels(u)) {
        const ChannelId fwd = net.channel(c).reverse;  // neighbor -> u
        if (!is_up(fwd)) continue;                     // relax up-moves
        const std::uint32_t s_index =
            net.node(net.channel(c).dst).type_index;
        if (gu + 1 < legal_dist[s_index]) {
          legal_dist[s_index] = gu + 1;
          heap.push_or_decrease(gu + 1, s_index);
        }
      }
    }

    for (NodeId s : net.switches()) {
      if (s == dst_switch) continue;
      const std::uint32_t si = net.node(s).type_index;
      if (legal_dist[si] == kInf) {
        return RouteResponse::failure("no legal up/down path");
      }
      ChannelId best = kInvalidChannel;
      if (down_dist[si] != kInf) {
        // Descend whenever possible (keeps forwarding consistent).
        for (ChannelId c : net.out_switch_channels(s)) {
          if (is_up(c)) continue;
          const std::uint32_t ni = net.node(net.channel(c).dst).type_index;
          if (down_dist[ni] + 1 != down_dist[si]) continue;
          if (best == kInvalidChannel || usage[c] < usage[best]) best = c;
        }
      } else {
        for (ChannelId c : net.out_switch_channels(s)) {
          if (!is_up(c)) continue;
          const std::uint32_t ni = net.node(net.channel(c).dst).type_index;
          if (legal_dist[ni] + 1 != legal_dist[si]) continue;
          if (best == kInvalidChannel || usage[c] < usage[best]) best = c;
        }
      }
      out.table.set_next(s, d, best);
      ++usage[best];
    }
    out.stats.paths += num_sw - 1;
  }

  out.stats.route_seconds = timer.seconds();
  out.ok = true;
  return out;
}

}  // namespace dfsssp
