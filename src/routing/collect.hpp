// Bridges forwarding tables to the deadlock machinery and the simulators.
#pragma once

#include "cdg/paths.hpp"
#include "common/parallel.hpp"
#include "routing/table.hpp"
#include "topology/network.hpp"

namespace dfsssp {

/// Extracts every routed path unit (source switch with at least one
/// terminal, destination terminal on another switch) as channel sequences,
/// weighted by the number of terminals on the source switch. Throws
/// std::runtime_error when a forwarding walk is broken — verify connectivity
/// first if failure must be handled gracefully.
PathSet collect_paths(const Network& net, const RoutingTable& table);

/// Copies the per-path layers out of `table` in collect_paths() order.
std::vector<Layer> collect_layers(const Network& net, const RoutingTable& table,
                                  const PathSet& paths);

/// True when every virtual layer's channel dependency graph is acyclic —
/// the paper's deadlock-freedom criterion applied to a finished routing.
/// Layers verify independently on `exec`'s threads.
bool routing_is_deadlock_free(const Network& net, const RoutingTable& table,
                              const ExecContext& exec = {});

}  // namespace dfsssp
