#include "routing/verify.hpp"

#include <vector>

#include "routing/spath.hpp"

namespace dfsssp {

VerifyReport verify_routing(const Network& net, const RoutingTable& table,
                            const ExecContext& exec) {
  const auto terminals = net.terminals();
  std::vector<NodeId> dsts(terminals.begin(), terminals.end());
  return parallel_map_reduce(
      exec, dsts.size(), VerifyReport{},
      [&](std::size_t i) {
        const NodeId t = dsts[i];
        const NodeId dst_switch = net.switch_of(t);
        VerifyReport local;
        if (!net.terminal_alive(t)) return local;
        std::vector<std::uint32_t> dist;
        std::vector<ChannelId> seq;
        bfs_hops_to(net, dst_switch, dist);
        for (NodeId s : net.switches()) {
          if (s == dst_switch || net.terminals_on(s) == 0 ||
              !net.switch_up(s)) {
            continue;
          }
          ++local.total_paths;
          if (!table.extract_path(net, s, t, seq)) {
            ++local.broken;
            continue;
          }
          if (seq.size() > dist[net.node(s).type_index]) ++local.non_minimal;
        }
        return local;
      },
      [](VerifyReport acc, VerifyReport local) {
        acc.total_paths += local.total_paths;
        acc.broken += local.broken;
        acc.non_minimal += local.non_minimal;
        return acc;
      });
}

}  // namespace dfsssp
