#include "routing/verify.hpp"

#include <vector>

#include "routing/spath.hpp"

namespace dfsssp {

VerifyReport verify_routing(const Network& net, const RoutingTable& table) {
  VerifyReport report;
  std::vector<std::uint32_t> dist;
  std::vector<ChannelId> seq;
  for (NodeId t : net.terminals()) {
    const NodeId dst_switch = net.switch_of(t);
    bfs_hops_to(net, dst_switch, dist);
    for (NodeId s : net.switches()) {
      if (s == dst_switch || net.terminals_on(s) == 0) continue;
      ++report.total_paths;
      if (!table.extract_path(net, s, t, seq)) {
        ++report.broken;
        continue;
      }
      if (seq.size() > dist[net.node(s).type_index]) ++report.non_minimal;
    }
  }
  return report;
}

}  // namespace dfsssp
