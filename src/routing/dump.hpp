// Forwarding-state serialization, the role OpenSM's LFT/SL dump files play:
// persist a computed routing (ports + virtual-layer assignment) and load it
// back later — e.g. to re-simulate a fabric's production routing, or to
// diff two routings.
//
// Line format ('#' comments allowed):
//   layers <count>
//   lft <switch> <dst-terminal> <neighbor-node> <parallel-index>
//   sl  <src-switch> <dst-terminal> <layer>
//
// Channels are identified by (switch, neighbor, index among the parallel
// channels to that neighbor in out-channel order), which is stable across
// save/load of the same topology. The `layers` line must precede every `sl`
// line so per-path layers can be range-checked as they are read.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>

#include "routing/table.hpp"
#include "topology/network.hpp"

namespace dfsssp {

/// (neighbor, parallel-index) identification of a channel within its
/// source's out list — the stable channel naming that forwarding dumps and
/// deadlock-freedom certificates share.
std::pair<NodeId, std::uint32_t> channel_slot(const Network& net, ChannelId c);

/// Inverse of channel_slot; kInvalidChannel when the slot does not exist.
ChannelId channel_from_slot(const Network& net, NodeId src, NodeId neighbor,
                            std::uint32_t index);

/// What read_forwarding_dump saw, for the lint suite: entry counts plus the
/// anomalies that are representable in the file but invisible in the loaded
/// RoutingTable (a duplicate line overwrites its predecessor in the table).
struct DumpStats {
  std::uint64_t lft_entries = 0;
  std::uint64_t sl_entries = 0;
  /// `lft` lines re-setting an already-set (switch, dst) slot.
  std::uint64_t duplicate_lft = 0;
  /// `sl` lines re-setting an already-set (switch, dst) slot.
  std::uint64_t duplicate_sl = 0;
  /// `lft` lines for a terminal attached to the switch itself (the packet
  /// should be ejected; a forwarding entry here is dangling).
  std::uint64_t local_lft = 0;
};

void write_forwarding_dump(const Network& net, const RoutingTable& table,
                           std::ostream& out);
void write_forwarding_dump(const Network& net, const RoutingTable& table,
                           const std::string& path);

/// Parses a dump produced by write_forwarding_dump against the same
/// topology. Throws std::runtime_error ("<source>:<line>: <what>") on
/// malformed input, unknown names, out-of-range parallel indices, a layer
/// count of 0 or > kMaxLayers, or an `sl` line before the `layers` line.
/// `stats`, when non-null, receives entry counts and file-level anomalies.
RoutingTable read_forwarding_dump(const Network& net, std::istream& in,
                                  const std::string& source = "dump",
                                  DumpStats* stats = nullptr);
/// Same, with errors carrying `path` as the source name.
RoutingTable read_forwarding_dump_path(const Network& net,
                                       const std::string& path,
                                       DumpStats* stats = nullptr);

}  // namespace dfsssp
