// Forwarding-state serialization, the role OpenSM's LFT/SL dump files play:
// persist a computed routing (ports + virtual-layer assignment) and load it
// back later — e.g. to re-simulate a fabric's production routing, or to
// diff two routings.
//
// Line format ('#' comments allowed):
//   layers <count>
//   lft <switch> <dst-terminal> <neighbor-node> <parallel-index>
//   sl  <src-switch> <dst-terminal> <layer>
//
// Channels are identified by (switch, neighbor, index among the parallel
// channels to that neighbor in out-channel order), which is stable across
// save/load of the same topology.
#pragma once

#include <iosfwd>
#include <string>

#include "routing/table.hpp"
#include "topology/network.hpp"

namespace dfsssp {

void write_forwarding_dump(const Network& net, const RoutingTable& table,
                           std::ostream& out);
void write_forwarding_dump(const Network& net, const RoutingTable& table,
                           const std::string& path);

/// Parses a dump produced by write_forwarding_dump against the same
/// topology. Throws std::runtime_error (with a line number) on malformed
/// input, unknown names, or out-of-range parallel indices.
RoutingTable read_forwarding_dump(const Network& net, std::istream& in);
RoutingTable read_forwarding_dump_path(const Network& net,
                                       const std::string& path);

}  // namespace dfsssp
