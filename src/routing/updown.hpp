// Up*/Down* routing (cycle-free by path restriction, paper §I/§V).
//
// Switches are ranked by BFS distance from a root (the graph center); a
// channel is "up" when it moves toward the root (lower rank, ties by node
// id). Legal paths climb zero or more up-channels and then descend — no
// down->up transition, which provably keeps the channel dependency graph
// acyclic on a single virtual layer, at the cost of path diversity (and, on
// some topologies, minimality).
//
// Forwarding is destination-based, so the engine prefers descending
// whenever a down-only path to the destination exists; this keeps the rule
// consistent at every hop regardless of how a packet arrived.
#pragma once

#include "routing/router.hpp"

namespace dfsssp {

class UpDownRouter final : public Router {
 public:
  std::string name() const override { return "Up*/Down*"; }
  bool deadlock_free() const override { return true; }
  RouteResponse route(const RouteRequest& request) const override;
};

}  // namespace dfsssp
