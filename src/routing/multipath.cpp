#include "routing/multipath.hpp"

#include "cdg/cdg.hpp"
#include "cdg/verify.hpp"
#include "common/timer.hpp"
#include "routing/collect.hpp"
#include "routing/sssp.hpp"

namespace dfsssp {

namespace {

std::uint32_t plane_count(std::uint8_t lmc) { return 1U << lmc; }

}  // namespace

MultipathOutcome route_sssp_multipath(const Topology& topo, std::uint8_t lmc,
                                      bool balance) {
  if (lmc > 3) return MultipathOutcome::failure("lmc > 3 is not sensible");
  MultipathOutcome out;
  out.planes.assign(plane_count(lmc), RoutingTable(topo.net));
  SsspOptions opts;
  opts.balance = balance;
  if (!sssp_fill_planes(topo.net, opts, out.planes, out.stats, out.error)) {
    return out;
  }
  out.ok = true;
  return out;
}

MultipathOutcome route_dfsssp_multipath(const Topology& topo, std::uint8_t lmc,
                                        DfssspOptions options) {
  MultipathOutcome out = route_sssp_multipath(topo, lmc, /*balance=*/true);
  if (!out.ok) return out;
  Timer timer;

  // Joint path set: plane r contributes the contiguous block
  // [r * per_plane, (r+1) * per_plane).
  const Network& net = topo.net;
  const std::uint32_t num_channels =
      static_cast<std::uint32_t>(net.num_channels());
  PathSet paths;
  std::size_t per_plane = 0;
  {
    PathSet first = collect_paths(net, out.planes.front());
    per_plane = first.size();
    paths = std::move(first);
  }
  for (std::size_t r = 1; r < out.planes.size(); ++r) {
    PathSet more = collect_paths(net, out.planes[r]);
    for (std::uint32_t p = 0; p < more.size(); ++p) {
      paths.add(more.src_switch_index(p), more.dst_terminal_index(p),
                more.channels(p), more.weight(p));
    }
  }

  LayerOptions lopts;
  lopts.max_layers = options.max_layers;
  lopts.heuristic = options.heuristic;
  lopts.balance = options.balance;
  LayerResult res = assign_layers_offline(paths, num_channels, lopts);
  if (!res.ok) {
    return MultipathOutcome::failure("DFSSSP(lmc): " + res.error);
  }
  out.stats.cycles_broken = res.cycles_broken;
  out.stats.layers_used = res.layers_used;

  for (std::size_t r = 0; r < out.planes.size(); ++r) {
    RoutingTable& plane = out.planes[r];
    plane.set_num_layers(res.layers_used);
    for (std::size_t i = 0; i < per_plane; ++i) {
      const std::uint32_t p = static_cast<std::uint32_t>(r * per_plane + i);
      plane.set_layer(net.switch_by_index(paths.src_switch_index(p)),
                      net.terminal_by_index(paths.dst_terminal_index(p)),
                      res.layer[p]);
    }
  }
  out.stats.layering_seconds = timer.seconds();
  return out;
}

bool multipath_is_deadlock_free(const Network& net,
                                const std::vector<RoutingTable>& planes) {
  PathSet paths;
  std::vector<Layer> layers;
  for (const RoutingTable& plane : planes) {
    PathSet plane_paths = collect_paths(net, plane);
    std::vector<Layer> plane_layers = collect_layers(net, plane, plane_paths);
    for (std::uint32_t p = 0; p < plane_paths.size(); ++p) {
      paths.add(plane_paths.src_switch_index(p),
                plane_paths.dst_terminal_index(p), plane_paths.channels(p),
                plane_paths.weight(p));
      layers.push_back(plane_layers[p]);
    }
  }
  return layering_is_deadlock_free(paths, layers,
                                   static_cast<std::uint32_t>(net.num_channels()));
}

}  // namespace dfsssp
