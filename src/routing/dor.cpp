#include "routing/dor.hpp"

#include "common/timer.hpp"

namespace dfsssp {

RouteResponse DorRouter::route(const RouteRequest& request) const {
  const Topology& topo = request.topo();
  const Network& net = topo.net;
  const TopologyMeta& meta = topo.meta;
  Timer timer;
  if (!meta.has_coords() || meta.dims.empty()) {
    return RouteResponse::failure("DOR needs torus/mesh coordinates");
  }
  const std::size_t nd = meta.dims.size();
  if (meta.sw_coord.size() != net.num_switches() * nd) {
    return RouteResponse::failure("DOR: malformed coordinate metadata");
  }

  RouteResponse out;
  out.table = RoutingTable(net);

  auto coord = [&](std::uint32_t sw_index, std::size_t dim) {
    return meta.sw_coord[sw_index * nd + dim];
  };
  // Generator layout: dimension 0 is the fastest-varying index digit.
  auto index_of = [&](const std::vector<std::uint32_t>& c) {
    std::uint64_t idx = 0;
    for (std::size_t d = nd; d-- > 0;) idx = idx * meta.dims[d] + c[d];
    return static_cast<std::uint32_t>(idx);
  };

  std::vector<std::uint32_t> cur(nd);
  for (NodeId d : net.terminals()) {
    const NodeId dst_switch = net.switch_of(d);
    const std::uint32_t dst_index = net.node(dst_switch).type_index;
    for (NodeId s : net.switches()) {
      if (s == dst_switch) continue;
      const std::uint32_t si = net.node(s).type_index;
      for (std::size_t dim = 0; dim < nd; ++dim) cur[dim] = coord(si, dim);

      // First differing dimension decides the hop.
      std::size_t dim = 0;
      while (dim < nd && cur[dim] == coord(dst_index, dim)) ++dim;
      if (dim == nd) {
        return RouteResponse::failure("DOR: duplicate coordinates");
      }
      const std::uint32_t k = meta.dims[dim];
      const std::uint32_t from = cur[dim];
      const std::uint32_t to = coord(dst_index, dim);
      std::uint32_t next_coord;
      if (!meta.wraparound) {
        next_coord = to > from ? from + 1 : from - 1;
      } else {
        const std::uint32_t fwd_dist = (to + k - from) % k;
        const std::uint32_t bwd_dist = (from + k - to) % k;
        // Shorter way around; ties go in the increasing direction.
        next_coord = fwd_dist <= bwd_dist ? (from + 1) % k : (from + k - 1) % k;
      }
      cur[dim] = next_coord;
      const NodeId neighbor = net.switch_by_index(index_of(cur));
      ChannelId hop = kInvalidChannel;
      for (ChannelId c : net.out_switch_channels(s)) {
        if (net.channel(c).dst == neighbor) {
          hop = c;
          break;
        }
      }
      if (hop == kInvalidChannel) {
        return RouteResponse::failure("DOR: missing torus link");
      }
      out.table.set_next(s, d, hop);
    }
    out.stats.paths += net.num_switches() - 1;
  }
  out.stats.route_seconds = timer.seconds();
  out.ok = true;
  return out;
}

}  // namespace dfsssp
