// Deadlock-free dimension-order routing for tori via dateline layers.
//
// Plain DOR is cycle-free on meshes but each wraparound ring is a cycle
// (test_dor demonstrates it). OpenSM ships Torus-2QoS for this; it rewrites
// the VL per hop through SL2VL tables. Our model keeps one virtual layer
// per path (an InfiniBand SL), so we use the path-static variant:
//
//   layer(path) = bitmask of the dimensions whose dateline (wraparound
//   link) the path crosses.
//
// Every layer class is acyclic: for a dimension the class crosses, all its
// ring windows contain the wrap channel and are at most ceil(k/2) long, so
// their union cannot close the ring; for a dimension it does not cross, the
// class only uses mesh channels; and dimension order forbids cycles across
// dimensions. A d-dimensional torus therefore needs 2^d layers (d <= 3 fits
// InfiniBand's 8 VLs).
#pragma once

#include "routing/router.hpp"

namespace dfsssp {

class DorDatelineRouter final : public Router {
 public:
  explicit DorDatelineRouter(Layer max_layers = 8)
      : max_layers_(max_layers) {}

  std::string name() const override { return "DOR-dateline"; }
  bool deadlock_free() const override { return true; }
  RouteResponse route(const RouteRequest& request) const override;

 private:
  Layer max_layers_;
};

}  // namespace dfsssp
