// Structural verification of finished routings (used by tests and benches).
#pragma once

#include <cstdint>
#include <string>

#include "common/parallel.hpp"
#include "routing/table.hpp"
#include "topology/network.hpp"

namespace dfsssp {

struct VerifyReport {
  std::uint64_t total_paths = 0;
  /// Paths that dead-end or loop.
  std::uint64_t broken = 0;
  /// Paths longer than the BFS hop distance.
  std::uint64_t non_minimal = 0;

  bool connected() const { return broken == 0; }
  bool minimal() const { return non_minimal == 0; }
};

/// Walks every (source switch with terminals, destination terminal) pair.
/// Destinations are independent (each owns its BFS distance field and its
/// path walks), so they spread across `exec`'s threads; the per-destination
/// counters are reduced in destination order.
VerifyReport verify_routing(const Network& net, const RoutingTable& table,
                            const ExecContext& exec = {});

}  // namespace dfsssp
