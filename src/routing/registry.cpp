#include "routing/registry.hpp"

#include <cctype>

#include "routing/dfsssp.hpp"
#include "routing/dor.hpp"
#include "routing/dor_dateline.hpp"
#include "routing/fattree.hpp"
#include "routing/lash.hpp"
#include "routing/minhop.hpp"
#include "routing/sssp.hpp"
#include "routing/updown.hpp"

namespace dfsssp::routing {
namespace {

/// Lowercase alphanumerics only, so "Up*/Down*", "UPDOWN" and "updown" all
/// collapse to the same key (the matching dfcheck --route always used).
std::string normalized(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      out.push_back(static_cast<char>(std::tolower(c)));
    }
  }
  return out;
}

std::vector<EngineInfo> build_roster() {
  std::vector<EngineInfo> r;
  auto add = [&r](const char* name, const char* display, const char* desc,
                  bool df, bool layered, bool incremental, bool roster) {
    EngineInfo e;
    e.name = name;
    e.display_name = display;
    e.description = desc;
    e.deadlock_free = df;
    e.layered = layered;
    e.incremental = incremental;
    e.in_default_roster = roster;
    r.push_back(std::move(e));
  };
  // The paper's Figure-4 roster, in plot order (make_all_routers order).
  add("minhop", "MinHop",
      "shortest paths, no deadlock avoidance (OpenSM default)",
      false, false, false, true);
  add("updown", "Up*/Down*",
      "BFS-rooted up/down turn restriction, single layer",
      true, false, false, true);
  add("fattree", "FatTree",
      "structure-aware fat-tree routing (refuses non-trees)",
      true, false, false, true);
  add("dor", "DOR",
      "dimension-order routing for meshes/tori (coordinates required)",
      true, false, false, true);
  add("lash", "LASH",
      "layered shortest paths, cycle-free layer assignment per path",
      true, true, false, true);
  add("sssp", "SSSP",
      "weighted single-source shortest paths, balanced, no layering",
      false, false, false, true);
  add("dfsssp", "DFSSSP",
      "the paper's engine: SSSP + cycle-breaking virtual-layer assignment; "
      "repairable in place under churn (IncrementalDfsssp)",
      true, true, true, true);
  // Extras beyond the Figure-4 roster.
  add("dordateline", "DOR-dateline",
      "torus DOR made deadlock-free via dateline-crossing layers (2^d VLs)",
      true, true, false, false);
  return r;
}

}  // namespace

const std::vector<EngineInfo>& engine_roster() {
  static const std::vector<EngineInfo> roster = build_roster();
  return roster;
}

const EngineInfo* find_engine(const std::string& name) {
  const std::string want = normalized(name);
  for (const EngineInfo& e : engine_roster()) {
    if (e.name == want || normalized(e.display_name) == want) return &e;
  }
  return nullptr;
}

std::unique_ptr<Router> make_router(const std::string& name,
                                    Layer max_layers) {
  const EngineInfo* info = find_engine(name);
  if (info == nullptr) return nullptr;
  if (info->name == "minhop") return std::make_unique<MinHopRouter>();
  if (info->name == "updown") return std::make_unique<UpDownRouter>();
  if (info->name == "fattree") return std::make_unique<FatTreeRouter>();
  if (info->name == "dor") return std::make_unique<DorRouter>();
  if (info->name == "lash") {
    return std::make_unique<LashRouter>(LashOptions{max_layers});
  }
  if (info->name == "sssp") return std::make_unique<SsspRouter>();
  if (info->name == "dfsssp") {
    return std::make_unique<DfssspRouter>(
        DfssspOptions{.max_layers = max_layers});
  }
  if (info->name == "dordateline") {
    return std::make_unique<DorDatelineRouter>(max_layers);
  }
  return nullptr;  // registry row without a factory branch: a bug
}

std::string engine_names() {
  std::string out;
  for (const EngineInfo& e : engine_roster()) {
    out += (out.empty() ? "" : ", ") + e.name;
  }
  return out;
}

}  // namespace dfsssp::routing
