// MinHop routing — OpenSM's default engine and the paper's main baseline.
//
// For every destination it selects, per switch, an output port on a minimal
// path, balancing locally by the number of destinations already routed
// through each port. Minimal and fast, but the port-local balancing ignores
// global congestion and nothing prevents channel-dependency cycles.
#pragma once

#include "routing/router.hpp"

namespace dfsssp {

class MinHopRouter final : public Router {
 public:
  std::string name() const override { return "MinHop"; }
  bool deadlock_free() const override { return false; }
  RouteResponse route(const RouteRequest& request) const override;
};

}  // namespace dfsssp
