// Shared shortest-path plumbing for the routing engines.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "topology/network.hpp"

namespace dfsssp {

inline constexpr std::uint32_t kUnreachable = 0xFFFFFFFFu;

/// Hop distance from every switch to `dst_switch` over the switch graph
/// (links are bidirectional, so one forward BFS suffices). `dist` is indexed
/// by switch type_index.
void bfs_hops_to(const Network& net, NodeId dst_switch,
                 std::vector<std::uint32_t>& dist);

/// Eccentricity-minimal switch (graph center), ties broken by lowest id;
/// the Up*/Down* root choice.
NodeId find_center_switch(const Network& net);

}  // namespace dfsssp
