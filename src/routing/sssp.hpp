// Single-source-shortest-path routing (paper Section II, Algorithm 1).
//
// One Dijkstra run per destination over weighted channels; after each run
// every channel's weight grows by the number of paths just routed across it,
// so later destinations avoid the load of earlier ones — global balancing
// instead of MinHop's port-local counters. Channel weights start at
// |V|^2: any detour costs at least two channels, and the accumulated extra
// weight on a single channel stays below |V|^2 (at most |V|*(|V|-1) paths),
// so a detour can never undercut a minimal path — SSSP stays shortest-path.
//
// SSSP alone is not deadlock-free (Figure 2's ring); DfssspRouter adds the
// virtual-layer assignment.
#pragma once

#include <span>
#include <string>

#include "routing/router.hpp"

namespace dfsssp {

struct SsspOptions {
  /// Disable to skip the weight updates (plain per-destination Dijkstra).
  bool balance = true;
  /// 0 = automatic (|V|^2 per plane, guarantees minimality - §II). The
  /// paper's Figure 1 shows why small values are wrong: with weight 1 the
  /// accumulated updates make Dijkstra detour; tests pin that pathology.
  std::uint64_t initial_weight = 0;
};

class SsspRouter final : public Router {
 public:
  explicit SsspRouter(SsspOptions options = {}) : options_(options) {}

  std::string name() const override { return "SSSP"; }
  bool deadlock_free() const override { return false; }
  RouteResponse route(const RouteRequest& request) const override;

 private:
  SsspOptions options_;
};

/// Shared core used by SsspRouter and DfssspRouter.
RouteResponse route_sssp(const Network& net, const SsspOptions& options);

/// Multi-plane core (InfiniBand LMC multipathing): fills every table in
/// `planes` with one complete destination-based routing each, running the
/// per-destination Dijkstra once per (destination, plane) against ONE
/// shared, persistent weight map — consecutive planes therefore take
/// different minimal paths, exactly how OpenSM's SSSP treats the 2^lmc
/// LIDs of a port. Returns false on a disconnected network.
bool sssp_fill_planes(const Network& net, const SsspOptions& options,
                      std::span<RoutingTable> planes, RoutingStats& stats,
                      std::string& error);

}  // namespace dfsssp
