// Destination-based forwarding tables with per-path virtual-layer labels.
//
// This mirrors how InfiniBand realizes oblivious routing: every switch holds
// a linear forwarding table (LFT) mapping destination LIDs to output ports,
// and the subnet manager hands each (source, destination) pair a service
// level that selects the virtual lane. Here:
//  * next(sw, dst_terminal) is the LFT entry: the outgoing channel a packet
//    for dst_terminal takes at switch sw (kInvalidChannel when dst_terminal
//    is attached to sw itself — the packet is ejected);
//  * layer(src_switch, dst_terminal) is the virtual layer of the whole path.
//    All terminals on the same source switch share one layer per
//    destination, exactly the granularity at which destination-based
//    forwarding makes their channel sequences identical.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "topology/network.hpp"

namespace dfsssp {

class RoutingTable {
 public:
  RoutingTable() = default;
  explicit RoutingTable(const Network& net);

  /// Output channel at switch `sw` for packets to `dst_terminal`.
  ChannelId next(NodeId sw, NodeId dst_terminal) const {
    return next_[slot(sw, dst_terminal)];
  }
  void set_next(NodeId sw, NodeId dst_terminal, ChannelId out) {
    next_[slot(sw, dst_terminal)] = out;
  }

  /// Virtual layer of the path from any terminal on `src_switch` to
  /// `dst_terminal`.
  Layer layer(NodeId src_switch, NodeId dst_terminal) const {
    return layer_[slot(src_switch, dst_terminal)];
  }
  void set_layer(NodeId src_switch, NodeId dst_terminal, Layer l) {
    layer_[slot(src_switch, dst_terminal)] = l;
  }

  /// Number of virtual layers this table uses (1 = no virtual channels).
  Layer num_layers() const { return num_layers_; }
  void set_num_layers(Layer n) { num_layers_ = n; }

  /// Walks the forwarding tables from `src_switch` to `dst_terminal` and
  /// appends the inter-switch channel sequence to `out` (which is cleared
  /// first). Returns false on a dead end or forwarding loop.
  bool extract_path(const Network& net, NodeId src_switch, NodeId dst_terminal,
                    std::vector<ChannelId>& out) const;

  /// Hop count (number of inter-switch channels) or -1 when broken.
  std::int64_t path_hops(const Network& net, NodeId src_switch,
                         NodeId dst_terminal) const;

 private:
  std::size_t slot(NodeId sw, NodeId dst_terminal) const;

  const Network* net_ = nullptr;
  std::size_t num_terminals_ = 0;
  std::vector<ChannelId> next_;
  std::vector<Layer> layer_;
  Layer num_layers_ = 1;
};

}  // namespace dfsssp
