#include "routing/table.hpp"

#include <cassert>

namespace dfsssp {

RoutingTable::RoutingTable(const Network& net)
    : net_(&net), num_terminals_(net.num_terminals()) {
  next_.assign(net.num_switches() * num_terminals_, kInvalidChannel);
  layer_.assign(net.num_switches() * num_terminals_, 0);
}

std::size_t RoutingTable::slot(NodeId sw, NodeId dst_terminal) const {
  assert(net_ != nullptr);
  assert(net_->is_switch(sw) && net_->is_terminal(dst_terminal));
  return static_cast<std::size_t>(net_->node(sw).type_index) * num_terminals_ +
         net_->node(dst_terminal).type_index;
}

bool RoutingTable::extract_path(const Network& net, NodeId src_switch,
                                NodeId dst_terminal,
                                std::vector<ChannelId>& out) const {
  out.clear();
  const NodeId dst_switch = net.switch_of(dst_terminal);
  NodeId cur = src_switch;
  // Any correct path visits each switch at most once.
  const std::size_t hop_limit = net.num_switches();
  while (cur != dst_switch) {
    ChannelId c = next(cur, dst_terminal);
    if (c == kInvalidChannel) return false;              // dead end
    const Channel& ch = net.channel(c);
    if (ch.src != cur || !net.is_switch(ch.dst)) return false;
    out.push_back(c);
    cur = ch.dst;
    if (out.size() > hop_limit) return false;            // forwarding loop
  }
  return true;
}

std::int64_t RoutingTable::path_hops(const Network& net, NodeId src_switch,
                                     NodeId dst_terminal) const {
  std::vector<ChannelId> path;
  if (!extract_path(net, src_switch, dst_terminal, path)) return -1;
  return static_cast<std::int64_t>(path.size());
}

}  // namespace dfsssp
