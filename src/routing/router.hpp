// The common interface of every routing engine.
//
// An engine consumes a Topology and produces forwarding tables plus a
// virtual-layer assignment. Engines that cannot handle a topology (fat-tree
// routing on a ring, DOR without coordinates, DFSSSP running out of virtual
// layers) report failure through RoutingOutcome instead of throwing — the
// paper's Figure 4 plots exactly those failures as missing bars.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "routing/table.hpp"
#include "topology/topology.hpp"

namespace dfsssp {

struct RoutingStats {
  /// Wall time of path computation (Dijkstra/BFS loops).
  double route_seconds = 0.0;
  /// Wall time of the virtual-layer machinery (zero for single-layer engines).
  double layering_seconds = 0.0;
  /// Virtual layers the result uses.
  Layer layers_used = 1;
  /// CDG cycles broken while layering (DFSSSP offline only).
  std::uint64_t cycles_broken = 0;
  /// Number of (source switch, destination terminal) paths routed.
  std::uint64_t paths = 0;

  double total_seconds() const { return route_seconds + layering_seconds; }
};

struct RoutingOutcome {
  bool ok = false;
  std::string error;
  RoutingTable table;
  RoutingStats stats;

  static RoutingOutcome failure(std::string why) {
    RoutingOutcome o;
    o.ok = false;
    o.error = std::move(why);
    return o;
  }
};

class Router {
 public:
  virtual ~Router() = default;

  /// Short identifier used in result tables ("DFSSSP", "MinHop", ...).
  virtual std::string name() const = 0;

  /// True when the produced routing is guaranteed free of channel-dependency
  /// cycles (Up*/Down*, LASH, DFSSSP, fat-tree, DOR-on-mesh).
  virtual bool deadlock_free() const = 0;

  virtual RoutingOutcome route(const Topology& topo) const = 0;
};

/// The full engine roster of the paper's comparison (Figure 4), in plot
/// order: MinHop, Up*/Down*, FatTree, DOR, LASH, SSSP, DFSSSP.
/// `max_layers` bounds LASH and DFSSSP (InfiniBand hardware: 8).
std::vector<std::unique_ptr<Router>> make_all_routers(Layer max_layers = 8);

}  // namespace dfsssp
