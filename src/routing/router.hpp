// The common interface of every routing engine.
//
// An engine consumes a RouteRequest — the topology plus the execution
// policy of the run (virtual-layer budget, thread context, metrics sink) —
// and produces a RouteResponse: forwarding tables, a virtual-layer
// assignment, statistics, and (for the incremental fault-repair engine)
// repair provenance. Engines that cannot handle a topology (fat-tree
// routing on a ring, DOR without coordinates, DFSSSP running out of virtual
// layers) report failure through RouteResponse instead of throwing — the
// paper's Figure 4 plots exactly those failures as missing bars.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "routing/table.hpp"
#include "topology/topology.hpp"

namespace dfsssp {

namespace obs {
class Registry;
}  // namespace obs

/// One routing request: everything an engine needs beyond its own
/// configuration. Cheap to construct at the call site; the topology is
/// borrowed, not owned, and must outlive the route() call.
struct RouteRequest {
  /// The network to route. Never null in a valid request.
  const Topology* topology = nullptr;

  /// Virtual-layer budget for the layered engines (LASH, DFSSSP).
  /// 0 = use the engine's configured budget (make_all_routers: 8).
  Layer max_layers = 0;

  /// Execution policy for the engine's parallel sections. Results are
  /// bitwise identical at any thread count (the PR-1 contract).
  ExecContext exec;

  /// Metrics sink; nullptr = the process-global obs::registry().
  obs::Registry* metrics = nullptr;

  RouteRequest() = default;
  explicit RouteRequest(const Topology& topo) : topology(&topo) {}
  RouteRequest(const Topology& topo, const ExecContext& e)
      : topology(&topo), exec(e) {}
  RouteRequest(const Topology& topo, Layer layers, const ExecContext& e = {})
      : topology(&topo), max_layers(layers), exec(e) {}

  /// The request's topology; throws std::logic_error on a null request.
  const Topology& topo() const;

  /// The metrics sink to record into (global registry by default).
  obs::Registry& sink() const;

  /// The engine's effective layer budget: the request's override when set,
  /// `engine_default` otherwise.
  Layer layer_budget(Layer engine_default) const {
    return max_layers != 0 ? max_layers : engine_default;
  }
};

struct RoutingStats {
  /// Wall time of path computation (Dijkstra/BFS loops).
  double route_seconds = 0.0;
  /// Wall time of the virtual-layer machinery (zero for single-layer engines).
  double layering_seconds = 0.0;
  /// Virtual layers the result uses.
  Layer layers_used = 1;
  /// CDG cycles broken while layering (DFSSSP offline only).
  std::uint64_t cycles_broken = 0;
  /// Number of (source switch, destination terminal) paths routed. After an
  /// incremental repair this counts the paths alive in the current network
  /// state — never stale entries of invalidated destinations.
  std::uint64_t paths = 0;

  double total_seconds() const { return route_seconds + layering_seconds; }
};

/// Where a RouteResponse came from: a from-scratch run or an incremental
/// repair (src/fault/incremental.hpp). Engines that always recompute leave
/// this default-constructed.
struct RepairProvenance {
  /// True when the response was produced by repairing the previous routing
  /// in place instead of recomputing from scratch.
  bool incremental = false;
  /// Destinations whose forwarding trees were recomputed by this call.
  std::uint32_t destinations_rerouted = 0;
  /// (source switch, destination) paths moved to new channel sequences
  /// and/or new virtual layers by this call.
  std::uint64_t paths_migrated = 0;
  /// Why an attempted repair fell back to a full recompute (empty when
  /// `incremental` or when no repair was attempted).
  std::string fallback_reason;
};

struct RouteResponse {
  bool ok = false;
  std::string error;
  RoutingTable table;
  RoutingStats stats;
  RepairProvenance repair;

  static RouteResponse failure(std::string why) {
    RouteResponse o;
    o.ok = false;
    o.error = std::move(why);
    return o;
  }
};

class Router {
 public:
  virtual ~Router() = default;

  /// Short identifier used in result tables ("DFSSSP", "MinHop", ...).
  virtual std::string name() const = 0;

  /// True when the produced routing is guaranteed free of channel-dependency
  /// cycles (Up*/Down*, LASH, DFSSSP, fat-tree, DOR-on-mesh).
  virtual bool deadlock_free() const = 0;

  virtual RouteResponse route(const RouteRequest& request) const = 0;
};

/// The full engine roster of the paper's comparison (Figure 4), in plot
/// order: MinHop, Up*/Down*, FatTree, DOR, LASH, SSSP, DFSSSP.
/// `max_layers` bounds LASH and DFSSSP (InfiniBand hardware: 8); a
/// RouteRequest::max_layers override wins over this default.
std::vector<std::unique_ptr<Router>> make_all_routers(Layer max_layers = 8);

}  // namespace dfsssp
