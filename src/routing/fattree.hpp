// Fat-tree routing (OpenSM's fat-tree engine, d-mod-k flavored).
//
// Works on topologies whose generator provided tree levels and whose
// down-paths are unique (k-ary n-trees, XGFTs, simple Clos builds). Packets
// climb until an ancestor of the destination is reached — spreading over
// up-ports by destination index, the d-mod-k idea — and then descend along
// the unique down-path. Refuses anything that is not a proper fat tree,
// exactly like the OpenSM engine (Figure 4's missing bars).
#pragma once

#include "routing/router.hpp"

namespace dfsssp {

class FatTreeRouter final : public Router {
 public:
  std::string name() const override { return "FatTree"; }
  bool deadlock_free() const override { return true; }
  RouteResponse route(const RouteRequest& request) const override;
};

}  // namespace dfsssp
