#include "routing/minhop.hpp"

#include "common/timer.hpp"
#include "routing/spath.hpp"

namespace dfsssp {

RouteResponse MinHopRouter::route(const RouteRequest& request) const {
  const Topology& topo = request.topo();
  const Network& net = topo.net;
  Timer timer;
  RouteResponse out;
  out.table = RoutingTable(net);

  std::vector<std::uint64_t> usage(net.num_channels(), 0);
  std::vector<std::uint32_t> dist;
  for (NodeId d : net.terminals()) {
    const NodeId dst_switch = net.switch_of(d);
    bfs_hops_to(net, dst_switch, dist);
    for (NodeId s : net.switches()) {
      if (s == dst_switch) continue;
      const std::uint32_t ds = dist[net.node(s).type_index];
      if (ds == kUnreachable) {
        return RouteResponse::failure("network is disconnected");
      }
      ChannelId best = kInvalidChannel;
      for (ChannelId c : net.out_switch_channels(s)) {
        if (dist[net.node(net.channel(c).dst).type_index] != ds - 1) continue;
        if (best == kInvalidChannel || usage[c] < usage[best]) best = c;
      }
      out.table.set_next(s, d, best);
      ++usage[best];
    }
    out.stats.paths += net.num_switches() - 1;
  }
  out.stats.route_seconds = timer.seconds();
  out.ok = true;
  return out;
}

}  // namespace dfsssp
