#include "routing/spath.hpp"

#include <algorithm>
#include <queue>

namespace dfsssp {

void bfs_hops_to(const Network& net, NodeId dst_switch,
                 std::vector<std::uint32_t>& dist) {
  dist.assign(net.num_switches(), kUnreachable);
  std::queue<NodeId> q;
  dist[net.node(dst_switch).type_index] = 0;
  q.push(dst_switch);
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    const std::uint32_t du = dist[net.node(u).type_index];
    for (ChannelId c : net.out_switch_channels(u)) {
      NodeId v = net.channel(c).dst;
      std::uint32_t& dv = dist[net.node(v).type_index];
      if (dv == kUnreachable) {
        dv = du + 1;
        q.push(v);
      }
    }
  }
}

NodeId find_center_switch(const Network& net) {
  NodeId best = kInvalidNode;
  std::uint32_t best_ecc = kUnreachable;
  std::vector<std::uint32_t> dist;
  for (NodeId sw : net.switches()) {
    bfs_hops_to(net, sw, dist);
    std::uint32_t ecc = 0;
    for (std::uint32_t d : dist) ecc = std::max(ecc, d);
    if (ecc < best_ecc) {
      best_ecc = ecc;
      best = sw;
    }
  }
  return best;
}

}  // namespace dfsssp
