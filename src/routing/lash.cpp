#include "routing/lash.hpp"

#include <memory>

#include "cdg/online.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"
#include "routing/spath.hpp"

namespace dfsssp {

RouteResponse LashRouter::route(const RouteRequest& request) const {
  const Topology& topo = request.topo();
  const Network& net = topo.net;
  const Layer max_layers = request.layer_budget(options_.max_layers);
  TRACE_SPAN("lash/route");
  Timer timer;
  RouteResponse out;
  out.table = RoutingTable(net);

  // LASH routes at switch-pair granularity: one shortest path per
  // (src switch, dst switch); every terminal on the destination switch gets
  // the same port, and every terminal pair between the two switches shares
  // the pair's virtual layer.
  std::vector<std::vector<NodeId>> terms_by_sw(net.num_switches());
  for (NodeId t : net.terminals()) {
    terms_by_sw[net.node(net.switch_of(t)).type_index].push_back(t);
  }

  std::vector<std::uint32_t> dist;
  std::vector<std::uint64_t> usage(net.num_channels(), 0);
  for (NodeId dst_sw : net.switches()) {
    const auto& terms = terms_by_sw[net.node(dst_sw).type_index];
    if (terms.empty()) continue;
    bfs_hops_to(net, dst_sw, dist);
    for (NodeId s : net.switches()) {
      if (s == dst_sw) continue;
      const std::uint32_t ds = dist[net.node(s).type_index];
      if (ds == kUnreachable) {
        return RouteResponse::failure("network is disconnected");
      }
      // One arbitrary-but-fixed minimal path per switch pair, like the
      // OpenSM engine whose choice follows fabric discovery order. The
      // seeded hash models an arbitrary order without inheriting the
      // generator's construction-order bias; kFirstCandidate keeps that
      // bias (structured paths - see LashOptions::PathSelection).
      std::vector<ChannelId> candidates;
      for (ChannelId c : net.out_switch_channels(s)) {
        if (dist[net.node(net.channel(c).dst).type_index] == ds - 1) {
          candidates.push_back(c);
        }
      }
      ChannelId pick = candidates.front();
      if (options_.selection == LashOptions::PathSelection::kHashed) {
        std::uint64_t h = 0x9E3779B97F4A7C15ULL *
            (static_cast<std::uint64_t>(net.node(s).type_index) << 20 ^
             net.node(dst_sw).type_index);
        pick = candidates[splitmix64(h) % candidates.size()];
      }
      ++usage[pick];
      for (NodeId t : terms) out.table.set_next(s, t, pick);
    }
  }
  out.stats.route_seconds = timer.seconds();
  timer.restart();

  // Online first-fit layering over *unordered* switch pairs: one service
  // level serves the bidirectional communication of a pair, so both
  // directions' dependency edges must fit the same layer (as in the LASH
  // paper and the OpenSM engine).
  std::vector<std::unique_ptr<OnlineCdg>> layers;
  const std::uint32_t num_channels =
      static_cast<std::uint32_t>(net.num_channels());
  std::uint64_t layer_attempts = 0;
  std::vector<ChannelId> fwd_seq, rev_seq;
  Layer used = 1;
  for (NodeId a : net.switches()) {
    for (NodeId b : net.switches()) {
      if (b <= a) continue;
      const auto& terms_a = terms_by_sw[net.node(a).type_index];
      const auto& terms_b = terms_by_sw[net.node(b).type_index];
      if (terms_a.empty() && terms_b.empty()) continue;
      // Only traffic-carrying directions contribute dependencies.
      fwd_seq.clear();
      rev_seq.clear();
      if (!terms_b.empty() && !out.table.extract_path(net, a, terms_b.front(), fwd_seq)) {
        return RouteResponse::failure("broken forwarding");
      }
      if (!terms_a.empty() && !out.table.extract_path(net, b, terms_a.front(), rev_seq)) {
        return RouteResponse::failure("broken forwarding");
      }
      Layer assigned = kInvalidLayer;
      for (Layer l = 0; l < max_layers; ++l) {
        if (l == layers.size()) {
          layers.push_back(std::make_unique<OnlineCdg>(num_channels));
        }
        ++layer_attempts;
        if (!layers[l]->try_add_path(fwd_seq)) continue;
        if (!layers[l]->try_add_path(rev_seq)) {
          layers[l]->remove_path(fwd_seq);
          continue;
        }
        assigned = l;
        break;
      }
      if (assigned == kInvalidLayer) {
        return RouteResponse::failure(
            "LASH: ran out of virtual layers (" +
            std::to_string(max_layers) + ")");
      }
      used = std::max(used, static_cast<Layer>(assigned + 1));
      for (NodeId t : terms_b) out.table.set_layer(a, t, assigned);
      for (NodeId t : terms_a) out.table.set_layer(b, t, assigned);
      out.stats.paths += (terms_b.empty() ? 0 : 1) + (terms_a.empty() ? 0 : 1);
    }
  }
  out.table.set_num_layers(used);
  out.stats.layers_used = used;
  out.stats.layering_seconds = timer.seconds();
  // Deterministic layering cost, attributed to the lash/route span.
  std::uint64_t cdg_insertions = 0;
  for (const auto& l : layers) cdg_insertions += l->num_insertions();
  PROF_COUNT("lash/layer_attempts", layer_attempts);
  PROF_COUNT("cdg/edge_insertions", cdg_insertions);
  out.ok = true;
  return out;
}

}  // namespace dfsssp
