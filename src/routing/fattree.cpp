#include "routing/fattree.hpp"

#include "common/timer.hpp"

namespace dfsssp {

RouteResponse FatTreeRouter::route(const RouteRequest& request) const {
  const Topology& topo = request.topo();
  const Network& net = topo.net;
  const TopologyMeta& meta = topo.meta;
  Timer timer;
  if (!meta.has_levels() || meta.sw_level.size() != net.num_switches()) {
    return RouteResponse::failure("fat-tree routing needs tree levels");
  }

  RouteResponse out;
  out.table = RoutingTable(net);

  auto level = [&](NodeId sw) { return meta.sw_level[net.node(sw).type_index]; };

  // Up-channel lists per switch (toward higher levels).
  std::vector<std::vector<ChannelId>> ups(net.num_switches());
  for (NodeId s : net.switches()) {
    for (ChannelId c : net.out_switch_channels(s)) {
      const NodeId t = net.channel(c).dst;
      if (level(t) == level(s)) {
        return RouteResponse::failure("link inside one tree level");
      }
      if (level(t) > level(s)) ups[net.node(s).type_index].push_back(c);
    }
  }

  // d-mod-k spreading index per terminal: the rank *within its leaf switch*
  // (destinations sharing a leaf must fan out over different spines),
  // rotated by the leaf index so distinct leaves do not align either.
  std::vector<std::uint32_t> spread(net.num_terminals());
  {
    std::vector<std::uint32_t> seen(net.num_switches(), 0);
    for (NodeId t : net.terminals()) {
      const std::uint32_t leaf = net.node(net.switch_of(t)).type_index;
      spread[net.node(t).type_index] = seen[leaf]++ + leaf;
    }
  }

  // down_to[s]: the unique down channel from ancestor s toward the current
  // destination; kInvalidChannel when s is not an ancestor.
  std::vector<ChannelId> down_to(net.num_switches());
  for (NodeId d : net.terminals()) {
    const NodeId dst_switch = net.switch_of(d);
    std::fill(down_to.begin(), down_to.end(), kInvalidChannel);

    // Climb from the destination leaf, recording per ancestor the channel
    // that leads back down. A second distinct entry means the down-path is
    // not unique => not a proper fat tree.
    std::vector<NodeId> frontier{dst_switch};
    std::vector<std::uint8_t> is_ancestor(net.num_switches(), 0);
    is_ancestor[net.node(dst_switch).type_index] = 1;
    for (std::size_t fi = 0; fi < frontier.size(); ++fi) {
      const NodeId x = frontier[fi];
      for (ChannelId c : ups[net.node(x).type_index]) {
        const NodeId parent = net.channel(c).dst;
        const std::uint32_t pi = net.node(parent).type_index;
        const ChannelId down = net.channel(c).reverse;  // parent -> x
        if (!is_ancestor[pi]) {
          is_ancestor[pi] = 1;
          down_to[pi] = down;
          frontier.push_back(parent);
        } else if (down_to[pi] != down) {
          return RouteResponse::failure("down-path not unique");
        }
      }
    }

    const std::uint32_t dmod = spread[net.node(d).type_index];
    for (NodeId s : net.switches()) {
      if (s == dst_switch) continue;
      const std::uint32_t si = net.node(s).type_index;
      if (is_ancestor[si]) {
        out.table.set_next(s, d, down_to[si]);
        continue;
      }
      const auto& up = ups[si];
      if (up.empty()) {
        return RouteResponse::failure("top switch is not a common ancestor");
      }
      // d-mod-k: prefer up-ports that reach an ancestor directly, spread by
      // destination index.
      std::vector<ChannelId> toward_ancestor;
      for (ChannelId c : up) {
        if (is_ancestor[net.node(net.channel(c).dst).type_index]) {
          toward_ancestor.push_back(c);
        }
      }
      const auto& candidates = toward_ancestor.empty() ? up : toward_ancestor;
      out.table.set_next(s, d, candidates[dmod % candidates.size()]);
    }
    out.stats.paths += net.num_switches() - 1;
  }

  out.stats.route_seconds = timer.seconds();
  out.ok = true;
  return out;
}

}  // namespace dfsssp
