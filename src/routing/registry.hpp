// Engine registry: the single place a routing engine is constructed by name.
//
// Every consumer that used to hard-code the roster — the per-figure benches
// (make_all_routers), dfcheck's --route=ENGINE matching, dfbench's roster
// listing, and the dfrouted daemon's --engine flag — resolves engines here,
// so adding an engine is one registry row instead of four call-site edits.
//
// An entry carries the canonical lookup key (lowercase, no punctuation),
// the display name the paper's tables print, a one-line description, and
// the capability flags tooling branches on (deadlock freedom, virtual-layer
// consumption, incremental repairability, default-roster membership).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "routing/router.hpp"

namespace dfsssp::routing {

struct EngineInfo {
  /// Canonical registry key ("minhop", "updown", "dfsssp", ...). Lookup is
  /// forgiving — make_router() normalizes case and punctuation, so
  /// "Up*/Down*" and "UPDOWN" both resolve to "updown".
  std::string name;
  /// Display name used in result tables ("Up*/Down*", "DFSSSP").
  std::string display_name;
  std::string description;
  /// Produces routings guaranteed free of channel-dependency cycles.
  bool deadlock_free = false;
  /// Consumes the virtual-layer budget (max_layers is meaningful).
  bool layered = false;
  /// Can be repaired in place by IncrementalDfsssp under churn.
  bool incremental = false;
  /// Member of the paper's Figure-4 comparison roster, in plot order —
  /// what make_all_routers() returns.
  bool in_default_roster = true;
};

/// Every registered engine, in roster order (the paper's plot order first,
/// then the extras).
const std::vector<EngineInfo>& engine_roster();

/// Registry metadata for one engine; nullptr when `name` (normalized)
/// is not registered.
const EngineInfo* find_engine(const std::string& name);

/// Constructs an engine by (normalized) name or display name. `max_layers`
/// bounds the layered engines (LASH, DFSSSP); non-layered engines ignore
/// it. Returns nullptr for unknown names.
std::unique_ptr<Router> make_router(const std::string& name,
                                    Layer max_layers = 8);

/// Comma-separated canonical keys, for error messages and usage text.
std::string engine_names();

}  // namespace dfsssp::routing
