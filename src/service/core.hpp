// The daemon's brain: one ServiceCore owns the persistent Topology, the
// ChurnEngine that mutates it, and the routing engine that (re)programs
// forwarding state — the same ownership triangle a subnet manager holds
// over a fabric. Transports (unix socket, stdin/stdout pipe, in-process
// benches) are thin loops around handle().
//
// Concurrency contract:
//   * route / repair / fault_event / shutdown serialize on one engine
//     mutex — there is a single fabric, so mutations are inherently
//     ordered. Fault events only enqueue under the mutex (cheap); the
//     expensive repair work happens on whichever connection thread sends
//     the repair request, still under the mutex but OUTSIDE the snapshot
//     lock.
//   * lookup / stats / snapshot_info never take the engine mutex. Lookups
//     read the RCU-published ForwardingSnapshot (snapshot.hpp): during a
//     repair they answer from the previous generation; after the publish
//     they answer from the new one; never a torn mix.
//
// Fault events batch in a pending queue and are coalesced by
// ChurnEngine::apply_all into ONE delta on the next repair request — a
// burst of link flaps costs one repair, not one per event.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fault/churn.hpp"
#include "fault/incremental.hpp"
#include "obs/metrics.hpp"
#include "routing/router.hpp"
#include "service/envelope.hpp"
#include "service/snapshot.hpp"
#include "topology/topology.hpp"

namespace dfsssp::service {

struct ServiceCoreOptions {
  /// Engine registry key (routing::make_router). "dfsssp" gets the
  /// incremental repair path; every other engine repairs by full
  /// recompute.
  std::string engine = "dfsssp";
  /// Virtual-layer budget; a route request's max_layers overrides.
  Layer max_layers = 8;
  /// Metrics sink; nullptr = the process-global obs::registry().
  obs::Registry* metrics = nullptr;
};

class ServiceCore {
 public:
  /// Takes ownership of the topology. Throws std::invalid_argument for an
  /// unknown engine key.
  ServiceCore(Topology topo, ServiceCoreOptions options = {});

  /// Executes one request. Thread-safe; see the header comment for which
  /// kinds serialize and which run lock-free.
  ServiceResponse handle(const ServiceRequest& request);

  /// After this, every request except an in-flight one is answered with
  /// Status::kErrDraining. Idempotent; also triggered by a shutdown
  /// request.
  void begin_drain() { draining_.store(true, std::memory_order_relaxed); }
  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Current published snapshot (nullptr before the first route).
  std::shared_ptr<const ForwardingSnapshot> snapshot() const {
    return slot_.load();
  }

  const std::string& engine_name() const { return engine_key_; }
  const Topology& topo() const { return topo_; }

 private:
  ServiceResponse do_route(const ServiceRequest& r);
  ServiceResponse do_repair(const ServiceRequest& r);
  ServiceResponse do_fault_event(const ServiceRequest& r);
  ServiceResponse do_lookup(const ServiceRequest& r);
  ServiceResponse do_stats(const ServiceRequest& r);
  ServiceResponse do_snapshot_info(const ServiceRequest& r);
  /// Publishes `resp`'s table as the next snapshot generation and fills
  /// the route/repair response fields shared by both kinds.
  ServiceResponse publish(const ServiceRequest& r, RouteResponse resp,
                          std::uint64_t elapsed_ns);

  obs::Registry& metrics_;
  Topology topo_;
  ChurnEngine churn_;
  std::string engine_key_;
  Layer max_layers_;
  std::unique_ptr<IncrementalDfsssp> incremental_;  // engine == "dfsssp"
  std::unique_ptr<Router> router_;                  // every other engine

  std::mutex engine_mu_;             // serializes all topology mutation
  std::vector<FaultEvent> pending_;  // guarded by engine_mu_
  std::atomic<std::uint32_t> pending_count_{0};  // lock-free mirror
  SnapshotSlot slot_;
  std::atomic<bool> draining_{false};

  // Metric handles, registered once with literal names (see
  // docs/observability.md, "service/*").
  obs::Counter& requests_;
  obs::Counter& lookups_;
  obs::Counter& repairs_;
  obs::Counter& routes_;
  obs::Counter& fault_events_;
  obs::Counter& snapshot_swaps_;
  obs::Counter& errors_;
  obs::Counter& draining_rejects_;
  obs::Gauge& pending_events_gauge_;
  obs::Gauge& snapshot_version_gauge_;
  obs::Histogram& lookup_ns_;
  obs::Histogram& repair_ns_;
  obs::Histogram& route_ns_;
};

}  // namespace dfsssp::service
