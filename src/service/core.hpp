// The daemon's brain: one ServiceCore owns the persistent Topology, the
// ChurnEngine that mutates it, and the routing engine that (re)programs
// forwarding state — the same ownership triangle a subnet manager holds
// over a fabric. Transports (unix socket, stdin/stdout pipe, in-process
// benches) are thin loops around handle().
//
// Concurrency contract:
//   * route / repair / fault_event / shutdown serialize on one engine
//     mutex — there is a single fabric, so mutations are inherently
//     ordered. Fault events only enqueue under the mutex (cheap); the
//     expensive repair work happens on whichever connection thread sends
//     the repair request, still under the mutex but OUTSIDE the snapshot
//     lock.
//   * lookup / stats / snapshot_info never take the engine mutex. Lookups
//     read the RCU-published ForwardingSnapshot (snapshot.hpp): during a
//     repair they answer from the previous generation; after the publish
//     they answer from the new one; never a torn mix.
//
// Fault events batch in a pending queue and are coalesced by
// ChurnEngine::apply_all into ONE delta on the next repair request — a
// burst of link flaps costs one repair, not one per event.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fault/churn.hpp"
#include "fault/incremental.hpp"
#include "obs/journal/journal.hpp"
#include "obs/metrics.hpp"
#include "routing/router.hpp"
#include "service/envelope.hpp"
#include "service/snapshot.hpp"
#include "topology/topology.hpp"

namespace dfsssp::service {

struct ServiceCoreOptions {
  /// Engine registry key (routing::make_router). "dfsssp" gets the
  /// incremental repair path; every other engine repairs by full
  /// recompute.
  std::string engine = "dfsssp";
  /// Virtual-layer budget; a route request's max_layers overrides.
  Layer max_layers = 8;
  /// Metrics sink; nullptr = the process-global obs::registry().
  obs::Registry* metrics = nullptr;
  /// Flight recorder (obs/journal). Off by default; when on, every
  /// mutation emits journal records (and the published table + certificate
  /// are digested per generation, which is what makes `dfreplay --verify`
  /// possible — at the cost of one canonical certificate build per swap).
  bool journal = false;
  std::uint32_t journal_capacity = 8192;  // ring size, records
  /// Append-only DFJR segment path; empty = in-memory ring only.
  std::string journal_path;
  /// Topology config key (configs.hpp registry name or "kary-tree:K:N")
  /// recorded in the segment header so dfreplay can rebuild the fabric.
  std::string journal_config;
};

class ServiceCore {
 public:
  /// Takes ownership of the topology. Throws std::invalid_argument for an
  /// unknown engine key.
  ServiceCore(Topology topo, ServiceCoreOptions options = {});

  /// Executes one request. Thread-safe; see the header comment for which
  /// kinds serialize and which run lock-free.
  ServiceResponse handle(const ServiceRequest& request);

  /// After this, every request except an in-flight one is answered with
  /// Status::kErrDraining. Idempotent; also triggered by a shutdown
  /// request.
  void begin_drain() { draining_.store(true, std::memory_order_relaxed); }
  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Current published snapshot (nullptr before the first route).
  std::shared_ptr<const ForwardingSnapshot> snapshot() const {
    return slot_.load();
  }

  const std::string& engine_name() const { return engine_key_; }
  const Topology& topo() const { return topo_; }

  /// The flight recorder, nullptr when ServiceCoreOptions::journal was
  /// false. Used by the in-process dfreplay target to drain records
  /// without a wire round trip.
  const obs::journal::Journal* journal() const { return journal_.get(); }

 private:
  ServiceResponse do_route(const ServiceRequest& r);
  ServiceResponse do_repair(const ServiceRequest& r);
  ServiceResponse do_fault_event(const ServiceRequest& r);
  ServiceResponse do_lookup(const ServiceRequest& r);
  ServiceResponse do_stats(const ServiceRequest& r);
  ServiceResponse do_snapshot_info(const ServiceRequest& r);
  ServiceResponse do_journal_tail(const ServiceRequest& r);
  ServiceResponse do_journal_stats(const ServiceRequest& r);
  /// Publishes `resp`'s table as the next snapshot generation and fills
  /// the route/repair response fields shared by both kinds.
  ServiceResponse publish(const ServiceRequest& r, RouteResponse resp,
                          std::uint64_t elapsed_ns);
  /// Journals the snapshot_swap + completion records of one route/repair
  /// transaction (call under engine_mu_ with journal_ set). `ts` is the
  /// transaction's logical timestamp; digests are computed from the
  /// freshly published snapshot when `resp.status == kOk`.
  void journal_mutation(const ServiceRequest& r, const ServiceResponse& resp,
                        std::uint64_t ts, std::uint64_t version_before,
                        bool fallback, std::uint64_t latency_ns);

  obs::Registry& metrics_;
  Topology topo_;
  ChurnEngine churn_;
  std::string engine_key_;
  Layer max_layers_;
  std::unique_ptr<IncrementalDfsssp> incremental_;  // engine == "dfsssp"
  std::unique_ptr<Router> router_;                  // every other engine

  std::mutex engine_mu_;             // serializes all topology mutation
  std::vector<FaultEvent> pending_;  // guarded by engine_mu_
  std::unique_ptr<obs::journal::Journal> journal_;  // nullptr = off
  /// The mutation clock: incremented once per mutating request (under
  /// engine_mu_), stamped into every record that request emits. Replay
  /// groups records back into transactions by this value.
  std::uint64_t logical_clock_ = 0;  // guarded by engine_mu_
  std::uint64_t start_ns_ = 0;       // daemon birth, for uptime
  std::atomic<std::uint32_t> pending_count_{0};  // lock-free mirror
  SnapshotSlot slot_;
  std::atomic<bool> draining_{false};

  // Metric handles, registered once with literal names (see
  // docs/observability.md, "service/*").
  obs::Counter& requests_;
  obs::Counter& lookups_;
  obs::Counter& repairs_;
  obs::Counter& routes_;
  obs::Counter& fault_events_;
  obs::Counter& snapshot_swaps_;
  obs::Counter& errors_;
  obs::Counter& draining_rejects_;
  obs::Gauge& pending_events_gauge_;
  obs::Gauge& snapshot_version_gauge_;
  obs::Histogram& lookup_ns_;
  obs::Histogram& repair_ns_;
  obs::Histogram& route_ns_;
};

}  // namespace dfsssp::service
