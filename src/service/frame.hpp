// Compatibility shim: the frame transport moved to common/frame.hpp so
// the flight-recorder journal (obs/journal) can write its on-disk
// segments through the exact same framing. Service code keeps including
// "service/frame.hpp" and naming service::read_frame / service::FrameResult.
#pragma once

#include "common/frame.hpp"

namespace dfsssp::service {

using dfsssp::FrameResult;
using dfsssp::read_frame;
using dfsssp::write_frame;

}  // namespace dfsssp::service
