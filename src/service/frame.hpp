// Length-prefixed frame transport over plain file descriptors.
//
// A frame is `u32 little-endian payload length | payload`. This layer is
// deliberately dumb: it moves byte strings, envelope.hpp gives them
// meaning. Both the daemon (unix socket / stdin-stdout pipe) and the
// dfroutectl client speak through these two calls, so the tests exercise
// the exact production framing via a socketpair.
//
// read_frame polls in short ticks so a serving loop notices a stop flag
// (SIGTERM) between frames without needing signal-interruptible blocking
// reads; once a frame's first byte arrives, the rest is read to
// completion. An oversized length prefix is consumed — payload drained and
// discarded — so the stream stays framed and the server can answer with a
// structured error instead of dropping the connection.
#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace dfsssp::service {

enum class FrameResult {
  kFrame,      // payload filled with one complete frame
  kEof,        // peer closed cleanly between frames
  kError,      // read error or mid-frame EOF; connection unusable
  kOversized,  // length prefix above kMaxFramePayload; payload drained
  kStopped,    // stop predicate true and no frame arrived within the grace
};

/// Reads one frame from `fd` into `payload`. `stop`, when set, is polled
/// between ticks (it typically reads a signal flag or the core's draining
/// bit): once it returns true, the reader keeps accepting an
/// already-arriving frame for a few more poll ticks (so it can be answered
/// with kErrDraining) and then returns kStopped.
FrameResult read_frame(int fd, std::string& payload,
                       const std::function<bool()>& stop = {});

/// Writes `u32 len | payload` to `fd`, retrying partial writes. False on
/// any write error (e.g. the peer vanished).
bool write_frame(int fd, std::string_view payload);

}  // namespace dfsssp::service
