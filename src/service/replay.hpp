// Deterministic replay of a flight-recorder journal (obs/journal) against
// a fresh ServiceCore — the ROADMAP's "feed recorded fault logs back
// through the daemon", made a library so tools/dfreplay and the tests
// share one implementation.
//
// A journal is a flat record stream, but every mutating request stamps all
// of its records with one logical timestamp, so grouping consecutive
// records by logical_ts recovers the original transactions:
//
//   [fault_event]                                  <- one fault request
//   [coalesced_batch, veto?, snapshot_swap, repair] <- one repair request
//   [snapshot_swap, route]                          <- one route request
//
// Each group's trigger (the route/repair/fault_event record) is turned
// back into a ServiceRequest, issued against the target, and — with
// verify on — the records the target's own journal emitted are compared
// field for field against the recorded group (latency_ns excluded; wall
// clock is the one nondeterministic field). Matching table_digest and
// cert_digest at every generation is exactly the "bitwise-identical
// forwarding snapshot + per-generation certificate hash" guarantee.
//
// Two targets: in-process (a fresh core built from the journal header's
// topo config) and socket (a live dfrouted started with --journal on the
// same config, drained over the wire via journal_tail).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/journal/journal.hpp"
#include "service/envelope.hpp"
#include "topology/topology.hpp"

namespace dfsssp::service {

/// Something a journal can be replayed against: issues requests and
/// drains the journal records they produced.
class ReplayTarget {
 public:
  virtual ~ReplayTarget() = default;
  /// Executes one request; transport failures surface as a non-kOk status
  /// with `error` set.
  virtual ServiceResponse call(const ServiceRequest& req) = 0;
  /// Appends all records with seq >= from_seq to `out`; returns the seq
  /// to resume from.
  virtual std::uint64_t drain(std::uint64_t from_seq,
                              std::vector<obs::journal::Record>& out) = 0;
};

struct ReplayMismatch {
  std::uint64_t logical_ts = 0;  // transaction that diverged
  std::string detail;            // human-readable field-level diff
};

struct ReplayResult {
  /// True when every transaction replayed and (with verify) every record
  /// matched.
  bool ok = false;
  /// Hard failure before/while replaying (bad journal, transport loss);
  /// empty when the replay ran to completion.
  std::string error;
  std::uint64_t transactions = 0;     // requests re-issued
  std::uint64_t records_checked = 0;  // records compared (verify only)
  std::uint64_t generations = 0;      // snapshot swaps observed
  std::vector<ReplayMismatch> mismatches;
};

/// Replays `file` against `target`. With `verify`, compares the emitted
/// records transaction by transaction; without, only re-issues the
/// requests (a load-replay). Stops at the first hard error; collects up
/// to 16 mismatches before giving up.
ReplayResult replay_journal(const obs::journal::JournalFile& file,
                            ReplayTarget& target, bool verify);

/// Rebuilds the fabric named by a journal header: a configs.hpp registry
/// key, or the "kary-tree:<k>:<n>" spelling bench_soak records for its
/// non-registry fabric. Throws std::invalid_argument on an unknown spec.
Topology build_replay_topology(const std::string& topo_config);

/// A fresh in-process ServiceCore configured from the journal header
/// (same engine, same layer budget, journaling on, memory-only ring).
std::unique_ptr<ReplayTarget> make_inprocess_target(
    const obs::journal::JournalFile& file);

/// A live daemon on a unix socket; it must have been started with
/// --journal (drain goes over journal_tail). Returns nullptr with `error`
/// set when the connection fails.
std::unique_ptr<ReplayTarget> make_socket_target(
    const std::string& socket_path, std::string& error);

}  // namespace dfsssp::service
