// RCU-style forwarding-state publication.
//
// The daemon's repair path mutates routing state; its lookup path must
// answer from a consistent table without ever blocking behind a repair
// (a subnet manager keeps forwarding queries alive while it reprograms
// LFTs). The classic answer is read-copy-update: writers build a complete
// new ForwardingSnapshot off to the side and publish it with one pointer
// swap; readers grab a shared_ptr and keep reading their (immutable)
// snapshot even if a newer one lands mid-read. A lookup therefore sees
// either the pre-repair or the post-repair table — never a torn mix.
//
// SnapshotSlot is the publication point. It uses a mutex around the
// shared_ptr load/store rather than std::atomic<shared_ptr> — the critical
// section is two refcount operations, so readers only ever contend for
// nanoseconds, and it is portable to libstdc++ versions whose atomic
// shared_ptr is incomplete. The repair itself (milliseconds) runs entirely
// outside the lock.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "routing/table.hpp"

namespace dfsssp::service {

/// One immutable published generation of forwarding state. Never modified
/// after publication; concurrent readers share it by shared_ptr.
struct ForwardingSnapshot {
  /// Monotonic generation counter, 1 = first successful route.
  std::uint64_t version = 0;
  RoutingTable table;
  Layer layers_used = 1;
  std::uint64_t paths = 0;
};

class SnapshotSlot {
 public:
  /// Current snapshot, or nullptr before the first publish. The returned
  /// shared_ptr keeps the generation alive for as long as the caller holds
  /// it, however many publishes happen meanwhile.
  std::shared_ptr<const ForwardingSnapshot> load() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  /// Atomically replaces the published snapshot and returns its version.
  /// Assigns the next generation number; the caller passes ownership.
  std::uint64_t publish(std::shared_ptr<ForwardingSnapshot> next) {
    std::lock_guard<std::mutex> lock(mu_);
    next->version = ++version_;
    ++swaps_;
    current_ = std::move(next);
    return current_->version;
  }

  std::uint64_t swaps() const {
    std::lock_guard<std::mutex> lock(mu_);
    return swaps_;
  }

  std::uint64_t version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return version_;
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ForwardingSnapshot> current_;
  std::uint64_t version_ = 0;
  std::uint64_t swaps_ = 0;
};

}  // namespace dfsssp::service
