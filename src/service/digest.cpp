#include "service/digest.hpp"

namespace dfsssp::service {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (v >> shift) & 0xFF;
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t table_digest(const Network& net, const RoutingTable& table) {
  std::uint64_t h = kFnvOffset;
  mix(h, table.num_layers());
  const NodeId n = net.num_nodes();
  for (NodeId sw = 0; sw < n; ++sw) {
    if (!net.is_switch(sw)) continue;
    for (NodeId t = 0; t < n; ++t) {
      if (!net.is_terminal(t)) continue;
      mix(h, table.next(sw, t));
      mix(h, table.layer(sw, t));
    }
  }
  return h;
}

std::uint64_t certificate_digest(const Certificate& cert) {
  std::uint64_t h = kFnvOffset;
  mix(h, cert.num_layers);
  for (const std::vector<ChannelId>& layer : cert.order) {
    mix(h, layer.size());
    for (const ChannelId c : layer) mix(h, c);
  }
  return h;
}

}  // namespace dfsssp::service
