// The versioned wire envelope of the routing service (dfrouted).
//
// PR 4's RouteRequest/RouteResponse are in-process types — they borrow a
// Topology pointer and carry an ExecContext, neither of which crosses a
// process boundary. The service envelope is their wire-level promotion:
// a self-contained, versioned, length-prefixed message a fabric-manager
// client can send over a unix socket (or a stdin/stdout pipe in tests/CI).
//
// Framing (everything little-endian):
//
//   frame    := u32 payload_len | payload
//   request  := u16 schema_version | u16 kind | u64 request_id | body
//   response := u16 schema_version | u16 kind | u64 request_id |
//               u16 status | body
//
// A frame whose payload_len exceeds kMaxFramePayload is answered with
// Status::kErrOversized (and the payload is drained so the stream stays
// framed); a payload that does not decode is answered with
// Status::kErrMalformed / kErrUnsupportedVersion / kErrUnknownKind. The
// connection survives all of these — only EOF or a transport error closes
// it. Unknown-field tolerance is deliberate: bodies may grow new TRAILING
// fields within a schema version, so decoders accept longer-than-expected
// bodies (a v1 server ignores trailing bytes a v1.x client appended) but
// reject short ones.
//
// Request bodies:
//   route         u16 max_layers (0 = server default)
//   repair        (empty)       drain + coalesce the pending fault batch
//   fault_event   u8 fault_kind | u32 channel | u32 switch
//   lookup        u32 src_switch | u32 dst_terminal
//   stats         (empty)
//   snapshot_info (empty)
//   shutdown      (empty)       begin drain; daemon exits 0
//   journal_tail  u64 from_seq | u32 max | u8 kind_filter (0 = all)
//   journal_stats (empty)
//
// Response bodies (status == kOk; error responses carry a u32-length
// message string instead):
//   route         u64 snapshot_version | u16 layers | u64 paths | u64 ns
//   repair        u64 snapshot_version | u16 layers | u64 paths |
//                 u32 events_coalesced | u8 incremental |
//                 u32 destinations_rerouted | u64 paths_migrated | u64 ns
//   fault_event   u32 pending_events
//   lookup        u64 snapshot_version | u32 next_channel | u8 layer |
//                 u8 ejected
//   stats         str metrics_json
//   snapshot_info u64 snapshot_version | u64 snapshot_swaps | u16 layers |
//                 u64 paths | u32 switches | u32 terminals |
//                 u32 pending_events | str engine | str topology |
//                 u64 uptime_ns | u64 peak_rss_bytes
//   shutdown      (empty)
//   journal_tail  u64 next_seq | u32 count | count x journal record
//                 (obs/journal fixed-size codec, kRecordBytes each)
//   journal_stats u64 next_seq | u64 appended | u64 dropped | u32 size |
//                 u32 capacity | 6 x u64 by_kind (kinds 1..6) |
//                 u64 disk_bytes | u8 sink_open | u8 sink_failed |
//                 str sink_path
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/frame.hpp"
#include "common/types.hpp"
#include "obs/journal/journal.hpp"

namespace dfsssp::service {

/// Wire schema version this build speaks. Decoders reject other versions
/// with Status::kErrUnsupportedVersion (the structured signal a mixed
/// fleet upgrades on).
inline constexpr std::uint16_t kWireVersion = 1;

/// The frame-payload ceiling now lives with the transport
/// (common/frame.hpp); re-exported here because the envelope's size
/// contract is part of the wire API.
using dfsssp::kMaxFramePayload;

enum class MsgKind : std::uint16_t {
  kRoute = 1,         // from-scratch recompute, swaps a fresh snapshot
  kRepair = 2,        // coalesce pending faults, repair, swap snapshot
  kFaultEvent = 3,    // enqueue one fault event into the pending batch
  kLookup = 4,        // forwarding-table lookup from the current snapshot
  kStats = 5,         // obs metrics snapshot as JSON text
  kSnapshotInfo = 6,  // snapshot version/layers/paths + daemon identity
  kShutdown = 7,      // begin drain; daemon exits 0
  kJournalTail = 8,   // stream flight-recorder records from the ring
  kJournalStats = 9,  // flight-recorder counters (ring + disk sink)
};

enum class Status : std::uint16_t {
  kOk = 0,
  kErrMalformed = 1,           // payload did not decode
  kErrOversized = 2,           // frame payload above kMaxFramePayload
  kErrUnsupportedVersion = 3,  // schema_version != kWireVersion
  kErrUnknownKind = 4,         // kind not in MsgKind
  kErrDraining = 5,            // daemon is draining; retry elsewhere
  kErrRouteFailed = 6,         // engine refused the topology
  kErrBadArgument = 7,         // ids out of range / wrong node type
  kErrNotRouted = 8,           // lookup before any successful route
};

const char* to_string(MsgKind kind);
const char* to_string(Status status);

/// One decoded request. Fields beyond (version, kind, request_id) are
/// meaningful only for the kinds that carry them (see the body table
/// above); encode_request writes exactly the fields of `kind`.
struct ServiceRequest {
  std::uint16_t version = kWireVersion;
  MsgKind kind = MsgKind::kLookup;
  std::uint64_t request_id = 0;

  Layer max_layers = 0;           // route
  std::uint8_t fault_kind = 0;    // fault_event (FaultKind as u8)
  ChannelId channel = kInvalidChannel;  // fault_event
  NodeId sw = kInvalidNode;       // fault_event
  NodeId src_switch = kInvalidNode;     // lookup
  NodeId dst_terminal = kInvalidNode;   // lookup
  std::uint64_t journal_from_seq = 0;   // journal_tail
  std::uint32_t journal_max = 0;        // journal_tail (0 = server cap)
  std::uint8_t journal_kind = 0;        // journal_tail (0 = all kinds)
};

/// One decoded response; `status != kOk` carries `error` and no body
/// fields.
struct ServiceResponse {
  std::uint16_t version = kWireVersion;
  MsgKind kind = MsgKind::kLookup;
  std::uint64_t request_id = 0;
  Status status = Status::kOk;
  std::string error;

  std::uint64_t snapshot_version = 0;  // route/repair/lookup/snapshot_info
  std::uint64_t snapshot_swaps = 0;    // snapshot_info
  Layer layers = 1;                    // route/repair/snapshot_info
  std::uint64_t paths = 0;             // route/repair/snapshot_info
  std::uint64_t elapsed_ns = 0;        // route/repair
  std::uint32_t events_coalesced = 0;  // repair
  bool incremental = false;            // repair
  std::uint32_t destinations_rerouted = 0;  // repair
  std::uint64_t paths_migrated = 0;    // repair
  std::uint32_t pending_events = 0;    // fault_event/snapshot_info
  ChannelId next_channel = kInvalidChannel;  // lookup
  Layer layer = 0;                     // lookup
  bool ejected = false;                // lookup (dst attached to src_switch)
  std::string stats_json;              // stats
  std::uint32_t switches = 0;          // snapshot_info
  std::uint32_t terminals = 0;         // snapshot_info
  std::string engine;                  // snapshot_info
  std::string topology;                // snapshot_info
  std::uint64_t uptime_ns = 0;         // snapshot_info
  std::uint64_t peak_rss_bytes = 0;    // snapshot_info
  std::uint64_t journal_next_seq = 0;  // journal_tail (resume cursor)
  std::vector<obs::journal::Record> journal_records;  // journal_tail
  obs::journal::JournalStats journal_stats;           // journal_stats
};

/// Serializes the fields of `r.kind` into a frame payload (no length
/// prefix — framing is the transport's job, frame.hpp).
std::string encode_request(const ServiceRequest& r);
std::string encode_response(const ServiceResponse& r);

/// Decodes a frame payload. On any non-kOk return `out` still carries
/// whatever header fields decoded (request_id when at least the 12-byte
/// header was present), so the server can echo the id in its error
/// response.
Status decode_request(std::string_view payload, ServiceRequest& out);
Status decode_response(std::string_view payload, ServiceResponse& out);

/// The error response for a request that failed to decode or execute:
/// echoes kind/request_id, sets `status` and the human-readable message.
ServiceResponse error_response(const ServiceRequest& req, Status status,
                               std::string message);

}  // namespace dfsssp::service
