#include "service/replay.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "common/frame.hpp"
#include "service/core.hpp"
#include "topology/configs.hpp"
#include "topology/generators.hpp"

namespace dfsssp::service {
namespace {

using obs::journal::EventKind;
using obs::journal::Record;

bool is_trigger(EventKind k) {
  return k == EventKind::kRoute || k == EventKind::kRepair ||
         k == EventKind::kFaultEvent;
}

/// Field-level comparison of a recorded vs replayed record. seq and
/// logical_ts are compared too — a disk journal is complete, so a fresh
/// core must reproduce the exact same numbering. latency_ns is wall clock
/// and excluded.
std::string diff_records(const Record& want, const Record& got) {
  std::string d;
  char buf[160];
  const auto field = [&](const char* name, std::uint64_t w, std::uint64_t g) {
    if (w == g) return;
    std::snprintf(buf, sizeof buf, "%s%s: recorded %llu, replayed %llu",
                  d.empty() ? "" : "; ", name,
                  static_cast<unsigned long long>(w),
                  static_cast<unsigned long long>(g));
    d += buf;
  };
  field("seq", want.seq, got.seq);
  field("logical_ts", want.logical_ts, got.logical_ts);
  field("kind", static_cast<std::uint8_t>(want.kind),
        static_cast<std::uint8_t>(got.kind));
  field("fault_kind", want.fault_kind, got.fault_kind);
  field("layers", want.layers, got.layers);
  field("flags", want.flags, got.flags);
  field("channel", want.channel, got.channel);
  field("switch", want.sw, got.sw);
  field("count", want.count, got.count);
  field("destinations_rerouted", want.destinations_rerouted,
        got.destinations_rerouted);
  field("version_before", want.version_before, got.version_before);
  field("version_after", want.version_after, got.version_after);
  field("paths", want.paths, got.paths);
  field("table_digest", want.table_digest, got.table_digest);
  field("cert_digest", want.cert_digest, got.cert_digest);
  field("req_max_layers", want.req_max_layers, got.req_max_layers);
  return d;
}

ServiceRequest request_for(const Record& trigger, std::uint64_t request_id) {
  ServiceRequest req;
  req.request_id = request_id;
  switch (trigger.kind) {
    case EventKind::kRoute:
      req.kind = MsgKind::kRoute;
      req.max_layers = static_cast<Layer>(trigger.req_max_layers);
      break;
    case EventKind::kRepair:
      req.kind = MsgKind::kRepair;
      break;
    case EventKind::kFaultEvent:
      req.kind = MsgKind::kFaultEvent;
      req.fault_kind = trigger.fault_kind;
      req.channel = trigger.channel;
      req.sw = trigger.sw;
      break;
    default:
      break;  // unreachable: callers pass triggers only
  }
  return req;
}

class InProcessTarget final : public ReplayTarget {
 public:
  explicit InProcessTarget(const obs::journal::JournalFile& file)
      : metrics_(std::make_unique<obs::Registry>()) {
    ServiceCoreOptions opts;
    opts.engine = file.engine;
    opts.max_layers = static_cast<Layer>(file.max_layers);
    opts.metrics = metrics_.get();
    opts.journal = true;
    opts.journal_config = file.topo_config;
    core_ = std::make_unique<ServiceCore>(
        build_replay_topology(file.topo_config), opts);
  }

  ServiceResponse call(const ServiceRequest& req) override {
    return core_->handle(req);
  }

  std::uint64_t drain(std::uint64_t from_seq,
                      std::vector<Record>& out) override {
    std::vector<Record> batch;
    const std::uint64_t next =
        core_->journal()->tail(from_seq, 0, 0, batch);
    out.insert(out.end(), batch.begin(), batch.end());
    return next;
  }

 private:
  // A private registry so replay never pollutes (or reads) the process
  // registry of whatever tool hosts it.
  std::unique_ptr<obs::Registry> metrics_;
  std::unique_ptr<ServiceCore> core_;
};

class SocketTarget final : public ReplayTarget {
 public:
  explicit SocketTarget(int fd) : fd_(fd) {}
  ~SocketTarget() override { ::close(fd_); }

  ServiceResponse call(const ServiceRequest& req) override {
    ServiceResponse resp;
    if (!write_frame(fd_, encode_request(req))) {
      return transport_error(req, "write failed");
    }
    std::string payload;
    if (read_frame(fd_, payload) != FrameResult::kFrame) {
      return transport_error(req, "connection lost");
    }
    if (decode_response(payload, resp) != Status::kOk) {
      return transport_error(req, "undecodable response");
    }
    return resp;
  }

  std::uint64_t drain(std::uint64_t from_seq,
                      std::vector<Record>& out) override {
    std::uint64_t cursor = from_seq;
    for (;;) {
      ServiceRequest req;
      req.kind = MsgKind::kJournalTail;
      req.journal_from_seq = cursor;
      const ServiceResponse resp = call(req);
      if (resp.status != Status::kOk) return cursor;
      out.insert(out.end(), resp.journal_records.begin(),
                 resp.journal_records.end());
      if (resp.journal_next_seq <= cursor) return cursor;  // no progress
      cursor = resp.journal_next_seq;
      if (resp.journal_records.empty()) return cursor;  // drained
    }
  }

 private:
  static ServiceResponse transport_error(const ServiceRequest& req,
                                         const char* what) {
    ServiceResponse resp = error_response(req, Status::kErrMalformed, what);
    return resp;
  }

  int fd_;
};

}  // namespace

Topology build_replay_topology(const std::string& topo_config) {
  // "kary-tree:<k>:<n>" is how bench_soak names its fabric, which is not
  // a registry config (the registry's tree-N keys fix k and n per
  // endpoint count).
  constexpr const char* kTreePrefix = "kary-tree:";
  if (topo_config.rfind(kTreePrefix, 0) == 0) {
    const std::string spec = topo_config.substr(std::strlen(kTreePrefix));
    const std::size_t colon = spec.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("bad kary-tree spec '" + topo_config +
                                  "' (want kary-tree:<k>:<n>)");
    }
    const unsigned long k = std::stoul(spec.substr(0, colon));
    const unsigned long n = std::stoul(spec.substr(colon + 1));
    if (k < 2 || n < 1 || k > 1024 || n > 8) {
      throw std::invalid_argument("bad kary-tree parameters in '" +
                                  topo_config + "'");
    }
    return make_kary_ntree(static_cast<std::uint32_t>(k),
                           static_cast<std::uint32_t>(n));
  }
  return build_topology_config(topo_config);
}

std::unique_ptr<ReplayTarget> make_inprocess_target(
    const obs::journal::JournalFile& file) {
  return std::make_unique<InProcessTarget>(file);
}

std::unique_ptr<ReplayTarget> make_socket_target(
    const std::string& socket_path, std::string& error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof addr.sun_path) {
    error = "socket path empty or too long";
    return nullptr;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = "socket: " + std::string(std::strerror(errno));
    return nullptr;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    error = "connect " + socket_path + ": " + std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<SocketTarget>(fd);
}

ReplayResult replay_journal(const obs::journal::JournalFile& file,
                            ReplayTarget& target, bool verify) {
  constexpr std::size_t kMaxMismatches = 16;
  ReplayResult result;
  std::uint64_t cursor = 1;  // next journal seq to drain from the target
  std::uint64_t request_id = 0;

  std::size_t i = 0;
  const std::vector<Record>& recs = file.records;
  while (i < recs.size()) {
    // One transaction: the run of records sharing a logical timestamp.
    const std::uint64_t ts = recs[i].logical_ts;
    std::size_t end = i;
    const Record* trigger = nullptr;
    while (end < recs.size() && recs[end].logical_ts == ts) {
      if (is_trigger(recs[end].kind)) trigger = &recs[end];
      ++end;
    }
    if (trigger == nullptr) {
      result.error = "transaction ts=" + std::to_string(ts) +
                     " has no route/repair/fault_event trigger record";
      return result;
    }

    const ServiceResponse resp =
        target.call(request_for(*trigger, ++request_id));
    ++result.transactions;
    const bool recorded_ok =
        (trigger->flags & obs::journal::kFlagOk) != 0;
    if (resp.status != Status::kOk && recorded_ok) {
      result.error = "transaction ts=" + std::to_string(ts) + " (" +
                     obs::journal::to_string(trigger->kind) +
                     "): recorded ok but replay answered " +
                     to_string(resp.status) + " (" + resp.error + ")";
      return result;
    }

    if (verify) {
      std::vector<Record> got;
      cursor = target.drain(cursor, got);
      const std::size_t want_count = end - i;
      if (got.size() != want_count) {
        ReplayMismatch m;
        m.logical_ts = ts;
        m.detail = "record count: recorded " + std::to_string(want_count) +
                   ", replayed " + std::to_string(got.size());
        result.mismatches.push_back(std::move(m));
      } else {
        for (std::size_t k = 0; k < want_count; ++k) {
          const std::string d = diff_records(recs[i + k], got[k]);
          ++result.records_checked;
          if (recs[i + k].kind == EventKind::kSnapshotSwap) {
            ++result.generations;
          }
          if (!d.empty()) {
            ReplayMismatch m;
            m.logical_ts = ts;
            m.detail = std::string(obs::journal::to_string(recs[i + k].kind)) +
                       " #" + std::to_string(recs[i + k].seq) + ": " + d;
            result.mismatches.push_back(std::move(m));
          }
        }
      }
      if (result.mismatches.size() >= kMaxMismatches) break;
    }
    i = end;
  }

  result.ok = result.error.empty() && result.mismatches.empty();
  return result;
}

}  // namespace dfsssp::service
