#include "service/envelope.hpp"

#include "common/wire.hpp"

namespace dfsssp::service {
namespace {

using wire::put_u16;
using wire::put_u32;
using wire::put_u64;
using wire::put_u8;
using wire::put_str;
using wire::Reader;

bool known_kind(std::uint16_t raw) {
  return raw >= static_cast<std::uint16_t>(MsgKind::kRoute) &&
         raw <= static_cast<std::uint16_t>(MsgKind::kJournalStats);
}

/// Records per journal_tail response the server will ever send: the
/// envelope must fit kMaxFramePayload with room for the header
/// (count * (kRecordBytes + slack) well under 1 MiB).
constexpr std::uint32_t kMaxTailRecords = 4096;

}  // namespace

const char* to_string(MsgKind kind) {
  switch (kind) {
    case MsgKind::kRoute: return "route";
    case MsgKind::kRepair: return "repair";
    case MsgKind::kFaultEvent: return "fault_event";
    case MsgKind::kLookup: return "lookup";
    case MsgKind::kStats: return "stats";
    case MsgKind::kSnapshotInfo: return "snapshot_info";
    case MsgKind::kShutdown: return "shutdown";
    case MsgKind::kJournalTail: return "journal_tail";
    case MsgKind::kJournalStats: return "journal_stats";
  }
  return "unknown";
}

const char* to_string(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kErrMalformed: return "malformed";
    case Status::kErrOversized: return "oversized";
    case Status::kErrUnsupportedVersion: return "unsupported_version";
    case Status::kErrUnknownKind: return "unknown_kind";
    case Status::kErrDraining: return "draining";
    case Status::kErrRouteFailed: return "route_failed";
    case Status::kErrBadArgument: return "bad_argument";
    case Status::kErrNotRouted: return "not_routed";
  }
  return "unknown";
}

std::string encode_request(const ServiceRequest& r) {
  std::string out;
  put_u16(out, r.version);
  put_u16(out, static_cast<std::uint16_t>(r.kind));
  put_u64(out, r.request_id);
  switch (r.kind) {
    case MsgKind::kRoute:
      put_u16(out, r.max_layers);
      break;
    case MsgKind::kFaultEvent:
      put_u8(out, r.fault_kind);
      put_u32(out, r.channel);
      put_u32(out, r.sw);
      break;
    case MsgKind::kLookup:
      put_u32(out, r.src_switch);
      put_u32(out, r.dst_terminal);
      break;
    case MsgKind::kJournalTail:
      put_u64(out, r.journal_from_seq);
      put_u32(out, r.journal_max);
      put_u8(out, r.journal_kind);
      break;
    case MsgKind::kRepair:
    case MsgKind::kStats:
    case MsgKind::kSnapshotInfo:
    case MsgKind::kShutdown:
    case MsgKind::kJournalStats:
      break;
  }
  return out;
}

std::string encode_response(const ServiceResponse& r) {
  std::string out;
  put_u16(out, r.version);
  put_u16(out, static_cast<std::uint16_t>(r.kind));
  put_u64(out, r.request_id);
  put_u16(out, static_cast<std::uint16_t>(r.status));
  if (r.status != Status::kOk) {
    put_str(out, r.error);
    return out;
  }
  switch (r.kind) {
    case MsgKind::kRoute:
      put_u64(out, r.snapshot_version);
      put_u16(out, r.layers);
      put_u64(out, r.paths);
      put_u64(out, r.elapsed_ns);
      break;
    case MsgKind::kRepair:
      put_u64(out, r.snapshot_version);
      put_u16(out, r.layers);
      put_u64(out, r.paths);
      put_u32(out, r.events_coalesced);
      put_u8(out, r.incremental ? 1 : 0);
      put_u32(out, r.destinations_rerouted);
      put_u64(out, r.paths_migrated);
      put_u64(out, r.elapsed_ns);
      break;
    case MsgKind::kFaultEvent:
      put_u32(out, r.pending_events);
      break;
    case MsgKind::kLookup:
      put_u64(out, r.snapshot_version);
      put_u32(out, r.next_channel);
      put_u8(out, r.layer);
      put_u8(out, r.ejected ? 1 : 0);
      break;
    case MsgKind::kStats:
      put_str(out, r.stats_json);
      break;
    case MsgKind::kSnapshotInfo:
      put_u64(out, r.snapshot_version);
      put_u64(out, r.snapshot_swaps);
      put_u16(out, r.layers);
      put_u64(out, r.paths);
      put_u32(out, r.switches);
      put_u32(out, r.terminals);
      put_u32(out, r.pending_events);
      put_str(out, r.engine);
      put_str(out, r.topology);
      put_u64(out, r.uptime_ns);
      put_u64(out, r.peak_rss_bytes);
      break;
    case MsgKind::kShutdown:
      break;
    case MsgKind::kJournalTail: {
      put_u64(out, r.journal_next_seq);
      const auto count = static_cast<std::uint32_t>(
          r.journal_records.size() < kMaxTailRecords
              ? r.journal_records.size()
              : kMaxTailRecords);
      put_u32(out, count);
      for (std::uint32_t i = 0; i < count; ++i) {
        obs::journal::encode_record(out, r.journal_records[i]);
      }
      break;
    }
    case MsgKind::kJournalStats: {
      const obs::journal::JournalStats& s = r.journal_stats;
      put_u64(out, s.next_seq);
      put_u64(out, s.appended);
      put_u64(out, s.dropped);
      put_u32(out, s.size);
      put_u32(out, s.capacity);
      for (int k = 1; k <= 6; ++k) put_u64(out, s.by_kind[k]);
      put_u64(out, s.disk_bytes);
      put_u8(out, s.sink_open ? 1 : 0);
      put_u8(out, s.sink_failed ? 1 : 0);
      put_str(out, s.sink_path);
      break;
    }
  }
  return out;
}

Status decode_request(std::string_view payload, ServiceRequest& out) {
  out = ServiceRequest{};
  Reader r{payload};
  std::uint16_t raw_kind = 0;
  if (!r.get_u16(out.version) || !r.get_u16(raw_kind) ||
      !r.get_u64(out.request_id)) {
    return Status::kErrMalformed;
  }
  if (out.version != kWireVersion) return Status::kErrUnsupportedVersion;
  if (!known_kind(raw_kind)) return Status::kErrUnknownKind;
  out.kind = static_cast<MsgKind>(raw_kind);
  switch (out.kind) {
    case MsgKind::kRoute: {
      std::uint16_t layers = 0;
      if (!r.get_u16(layers)) return Status::kErrMalformed;
      if (layers > kMaxLayers) return Status::kErrBadArgument;
      out.max_layers = static_cast<Layer>(layers);
      break;
    }
    case MsgKind::kFaultEvent:
      if (!r.get_u8(out.fault_kind) || !r.get_u32(out.channel) ||
          !r.get_u32(out.sw)) {
        return Status::kErrMalformed;
      }
      break;
    case MsgKind::kLookup:
      if (!r.get_u32(out.src_switch) || !r.get_u32(out.dst_terminal)) {
        return Status::kErrMalformed;
      }
      break;
    case MsgKind::kJournalTail:
      if (!r.get_u64(out.journal_from_seq) || !r.get_u32(out.journal_max) ||
          !r.get_u8(out.journal_kind)) {
        return Status::kErrMalformed;
      }
      break;
    case MsgKind::kRepair:
    case MsgKind::kStats:
    case MsgKind::kSnapshotInfo:
    case MsgKind::kShutdown:
    case MsgKind::kJournalStats:
      break;
  }
  // Trailing bytes are tolerated (see header comment on forward
  // compatibility).
  return Status::kOk;
}

Status decode_response(std::string_view payload, ServiceResponse& out) {
  out = ServiceResponse{};
  Reader r{payload};
  std::uint16_t raw_kind = 0;
  std::uint16_t raw_status = 0;
  if (!r.get_u16(out.version) || !r.get_u16(raw_kind) ||
      !r.get_u64(out.request_id) || !r.get_u16(raw_status)) {
    return Status::kErrMalformed;
  }
  if (out.version != kWireVersion) return Status::kErrUnsupportedVersion;
  if (!known_kind(raw_kind)) return Status::kErrUnknownKind;
  if (raw_status > static_cast<std::uint16_t>(Status::kErrNotRouted)) {
    return Status::kErrMalformed;
  }
  out.kind = static_cast<MsgKind>(raw_kind);
  out.status = static_cast<Status>(raw_status);
  if (out.status != Status::kOk) {
    if (!r.get_str(out.error)) return Status::kErrMalformed;
    return Status::kOk;
  }
  switch (out.kind) {
    case MsgKind::kRoute: {
      std::uint16_t layers = 0;
      if (!r.get_u64(out.snapshot_version) || !r.get_u16(layers) ||
          !r.get_u64(out.paths) || !r.get_u64(out.elapsed_ns)) {
        return Status::kErrMalformed;
      }
      out.layers = static_cast<Layer>(layers);
      break;
    }
    case MsgKind::kRepair: {
      std::uint16_t layers = 0;
      std::uint8_t incr = 0;
      if (!r.get_u64(out.snapshot_version) || !r.get_u16(layers) ||
          !r.get_u64(out.paths) || !r.get_u32(out.events_coalesced) ||
          !r.get_u8(incr) || !r.get_u32(out.destinations_rerouted) ||
          !r.get_u64(out.paths_migrated) || !r.get_u64(out.elapsed_ns)) {
        return Status::kErrMalformed;
      }
      out.layers = static_cast<Layer>(layers);
      out.incremental = incr != 0;
      break;
    }
    case MsgKind::kFaultEvent:
      if (!r.get_u32(out.pending_events)) return Status::kErrMalformed;
      break;
    case MsgKind::kLookup: {
      std::uint8_t layer = 0;
      std::uint8_t ejected = 0;
      if (!r.get_u64(out.snapshot_version) || !r.get_u32(out.next_channel) ||
          !r.get_u8(layer) || !r.get_u8(ejected)) {
        return Status::kErrMalformed;
      }
      out.layer = static_cast<Layer>(layer);
      out.ejected = ejected != 0;
      break;
    }
    case MsgKind::kStats:
      if (!r.get_str(out.stats_json)) return Status::kErrMalformed;
      break;
    case MsgKind::kSnapshotInfo: {
      std::uint16_t layers = 0;
      if (!r.get_u64(out.snapshot_version) || !r.get_u64(out.snapshot_swaps) ||
          !r.get_u16(layers) || !r.get_u64(out.paths) ||
          !r.get_u32(out.switches) || !r.get_u32(out.terminals) ||
          !r.get_u32(out.pending_events) || !r.get_str(out.engine) ||
          !r.get_str(out.topology) || !r.get_u64(out.uptime_ns) ||
          !r.get_u64(out.peak_rss_bytes)) {
        return Status::kErrMalformed;
      }
      out.layers = static_cast<Layer>(layers);
      break;
    }
    case MsgKind::kShutdown:
      break;
    case MsgKind::kJournalTail: {
      std::uint32_t count = 0;
      if (!r.get_u64(out.journal_next_seq) || !r.get_u32(count) ||
          count > kMaxTailRecords) {
        return Status::kErrMalformed;
      }
      out.journal_records.resize(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        if (!obs::journal::decode_record(r, out.journal_records[i])) {
          return Status::kErrMalformed;
        }
      }
      break;
    }
    case MsgKind::kJournalStats: {
      obs::journal::JournalStats& s = out.journal_stats;
      std::uint8_t open = 0;
      std::uint8_t failed = 0;
      if (!r.get_u64(s.next_seq) || !r.get_u64(s.appended) ||
          !r.get_u64(s.dropped) || !r.get_u32(s.size) ||
          !r.get_u32(s.capacity)) {
        return Status::kErrMalformed;
      }
      for (int k = 1; k <= 6; ++k) {
        if (!r.get_u64(s.by_kind[k])) return Status::kErrMalformed;
      }
      if (!r.get_u64(s.disk_bytes) || !r.get_u8(open) || !r.get_u8(failed) ||
          !r.get_str(s.sink_path)) {
        return Status::kErrMalformed;
      }
      s.sink_open = open != 0;
      s.sink_failed = failed != 0;
      break;
    }
  }
  return Status::kOk;
}

ServiceResponse error_response(const ServiceRequest& req, Status status,
                               std::string message) {
  ServiceResponse resp;
  resp.kind = req.kind;
  resp.request_id = req.request_id;
  resp.status = status;
  resp.error = std::move(message);
  return resp;
}

}  // namespace dfsssp::service
