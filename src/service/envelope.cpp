#include "service/envelope.hpp"

#include <cstring>

namespace dfsssp::service {
namespace {

// Little-endian byte-level codec. Explicit shifts instead of memcpy of the
// host representation so the wire format is identical on any endianness.
void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u16(std::string& out, std::uint16_t v) {
  put_u8(out, static_cast<std::uint8_t>(v & 0xFF));
  put_u8(out, static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    put_u8(out, static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    put_u8(out, static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

/// Strings travel as u32 length + raw bytes.
void put_str(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

/// Bounds-checked cursor over a frame payload. Every get_* returns false
/// once the payload is exhausted; decoders translate that into
/// Status::kErrMalformed.
struct Reader {
  std::string_view data;
  std::size_t pos = 0;

  bool get_u8(std::uint8_t& v) {
    if (pos + 1 > data.size()) return false;
    v = static_cast<std::uint8_t>(data[pos++]);
    return true;
  }

  bool get_u16(std::uint16_t& v) {
    std::uint8_t lo = 0;
    std::uint8_t hi = 0;
    if (!get_u8(lo) || !get_u8(hi)) return false;
    v = static_cast<std::uint16_t>(lo | (static_cast<std::uint16_t>(hi) << 8));
    return true;
  }

  bool get_u32(std::uint32_t& v) {
    v = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      std::uint8_t b = 0;
      if (!get_u8(b)) return false;
      v |= static_cast<std::uint32_t>(b) << shift;
    }
    return true;
  }

  bool get_u64(std::uint64_t& v) {
    v = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      std::uint8_t b = 0;
      if (!get_u8(b)) return false;
      v |= static_cast<std::uint64_t>(b) << shift;
    }
    return true;
  }

  bool get_str(std::string& v) {
    std::uint32_t len = 0;
    if (!get_u32(len)) return false;
    if (pos + len > data.size()) return false;
    v.assign(data.data() + pos, len);
    pos += len;
    return true;
  }
};

bool known_kind(std::uint16_t raw) {
  return raw >= static_cast<std::uint16_t>(MsgKind::kRoute) &&
         raw <= static_cast<std::uint16_t>(MsgKind::kShutdown);
}

}  // namespace

const char* to_string(MsgKind kind) {
  switch (kind) {
    case MsgKind::kRoute: return "route";
    case MsgKind::kRepair: return "repair";
    case MsgKind::kFaultEvent: return "fault_event";
    case MsgKind::kLookup: return "lookup";
    case MsgKind::kStats: return "stats";
    case MsgKind::kSnapshotInfo: return "snapshot_info";
    case MsgKind::kShutdown: return "shutdown";
  }
  return "unknown";
}

const char* to_string(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kErrMalformed: return "malformed";
    case Status::kErrOversized: return "oversized";
    case Status::kErrUnsupportedVersion: return "unsupported_version";
    case Status::kErrUnknownKind: return "unknown_kind";
    case Status::kErrDraining: return "draining";
    case Status::kErrRouteFailed: return "route_failed";
    case Status::kErrBadArgument: return "bad_argument";
    case Status::kErrNotRouted: return "not_routed";
  }
  return "unknown";
}

std::string encode_request(const ServiceRequest& r) {
  std::string out;
  put_u16(out, r.version);
  put_u16(out, static_cast<std::uint16_t>(r.kind));
  put_u64(out, r.request_id);
  switch (r.kind) {
    case MsgKind::kRoute:
      put_u16(out, r.max_layers);
      break;
    case MsgKind::kFaultEvent:
      put_u8(out, r.fault_kind);
      put_u32(out, r.channel);
      put_u32(out, r.sw);
      break;
    case MsgKind::kLookup:
      put_u32(out, r.src_switch);
      put_u32(out, r.dst_terminal);
      break;
    case MsgKind::kRepair:
    case MsgKind::kStats:
    case MsgKind::kSnapshotInfo:
    case MsgKind::kShutdown:
      break;
  }
  return out;
}

std::string encode_response(const ServiceResponse& r) {
  std::string out;
  put_u16(out, r.version);
  put_u16(out, static_cast<std::uint16_t>(r.kind));
  put_u64(out, r.request_id);
  put_u16(out, static_cast<std::uint16_t>(r.status));
  if (r.status != Status::kOk) {
    put_str(out, r.error);
    return out;
  }
  switch (r.kind) {
    case MsgKind::kRoute:
      put_u64(out, r.snapshot_version);
      put_u16(out, r.layers);
      put_u64(out, r.paths);
      put_u64(out, r.elapsed_ns);
      break;
    case MsgKind::kRepair:
      put_u64(out, r.snapshot_version);
      put_u16(out, r.layers);
      put_u64(out, r.paths);
      put_u32(out, r.events_coalesced);
      put_u8(out, r.incremental ? 1 : 0);
      put_u32(out, r.destinations_rerouted);
      put_u64(out, r.paths_migrated);
      put_u64(out, r.elapsed_ns);
      break;
    case MsgKind::kFaultEvent:
      put_u32(out, r.pending_events);
      break;
    case MsgKind::kLookup:
      put_u64(out, r.snapshot_version);
      put_u32(out, r.next_channel);
      put_u8(out, r.layer);
      put_u8(out, r.ejected ? 1 : 0);
      break;
    case MsgKind::kStats:
      put_str(out, r.stats_json);
      break;
    case MsgKind::kSnapshotInfo:
      put_u64(out, r.snapshot_version);
      put_u64(out, r.snapshot_swaps);
      put_u16(out, r.layers);
      put_u64(out, r.paths);
      put_u32(out, r.switches);
      put_u32(out, r.terminals);
      put_u32(out, r.pending_events);
      put_str(out, r.engine);
      put_str(out, r.topology);
      break;
    case MsgKind::kShutdown:
      break;
  }
  return out;
}

Status decode_request(std::string_view payload, ServiceRequest& out) {
  out = ServiceRequest{};
  Reader r{payload};
  std::uint16_t raw_kind = 0;
  if (!r.get_u16(out.version) || !r.get_u16(raw_kind) ||
      !r.get_u64(out.request_id)) {
    return Status::kErrMalformed;
  }
  if (out.version != kWireVersion) return Status::kErrUnsupportedVersion;
  if (!known_kind(raw_kind)) return Status::kErrUnknownKind;
  out.kind = static_cast<MsgKind>(raw_kind);
  switch (out.kind) {
    case MsgKind::kRoute: {
      std::uint16_t layers = 0;
      if (!r.get_u16(layers)) return Status::kErrMalformed;
      if (layers > kMaxLayers) return Status::kErrBadArgument;
      out.max_layers = static_cast<Layer>(layers);
      break;
    }
    case MsgKind::kFaultEvent:
      if (!r.get_u8(out.fault_kind) || !r.get_u32(out.channel) ||
          !r.get_u32(out.sw)) {
        return Status::kErrMalformed;
      }
      break;
    case MsgKind::kLookup:
      if (!r.get_u32(out.src_switch) || !r.get_u32(out.dst_terminal)) {
        return Status::kErrMalformed;
      }
      break;
    case MsgKind::kRepair:
    case MsgKind::kStats:
    case MsgKind::kSnapshotInfo:
    case MsgKind::kShutdown:
      break;
  }
  // Trailing bytes are tolerated (see header comment on forward
  // compatibility).
  return Status::kOk;
}

Status decode_response(std::string_view payload, ServiceResponse& out) {
  out = ServiceResponse{};
  Reader r{payload};
  std::uint16_t raw_kind = 0;
  std::uint16_t raw_status = 0;
  if (!r.get_u16(out.version) || !r.get_u16(raw_kind) ||
      !r.get_u64(out.request_id) || !r.get_u16(raw_status)) {
    return Status::kErrMalformed;
  }
  if (out.version != kWireVersion) return Status::kErrUnsupportedVersion;
  if (!known_kind(raw_kind)) return Status::kErrUnknownKind;
  if (raw_status > static_cast<std::uint16_t>(Status::kErrNotRouted)) {
    return Status::kErrMalformed;
  }
  out.kind = static_cast<MsgKind>(raw_kind);
  out.status = static_cast<Status>(raw_status);
  if (out.status != Status::kOk) {
    if (!r.get_str(out.error)) return Status::kErrMalformed;
    return Status::kOk;
  }
  switch (out.kind) {
    case MsgKind::kRoute: {
      std::uint16_t layers = 0;
      if (!r.get_u64(out.snapshot_version) || !r.get_u16(layers) ||
          !r.get_u64(out.paths) || !r.get_u64(out.elapsed_ns)) {
        return Status::kErrMalformed;
      }
      out.layers = static_cast<Layer>(layers);
      break;
    }
    case MsgKind::kRepair: {
      std::uint16_t layers = 0;
      std::uint8_t incr = 0;
      if (!r.get_u64(out.snapshot_version) || !r.get_u16(layers) ||
          !r.get_u64(out.paths) || !r.get_u32(out.events_coalesced) ||
          !r.get_u8(incr) || !r.get_u32(out.destinations_rerouted) ||
          !r.get_u64(out.paths_migrated) || !r.get_u64(out.elapsed_ns)) {
        return Status::kErrMalformed;
      }
      out.layers = static_cast<Layer>(layers);
      out.incremental = incr != 0;
      break;
    }
    case MsgKind::kFaultEvent:
      if (!r.get_u32(out.pending_events)) return Status::kErrMalformed;
      break;
    case MsgKind::kLookup: {
      std::uint8_t layer = 0;
      std::uint8_t ejected = 0;
      if (!r.get_u64(out.snapshot_version) || !r.get_u32(out.next_channel) ||
          !r.get_u8(layer) || !r.get_u8(ejected)) {
        return Status::kErrMalformed;
      }
      out.layer = static_cast<Layer>(layer);
      out.ejected = ejected != 0;
      break;
    }
    case MsgKind::kStats:
      if (!r.get_str(out.stats_json)) return Status::kErrMalformed;
      break;
    case MsgKind::kSnapshotInfo: {
      std::uint16_t layers = 0;
      if (!r.get_u64(out.snapshot_version) || !r.get_u64(out.snapshot_swaps) ||
          !r.get_u16(layers) || !r.get_u64(out.paths) ||
          !r.get_u32(out.switches) || !r.get_u32(out.terminals) ||
          !r.get_u32(out.pending_events) || !r.get_str(out.engine) ||
          !r.get_str(out.topology)) {
        return Status::kErrMalformed;
      }
      out.layers = static_cast<Layer>(layers);
      break;
    }
    case MsgKind::kShutdown:
      break;
  }
  return Status::kOk;
}

ServiceResponse error_response(const ServiceRequest& req, Status status,
                               std::string message) {
  ServiceResponse resp;
  resp.kind = req.kind;
  resp.request_id = req.request_id;
  resp.status = status;
  resp.error = std::move(message);
  return resp;
}

}  // namespace dfsssp::service
