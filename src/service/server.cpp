#include "service/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <poll.h>
#include <thread>
#include <vector>

#include "service/frame.hpp"

namespace dfsssp::service {
namespace {

obs::Registry& sink(const ServerOptions& options) {
  return options.metrics != nullptr ? *options.metrics : obs::registry();
}

}  // namespace

Server::Server(ServiceCore& core, ServerOptions options)
    : core_(&core),
      options_(std::move(options)),
      frames_malformed_(sink(options_).counter("service/frames_malformed")),
      frames_oversized_(sink(options_).counter("service/frames_oversized")) {}

void Server::serve_stream(int in_fd, int out_fd) {
  // Stop serving (after the grace ticks) once SIGTERM arrived or the core
  // began draining — either way the remaining frames get kErrDraining.
  const auto stopping = [this] {
    return (options_.stop != nullptr && *options_.stop != 0) ||
           core_->draining();
  };

  std::string payload;
  for (;;) {
    if (options_.stop != nullptr && *options_.stop != 0) {
      core_->begin_drain();
    }
    const FrameResult fr = read_frame(in_fd, payload, stopping);
    if (fr == FrameResult::kEof || fr == FrameResult::kError ||
        fr == FrameResult::kStopped) {
      return;
    }
    ServiceResponse resp;
    if (fr == FrameResult::kOversized) {
      frames_oversized_.inc();
      // Nothing of the request survived, so the echo fields are zero.
      resp = error_response(ServiceRequest{}, Status::kErrOversized,
                            "frame payload above limit");
    } else {
      ServiceRequest req;
      const Status st = decode_request(payload, req);
      if (st != Status::kOk) {
        frames_malformed_.inc();
        resp = error_response(req, st, "bad request frame");
      } else {
        resp = core_->handle(req);
      }
    }
    if (!write_frame(out_fd, encode_response(resp))) return;
  }
}

int Server::run_pipe() {
  std::signal(SIGPIPE, SIG_IGN);
  serve_stream(options_.in_fd, options_.out_fd);
  return 0;
}

int Server::run_socket() {
  std::signal(SIGPIPE, SIG_IGN);
  const std::string& path = options_.socket_path;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    return 2;  // unusable socket path
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) return 2;
  ::unlink(path.c_str());
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd, 64) != 0) {
    ::close(listen_fd);
    return 2;
  }

  std::vector<std::thread> connections;
  for (;;) {
    if ((options_.stop != nullptr && *options_.stop != 0) ||
        core_->draining()) {
      break;
    }
    pollfd pfd{listen_fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) continue;
    connections.emplace_back([this, conn] {
      serve_stream(conn, conn);
      ::close(conn);
    });
  }

  ::close(listen_fd);
  // Connection threads observe the same stop/draining predicate and wind
  // down after answering in-flight frames with kErrDraining.
  for (std::thread& t : connections) t.join();
  ::unlink(path.c_str());
  return 0;
}

}  // namespace dfsssp::service
