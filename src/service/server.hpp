// Transport loops that put a ServiceCore on the wire.
//
// Two modes, one request path:
//   * pipe mode — serve one framed stream on a given (in_fd, out_fd) pair.
//     This is how tests and CI drive the daemon: spawn it with pipes (or a
//     socketpair) and get a deterministic single-stream conversation.
//   * socket mode — bind a unix-domain socket, accept loop, one serving
//     thread per connection. Concurrent clients multiplex on the
//     ServiceCore whose locking rules (core.hpp) make that safe.
//
// Both loops implement the same drain protocol: when the stop flag rises
// (SIGTERM in dfrouted) or the core starts draining (shutdown request),
// in-flight requests finish and are answered, frames that are already
// arriving get Status::kErrDraining, and the loop exits 0 once the stream
// goes quiet — never killing a response mid-write. Malformed and oversized
// frames get structured error responses; only EOF or a transport error
// closes a connection.
#pragma once

#include <csignal>
#include <string>

#include "obs/metrics.hpp"
#include "service/core.hpp"

namespace dfsssp::service {

struct ServerOptions {
  /// Unix-domain socket path (socket mode). Unlinked before bind and on
  /// exit.
  std::string socket_path;
  /// Pipe mode file descriptors.
  int in_fd = 0;
  int out_fd = 1;
  /// Signal-handler stop flag (SIGTERM). Non-zero = begin drain.
  const volatile std::sig_atomic_t* stop = nullptr;
  /// Metrics sink for the transport counters (service/frames_*); nullptr =
  /// the process-global registry. Use the same sink as the ServiceCore.
  obs::Registry* metrics = nullptr;
};

class Server {
 public:
  Server(ServiceCore& core, ServerOptions options);

  /// Serves options.in_fd/out_fd until EOF, a transport error, or drain.
  /// Returns the process exit code (0 on clean EOF or drain).
  int run_pipe();

  /// Binds options.socket_path and serves until the stop flag rises or a
  /// shutdown request drains the core; joins every connection thread
  /// before returning the exit code.
  int run_socket();

 private:
  /// One connection's read-decode-handle-respond loop (both modes).
  void serve_stream(int in_fd, int out_fd);

  ServiceCore* core_;
  ServerOptions options_;
  obs::Counter& frames_malformed_;
  obs::Counter& frames_oversized_;
};

}  // namespace dfsssp::service
