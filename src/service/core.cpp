#include "service/core.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/timer.hpp"
#include "obs/rusage.hpp"
#include "routing/registry.hpp"
#include "service/digest.hpp"

namespace dfsssp::service {

ServiceCore::ServiceCore(Topology topo, ServiceCoreOptions options)
    : metrics_(options.metrics != nullptr ? *options.metrics
                                          : obs::registry()),
      topo_(std::move(topo)),
      churn_(topo_),
      engine_key_(options.engine),
      max_layers_(options.max_layers),
      requests_(metrics_.counter("service/requests")),
      lookups_(metrics_.counter("service/lookups")),
      repairs_(metrics_.counter("service/repairs")),
      routes_(metrics_.counter("service/routes")),
      fault_events_(metrics_.counter("service/fault_events")),
      snapshot_swaps_(metrics_.counter("service/snapshot_swaps")),
      errors_(metrics_.counter("service/errors")),
      draining_rejects_(metrics_.counter("service/draining_rejects")),
      pending_events_gauge_(metrics_.gauge("service/pending_events")),
      snapshot_version_gauge_(metrics_.gauge("service/snapshot_version")),
      lookup_ns_(metrics_.timing_histogram("service/lookup_ns")),
      repair_ns_(metrics_.timing_histogram("service/repair_ns")),
      route_ns_(metrics_.timing_histogram("service/route_ns")) {
  start_ns_ = Timer::now_ns();
  if (options.journal) {
    obs::journal::Journal::Options jopts;
    jopts.capacity = options.journal_capacity;
    jopts.path = options.journal_path;
    jopts.topo_config = options.journal_config;
    jopts.engine = engine_key_;
    jopts.max_layers = max_layers_;
    jopts.metrics = &metrics_;
    journal_ = std::make_unique<obs::journal::Journal>(std::move(jopts));
    if (!journal_->sink_ok()) {
      throw std::runtime_error("journal: " + journal_->error());
    }
  }
  if (engine_key_ == "dfsssp") {
    incremental_ = std::make_unique<IncrementalDfsssp>(
        IncrementalOptions{.max_layers = max_layers_});
  } else {
    router_ = routing::make_router(engine_key_, max_layers_);
    if (!router_) {
      throw std::invalid_argument("unknown routing engine '" + engine_key_ +
                                  "' (have: " + routing::engine_names() +
                                  ")");
    }
  }
}

ServiceResponse ServiceCore::handle(const ServiceRequest& request) {
  requests_.inc();
  ServiceResponse resp;
  if (draining() && request.kind != MsgKind::kShutdown) {
    draining_rejects_.inc();
    resp = error_response(request, Status::kErrDraining,
                          "daemon is draining");
  } else {
    switch (request.kind) {
      case MsgKind::kRoute:
        resp = do_route(request);
        break;
      case MsgKind::kRepair:
        resp = do_repair(request);
        break;
      case MsgKind::kFaultEvent:
        resp = do_fault_event(request);
        break;
      case MsgKind::kLookup:
        resp = do_lookup(request);
        break;
      case MsgKind::kStats:
        resp = do_stats(request);
        break;
      case MsgKind::kSnapshotInfo:
        resp = do_snapshot_info(request);
        break;
      case MsgKind::kJournalTail:
        resp = do_journal_tail(request);
        break;
      case MsgKind::kJournalStats:
        resp = do_journal_stats(request);
        break;
      case MsgKind::kShutdown:
        begin_drain();
        resp.kind = MsgKind::kShutdown;
        resp.request_id = request.request_id;
        break;
    }
  }
  if (resp.status != Status::kOk) errors_.inc();
  return resp;
}

ServiceResponse ServiceCore::publish(const ServiceRequest& r,
                                     RouteResponse route,
                                     std::uint64_t elapsed_ns) {
  if (!route.ok) {
    return error_response(r, Status::kErrRouteFailed, route.error);
  }
  auto snap = std::make_shared<ForwardingSnapshot>();
  snap->table = std::move(route.table);
  snap->layers_used = route.stats.layers_used;
  snap->paths = route.stats.paths;
  const std::uint64_t version = slot_.publish(std::move(snap));
  snapshot_swaps_.inc();
  snapshot_version_gauge_.set(version);

  ServiceResponse resp;
  resp.kind = r.kind;
  resp.request_id = r.request_id;
  resp.snapshot_version = version;
  resp.layers = route.stats.layers_used;
  resp.paths = route.stats.paths;
  resp.elapsed_ns = elapsed_ns;
  resp.incremental = route.repair.incremental;
  resp.destinations_rerouted = route.repair.destinations_rerouted;
  resp.paths_migrated = route.repair.paths_migrated;
  return resp;
}

void ServiceCore::journal_mutation(const ServiceRequest& r,
                                   const ServiceResponse& resp,
                                   std::uint64_t ts,
                                   std::uint64_t version_before,
                                   bool fallback,
                                   std::uint64_t latency_ns) {
  const bool ok = resp.status == Status::kOk;
  std::uint64_t tdig = 0;
  std::uint64_t cdig = 0;
  if (ok) {
    const std::shared_ptr<const ForwardingSnapshot> snap = slot_.load();
    tdig = table_digest(topo_.net, snap->table);
    // The certificate is recomputed from the published table — canonical
    // and thread-count invariant — so its digest pins the generation's
    // deadlock-freedom proof. A broken walk (cannot happen for a table the
    // engine just accepted) degrades to digest 0 rather than killing the
    // daemon.
    try {
      const CertificateResult cert = make_certificate(topo_.net, snap->table);
      if (cert.ok) cdig = certificate_digest(cert.cert);
    } catch (const std::exception&) {
      cdig = 0;
    }
  }

  obs::journal::Record rec;
  rec.logical_ts = ts;
  rec.version_before = version_before;
  rec.version_after = ok ? resp.snapshot_version : version_before;
  rec.layers = static_cast<std::uint8_t>(ok ? resp.layers : 0);
  rec.paths = ok ? resp.paths : 0;
  rec.table_digest = tdig;
  rec.cert_digest = cdig;

  if (ok && resp.snapshot_version != version_before) {
    obs::journal::Record swap = rec;
    swap.kind = obs::journal::EventKind::kSnapshotSwap;
    journal_->append(swap);
  }

  rec.kind = r.kind == MsgKind::kRoute ? obs::journal::EventKind::kRoute
                                       : obs::journal::EventKind::kRepair;
  rec.flags = (ok ? obs::journal::kFlagOk : 0) |
              (ok && resp.incremental ? obs::journal::kFlagIncremental : 0) |
              (fallback ? obs::journal::kFlagFallback : 0);
  rec.count = resp.events_coalesced;
  rec.destinations_rerouted = resp.destinations_rerouted;
  rec.latency_ns = latency_ns;
  rec.req_max_layers = r.max_layers;
  journal_->append(rec);
}

ServiceResponse ServiceCore::do_route(const ServiceRequest& r) {
  routes_.inc();
  ScopedTimer timer(route_ns_);
  std::lock_guard<std::mutex> lock(engine_mu_);
  const std::uint64_t version_before = slot_.version();
  RouteRequest req(topo_, r.max_layers != 0 ? r.max_layers : max_layers_);
  req.metrics = &metrics_;
  RouteResponse route =
      incremental_ ? incremental_->route(req) : router_->route(req);
  ServiceResponse resp = publish(r, std::move(route), timer.elapsed_ns());
  if (journal_) {
    journal_mutation(r, resp, ++logical_clock_, version_before,
                     /*fallback=*/false, timer.elapsed_ns());
  }
  return resp;
}

ServiceResponse ServiceCore::do_repair(const ServiceRequest& r) {
  repairs_.inc();
  ScopedTimer timer(repair_ns_);
  std::lock_guard<std::mutex> lock(engine_mu_);
  if (slot_.version() == 0) {
    return error_response(r, Status::kErrNotRouted,
                          "repair before the first route");
  }

  std::vector<FaultEvent> batch;
  batch.swap(pending_);
  pending_count_.store(0, std::memory_order_relaxed);
  pending_events_gauge_.set(0);

  const std::uint64_t version_before = slot_.version();

  if (batch.empty()) {
    // Nothing to coalesce; report the current generation untouched.
    ServiceResponse resp;
    resp.kind = r.kind;
    resp.request_id = r.request_id;
    const auto snap = slot_.load();
    resp.snapshot_version = snap->version;
    resp.layers = snap->layers_used;
    resp.paths = snap->paths;
    resp.incremental = true;
    resp.elapsed_ns = timer.elapsed_ns();
    if (journal_) {
      journal_mutation(r, resp, ++logical_clock_, version_before,
                       /*fallback=*/false, timer.elapsed_ns());
    }
    return resp;
  }

  const std::uint64_t vetoed_before = churn_.events_vetoed();
  const ChurnDelta delta = churn_.apply_all(batch);
  const std::uint64_t vetoed =
      churn_.events_vetoed() - vetoed_before;
  RouteRequest req(topo_, max_layers_);
  req.metrics = &metrics_;
  RouteResponse route;
  bool fallback = false;
  if (incremental_) {
    route = incremental_->repair(req, delta);
  } else {
    // Non-incremental engines repair a degraded fabric the only way they
    // can: from scratch.
    route = router_->route(req);
    route.repair.fallback_reason = "engine has no incremental repair";
    fallback = true;
  }
  ServiceResponse resp = publish(r, std::move(route), timer.elapsed_ns());
  resp.events_coalesced = static_cast<std::uint32_t>(batch.size());
  if (journal_) {
    const std::uint64_t ts = ++logical_clock_;
    obs::journal::Record rec;
    rec.logical_ts = ts;
    rec.version_before = version_before;
    rec.version_after = version_before;
    rec.kind = obs::journal::EventKind::kCoalescedBatch;
    rec.count = static_cast<std::uint32_t>(batch.size());
    journal_->append(rec);
    if (vetoed > 0) {
      rec.kind = obs::journal::EventKind::kVeto;
      rec.count = static_cast<std::uint32_t>(vetoed);
      journal_->append(rec);
    }
    journal_mutation(r, resp, ts, version_before, fallback,
                     timer.elapsed_ns());
  }
  return resp;
}

ServiceResponse ServiceCore::do_fault_event(const ServiceRequest& r) {
  fault_events_.inc();
  if (r.fault_kind > static_cast<std::uint8_t>(FaultKind::kSwitchUp)) {
    return error_response(r, Status::kErrBadArgument,
                          "unknown fault kind " +
                              std::to_string(int{r.fault_kind}));
  }
  FaultEvent event;
  event.kind = static_cast<FaultKind>(r.fault_kind);
  event.channel = r.channel;
  event.sw = r.sw;
  const Network& net = topo_.net;
  const bool is_link = event.kind == FaultKind::kLinkDown ||
                       event.kind == FaultKind::kLinkUp;
  if (is_link && event.channel >= net.num_channels()) {
    return error_response(r, Status::kErrBadArgument,
                          "channel id out of range");
  }
  if (is_link) {
    // Terminal injection/ejection channels have no independent link state
    // (Network::set_link_up rejects them); catching this here keeps a bad
    // client from poisoning the next repair's batch.
    const Channel& ch = net.channel(event.channel);
    if (net.is_terminal(ch.src) || net.is_terminal(ch.dst)) {
      return error_response(r, Status::kErrBadArgument,
                            "terminal links have no independent state");
    }
  }
  if (!is_link &&
      (event.sw >= net.num_nodes() || !net.is_switch(event.sw))) {
    return error_response(r, Status::kErrBadArgument, "not a switch id");
  }

  std::lock_guard<std::mutex> lock(engine_mu_);
  pending_.push_back(event);
  const auto count = static_cast<std::uint32_t>(pending_.size());
  pending_count_.store(count, std::memory_order_relaxed);
  pending_events_gauge_.set(count);

  if (journal_) {
    obs::journal::Record rec;
    rec.logical_ts = ++logical_clock_;
    rec.kind = obs::journal::EventKind::kFaultEvent;
    rec.flags = obs::journal::kFlagOk;
    rec.fault_kind = r.fault_kind;
    rec.channel = r.channel;
    rec.sw = r.sw;
    rec.count = count;
    rec.version_before = slot_.version();
    rec.version_after = rec.version_before;
    journal_->append(rec);
  }

  ServiceResponse resp;
  resp.kind = r.kind;
  resp.request_id = r.request_id;
  resp.pending_events = count;
  return resp;
}

ServiceResponse ServiceCore::do_lookup(const ServiceRequest& r) {
  lookups_.inc();
  ScopedTimer timer(lookup_ns_);
  const std::shared_ptr<const ForwardingSnapshot> snap = slot_.load();
  if (!snap) {
    return error_response(r, Status::kErrNotRouted,
                          "lookup before the first route");
  }
  // Node structure is immutable after construction (churn only flips
  // up/down flags), so these reads are safe without the engine mutex.
  const Network& net = topo_.net;
  if (r.src_switch >= net.num_nodes() || !net.is_switch(r.src_switch)) {
    return error_response(r, Status::kErrBadArgument, "not a switch id");
  }
  if (r.dst_terminal >= net.num_nodes() || !net.is_terminal(r.dst_terminal)) {
    return error_response(r, Status::kErrBadArgument, "not a terminal id");
  }

  ServiceResponse resp;
  resp.kind = r.kind;
  resp.request_id = r.request_id;
  resp.snapshot_version = snap->version;
  resp.next_channel = snap->table.next(r.src_switch, r.dst_terminal);
  resp.layer = snap->table.layer(r.src_switch, r.dst_terminal);
  resp.ejected = resp.next_channel == kInvalidChannel;
  return resp;
}

ServiceResponse ServiceCore::do_stats(const ServiceRequest& r) {
  const obs::Snapshot snap = metrics_.snapshot();
  std::ostringstream out;
  out << "{\n  \"metrics\": ";
  obs::write_metrics_json(out, snap, obs::Kind::kDeterministic, 2);
  out << ",\n  \"timing_metrics\": ";
  obs::write_metrics_json(out, snap, obs::Kind::kTiming, 2);

  // Latency quantiles per request kind, estimated from the service/*_ns
  // histograms (nanoseconds, nearest-rank with in-bucket interpolation) —
  // what an operator wants from `dfroutectl stats` without shipping the
  // raw buckets to a spreadsheet.
  out << ",\n  \"latency\": {";
  const struct {
    const char* name;
    const obs::Histogram* hist;
  } kinds[] = {{"lookup", &lookup_ns_},
               {"route", &route_ns_},
               {"repair", &repair_ns_}};
  bool first = true;
  for (const auto& k : kinds) {
    const obs::HistogramValue h = k.hist->value();
    if (!first) out << ",";
    first = false;
    out << "\n    \"" << k.name << "\": {\"count\": " << h.count
        << ", \"p50_ns\": "
        << static_cast<std::uint64_t>(
               std::llround(obs::histogram_quantile(h, 0.50)))
        << ", \"p90_ns\": "
        << static_cast<std::uint64_t>(
               std::llround(obs::histogram_quantile(h, 0.90)))
        << ", \"p99_ns\": "
        << static_cast<std::uint64_t>(
               std::llround(obs::histogram_quantile(h, 0.99)))
        << ", \"max_ns\": " << h.max << "}";
  }
  out << "\n  }";

  out << ",\n  \"process\": {\"uptime_ns\": " << Timer::now_ns() - start_ns_
      << ", \"peak_rss_bytes\": " << obs::peak_rss_bytes() << "}";
  out << "\n}";

  ServiceResponse resp;
  resp.kind = r.kind;
  resp.request_id = r.request_id;
  resp.stats_json = out.str();
  return resp;
}

ServiceResponse ServiceCore::do_journal_tail(const ServiceRequest& r) {
  if (!journal_) {
    return error_response(r, Status::kErrBadArgument,
                          "journaling disabled (run with --journal)");
  }
  if (r.journal_kind != 0 && !obs::journal::known_kind(r.journal_kind)) {
    return error_response(r, Status::kErrBadArgument,
                          "unknown journal event kind " +
                              std::to_string(int{r.journal_kind}));
  }
  // Cap the batch so the response stays under the frame ceiling; clients
  // stream by resuming from journal_next_seq.
  constexpr std::uint32_t kTailCap = 4096;
  const std::uint32_t max =
      r.journal_max == 0 || r.journal_max > kTailCap ? kTailCap
                                                     : r.journal_max;
  ServiceResponse resp;
  resp.kind = r.kind;
  resp.request_id = r.request_id;
  resp.journal_next_seq = journal_->tail(r.journal_from_seq, max,
                                         r.journal_kind,
                                         resp.journal_records);
  return resp;
}

ServiceResponse ServiceCore::do_journal_stats(const ServiceRequest& r) {
  if (!journal_) {
    return error_response(r, Status::kErrBadArgument,
                          "journaling disabled (run with --journal)");
  }
  ServiceResponse resp;
  resp.kind = r.kind;
  resp.request_id = r.request_id;
  resp.journal_stats = journal_->stats();
  return resp;
}

ServiceResponse ServiceCore::do_snapshot_info(const ServiceRequest& r) {
  ServiceResponse resp;
  resp.kind = r.kind;
  resp.request_id = r.request_id;
  const std::shared_ptr<const ForwardingSnapshot> snap = slot_.load();
  if (snap) {
    resp.snapshot_version = snap->version;
    resp.layers = snap->layers_used;
    resp.paths = snap->paths;
  }
  resp.snapshot_swaps = slot_.swaps();
  resp.pending_events = pending_count_.load(std::memory_order_relaxed);
  resp.switches = static_cast<std::uint32_t>(topo_.net.num_switches());
  resp.terminals = static_cast<std::uint32_t>(topo_.net.num_terminals());
  resp.engine = engine_key_;
  resp.topology = topo_.name;
  resp.uptime_ns = Timer::now_ns() - start_ns_;
  resp.peak_rss_bytes = obs::peak_rss_bytes();
  return resp;
}

}  // namespace dfsssp::service
