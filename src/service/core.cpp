#include "service/core.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/timer.hpp"
#include "routing/registry.hpp"

namespace dfsssp::service {

ServiceCore::ServiceCore(Topology topo, ServiceCoreOptions options)
    : metrics_(options.metrics != nullptr ? *options.metrics
                                          : obs::registry()),
      topo_(std::move(topo)),
      churn_(topo_),
      engine_key_(options.engine),
      max_layers_(options.max_layers),
      requests_(metrics_.counter("service/requests")),
      lookups_(metrics_.counter("service/lookups")),
      repairs_(metrics_.counter("service/repairs")),
      routes_(metrics_.counter("service/routes")),
      fault_events_(metrics_.counter("service/fault_events")),
      snapshot_swaps_(metrics_.counter("service/snapshot_swaps")),
      errors_(metrics_.counter("service/errors")),
      draining_rejects_(metrics_.counter("service/draining_rejects")),
      pending_events_gauge_(metrics_.gauge("service/pending_events")),
      snapshot_version_gauge_(metrics_.gauge("service/snapshot_version")),
      lookup_ns_(metrics_.timing_histogram("service/lookup_ns")),
      repair_ns_(metrics_.timing_histogram("service/repair_ns")),
      route_ns_(metrics_.timing_histogram("service/route_ns")) {
  if (engine_key_ == "dfsssp") {
    incremental_ = std::make_unique<IncrementalDfsssp>(
        IncrementalOptions{.max_layers = max_layers_});
  } else {
    router_ = routing::make_router(engine_key_, max_layers_);
    if (!router_) {
      throw std::invalid_argument("unknown routing engine '" + engine_key_ +
                                  "' (have: " + routing::engine_names() +
                                  ")");
    }
  }
}

ServiceResponse ServiceCore::handle(const ServiceRequest& request) {
  requests_.inc();
  ServiceResponse resp;
  if (draining() && request.kind != MsgKind::kShutdown) {
    draining_rejects_.inc();
    resp = error_response(request, Status::kErrDraining,
                          "daemon is draining");
  } else {
    switch (request.kind) {
      case MsgKind::kRoute:
        resp = do_route(request);
        break;
      case MsgKind::kRepair:
        resp = do_repair(request);
        break;
      case MsgKind::kFaultEvent:
        resp = do_fault_event(request);
        break;
      case MsgKind::kLookup:
        resp = do_lookup(request);
        break;
      case MsgKind::kStats:
        resp = do_stats(request);
        break;
      case MsgKind::kSnapshotInfo:
        resp = do_snapshot_info(request);
        break;
      case MsgKind::kShutdown:
        begin_drain();
        resp.kind = MsgKind::kShutdown;
        resp.request_id = request.request_id;
        break;
    }
  }
  if (resp.status != Status::kOk) errors_.inc();
  return resp;
}

ServiceResponse ServiceCore::publish(const ServiceRequest& r,
                                     RouteResponse route,
                                     std::uint64_t elapsed_ns) {
  if (!route.ok) {
    return error_response(r, Status::kErrRouteFailed, route.error);
  }
  auto snap = std::make_shared<ForwardingSnapshot>();
  snap->table = std::move(route.table);
  snap->layers_used = route.stats.layers_used;
  snap->paths = route.stats.paths;
  const std::uint64_t version = slot_.publish(std::move(snap));
  snapshot_swaps_.inc();
  snapshot_version_gauge_.set(version);

  ServiceResponse resp;
  resp.kind = r.kind;
  resp.request_id = r.request_id;
  resp.snapshot_version = version;
  resp.layers = route.stats.layers_used;
  resp.paths = route.stats.paths;
  resp.elapsed_ns = elapsed_ns;
  resp.incremental = route.repair.incremental;
  resp.destinations_rerouted = route.repair.destinations_rerouted;
  resp.paths_migrated = route.repair.paths_migrated;
  return resp;
}

ServiceResponse ServiceCore::do_route(const ServiceRequest& r) {
  routes_.inc();
  ScopedTimer timer(route_ns_);
  std::lock_guard<std::mutex> lock(engine_mu_);
  RouteRequest req(topo_, r.max_layers != 0 ? r.max_layers : max_layers_);
  req.metrics = &metrics_;
  RouteResponse route =
      incremental_ ? incremental_->route(req) : router_->route(req);
  return publish(r, std::move(route), timer.elapsed_ns());
}

ServiceResponse ServiceCore::do_repair(const ServiceRequest& r) {
  repairs_.inc();
  ScopedTimer timer(repair_ns_);
  std::lock_guard<std::mutex> lock(engine_mu_);
  if (slot_.version() == 0) {
    return error_response(r, Status::kErrNotRouted,
                          "repair before the first route");
  }

  std::vector<FaultEvent> batch;
  batch.swap(pending_);
  pending_count_.store(0, std::memory_order_relaxed);
  pending_events_gauge_.set(0);

  if (batch.empty()) {
    // Nothing to coalesce; report the current generation untouched.
    ServiceResponse resp;
    resp.kind = r.kind;
    resp.request_id = r.request_id;
    const auto snap = slot_.load();
    resp.snapshot_version = snap->version;
    resp.layers = snap->layers_used;
    resp.paths = snap->paths;
    resp.incremental = true;
    resp.elapsed_ns = timer.elapsed_ns();
    return resp;
  }

  const ChurnDelta delta = churn_.apply_all(batch);
  RouteRequest req(topo_, max_layers_);
  req.metrics = &metrics_;
  RouteResponse route;
  if (incremental_) {
    route = incremental_->repair(req, delta);
  } else {
    // Non-incremental engines repair a degraded fabric the only way they
    // can: from scratch.
    route = router_->route(req);
    route.repair.fallback_reason = "engine has no incremental repair";
  }
  ServiceResponse resp = publish(r, std::move(route), timer.elapsed_ns());
  resp.events_coalesced = static_cast<std::uint32_t>(batch.size());
  return resp;
}

ServiceResponse ServiceCore::do_fault_event(const ServiceRequest& r) {
  fault_events_.inc();
  if (r.fault_kind > static_cast<std::uint8_t>(FaultKind::kSwitchUp)) {
    return error_response(r, Status::kErrBadArgument,
                          "unknown fault kind " +
                              std::to_string(int{r.fault_kind}));
  }
  FaultEvent event;
  event.kind = static_cast<FaultKind>(r.fault_kind);
  event.channel = r.channel;
  event.sw = r.sw;
  const Network& net = topo_.net;
  const bool is_link = event.kind == FaultKind::kLinkDown ||
                       event.kind == FaultKind::kLinkUp;
  if (is_link && event.channel >= net.num_channels()) {
    return error_response(r, Status::kErrBadArgument,
                          "channel id out of range");
  }
  if (is_link) {
    // Terminal injection/ejection channels have no independent link state
    // (Network::set_link_up rejects them); catching this here keeps a bad
    // client from poisoning the next repair's batch.
    const Channel& ch = net.channel(event.channel);
    if (net.is_terminal(ch.src) || net.is_terminal(ch.dst)) {
      return error_response(r, Status::kErrBadArgument,
                            "terminal links have no independent state");
    }
  }
  if (!is_link &&
      (event.sw >= net.num_nodes() || !net.is_switch(event.sw))) {
    return error_response(r, Status::kErrBadArgument, "not a switch id");
  }

  std::lock_guard<std::mutex> lock(engine_mu_);
  pending_.push_back(event);
  const auto count = static_cast<std::uint32_t>(pending_.size());
  pending_count_.store(count, std::memory_order_relaxed);
  pending_events_gauge_.set(count);

  ServiceResponse resp;
  resp.kind = r.kind;
  resp.request_id = r.request_id;
  resp.pending_events = count;
  return resp;
}

ServiceResponse ServiceCore::do_lookup(const ServiceRequest& r) {
  lookups_.inc();
  ScopedTimer timer(lookup_ns_);
  const std::shared_ptr<const ForwardingSnapshot> snap = slot_.load();
  if (!snap) {
    return error_response(r, Status::kErrNotRouted,
                          "lookup before the first route");
  }
  // Node structure is immutable after construction (churn only flips
  // up/down flags), so these reads are safe without the engine mutex.
  const Network& net = topo_.net;
  if (r.src_switch >= net.num_nodes() || !net.is_switch(r.src_switch)) {
    return error_response(r, Status::kErrBadArgument, "not a switch id");
  }
  if (r.dst_terminal >= net.num_nodes() || !net.is_terminal(r.dst_terminal)) {
    return error_response(r, Status::kErrBadArgument, "not a terminal id");
  }

  ServiceResponse resp;
  resp.kind = r.kind;
  resp.request_id = r.request_id;
  resp.snapshot_version = snap->version;
  resp.next_channel = snap->table.next(r.src_switch, r.dst_terminal);
  resp.layer = snap->table.layer(r.src_switch, r.dst_terminal);
  resp.ejected = resp.next_channel == kInvalidChannel;
  return resp;
}

ServiceResponse ServiceCore::do_stats(const ServiceRequest& r) {
  const obs::Snapshot snap = metrics_.snapshot();
  std::ostringstream out;
  out << "{\n  \"metrics\": ";
  obs::write_metrics_json(out, snap, obs::Kind::kDeterministic, 2);
  out << ",\n  \"timing_metrics\": ";
  obs::write_metrics_json(out, snap, obs::Kind::kTiming, 2);
  out << "\n}";

  ServiceResponse resp;
  resp.kind = r.kind;
  resp.request_id = r.request_id;
  resp.stats_json = out.str();
  return resp;
}

ServiceResponse ServiceCore::do_snapshot_info(const ServiceRequest& r) {
  ServiceResponse resp;
  resp.kind = r.kind;
  resp.request_id = r.request_id;
  const std::shared_ptr<const ForwardingSnapshot> snap = slot_.load();
  if (snap) {
    resp.snapshot_version = snap->version;
    resp.layers = snap->layers_used;
    resp.paths = snap->paths;
  }
  resp.snapshot_swaps = slot_.swaps();
  resp.pending_events = pending_count_.load(std::memory_order_relaxed);
  resp.switches = static_cast<std::uint32_t>(topo_.net.num_switches());
  resp.terminals = static_cast<std::uint32_t>(topo_.net.num_terminals());
  resp.engine = engine_key_;
  resp.topology = topo_.name;
  return resp;
}

}  // namespace dfsssp::service
