// Deterministic digests of published forwarding state, recorded in the
// flight-recorder journal (obs/journal) and re-checked by dfreplay.
//
// FNV-1a 64 over a canonical serialization: node ids ascend, so two
// RoutingTables hash equal iff every (switch, terminal) slot's next
// channel and layer agree — "bitwise-identical forwarding snapshot" in one
// u64. The certificate digest hashes the per-layer canonical Kahn orders
// of make_certificate, which are thread-count invariant by construction,
// so it pins the deadlock-freedom proof of a generation, not just its
// table.
#pragma once

#include <cstdint>

#include "analysis/certificate.hpp"
#include "routing/table.hpp"
#include "topology/network.hpp"

namespace dfsssp::service {

/// FNV-1a 64 of (num_layers, then next+layer per ascending
/// (switch, terminal) pair).
std::uint64_t table_digest(const Network& net, const RoutingTable& table);

/// FNV-1a 64 of (num_layers, then per layer: order length + channel ids).
std::uint64_t certificate_digest(const Certificate& cert);

}  // namespace dfsssp::service
