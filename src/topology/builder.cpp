#include "topology/builder.hpp"

#include <stdexcept>
#include <string>
#include "common/narrow.hpp"

namespace dfsssp {

NetworkBuilder::NetworkBuilder(std::uint64_t num_switches)
    : num_switches_(num_switches) {
  if (num_switches >= static_cast<std::uint64_t>(kInvalidNode)) {
    throw std::overflow_error(
        "NetworkBuilder: switch count overflows 32-bit NodeId");
  }
}

void NetworkBuilder::add_link(std::uint32_t a, std::uint32_t b) {
  if (a >= num_switches_ || b >= num_switches_) {
    throw std::invalid_argument("NetworkBuilder: link endpoint out of range");
  }
  if (a == b) throw std::invalid_argument("NetworkBuilder: self-loop");
  links_.push_back({a, b});
}

void NetworkBuilder::add_links(std::span<const SwitchLink> links) {
  links_.reserve(links_.size() + links.size());
  for (const SwitchLink& l : links) add_link(l.a, l.b);
}

void NetworkBuilder::add_terminal(std::uint32_t sw) {
  if (sw >= num_switches_) {
    throw std::invalid_argument(
        "NetworkBuilder: terminal switch out of range");
  }
  terminal_switch_.push_back(sw);
}

void NetworkBuilder::add_terminals(std::span<const std::uint32_t> switch_of) {
  terminal_switch_.reserve(terminal_switch_.size() + switch_of.size());
  for (std::uint32_t sw : switch_of) add_terminal(sw);
}

void NetworkBuilder::set_switch_name(std::uint32_t sw, std::string name) {
  if (sw >= num_switches_) {
    throw std::invalid_argument("NetworkBuilder: name for unknown switch");
  }
  names_.emplace_back(sw, std::move(name));
}

Network NetworkBuilder::build(bool validate) {
  const std::uint64_t S = num_switches_;
  const std::uint64_t T = terminal_switch_.size();
  const std::uint64_t L = links_.size();
  if (S + T >= static_cast<std::uint64_t>(kInvalidNode)) {
    throw std::overflow_error(
        "NetworkBuilder: node count overflows 32-bit NodeId");
  }
  if (2 * L + 2 * T >= static_cast<std::uint64_t>(kInvalidChannel)) {
    throw std::overflow_error(
        "NetworkBuilder: channel count overflows 32-bit ChannelId");
  }

  Network net;
  net.nodes_.resize(S + T);
  net.switches_.resize(S);
  net.terminals_on_switch_.assign(S, 0);
  for (std::uint64_t i = 0; i < S; ++i) {
    net.nodes_[i] = {NodeType::kSwitch, checked_u32(i, "build switch")};
    net.switches_[i] = checked_narrow<NodeId>(i, "build switch");
  }

  net.channels_.resize(2 * L + 2 * T);
  for (std::uint64_t i = 0; i < L; ++i) {
    const ChannelId ab = checked_narrow<ChannelId>(2 * i, "build link");
    const ChannelId ba = ab + 1;
    net.channels_[ab] = {links_[i].a, links_[i].b, ba};
    net.channels_[ba] = {links_[i].b, links_[i].a, ab};
  }

  net.terminals_.resize(T);
  net.terminal_switch_.resize(T);
  net.injection_.resize(T);
  for (std::uint64_t j = 0; j < T; ++j) {
    const NodeId id = checked_narrow<NodeId>(S + j, "build terminal");
    const NodeId sw = terminal_switch_[j];
    const ChannelId inj =
        checked_narrow<ChannelId>(2 * L + 2 * j, "build terminal");
    const ChannelId ej = inj + 1;
    net.nodes_[id] = {NodeType::kTerminal, checked_u32(j, "build terminal")};
    net.terminals_[j] = id;
    net.terminal_switch_[j] = sw;
    net.injection_[j] = inj;
    net.channels_[inj] = {id, sw, ej};
    net.channels_[ej] = {sw, id, inj};
    ++net.terminals_on_switch_[sw];
  }

  for (auto& [sw, name] : names_) {
    net.set_node_name(static_cast<NodeId>(sw), std::move(name));
  }

  net.freeze();
  if (validate) net.validate();

  num_switches_ = 0;
  links_.clear();
  links_.shrink_to_fit();
  terminal_switch_.clear();
  terminal_switch_.shrink_to_fit();
  names_.clear();
  return net;
}

}  // namespace dfsssp
