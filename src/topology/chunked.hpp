// Chunked streaming topology generation (KaGen-style).
//
// A ChunkedGenerator describes a topology as a pure function of (phase,
// chunk): layout() declares the switch/link/terminal counts and how the
// link and terminal streams are partitioned into chunks, and emit_links /
// emit_terminals produce the chunk's slice of the stream from its indices
// alone. generate_chunked() then evaluates chunks through parallel_map and
// concatenates the per-chunk buffers in chunk-index order into a
// NetworkBuilder — so the assembled channel stream is identical at any
// --threads=N, and identical to a sequential generator that walks the same
// (phase, chunk, item) order. The small-instance property tests in
// tests/test_chunked.cpp pin each chunked family bitwise to its
// independent sequential seed generator in generators.cpp.
//
// Determinism contract (common/parallel.hpp): chunk counts derive from the
// topology size only, never from the thread count, and any randomness a
// chunk consumes comes from the Rng handed to emit_links — seeded by
// stream_seed(seed(), phase/chunk index) — or from per-phase streams the
// generator derives itself (the random-regular permutation keys), never
// from state shared across chunks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "topology/builder.hpp"
#include "topology/topology.hpp"

namespace dfsssp {

/// Stream partitioning declared by a generator up front (the KaGen
/// "requirements" idiom): exact switch/terminal counts, a link-count
/// reserve hint, and the chunk grid.
struct GenLayout {
  std::uint64_t num_switches = 0;
  /// Exact for the closed-form families; an upper bound used only as a
  /// reserve hint for families that drop items (random-regular skips
  /// permutation fixed points).
  std::uint64_t num_links = 0;
  std::uint64_t num_terminals = 0;
  /// Link stream: `link_phases` sequential phases (e.g. dragonfly local
  /// links then global links), each split into `link_chunks` chunks.
  std::uint32_t link_phases = 1;
  std::uint64_t link_chunks = 1;
  std::uint64_t terminal_chunks = 1;
};

class ChunkedGenerator {
 public:
  virtual ~ChunkedGenerator() = default;

  virtual std::string family() const = 0;
  virtual std::string topo_name() const = 0;
  virtual GenLayout layout() const = 0;

  /// Appends chunk `chunk` of phase `phase` of the link stream to `out`.
  /// `rng` is this chunk's private stream — Rng(stream_seed(seed(),
  /// phase/chunk index)) — and is the only scheduling-safe randomness
  /// source besides self-derived per-phase streams.
  virtual void emit_links(std::uint32_t phase, std::uint64_t chunk, Rng& rng,
                          std::vector<SwitchLink>& out) const = 0;

  /// Appends chunk `chunk` of the terminal stream (attachment switch ids,
  /// in terminal-index order) to `out`.
  virtual void emit_terminals(std::uint64_t chunk,
                              std::vector<std::uint32_t>& out) const = 0;

  /// Custom name for switch `sw`, or empty for the synthesized default.
  virtual std::string switch_name(std::uint64_t sw) const {
    (void)sw;
    return {};
  }

  /// Populates generator metadata (dims, coordinates, levels).
  virtual void fill_meta(TopologyMeta& meta) const { (void)meta; }

  /// Base seed the per-chunk streams are derived from.
  virtual std::uint64_t seed() const { return 0; }
};

struct ChunkedOptions {
  /// Record per-switch custom names. Off saves the side table entirely for
  /// warehouse-scale runs (nodes then answer to their synthesized "sw<i>"
  /// defaults).
  bool record_names = true;
  bool validate = true;
};

/// Evaluates the generator's chunk grid under `exec` and assembles the
/// frozen, validated Topology. Bitwise identical output at any thread
/// count.
Topology generate_chunked(const ChunkedGenerator& gen,
                          const ExecContext& exec = {},
                          const ChunkedOptions& opts = {});

// ---- concrete chunked families ---------------------------------------------

/// Balanced dragonfly(a, p, h, g) with a*h == g-1; same wiring as
/// make_dragonfly. Phase 0: per-group local cliques; phase 1: per-group
/// global links; one chunk per group.
class ChunkedDragonfly : public ChunkedGenerator {
 public:
  ChunkedDragonfly(std::uint32_t a, std::uint32_t p, std::uint32_t h,
                   std::uint32_t g);

  std::string family() const override { return "dragonfly"; }
  std::string topo_name() const override;
  GenLayout layout() const override;
  void emit_links(std::uint32_t phase, std::uint64_t chunk, Rng& rng,
                  std::vector<SwitchLink>& out) const override;
  void emit_terminals(std::uint64_t chunk,
                      std::vector<std::uint32_t>& out) const override;
  std::string switch_name(std::uint64_t sw) const override;

 protected:
  std::uint32_t a_, p_, h_, g_;
};

/// XGFT(h; m1..mh; w1..wh), same recursive wiring as make_xgft but via a
/// closed-form decode of the post-order switch ids; chunks are contiguous
/// switch-id ranges (links) and terminal-index ranges.
class ChunkedXgft : public ChunkedGenerator {
 public:
  ChunkedXgft(std::uint32_t h, std::vector<std::uint32_t> ms,
              std::vector<std::uint32_t> ws, std::uint32_t terminals_per_leaf);

  std::string family() const override { return "xgft"; }
  std::string topo_name() const override;
  GenLayout layout() const override;
  void emit_links(std::uint32_t phase, std::uint64_t chunk, Rng& rng,
                  std::vector<SwitchLink>& out) const override;
  void emit_terminals(std::uint64_t chunk,
                      std::vector<std::uint32_t>& out) const override;
  void fill_meta(TopologyMeta& meta) const override;

 private:
  /// Height-l subtree switch count S(l) and root count tops(l).
  std::uint64_t subtree_size(std::uint32_t l) const { return size_[l]; }

  struct Decoded {
    std::uint32_t level;      // 0 = leaf
    std::uint64_t base;       // base id of the height-`level` subtree
    std::uint64_t root_index; // r*w + j among the subtree's roots (level>0)
  };
  Decoded decode(std::uint64_t id) const;
  std::uint64_t leaf_id(std::uint64_t leaf_index) const;

  std::uint32_t h_;
  std::vector<std::uint32_t> ms_, ws_;
  std::uint32_t tpl_;
  std::vector<std::uint64_t> size_;    // S(l), l in [0, h]
  std::vector<std::uint64_t> tops_;    // tops(l)
  std::vector<std::uint64_t> leaves_;  // leaves(l)
};

/// Torus / mesh over `dims` (dimension 0 fastest), same wiring as
/// make_torus; chunks are contiguous switch-id ranges.
class ChunkedTorus : public ChunkedGenerator {
 public:
  ChunkedTorus(std::vector<std::uint32_t> dims,
               std::uint32_t terminals_per_switch, bool wraparound);

  std::string family() const override {
    return wraparound_ ? "torus" : "mesh";
  }
  std::string topo_name() const override;
  GenLayout layout() const override;
  void emit_links(std::uint32_t phase, std::uint64_t chunk, Rng& rng,
                  std::vector<SwitchLink>& out) const override;
  void emit_terminals(std::uint64_t chunk,
                      std::vector<std::uint32_t>& out) const override;
  void fill_meta(TopologyMeta& meta) const override;

 private:
  std::uint32_t coord_of(std::uint64_t idx, std::size_t dim) const;

  std::vector<std::uint32_t> dims_;
  std::uint32_t tps_;
  bool wraparound_;
  std::uint64_t total_;
};

/// HyperX over `dims`: full connectivity along every axis line, same wiring
/// as make_hyperx; chunks are contiguous switch-id ranges.
class ChunkedHyperx : public ChunkedGenerator {
 public:
  ChunkedHyperx(std::vector<std::uint32_t> dims,
                std::uint32_t terminals_per_switch);

  std::string family() const override { return "hyperx"; }
  std::string topo_name() const override;
  GenLayout layout() const override;
  void emit_links(std::uint32_t phase, std::uint64_t chunk, Rng& rng,
                  std::vector<SwitchLink>& out) const override;
  void emit_terminals(std::uint64_t chunk,
                      std::vector<std::uint32_t>& out) const override;
  void fill_meta(TopologyMeta& meta) const override;

 private:
  std::uint32_t coord_of(std::uint64_t idx, std::size_t dim) const;

  std::vector<std::uint32_t> dims_;
  std::uint32_t tps_;
  std::uint64_t total_;
};

/// Keyed bijection on [0, n) built from a 4-round Feistel network over the
/// next even power-of-two domain, shrunk to [0, n) by cycle-walking. O(1)
/// random access — the primitive that lets random-regular rounds be
/// generated chunk-parallel without a shared shuffle.
class IndexPermutation {
 public:
  IndexPermutation(std::uint64_t n, std::uint64_t seed);

  std::uint64_t operator()(std::uint64_t i) const;

 private:
  std::uint64_t permute_once(std::uint64_t x) const;

  std::uint64_t n_;
  std::uint32_t half_bits_;
  std::uint64_t half_mask_;
  std::uint64_t keys_[4];
};

/// Seed of round `round`'s permutation stream; shared between the chunked
/// and the sequential random-regular generators.
std::uint64_t random_regular_round_seed(std::uint64_t seed,
                                        std::uint32_t round);

/// Random near-regular fabric on `n` switches with even degree `d`: round 0
/// is a Hamiltonian ring (connectivity), rounds 1..d/2-1 each add the cycle
/// cover of an independent keyed random permutation — link(i, P_r(i)) for
/// every non-fixed i. Permutation fixed points are skipped (expected O(1)
/// per round), so a handful of switches may sit 2 below the nominal degree;
/// 2-cycles contribute parallel links, which the multigraph model allows.
/// One phase per round; chunks are contiguous switch-id ranges.
class ChunkedRandomRegular : public ChunkedGenerator {
 public:
  ChunkedRandomRegular(std::uint64_t n, std::uint32_t degree,
                       std::uint32_t terminals_per_switch, std::uint64_t seed);

  std::string family() const override { return "random-regular"; }
  std::string topo_name() const override;
  GenLayout layout() const override;
  void emit_links(std::uint32_t phase, std::uint64_t chunk, Rng& rng,
                  std::vector<SwitchLink>& out) const override;
  void emit_terminals(std::uint64_t chunk,
                      std::vector<std::uint32_t>& out) const override;
  std::uint64_t seed() const override { return seed_; }

 private:
  std::uint64_t n_;
  std::uint32_t degree_;
  std::uint32_t tps_;
  std::uint64_t seed_;
};

}  // namespace dfsssp
