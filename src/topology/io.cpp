#include "topology/io.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/narrow.hpp"

namespace dfsssp {

void write_dot(const Network& net, std::ostream& out) {
  out << "graph network {\n";
  for (NodeId sw : net.switches()) {
    out << "  \"" << net.node_name(sw) << "\" [shape=box];\n";
  }
  for (NodeId t : net.terminals()) {
    out << "  \"" << net.node_name(t) << "\" [shape=circle];\n";
  }
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    const Channel& ch = net.channel(c);
    if (c < ch.reverse) {  // one line per physical link
      out << "  \"" << net.node_name(ch.src) << "\" -- \""
          << net.node_name(ch.dst) << "\";\n";
    }
  }
  out << "}\n";
}

void write_netfile(const Network& net, std::ostream& out) {
  out << "# dfsssp netfile: " << net.num_switches() << " switches, "
      << net.num_terminals() << " terminals\n";
  for (NodeId sw : net.switches()) {
    out << "switch " << net.node_name(sw) << "\n";
  }
  for (NodeId t : net.terminals()) {
    out << "terminal " << net.node_name(t) << " "
        << net.node_name(net.switch_of(t)) << "\n";
  }
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    const Channel& ch = net.channel(c);
    if (c < ch.reverse && net.is_switch(ch.src) && net.is_switch(ch.dst)) {
      out << "link " << net.node_name(ch.src) << " " << net.node_name(ch.dst)
          << "\n";
    }
  }
}

void write_netfile(const Network& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_netfile(net, out);
}

Topology read_netfile(std::istream& in, const std::string& name) {
  Network net;
  std::map<std::string, NodeId> by_name;
  std::string line;
  std::size_t lineno = 0;
  auto fail = [&](const std::string& msg) {
    throw std::runtime_error("netfile:" + std::to_string(lineno) + ": " + msg);
  };
  auto lookup_switch = [&](const std::string& n) {
    auto it = by_name.find(n);
    if (it == by_name.end()) fail("unknown switch '" + n + "'");
    if (!net.is_switch(it->second)) fail("'" + n + "' is not a switch");
    return it->second;
  };

  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;
    if (kind == "switch") {
      std::string n;
      if (!(ls >> n)) fail("switch needs a name");
      if (by_name.count(n)) fail("duplicate name '" + n + "'");
      by_name[n] = net.add_switch(n);
    } else if (kind == "terminal") {
      std::string n, swn;
      if (!(ls >> n >> swn)) fail("terminal needs <name> <switch>");
      if (by_name.count(n)) fail("duplicate name '" + n + "'");
      by_name[n] = net.add_terminal(lookup_switch(swn), n);
    } else if (kind == "link") {
      std::string a, b;
      if (!(ls >> a >> b)) fail("link needs two switch names");
      net.add_link(lookup_switch(a), lookup_switch(b));
    } else {
      fail("unknown keyword '" + kind + "'");
    }
  }
  net.freeze();
  net.validate();
  Topology topo;
  topo.name = name;
  topo.net = std::move(net);
  topo.meta.family = "netfile";
  return topo;
}

Topology read_netfile_path(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open netfile: " + path);
  return read_netfile(in, path);
}

// ---- binary edge list (DFEL) ------------------------------------------------

namespace {

void put_u32(unsigned char* out, std::uint32_t v) {
  out[0] = static_cast<unsigned char>(v);
  out[1] = static_cast<unsigned char>(v >> 8);
  out[2] = static_cast<unsigned char>(v >> 16);
  out[3] = static_cast<unsigned char>(v >> 24);
}

void put_u64(unsigned char* out, std::uint64_t v) {
  put_u32(out, lo_u32(v));
  put_u32(out + 4, hi_u32(v));
}

std::uint32_t get_u32(const unsigned char* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* in) {
  return static_cast<std::uint64_t>(get_u32(in)) |
         (static_cast<std::uint64_t>(get_u32(in + 4)) << 32);
}

/// Links or terminals serialized per buffer flush.
constexpr std::size_t kEdgeListBatch = 1 << 16;

}  // namespace

struct EdgeListWriter::Impl {
  std::ofstream out;
  std::string path;
  std::uint64_t num_links = 0;
  std::uint64_t num_terminals = 0;
  bool in_terminals = false;
  bool finished = false;
};

EdgeListWriter::EdgeListWriter(const std::string& path,
                               std::uint64_t num_switches)
    : impl_(new Impl) {
  impl_->path = path;
  impl_->out.open(path, std::ios::binary | std::ios::trunc);
  if (!impl_->out) {
    delete impl_;
    throw std::runtime_error("cannot open for writing: " + path);
  }
  unsigned char header[32];
  put_u64(header, kEdgeListMagic);
  put_u64(header + 8, num_switches);
  put_u64(header + 16, 0);  // num_links, patched by finish()
  put_u64(header + 24, 0);  // num_terminals, patched by finish()
  impl_->out.write(reinterpret_cast<const char*>(header), sizeof header);
}

EdgeListWriter::~EdgeListWriter() {
  try {
    finish();
  } catch (...) {
    // Destructor swallows; call finish() directly for error reporting.
  }
  delete impl_;
}

void EdgeListWriter::add_links(std::span<const SwitchLink> links) {
  if (impl_->in_terminals) {
    throw std::logic_error("EdgeListWriter: links after terminals");
  }
  std::vector<unsigned char> buf;
  for (std::size_t base = 0; base < links.size(); base += kEdgeListBatch) {
    const std::size_t n = std::min(kEdgeListBatch, links.size() - base);
    buf.resize(n * 8);
    for (std::size_t i = 0; i < n; ++i) {
      put_u32(buf.data() + i * 8, links[base + i].a);
      put_u32(buf.data() + i * 8 + 4, links[base + i].b);
    }
    impl_->out.write(reinterpret_cast<const char*>(buf.data()),
                     static_cast<std::streamsize>(buf.size()));
  }
  impl_->num_links += links.size();
}

void EdgeListWriter::add_terminals(std::span<const std::uint32_t> switch_of) {
  impl_->in_terminals = true;
  std::vector<unsigned char> buf;
  for (std::size_t base = 0; base < switch_of.size();
       base += kEdgeListBatch) {
    const std::size_t n = std::min(kEdgeListBatch, switch_of.size() - base);
    buf.resize(n * 4);
    for (std::size_t i = 0; i < n; ++i) {
      put_u32(buf.data() + i * 4, switch_of[base + i]);
    }
    impl_->out.write(reinterpret_cast<const char*>(buf.data()),
                     static_cast<std::streamsize>(buf.size()));
  }
  impl_->num_terminals += switch_of.size();
}

void EdgeListWriter::finish() {
  if (impl_->finished) return;
  impl_->finished = true;
  unsigned char counts[16];
  put_u64(counts, impl_->num_links);
  put_u64(counts + 8, impl_->num_terminals);
  impl_->out.seekp(16);
  impl_->out.write(reinterpret_cast<const char*>(counts), sizeof counts);
  impl_->out.close();
  if (!impl_->out) {
    throw std::runtime_error("edgelist: write failed: " + impl_->path);
  }
}

void write_edgelist(const Network& net, const std::string& path) {
  EdgeListWriter writer(path, net.num_switches());
  std::vector<SwitchLink> links;
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    const Channel& ch = net.channel(c);
    if (c < ch.reverse && net.is_switch(ch.src) && net.is_switch(ch.dst)) {
      links.push_back({net.node(ch.src).type_index,
                       net.node(ch.dst).type_index});
      if (links.size() == kEdgeListBatch) {
        writer.add_links(links);
        links.clear();
      }
    }
  }
  writer.add_links(links);
  std::vector<std::uint32_t> terminals;
  terminals.reserve(net.num_terminals());
  for (NodeId t : net.terminals()) {
    terminals.push_back(net.node(net.switch_of(t)).type_index);
  }
  writer.add_terminals(terminals);
  writer.finish();
}

Topology read_edgelist(std::istream& in, const std::string& name) {
  unsigned char header[32];
  in.read(reinterpret_cast<char*>(header), sizeof header);
  if (in.gcount() != sizeof header) {
    throw std::runtime_error("edgelist: truncated header");
  }
  if (get_u64(header) != kEdgeListMagic) {
    throw std::runtime_error("edgelist: bad magic");
  }
  const std::uint64_t num_switches = get_u64(header + 8);
  const std::uint64_t num_links = get_u64(header + 16);
  const std::uint64_t num_terminals = get_u64(header + 24);

  NetworkBuilder builder(num_switches);
  builder.reserve_links(num_links);
  builder.reserve_terminals(num_terminals);
  try {
    std::vector<unsigned char> buf;
    for (std::uint64_t done = 0; done < num_links; done += kEdgeListBatch) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(kEdgeListBatch, num_links - done));
      buf.resize(n * 8);
      in.read(reinterpret_cast<char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
      if (static_cast<std::size_t>(in.gcount()) != buf.size()) {
        throw std::runtime_error("edgelist: truncated link section");
      }
      for (std::size_t i = 0; i < n; ++i) {
        builder.add_link(get_u32(buf.data() + i * 8),
                         get_u32(buf.data() + i * 8 + 4));
      }
    }
    for (std::uint64_t done = 0; done < num_terminals;
         done += kEdgeListBatch) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(kEdgeListBatch, num_terminals - done));
      buf.resize(n * 4);
      in.read(reinterpret_cast<char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
      if (static_cast<std::size_t>(in.gcount()) != buf.size()) {
        throw std::runtime_error("edgelist: truncated terminal section");
      }
      for (std::size_t i = 0; i < n; ++i) {
        builder.add_terminal(get_u32(buf.data() + i * 4));
      }
    }
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("edgelist: ") + e.what());
  }

  Topology topo;
  topo.net = builder.build();
  topo.name = name;
  topo.meta.family = "edgelist";
  return topo;
}

Topology read_edgelist_path(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open edgelist: " + path);
  return read_edgelist(in, path);
}

namespace {

/// First quoted token on the line, or empty.
std::string quoted(const std::string& line, std::size_t from = 0) {
  auto a = line.find('"', from);
  if (a == std::string::npos) return {};
  auto b = line.find('"', a + 1);
  if (b == std::string::npos) return {};
  return line.substr(a + 1, b - a - 1);
}

/// The comment name: the first quoted token after '#', or empty.
std::string comment_name(const std::string& line) {
  auto hash = line.find('#');
  if (hash == std::string::npos) return {};
  std::string n = quoted(line, hash);
  // "node01 HCA-1" -> keep it whole but make it identifier-ish.
  for (char& ch : n) {
    if (ch == ' ' || ch == '\t') ch = '_';
  }
  return n;
}

}  // namespace

Topology read_ibnetdiscover(std::istream& in, const std::string& name) {
  struct PortRef {
    std::string guid;
    std::uint32_t port;
  };
  struct Link {
    PortRef a, b;
  };
  std::map<std::string, std::string> display;  // guid -> pretty name
  std::set<std::string> switch_guids, ca_guids;
  std::vector<Link> links;

  std::string line;
  std::string current_guid;
  bool current_is_switch = false;
  std::size_t lineno = 0;
  auto fail = [&](const std::string& msg) {
    throw std::runtime_error("ibnetdiscover:" + std::to_string(lineno) + ": " +
                             msg);
  };

  while (std::getline(in, line)) {
    ++lineno;
    // Strip trailing CR (files often come from the fabric host).
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;

    if (line.rfind("Switch", 0) == 0 || line.rfind("Ca", 0) == 0) {
      current_is_switch = line[0] == 'S';
      current_guid = quoted(line);
      if (current_guid.empty()) fail("node header without GUID");
      (current_is_switch ? switch_guids : ca_guids).insert(current_guid);
      std::string pretty = comment_name(line);
      if (!pretty.empty()) display[current_guid] = pretty;
      continue;
    }
    if (line[0] == '[') {
      if (current_guid.empty()) fail("port line outside a node block");
      auto close = line.find(']');
      if (close == std::string::npos) fail("malformed port number");
      const std::uint32_t my_port =
          checked_u32(std::strtoul(line.c_str() + 1, nullptr, 10),
                      "ibnetdiscover port");
      const std::string peer = quoted(line);
      if (peer.empty()) continue;  // unconnected port
      // Peer port: the [N] right after the closing quote of the peer GUID.
      auto q2 = line.find('"', line.find('"') + 1);
      auto bracket = line.find('[', q2);
      std::uint32_t peer_port = 1;
      if (bracket != std::string::npos) {
        peer_port =
            checked_u32(std::strtoul(line.c_str() + bracket + 1, nullptr, 10),
                        "ibnetdiscover peer port");
      }
      links.push_back({{current_guid, my_port}, {peer, peer_port}});
      continue;
    }
    // Header lines (vendid=, devid=, sysimgguid=, ...) are skipped.
  }

  // Fold duplicate link mentions (each physical link appears in both
  // endpoint blocks).
  auto key_of = [](const PortRef& r) {
    return r.guid + "/" + std::to_string(r.port);
  };
  std::set<std::pair<std::string, std::string>> seen;
  Network net;
  std::map<std::string, NodeId> node_of;
  auto switch_node = [&](const std::string& guid) {
    auto it = node_of.find(guid);
    if (it != node_of.end()) return it->second;
    auto dn = display.find(guid);
    NodeId id = net.add_switch(dn == display.end() ? guid : dn->second);
    node_of[guid] = id;
    return id;
  };
  // Switches first so CA attachment can reference them.
  for (const std::string& guid : switch_guids) switch_node(guid);

  for (const Link& link : links) {
    auto ka = key_of(link.a), kb = key_of(link.b);
    auto canonical = ka < kb ? std::make_pair(ka, kb) : std::make_pair(kb, ka);
    if (!seen.insert(canonical).second) continue;

    const bool a_is_switch = switch_guids.count(link.a.guid) > 0;
    const bool b_is_switch = switch_guids.count(link.b.guid) > 0;
    if (a_is_switch && b_is_switch) {
      net.add_link(node_of.at(link.a.guid), node_of.at(link.b.guid));
    } else if (a_is_switch != b_is_switch) {
      const PortRef& ca = a_is_switch ? link.b : link.a;
      const PortRef& sw = a_is_switch ? link.a : link.b;
      if (ca.port != 1) continue;  // keep rail 1 of multi-rail HCAs
      if (node_of.count(ca.guid)) continue;  // already attached
      auto dn = display.find(ca.guid);
      node_of[ca.guid] = net.add_terminal(
          node_of.at(sw.guid), dn == display.end() ? ca.guid : dn->second);
    }
    // CA-to-CA links (back-to-back HCAs) are outside our model: skipped.
  }
  if (net.num_switches() == 0) {
    throw std::runtime_error("ibnetdiscover: no switches found");
  }
  net.freeze();
  net.validate();
  Topology topo;
  topo.name = name;
  topo.net = std::move(net);
  topo.meta.family = "ibnetdiscover";
  return topo;
}

Topology read_ibnetdiscover_path(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return read_ibnetdiscover(in, path);
}

}  // namespace dfsssp
