#include "topology/io.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace dfsssp {

void write_dot(const Network& net, std::ostream& out) {
  out << "graph network {\n";
  for (NodeId sw : net.switches()) {
    out << "  \"" << net.node(sw).name << "\" [shape=box];\n";
  }
  for (NodeId t : net.terminals()) {
    out << "  \"" << net.node(t).name << "\" [shape=circle];\n";
  }
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    const Channel& ch = net.channel(c);
    if (c < ch.reverse) {  // one line per physical link
      out << "  \"" << net.node(ch.src).name << "\" -- \""
          << net.node(ch.dst).name << "\";\n";
    }
  }
  out << "}\n";
}

void write_netfile(const Network& net, std::ostream& out) {
  out << "# dfsssp netfile: " << net.num_switches() << " switches, "
      << net.num_terminals() << " terminals\n";
  for (NodeId sw : net.switches()) {
    out << "switch " << net.node(sw).name << "\n";
  }
  for (NodeId t : net.terminals()) {
    out << "terminal " << net.node(t).name << " "
        << net.node(net.switch_of(t)).name << "\n";
  }
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    const Channel& ch = net.channel(c);
    if (c < ch.reverse && net.is_switch(ch.src) && net.is_switch(ch.dst)) {
      out << "link " << net.node(ch.src).name << " " << net.node(ch.dst).name
          << "\n";
    }
  }
}

void write_netfile(const Network& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_netfile(net, out);
}

Topology read_netfile(std::istream& in, const std::string& name) {
  Network net;
  std::map<std::string, NodeId> by_name;
  std::string line;
  std::size_t lineno = 0;
  auto fail = [&](const std::string& msg) {
    throw std::runtime_error("netfile:" + std::to_string(lineno) + ": " + msg);
  };
  auto lookup_switch = [&](const std::string& n) {
    auto it = by_name.find(n);
    if (it == by_name.end()) fail("unknown switch '" + n + "'");
    if (!net.is_switch(it->second)) fail("'" + n + "' is not a switch");
    return it->second;
  };

  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;
    if (kind == "switch") {
      std::string n;
      if (!(ls >> n)) fail("switch needs a name");
      if (by_name.count(n)) fail("duplicate name '" + n + "'");
      by_name[n] = net.add_switch(n);
    } else if (kind == "terminal") {
      std::string n, swn;
      if (!(ls >> n >> swn)) fail("terminal needs <name> <switch>");
      if (by_name.count(n)) fail("duplicate name '" + n + "'");
      by_name[n] = net.add_terminal(lookup_switch(swn), n);
    } else if (kind == "link") {
      std::string a, b;
      if (!(ls >> a >> b)) fail("link needs two switch names");
      net.add_link(lookup_switch(a), lookup_switch(b));
    } else {
      fail("unknown keyword '" + kind + "'");
    }
  }
  net.freeze();
  net.validate();
  Topology topo;
  topo.name = name;
  topo.net = std::move(net);
  topo.meta.family = "netfile";
  return topo;
}

Topology read_netfile_path(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open netfile: " + path);
  return read_netfile(in, path);
}

namespace {

/// First quoted token on the line, or empty.
std::string quoted(const std::string& line, std::size_t from = 0) {
  auto a = line.find('"', from);
  if (a == std::string::npos) return {};
  auto b = line.find('"', a + 1);
  if (b == std::string::npos) return {};
  return line.substr(a + 1, b - a - 1);
}

/// The comment name: the first quoted token after '#', or empty.
std::string comment_name(const std::string& line) {
  auto hash = line.find('#');
  if (hash == std::string::npos) return {};
  std::string n = quoted(line, hash);
  // "node01 HCA-1" -> keep it whole but make it identifier-ish.
  for (char& ch : n) {
    if (ch == ' ' || ch == '\t') ch = '_';
  }
  return n;
}

}  // namespace

Topology read_ibnetdiscover(std::istream& in, const std::string& name) {
  struct PortRef {
    std::string guid;
    std::uint32_t port;
  };
  struct Link {
    PortRef a, b;
  };
  std::map<std::string, std::string> display;  // guid -> pretty name
  std::set<std::string> switch_guids, ca_guids;
  std::vector<Link> links;

  std::string line;
  std::string current_guid;
  bool current_is_switch = false;
  std::size_t lineno = 0;
  auto fail = [&](const std::string& msg) {
    throw std::runtime_error("ibnetdiscover:" + std::to_string(lineno) + ": " +
                             msg);
  };

  while (std::getline(in, line)) {
    ++lineno;
    // Strip trailing CR (files often come from the fabric host).
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;

    if (line.rfind("Switch", 0) == 0 || line.rfind("Ca", 0) == 0) {
      current_is_switch = line[0] == 'S';
      current_guid = quoted(line);
      if (current_guid.empty()) fail("node header without GUID");
      (current_is_switch ? switch_guids : ca_guids).insert(current_guid);
      std::string pretty = comment_name(line);
      if (!pretty.empty()) display[current_guid] = pretty;
      continue;
    }
    if (line[0] == '[') {
      if (current_guid.empty()) fail("port line outside a node block");
      auto close = line.find(']');
      if (close == std::string::npos) fail("malformed port number");
      const std::uint32_t my_port = static_cast<std::uint32_t>(
          std::strtoul(line.c_str() + 1, nullptr, 10));
      const std::string peer = quoted(line);
      if (peer.empty()) continue;  // unconnected port
      // Peer port: the [N] right after the closing quote of the peer GUID.
      auto q2 = line.find('"', line.find('"') + 1);
      auto bracket = line.find('[', q2);
      std::uint32_t peer_port = 1;
      if (bracket != std::string::npos) {
        peer_port = static_cast<std::uint32_t>(
            std::strtoul(line.c_str() + bracket + 1, nullptr, 10));
      }
      links.push_back({{current_guid, my_port}, {peer, peer_port}});
      continue;
    }
    // Header lines (vendid=, devid=, sysimgguid=, ...) are skipped.
  }

  // Fold duplicate link mentions (each physical link appears in both
  // endpoint blocks).
  auto key_of = [](const PortRef& r) {
    return r.guid + "/" + std::to_string(r.port);
  };
  std::set<std::pair<std::string, std::string>> seen;
  Network net;
  std::map<std::string, NodeId> node_of;
  auto switch_node = [&](const std::string& guid) {
    auto it = node_of.find(guid);
    if (it != node_of.end()) return it->second;
    auto dn = display.find(guid);
    NodeId id = net.add_switch(dn == display.end() ? guid : dn->second);
    node_of[guid] = id;
    return id;
  };
  // Switches first so CA attachment can reference them.
  for (const std::string& guid : switch_guids) switch_node(guid);

  for (const Link& link : links) {
    auto ka = key_of(link.a), kb = key_of(link.b);
    auto canonical = ka < kb ? std::make_pair(ka, kb) : std::make_pair(kb, ka);
    if (!seen.insert(canonical).second) continue;

    const bool a_is_switch = switch_guids.count(link.a.guid) > 0;
    const bool b_is_switch = switch_guids.count(link.b.guid) > 0;
    if (a_is_switch && b_is_switch) {
      net.add_link(node_of.at(link.a.guid), node_of.at(link.b.guid));
    } else if (a_is_switch != b_is_switch) {
      const PortRef& ca = a_is_switch ? link.b : link.a;
      const PortRef& sw = a_is_switch ? link.a : link.b;
      if (ca.port != 1) continue;  // keep rail 1 of multi-rail HCAs
      if (node_of.count(ca.guid)) continue;  // already attached
      auto dn = display.find(ca.guid);
      node_of[ca.guid] = net.add_terminal(
          node_of.at(sw.guid), dn == display.end() ? ca.guid : dn->second);
    }
    // CA-to-CA links (back-to-back HCAs) are outside our model: skipped.
  }
  if (net.num_switches() == 0) {
    throw std::runtime_error("ibnetdiscover: no switches found");
  }
  net.freeze();
  net.validate();
  Topology topo;
  topo.name = name;
  topo.net = std::move(net);
  topo.meta.family = "ibnetdiscover";
  return topo;
}

Topology read_ibnetdiscover_path(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return read_ibnetdiscover(in, path);
}

}  // namespace dfsssp
