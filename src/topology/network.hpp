// Directed-multigraph model of an interconnection network.
//
// Mirrors the paper's model I = G(N, C): nodes are switches and terminals
// (InfiniBand: HCAs), channels are directed; every physical link is a pair of
// opposite directed channels. Parallel links between the same pair of
// switches are allowed (Deimos connects its big switches with 30 parallel
// links), hence "multigraph".
//
// Terminals have exactly one link, to their attached switch. Forwarding and
// all dependency analysis happen on the inter-switch channels; terminal
// injection/ejection channels exist so the flit-level simulator can model
// sources and sinks, but they can never lie on a dependency cycle (an
// injection channel has no predecessor in any path, an ejection channel no
// successor).
//
// Memory model: the hot structures are pure struct-of-arrays — a Node is 8
// bytes (type + dense type index), a Channel 12 bytes, and the adjacency
// lives in flat CSR arrays built by freeze() with two counting passes over
// the channel list (no per-node staging vectors). Node names are not stored
// in Node at all: custom names live in an optional side table and default
// names ("sw<i>" / "t<i>") are synthesized lazily by node_name(), so a
// 100k-switch fabric carries no per-node heap allocations.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/narrow.hpp"
#include "common/types.hpp"

namespace dfsssp {

enum class NodeType : std::uint8_t { kSwitch, kTerminal };

struct Node {
  NodeType type;
  /// Dense index among nodes of the same type (switch index or terminal
  /// index); used to address per-switch / per-terminal flat arrays.
  std::uint32_t type_index;
};

struct Channel {
  NodeId src;
  NodeId dst;
  /// The opposite direction of the same physical link.
  ChannelId reverse;
};

class Network {
 public:
  // -- construction ---------------------------------------------------------

  NodeId add_switch(std::string name = {});

  /// Adds a terminal and its bidirectional link to `sw`.
  NodeId add_terminal(NodeId sw, std::string name = {});

  /// Adds a bidirectional link (two directed channels) between two switches.
  /// Returns the channel a->b; the reverse id is its `.reverse`.
  ChannelId add_link(NodeId a, NodeId b);

  // -- node accessors -------------------------------------------------------

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_switches() const { return switches_.size(); }
  std::size_t num_terminals() const { return terminals_.size(); }
  std::size_t num_channels() const { return channels_.size(); }

  const Node& node(NodeId n) const { return nodes_[n]; }
  bool is_switch(NodeId n) const { return nodes_[n].type == NodeType::kSwitch; }
  bool is_terminal(NodeId n) const {
    return nodes_[n].type == NodeType::kTerminal;
  }

  /// The node's name: the custom name from the side table when one was set,
  /// otherwise the synthesized default "sw<switch index>" / "t<terminal
  /// index>". Names are presentation data — nothing on the routing hot path
  /// reads them.
  std::string node_name(NodeId n) const;

  /// Records a custom name in the side table (empty erases, reverting the
  /// node to its synthesized default).
  void set_node_name(NodeId n, std::string name);

  /// True when a custom (non-default) name was recorded for `n`.
  bool has_custom_name(NodeId n) const { return names_.count(n) > 0; }

  /// All switch NodeIds, in creation order.
  std::span<const NodeId> switches() const { return switches_; }
  /// All terminal NodeIds, in creation order.
  std::span<const NodeId> terminals() const { return terminals_; }

  NodeId switch_by_index(std::uint32_t i) const { return switches_[i]; }
  NodeId terminal_by_index(std::uint32_t i) const { return terminals_[i]; }

  /// Switch a terminal is attached to.
  NodeId switch_of(NodeId terminal) const {
    return terminal_switch_[nodes_[terminal].type_index];
  }

  /// Number of terminals attached to a switch.
  std::uint32_t terminals_on(NodeId sw) const {
    return terminals_on_switch_[nodes_[sw].type_index];
  }

  // -- channel accessors ----------------------------------------------------

  const Channel& channel(ChannelId c) const { return channels_[c]; }

  /// Outgoing channels of a node (for a terminal: the injection channel).
  std::span<const ChannelId> out_channels(NodeId n) const {
    return {out_.data() + out_offset_[n],
            out_offset_[n + 1] - out_offset_[n]};
  }

  /// Outgoing channels that lead to switches (skips ejection channels).
  /// Valid only after freeze().
  std::span<const ChannelId> out_switch_channels(NodeId sw) const {
    return {sw_out_.data() + sw_out_offset_[nodes_[sw].type_index],
            sw_out_offset_[nodes_[sw].type_index + 1] -
                sw_out_offset_[nodes_[sw].type_index]};
  }

  /// The channel from `terminal` into its switch (injection channel).
  ChannelId injection_channel(NodeId terminal) const {
    return injection_[nodes_[terminal].type_index];
  }
  /// The channel from the switch to `terminal` (ejection channel).
  ChannelId ejection_channel(NodeId terminal) const {
    return channels_[injection_channel(terminal)].reverse;
  }

  /// True for channels between two switches (the CDG's node set).
  bool is_switch_channel(ChannelId c) const {
    return is_switch(channels_[c].src) && is_switch(channels_[c].dst);
  }

  // -- fault state (churn) ---------------------------------------------------
  //
  // A frozen Network can be degraded and repaired IN PLACE: links and
  // switches go down and come back up without any rebuild, and every
  // NodeId/ChannelId stays stable across the whole fault history. The
  // default adjacency accessors (out_channels, out_switch_channels,
  // switch_degree) show only alive channels, so every routing engine and
  // simulator transparently operates on the degraded fabric; the *_all
  // accessors expose the physical structure, which is what the stable
  // (neighbor, parallel-index) slot naming of dumps and certificates uses.

  /// Takes the physical link of inter-switch channel `c` (both directions)
  /// down or up and refreshes the alive adjacency. Throws std::logic_error
  /// before freeze() and std::invalid_argument for terminal links.
  void set_link_up(ChannelId c, bool up);

  /// Takes a switch down or up. A down switch loses every channel that
  /// touches it — inter-switch links and its terminals' injection/ejection
  /// channels — so its terminals drop out of the alive set too.
  void set_switch_up(NodeId sw, bool up);

  /// Physical state of the link carrying channel `c` (true before any
  /// fault was ever injected).
  bool link_up(ChannelId c) const {
    return link_up_.empty() || link_up_[c] != 0;
  }

  bool switch_up(NodeId sw) const {
    return switch_up_.empty() || switch_up_[nodes_[sw].type_index] != 0;
  }

  /// A terminal is alive iff its switch is up (terminals themselves never
  /// fail; they fall off the fabric with their switch).
  bool terminal_alive(NodeId terminal) const {
    return switch_up(switch_of(terminal));
  }

  /// True when `c` is traversable: its link is up and both endpoint
  /// switches are up.
  bool channel_alive(ChannelId c) const {
    if (link_up_.empty()) return true;
    const Channel& ch = channels_[c];
    return link_up_[c] != 0 && node_up(ch.src) && node_up(ch.dst);
  }

  /// True once any fault state was ever injected (even if later repaired).
  bool has_fault_state() const { return !link_up_.empty(); }

  std::size_t num_alive_switches() const;

  /// Directed channels currently not traversable.
  std::size_t num_dead_channels() const { return num_dead_channels_; }

  /// Degraded-connectivity detection: true when every alive switch can
  /// reach every other alive switch over alive channels. (Vacuously true
  /// with <= 1 alive switch.)
  bool alive_connected() const;

  /// Physical out-adjacency of a node, ignoring fault state — the stable
  /// view that slot naming (routing/dump.hpp) and validate() use.
  std::span<const ChannelId> out_channels_all(NodeId n) const {
    if (!has_fault_state()) return out_channels(n);
    return {out_full_.data() + out_full_offset_[n],
            out_full_offset_[n + 1] - out_full_offset_[n]};
  }

  // -- lifecycle ------------------------------------------------------------

  /// Builds the CSR adjacency with two counting passes over the channel
  /// list. Must be called once after construction and before any routing;
  /// add_* calls afterwards throw. Throws std::overflow_error when node or
  /// channel counts would overflow the 32-bit CSR offsets, and publishes
  /// memory_footprint() to the "topology/bytes" gauge.
  void freeze();

  bool frozen() const { return frozen_; }

  /// Throws std::runtime_error when structural invariants are violated
  /// (terminals with != 1 link, dangling reverse channels, ...).
  void validate() const;

  /// True when every node can reach every other node.
  bool connected() const;

  /// Degree of a switch counting only inter-switch links (out-direction).
  std::uint32_t switch_degree(NodeId sw) const {
    return checked_u32(out_switch_channels(sw).size(), "switch_degree");
  }

  /// Bytes held by this Network's arrays (elements, not allocator
  /// capacity) plus a fixed per-entry estimate for the name side table —
  /// a deterministic figure, identical across runs and platforms for the
  /// same construction sequence. Feeds the "topology/bytes" gauge.
  std::uint64_t memory_footprint() const;

 private:
  friend class NetworkBuilder;

  void require_mutable() const;

  /// True for alive switches and for terminals (terminals fail only through
  /// their channels' switch endpoints).
  bool node_up(NodeId n) const {
    return nodes_[n].type != NodeType::kSwitch ||
           switch_up_[nodes_[n].type_index] != 0;
  }

  /// Copies the pristine adjacency into the *_full_ arrays and allocates
  /// the alive flags. Called on the first fault injection.
  void ensure_fault_state();

  /// Recomputes the filtered (alive) CSR adjacency from the physical one.
  void rebuild_alive_adjacency();

  std::vector<Node> nodes_;
  std::vector<Channel> channels_;
  std::vector<NodeId> switches_;
  std::vector<NodeId> terminals_;
  std::vector<NodeId> terminal_switch_;           // per terminal index
  std::vector<ChannelId> injection_;              // per terminal index
  std::vector<std::uint32_t> terminals_on_switch_;  // per switch index

  // Custom names only; nodes without an entry synthesize their default.
  // Ordered map: memory_footprint() and the binary writer (io.cpp) iterate
  // it, and traversal order must not depend on a hash function
  // (dfs-deterministic-iteration). Lookups are cold — node_name() is a
  // reporting path — so the O(log n) access is irrelevant.
  std::map<NodeId, std::string> names_;

  // Adjacency in CSR form, built by freeze().
  std::vector<std::uint32_t> out_offset_;
  std::vector<ChannelId> out_;
  std::vector<std::uint32_t> sw_out_offset_;  // per switch index
  std::vector<ChannelId> sw_out_;
  bool frozen_ = false;

  // Fault state (empty until the first set_link_up/set_switch_up call).
  // The *_full_ arrays keep the physical adjacency; out_/sw_out_ above are
  // rebuilt to hold only alive channels after every mutation.
  std::vector<std::uint8_t> link_up_;    // per channel (both directions set)
  std::vector<std::uint8_t> switch_up_;  // per switch index
  std::vector<std::uint32_t> out_full_offset_;
  std::vector<ChannelId> out_full_;
  std::vector<std::uint32_t> sw_out_full_offset_;  // per switch index
  std::vector<ChannelId> sw_out_full_;
  std::size_t num_dead_channels_ = 0;
};

}  // namespace dfsssp
