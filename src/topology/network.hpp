// Directed-multigraph model of an interconnection network.
//
// Mirrors the paper's model I = G(N, C): nodes are switches and terminals
// (InfiniBand: HCAs), channels are directed; every physical link is a pair of
// opposite directed channels. Parallel links between the same pair of
// switches are allowed (Deimos connects its big switches with 30 parallel
// links), hence "multigraph".
//
// Terminals have exactly one link, to their attached switch. Forwarding and
// all dependency analysis happen on the inter-switch channels; terminal
// injection/ejection channels exist so the flit-level simulator can model
// sources and sinks, but they can never lie on a dependency cycle (an
// injection channel has no predecessor in any path, an ejection channel no
// successor).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace dfsssp {

enum class NodeType : std::uint8_t { kSwitch, kTerminal };

struct Node {
  NodeType type;
  /// Dense index among nodes of the same type (switch index or terminal
  /// index); used to address per-switch / per-terminal flat arrays.
  std::uint32_t type_index;
  std::string name;
};

struct Channel {
  NodeId src;
  NodeId dst;
  /// The opposite direction of the same physical link.
  ChannelId reverse;
};

class Network {
 public:
  // -- construction ---------------------------------------------------------

  NodeId add_switch(std::string name = {});

  /// Adds a terminal and its bidirectional link to `sw`.
  NodeId add_terminal(NodeId sw, std::string name = {});

  /// Adds a bidirectional link (two directed channels) between two switches.
  /// Returns the channel a->b; the reverse id is its `.reverse`.
  ChannelId add_link(NodeId a, NodeId b);

  // -- node accessors -------------------------------------------------------

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_switches() const { return switches_.size(); }
  std::size_t num_terminals() const { return terminals_.size(); }
  std::size_t num_channels() const { return channels_.size(); }

  const Node& node(NodeId n) const { return nodes_[n]; }
  bool is_switch(NodeId n) const { return nodes_[n].type == NodeType::kSwitch; }
  bool is_terminal(NodeId n) const {
    return nodes_[n].type == NodeType::kTerminal;
  }

  /// All switch NodeIds, in creation order.
  std::span<const NodeId> switches() const { return switches_; }
  /// All terminal NodeIds, in creation order.
  std::span<const NodeId> terminals() const { return terminals_; }

  NodeId switch_by_index(std::uint32_t i) const { return switches_[i]; }
  NodeId terminal_by_index(std::uint32_t i) const { return terminals_[i]; }

  /// Switch a terminal is attached to.
  NodeId switch_of(NodeId terminal) const {
    return terminal_switch_[nodes_[terminal].type_index];
  }

  /// Number of terminals attached to a switch.
  std::uint32_t terminals_on(NodeId sw) const {
    return terminals_on_switch_[nodes_[sw].type_index];
  }

  // -- channel accessors ----------------------------------------------------

  const Channel& channel(ChannelId c) const { return channels_[c]; }

  /// Outgoing channels of a node (for a terminal: the injection channel).
  std::span<const ChannelId> out_channels(NodeId n) const {
    return {out_.data() + out_offset_[n],
            out_offset_[n + 1] - out_offset_[n]};
  }

  /// Outgoing channels that lead to switches (skips ejection channels).
  /// Valid only after freeze().
  std::span<const ChannelId> out_switch_channels(NodeId sw) const {
    return {sw_out_.data() + sw_out_offset_[nodes_[sw].type_index],
            sw_out_offset_[nodes_[sw].type_index + 1] -
                sw_out_offset_[nodes_[sw].type_index]};
  }

  /// The channel from `terminal` into its switch (injection channel).
  ChannelId injection_channel(NodeId terminal) const {
    return injection_[nodes_[terminal].type_index];
  }
  /// The channel from the switch to `terminal` (ejection channel).
  ChannelId ejection_channel(NodeId terminal) const {
    return channels_[injection_channel(terminal)].reverse;
  }

  /// True for channels between two switches (the CDG's node set).
  bool is_switch_channel(ChannelId c) const {
    return is_switch(channels_[c].src) && is_switch(channels_[c].dst);
  }

  // -- lifecycle ------------------------------------------------------------

  /// Builds the CSR adjacency. Must be called once after construction and
  /// before any routing; add_* calls afterwards throw.
  void freeze();

  bool frozen() const { return frozen_; }

  /// Throws std::runtime_error when structural invariants are violated
  /// (terminals with != 1 link, dangling reverse channels, ...).
  void validate() const;

  /// True when every node can reach every other node.
  bool connected() const;

  /// Degree of a switch counting only inter-switch links (out-direction).
  std::uint32_t switch_degree(NodeId sw) const {
    return static_cast<std::uint32_t>(out_switch_channels(sw).size());
  }

 private:
  void require_mutable() const;

  std::vector<Node> nodes_;
  std::vector<Channel> channels_;
  std::vector<NodeId> switches_;
  std::vector<NodeId> terminals_;
  std::vector<NodeId> terminal_switch_;           // per terminal index
  std::vector<ChannelId> injection_;              // per terminal index
  std::vector<std::uint32_t> terminals_on_switch_;  // per switch index

  // Adjacency in CSR form, built by freeze().
  std::vector<std::uint32_t> out_offset_;
  std::vector<ChannelId> out_;
  std::vector<std::uint32_t> sw_out_offset_;  // per switch index
  std::vector<ChannelId> sw_out_;
  bool frozen_ = false;

  // Pre-freeze edge staging: per node list of channels.
  std::vector<std::vector<ChannelId>> staging_out_;
};

}  // namespace dfsssp
