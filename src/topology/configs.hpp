// Named topology configurations shared by benches, dftopo and tests.
//
// The per-figure generator parameter tables used to be duplicated across
// bench_util.hpp and the bench roster; they live here once. A config is a
// registry key, a one-line summary, and a build function taking the
// ExecContext (chunked configs generate in parallel under it; sequential
// ones ignore it). The registry key is stable tooling vocabulary ("dftopo
// generate xgft-1024"); the built Topology keeps its generator-assigned
// name, which is what bench tables print.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "topology/topology.hpp"

namespace dfsssp {

struct TopoConfig {
  std::string name;
  std::string summary;
  std::function<Topology(const ExecContext&)> build;
};

/// All registered configs, in registry order (Table I rows, real systems,
/// modern zoo, tori, chunked mid-size, warehouse).
const std::vector<TopoConfig>& topology_configs();

/// Nullptr when `name` is not registered.
const TopoConfig* find_topology_config(const std::string& name);

/// Builds a registered config; throws std::invalid_argument listing the
/// known names when `name` is not registered.
Topology build_topology_config(const std::string& name,
                               const ExecContext& exec = {});

/// Table I of the paper, as data: per nominal endpoint count the XGFT
/// parameters, the Kautz parameters, and the k-ary n-tree parameters.
struct TableOneRow {
  std::uint32_t nominal_endpoints;
  std::vector<std::uint32_t> xgft_ms, xgft_ws;
  std::uint32_t kautz_b, kautz_n;
  std::uint32_t tree_k, tree_n;
};

std::vector<TableOneRow> table_one(bool full);

/// Warehouse-scale chunked dragonfly(a, h, g) with `dests` terminals spread
/// evenly over the switches instead of p per switch — destination sharding:
/// routing cost scales with `dests` while the fabric keeps its full size.
Topology make_warehouse_dragonfly(std::uint32_t a, std::uint32_t h,
                                  std::uint32_t g, std::uint32_t dests,
                                  const ExecContext& exec = {},
                                  bool record_names = false);

}  // namespace dfsssp
