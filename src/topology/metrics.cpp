#include "topology/metrics.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>

namespace dfsssp {

NetworkMetrics compute_metrics(const Network& net) {
  NetworkMetrics m;
  const std::size_t num_sw = net.num_switches();
  if (num_sw == 0) return m;

  m.min_degree = std::numeric_limits<std::uint32_t>::max();
  m.min_terminals = std::numeric_limits<std::uint32_t>::max();
  std::uint64_t degree_sum = 0;
  for (NodeId sw : net.switches()) {
    const std::uint32_t deg = net.switch_degree(sw);
    m.min_degree = std::min(m.min_degree, deg);
    m.max_degree = std::max(m.max_degree, deg);
    degree_sum += deg;
    const std::uint32_t t = net.terminals_on(sw);
    m.min_terminals = std::min(m.min_terminals, t);
    m.max_terminals = std::max(m.max_terminals, t);
  }
  m.avg_degree = static_cast<double>(degree_sum) / static_cast<double>(num_sw);
  m.num_links = degree_sum / 2;

  // BFS from every switch.
  std::uint64_t dist_sum = 0, pairs = 0;
  std::vector<std::uint32_t> dist(num_sw);
  for (NodeId src : net.switches()) {
    std::fill(dist.begin(), dist.end(),
              std::numeric_limits<std::uint32_t>::max());
    std::queue<NodeId> q;
    dist[net.node(src).type_index] = 0;
    q.push(src);
    while (!q.empty()) {
      NodeId u = q.front();
      q.pop();
      const std::uint32_t du = dist[net.node(u).type_index];
      for (ChannelId c : net.out_switch_channels(u)) {
        std::uint32_t& dv = dist[net.node(net.channel(c).dst).type_index];
        if (dv == std::numeric_limits<std::uint32_t>::max()) {
          dv = du + 1;
          q.push(net.channel(c).dst);
        }
      }
    }
    for (std::size_t i = 0; i < num_sw; ++i) {
      if (dist[i] == std::numeric_limits<std::uint32_t>::max()) continue;
      if (dist[i] > 0) {
        dist_sum += dist[i];
        ++pairs;
        m.diameter = std::max(m.diameter, dist[i]);
      }
    }
  }
  m.avg_path_length =
      pairs > 0 ? static_cast<double>(dist_sum) / static_cast<double>(pairs)
                : 0.0;
  return m;
}

namespace {

/// Links crossing the partition described by `side` (per switch index).
std::uint64_t cut_size(const Network& net, const std::vector<std::uint8_t>& side) {
  std::uint64_t cut = 0;
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    const Channel& ch = net.channel(c);
    if (c < ch.reverse && net.is_switch_channel(c) &&
        side[net.node(ch.src).type_index] != side[net.node(ch.dst).type_index]) {
      ++cut;
    }
  }
  return cut;
}

}  // namespace

std::uint64_t estimate_bisection_width(const Network& net, Rng& rng,
                                       std::uint32_t trials) {
  const std::size_t num_sw = net.num_switches();
  if (num_sw < 2) return 0;

  // Terminal-weighted balance: halves should split the endpoints, which is
  // what the effective-bisection pattern cuts across.
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::uint32_t> order(num_sw);
  std::iota(order.begin(), order.end(), 0U);

  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    rng.shuffle(order);
    std::vector<std::uint8_t> side(num_sw, 0);
    std::uint64_t half = 0, total = 0;
    for (NodeId sw : net.switches()) total += net.terminals_on(sw);
    for (std::uint32_t i : order) {
      if (half * 2 < total) {
        side[i] = 1;
        half += net.terminals_on(net.switch_by_index(i));
      }
    }
    // Greedy improvement: single swaps between the halves while the cut
    // shrinks (terminal balance maintained by swapping similar loads).
    // Quadratic, so only affordable on moderate fabrics; larger ones keep
    // the best random cut.
    bool improved = num_sw <= 300;
    std::uint64_t current = cut_size(net, side);
    while (improved) {
      improved = false;
      for (std::uint32_t a = 0; a < num_sw && !improved; ++a) {
        for (std::uint32_t b = a + 1; b < num_sw; ++b) {
          if (side[a] == side[b]) continue;
          if (net.terminals_on(net.switch_by_index(a)) !=
              net.terminals_on(net.switch_by_index(b))) {
            continue;
          }
          std::swap(side[a], side[b]);
          const std::uint64_t cut = cut_size(net, side);
          if (cut < current) {
            current = cut;
            improved = true;
            break;
          }
          std::swap(side[a], side[b]);
        }
      }
    }
    best = std::min(best, current);
  }
  return best;
}

std::uint64_t structure_hash(const Network& net) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  auto mix = [&h](std::uint64_t x) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (x >> (8 * byte)) & 0xFF;
      h *= 0x100000001B3ULL;  // FNV prime
    }
  };
  mix(net.num_nodes());
  mix(net.num_switches());
  mix(net.num_terminals());
  mix(net.num_channels());
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    const Node& nd = net.node(n);
    mix((static_cast<std::uint64_t>(nd.type_index) << 8) |
        static_cast<std::uint64_t>(nd.type));
  }
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    const Channel& ch = net.channel(c);
    mix(ch.src);
    mix(ch.dst);
    mix(ch.reverse);
  }
  for (NodeId t : net.terminals()) mix(net.switch_of(t));
  return h;
}

double bisection_bandwidth_ceiling(const Network& net, Rng& rng) {
  const double terminals = static_cast<double>(net.num_terminals());
  if (terminals < 2) return 1.0;
  const double width =
      static_cast<double>(estimate_bisection_width(net, rng));
  // A random bisection matching routes ~T/2 flows, of which ~half cross any
  // balanced cut; `width` links carry them.
  const double crossing = terminals / 4.0;
  return std::min(1.0, width / crossing);
}

}  // namespace dfsssp
