// Streaming bulk constructor for Network.
//
// The incremental Network::add_* API allocates and validates per call, which
// is fine for netfiles and tests but not for warehouse-scale generation. The
// builder instead accepts flat streams — switch count up front, then link
// pairs and terminal attachments in bulk — and assembles the final Network
// (including its CSR adjacency) with counting passes only: no per-node
// staging, no incremental reallocation beyond the flat stream vectors.
//
// Stream semantics: all links precede all terminals, mirroring the channel
// numbering of the sequential generators — link i becomes channels (2i,
// 2i+1) = (a->b, b->a) and terminal j becomes channels (2L+2j, 2L+2j+1) =
// (injection, ejection). A builder-built Network is therefore bitwise
// identical (nodes, channels, CSR) to an incremental construction that adds
// every switch, then every link, then every terminal in the same order.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "topology/network.hpp"

namespace dfsssp {

/// One bidirectional inter-switch link, by switch id.
struct SwitchLink {
  std::uint32_t a;
  std::uint32_t b;
};

class NetworkBuilder {
 public:
  /// Declares the switch count up front; switch ids are [0, num_switches).
  /// Throws std::overflow_error when the count cannot fit 32-bit NodeIds.
  explicit NetworkBuilder(std::uint64_t num_switches);

  void reserve_links(std::uint64_t n) { links_.reserve(n); }
  void reserve_terminals(std::uint64_t n) { terminal_switch_.reserve(n); }

  /// Appends one link; endpoints must be distinct switch ids. Like
  /// Network::add_link, parallel links are allowed.
  void add_link(std::uint32_t a, std::uint32_t b);

  /// Appends a chunk of links (the per-chunk output of a ChunkedGenerator).
  void add_links(std::span<const SwitchLink> links);

  /// Appends one terminal attached to `sw`; terminal indices are assigned
  /// in stream order.
  void add_terminal(std::uint32_t sw);

  void add_terminals(std::span<const std::uint32_t> switch_of);

  /// Records a custom switch name (applied to the side table at build()).
  void set_switch_name(std::uint32_t sw, std::string name);

  std::uint64_t num_switches() const { return num_switches_; }
  std::uint64_t num_links() const { return links_.size(); }
  std::uint64_t num_terminals() const { return terminal_switch_.size(); }

  /// Assembles the frozen Network and resets the builder. Throws
  /// std::overflow_error when node or channel counts overflow the 32-bit
  /// ids/CSR offsets, and runs Network::validate() unless `validate` is
  /// false.
  Network build(bool validate = true);

 private:
  std::uint64_t num_switches_ = 0;
  std::vector<SwitchLink> links_;
  std::vector<std::uint32_t> terminal_switch_;
  std::vector<std::pair<std::uint32_t, std::string>> names_;
};

}  // namespace dfsssp
