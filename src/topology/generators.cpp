#include "topology/generators.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <stdexcept>

#include "common/narrow.hpp"
#include "obs/trace.hpp"
#include "topology/chunked.hpp"

namespace dfsssp {

namespace {

/// Freeze + validate + name; every generator funnels through here.
Topology finish(std::string name, Network net, TopologyMeta meta) {
  net.freeze();
  net.validate();
  Topology topo;
  topo.name = std::move(name);
  topo.net = std::move(net);
  topo.meta = std::move(meta);
  return topo;
}

/// Attaches `total` terminals round-robin over `sws`.
void attach_round_robin(Network& net, std::span<const NodeId> sws,
                        std::uint32_t total) {
  for (std::uint32_t t = 0; t < total; ++t) {
    net.add_terminal(sws[t % sws.size()]);
  }
}

/// A big modular switch (e.g. a 288-port director) modeled as its internal
/// two-level Clos of 24-port chips. External ports live on the leaf chips;
/// next_port() hands them out round-robin.
struct BigSwitch {
  std::vector<NodeId> leaf_chips;
  std::size_t cursor = 0;

  NodeId next_port() {
    NodeId chip = leaf_chips[cursor];
    cursor = (cursor + 1) % leaf_chips.size();
    return chip;
  }
};

/// Builds a director-class switch with `num_chips` 24-port leaf chips
/// (12 external ports each => 12 * num_chips external ports total) and
/// `num_spines` spine chips, one internal link per leaf-spine pair.
BigSwitch make_big_switch(Network& net, std::uint32_t num_chips,
                          std::uint32_t num_spines, const std::string& name) {
  BigSwitch big;
  big.leaf_chips.reserve(num_chips);
  std::vector<NodeId> spines;
  spines.reserve(num_spines);
  for (std::uint32_t i = 0; i < num_chips; ++i) {
    big.leaf_chips.push_back(net.add_switch(name + ".leaf" + std::to_string(i)));
  }
  for (std::uint32_t i = 0; i < num_spines; ++i) {
    spines.push_back(net.add_switch(name + ".spine" + std::to_string(i)));
  }
  for (NodeId leaf : big.leaf_chips) {
    for (NodeId spine : spines) net.add_link(leaf, spine);
  }
  return big;
}

}  // namespace

Topology make_single_switch(std::uint32_t num_terminals) {
  Network net;
  NodeId sw = net.add_switch();
  for (std::uint32_t i = 0; i < num_terminals; ++i) net.add_terminal(sw);
  TopologyMeta meta;
  meta.family = "single-switch";
  meta.sw_level = {0};
  return finish("single-switch-" + std::to_string(num_terminals),
                std::move(net), std::move(meta));
}

Topology make_path(std::uint32_t num_switches,
                   std::uint32_t terminals_per_switch) {
  if (num_switches == 0) throw std::invalid_argument("path: no switches");
  Network net;
  std::vector<NodeId> sws;
  for (std::uint32_t i = 0; i < num_switches; ++i) {
    sws.push_back(net.add_switch());
  }
  for (std::uint32_t i = 0; i + 1 < num_switches; ++i) {
    net.add_link(sws[i], sws[i + 1]);
  }
  for (NodeId sw : sws) {
    for (std::uint32_t t = 0; t < terminals_per_switch; ++t) {
      net.add_terminal(sw);
    }
  }
  TopologyMeta meta;
  meta.family = "path";
  return finish("path-" + std::to_string(num_switches), std::move(net),
                std::move(meta));
}

Topology make_ring(std::uint32_t num_switches,
                   std::uint32_t terminals_per_switch) {
  if (num_switches < 3) throw std::invalid_argument("ring: need >= 3 switches");
  Network net;
  std::vector<NodeId> sws;
  for (std::uint32_t i = 0; i < num_switches; ++i) {
    sws.push_back(net.add_switch());
  }
  for (std::uint32_t i = 0; i < num_switches; ++i) {
    net.add_link(sws[i], sws[(i + 1) % num_switches]);
  }
  for (NodeId sw : sws) {
    for (std::uint32_t t = 0; t < terminals_per_switch; ++t) {
      net.add_terminal(sw);
    }
  }
  TopologyMeta meta;
  meta.family = "ring";
  meta.dims = {num_switches};
  meta.wraparound = true;
  meta.sw_coord.resize(num_switches);
  std::iota(meta.sw_coord.begin(), meta.sw_coord.end(), 0U);
  return finish("ring-" + std::to_string(num_switches), std::move(net),
                std::move(meta));
}

Topology make_torus(std::span<const std::uint32_t> dims,
                    std::uint32_t terminals_per_switch, bool wraparound) {
  if (dims.empty()) throw std::invalid_argument("torus: no dimensions");
  std::uint64_t total = 1;
  for (std::uint32_t d : dims) {
    if (d < 2) throw std::invalid_argument("torus: dimension radix < 2");
    total *= d;
  }
  Network net;
  std::vector<NodeId> sws(total);
  for (std::uint64_t i = 0; i < total; ++i) sws[i] = net.add_switch();

  // Mixed-radix index <-> coordinates, dimension 0 fastest.
  auto coord_of = [&](std::uint64_t idx, std::size_t dim) {
    for (std::size_t d = 0; d < dim; ++d) idx /= dims[d];
    return checked_u32(idx % dims[dim], "torus coord");
  };
  auto step = [&](std::uint64_t idx, std::size_t dim, std::uint32_t to) {
    std::uint64_t stride = 1;
    for (std::size_t d = 0; d < dim; ++d) stride *= dims[d];
    std::uint32_t from = coord_of(idx, dim);
    return idx + (static_cast<std::int64_t>(to) - from) * stride;
  };

  for (std::uint64_t i = 0; i < total; ++i) {
    for (std::size_t d = 0; d < dims.size(); ++d) {
      std::uint32_t c = coord_of(i, d);
      if (c + 1 < dims[d]) net.add_link(sws[i], sws[step(i, d, c + 1)]);
      // Wrap link once per ring, skipped for radix 2 where it would
      // duplicate the 0-1 link.
      if (wraparound && c == dims[d] - 1 && dims[d] > 2) {
        net.add_link(sws[i], sws[step(i, d, 0)]);
      }
    }
  }
  for (NodeId sw : sws) {
    for (std::uint32_t t = 0; t < terminals_per_switch; ++t) {
      net.add_terminal(sw);
    }
  }
  TopologyMeta meta;
  meta.family = wraparound ? "torus" : "mesh";
  meta.dims.assign(dims.begin(), dims.end());
  meta.wraparound = wraparound;
  meta.sw_coord.resize(total * dims.size());
  for (std::uint64_t i = 0; i < total; ++i) {
    for (std::size_t d = 0; d < dims.size(); ++d) {
      meta.sw_coord[i * dims.size() + d] = coord_of(i, d);
    }
  }
  std::string name = meta.family;
  for (std::uint32_t d : dims) name += "-" + std::to_string(d);
  return finish(std::move(name), std::move(net), std::move(meta));
}

Topology make_hypercube(std::uint32_t dimension,
                        std::uint32_t terminals_per_switch) {
  std::vector<std::uint32_t> dims(dimension, 2U);
  Topology t = make_torus(dims, terminals_per_switch, /*wraparound=*/false);
  t.meta.family = "hypercube";
  t.name = "hypercube-" + std::to_string(dimension);
  return t;
}

Topology make_kary_ntree(std::uint32_t k, std::uint32_t n) {
  if (k < 1 || n < 1) throw std::invalid_argument("kary-ntree: k,n >= 1");
  std::uint64_t per_level = 1;
  for (std::uint32_t i = 0; i + 1 < n; ++i) per_level *= k;

  Network net;
  TopologyMeta meta;
  // sws[l][w]: switch at level l with digit index w in [0, k^(n-1)).
  std::vector<std::vector<NodeId>> sws(n, std::vector<NodeId>(per_level));
  for (std::uint32_t l = 0; l < n; ++l) {
    for (std::uint64_t w = 0; w < per_level; ++w) {
      sws[l][w] = net.add_switch("L" + std::to_string(l) + "." +
                                 std::to_string(w));
      meta.sw_level.push_back(static_cast<std::int32_t>(l));
    }
  }
  // Switch <w, l> connects to <w', l+1> iff the digit strings agree on every
  // position except l (digit position 0 = least significant).
  std::uint64_t stride = 1;
  for (std::uint32_t l = 0; l + 1 < n; ++l) {
    for (std::uint64_t w = 0; w < per_level; ++w) {
      std::uint32_t digit = checked_u32((w / stride) % k, "xgft digit");
      std::uint64_t base = w - static_cast<std::uint64_t>(digit) * stride;
      for (std::uint32_t v = 0; v < k; ++v) {
        net.add_link(sws[l][w], sws[l + 1][base + static_cast<std::uint64_t>(v) * stride]);
      }
    }
    stride *= k;
  }
  for (std::uint64_t w = 0; w < per_level; ++w) {
    for (std::uint32_t t = 0; t < k; ++t) net.add_terminal(sws[0][w]);
  }
  meta.family = "kary-ntree";
  return finish(std::to_string(k) + "-ary-" + std::to_string(n) + "-tree",
                std::move(net), std::move(meta));
}

namespace {

/// Recursive XGFT builder; returns the top-level switches of the sub-tree
/// and appends all leaf switches to `leaves`.
std::vector<NodeId> build_xgft(Network& net, TopologyMeta& meta,
                               std::uint32_t h,
                               std::span<const std::uint32_t> ms,
                               std::span<const std::uint32_t> ws,
                               std::vector<NodeId>& leaves) {
  if (h == 0) {
    NodeId leaf = net.add_switch();
    meta.sw_level.push_back(0);
    leaves.push_back(leaf);
    return {leaf};
  }
  const std::uint32_t m = ms[h - 1];
  const std::uint32_t w = ws[h - 1];
  std::vector<std::vector<NodeId>> subtree_tops;
  subtree_tops.reserve(m);
  for (std::uint32_t s = 0; s < m; ++s) {
    subtree_tops.push_back(build_xgft(net, meta, h - 1, ms, ws, leaves));
  }
  const std::size_t tops_per_subtree = subtree_tops.front().size();
  std::vector<NodeId> roots;
  roots.reserve(tops_per_subtree * w);
  for (std::size_t r = 0; r < tops_per_subtree; ++r) {
    for (std::uint32_t j = 0; j < w; ++j) {
      NodeId root = net.add_switch();
      meta.sw_level.push_back(static_cast<std::int32_t>(h));
      for (std::uint32_t s = 0; s < m; ++s) {
        net.add_link(root, subtree_tops[s][r]);
      }
      roots.push_back(root);
    }
  }
  return roots;
}

}  // namespace

Topology make_xgft(std::uint32_t h, std::span<const std::uint32_t> ms,
                   std::span<const std::uint32_t> ws,
                   std::uint32_t terminals_per_leaf) {
  if (ms.size() != h || ws.size() != h) {
    throw std::invalid_argument("xgft: need h entries in ms and ws");
  }
  if (h == 0) throw std::invalid_argument("xgft: h >= 1");
  if (terminals_per_leaf == 0) terminals_per_leaf = ms[0];

  Network net;
  TopologyMeta meta;
  std::vector<NodeId> leaves;
  build_xgft(net, meta, h, ms, ws, leaves);
  for (NodeId leaf : leaves) {
    for (std::uint32_t t = 0; t < terminals_per_leaf; ++t) {
      net.add_terminal(leaf);
    }
  }
  meta.family = "xgft";
  std::string name = "xgft-" + std::to_string(h);
  for (std::uint32_t m : ms) name += "-m" + std::to_string(m);
  for (std::uint32_t w : ws) name += "-w" + std::to_string(w);
  return finish(std::move(name), std::move(net), std::move(meta));
}

Topology make_kautz(std::uint32_t b, std::uint32_t n,
                    std::uint32_t num_terminals) {
  if (b < 2 || n < 1) throw std::invalid_argument("kautz: b >= 2, n >= 1");
  // Vertices: strings of length n over {0..b} with distinct adjacent letters.
  std::vector<std::vector<std::uint32_t>> strings;
  {
    std::vector<std::vector<std::uint32_t>> frontier;
    for (std::uint32_t c = 0; c <= b; ++c) frontier.push_back({c});
    for (std::uint32_t len = 1; len < n; ++len) {
      std::vector<std::vector<std::uint32_t>> next;
      for (const auto& s : frontier) {
        for (std::uint32_t c = 0; c <= b; ++c) {
          if (c == s.back()) continue;
          auto t = s;
          t.push_back(c);
          next.push_back(std::move(t));
        }
      }
      frontier = std::move(next);
    }
    strings = std::move(frontier);
  }
  std::map<std::vector<std::uint32_t>, std::uint32_t> index;
  for (std::uint32_t i = 0; i < strings.size(); ++i) index[strings[i]] = i;

  Network net;
  std::vector<NodeId> sws;
  sws.reserve(strings.size());
  for (std::uint32_t i = 0; i < strings.size(); ++i) {
    sws.push_back(net.add_switch());
  }
  // One physical link per digraph arc; arcs u->v and v->u collapse to one.
  std::set<std::pair<std::uint32_t, std::uint32_t>> linked;
  for (std::uint32_t u = 0; u < strings.size(); ++u) {
    for (std::uint32_t c = 0; c <= b; ++c) {
      if (c == strings[u].back()) continue;
      std::vector<std::uint32_t> shifted(strings[u].begin() + (n > 1 ? 1 : 0),
                                         strings[u].end());
      if (n == 1) shifted.clear();
      shifted.push_back(c);
      std::uint32_t v = index.at(shifted);
      if (v == u) continue;  // possible only for degenerate n == 1
      auto key = std::minmax(u, v);
      if (linked.insert({key.first, key.second}).second) {
        net.add_link(sws[u], sws[v]);
      }
    }
  }
  attach_round_robin(net, sws, num_terminals);
  TopologyMeta meta;
  meta.family = "kautz";
  return finish("kautz-" + std::to_string(b) + "-" + std::to_string(n),
                std::move(net), std::move(meta));
}

Topology make_random(std::uint32_t num_switches,
                     std::uint32_t terminals_per_switch,
                     std::uint32_t num_links,
                     std::uint32_t max_inter_switch_ports, Rng& rng) {
  TRACE_SPAN("topology/generate");
  if (num_switches < 2) throw std::invalid_argument("random: >= 2 switches");
  if (num_links + 1 < num_switches) {
    throw std::invalid_argument("random: too few links for connectivity");
  }
  if (static_cast<std::uint64_t>(max_inter_switch_ports) * num_switches <
      2ULL * num_links) {
    throw std::invalid_argument("random: not enough ports for links");
  }

  Network net;
  std::vector<NodeId> sws;
  for (std::uint32_t i = 0; i < num_switches; ++i) {
    sws.push_back(net.add_switch());
  }
  std::vector<std::uint32_t> degree(num_switches, 0);
  std::set<std::pair<std::uint32_t, std::uint32_t>> used;

  auto link = [&](std::uint32_t a, std::uint32_t b) {
    net.add_link(sws[a], sws[b]);
    ++degree[a];
    ++degree[b];
    used.insert(std::minmax(a, b));
  };

  // Random spanning tree over a random order: attach each new switch to a
  // uniformly chosen earlier switch that still has a free port.
  std::vector<std::uint32_t> order(num_switches);
  std::iota(order.begin(), order.end(), 0U);
  rng.shuffle(order);
  for (std::uint32_t i = 1; i < num_switches; ++i) {
    std::vector<std::uint32_t> candidates;
    for (std::uint32_t j = 0; j < i; ++j) {
      if (degree[order[j]] < max_inter_switch_ports) {
        candidates.push_back(order[j]);
      }
    }
    if (candidates.empty()) {
      throw std::runtime_error("random: port budget prevents spanning tree");
    }
    link(order[i], candidates[rng.next_below(candidates.size())]);
  }

  // Extra random links. Prefer simple edges; fall back to parallel links
  // when the remaining port budget admits nothing else.
  std::uint32_t remaining = num_links - (num_switches - 1);
  std::uint32_t stuck = 0;
  while (remaining > 0) {
    std::uint32_t a = static_cast<std::uint32_t>(rng.next_below(num_switches));
    std::uint32_t b = static_cast<std::uint32_t>(rng.next_below(num_switches));
    bool ok = a != b && degree[a] < max_inter_switch_ports &&
              degree[b] < max_inter_switch_ports;
    if (ok && used.count(std::minmax(a, b)) > 0 && stuck < 200) {
      ok = false;  // avoid parallel links until we look stuck
    }
    if (!ok) {
      if (++stuck > 100000) {
        throw std::runtime_error("random: cannot place requested links");
      }
      continue;
    }
    stuck = 0;
    link(a, b);
    --remaining;
  }

  for (NodeId sw : sws) {
    for (std::uint32_t t = 0; t < terminals_per_switch; ++t) {
      net.add_terminal(sw);
    }
  }
  TopologyMeta meta;
  meta.family = "random";
  return finish("random-" + std::to_string(num_switches) + "sw-" +
                    std::to_string(num_links) + "l",
                std::move(net), std::move(meta));
}

Topology make_random_regular(std::uint32_t num_switches, std::uint32_t degree,
                             std::uint32_t terminals_per_switch,
                             std::uint64_t seed) {
  if (num_switches < 3) {
    throw std::invalid_argument("random-regular: >= 3 switches");
  }
  if (degree < 2 || degree % 2 != 0) {
    throw std::invalid_argument("random-regular: degree must be even >= 2");
  }
  Network net;
  std::vector<NodeId> sws;
  sws.reserve(num_switches);
  for (std::uint32_t i = 0; i < num_switches; ++i) {
    sws.push_back(net.add_switch());
  }
  for (std::uint32_t i = 0; i < num_switches; ++i) {
    net.add_link(sws[i], sws[(i + 1) % num_switches]);
  }
  for (std::uint32_t round = 1; round < degree / 2; ++round) {
    const IndexPermutation perm(num_switches,
                                random_regular_round_seed(seed, round));
    for (std::uint32_t i = 0; i < num_switches; ++i) {
      const std::uint64_t j = perm(i);
      if (j != i) net.add_link(sws[i], sws[checked_u32(j, "rrg peer")]);
    }
  }
  for (NodeId sw : sws) {
    for (std::uint32_t t = 0; t < terminals_per_switch; ++t) {
      net.add_terminal(sw);
    }
  }
  TopologyMeta meta;
  meta.family = "random-regular";
  return finish("random-regular-" + std::to_string(num_switches) + "x" +
                    std::to_string(degree) + "-s" + std::to_string(seed),
                std::move(net), std::move(meta));
}

Topology make_clos2(std::uint32_t num_leaves, std::uint32_t num_spines,
                    std::uint32_t links_per_pair,
                    std::uint32_t terminals_per_leaf) {
  Network net;
  TopologyMeta meta;
  std::vector<NodeId> leaves, spines;
  for (std::uint32_t i = 0; i < num_leaves; ++i) {
    leaves.push_back(net.add_switch("leaf" + std::to_string(i)));
    meta.sw_level.push_back(0);
  }
  for (std::uint32_t i = 0; i < num_spines; ++i) {
    spines.push_back(net.add_switch("spine" + std::to_string(i)));
    meta.sw_level.push_back(1);
  }
  for (NodeId leaf : leaves) {
    for (NodeId spine : spines) {
      for (std::uint32_t l = 0; l < links_per_pair; ++l) {
        net.add_link(leaf, spine);
      }
    }
  }
  for (NodeId leaf : leaves) {
    for (std::uint32_t t = 0; t < terminals_per_leaf; ++t) {
      net.add_terminal(leaf);
    }
  }
  meta.family = "clos";
  return finish("clos2-" + std::to_string(num_leaves) + "x" +
                    std::to_string(num_spines),
                std::move(net), std::move(meta));
}

Topology make_dragonfly(std::uint32_t a, std::uint32_t p, std::uint32_t h,
                        std::uint32_t g) {
  if (a * h != g - 1) {
    throw std::invalid_argument(
        "dragonfly: balanced layout requires a*h == g-1");
  }
  Network net;
  std::vector<std::vector<NodeId>> sws(g, std::vector<NodeId>(a));
  for (std::uint32_t grp = 0; grp < g; ++grp) {
    for (std::uint32_t i = 0; i < a; ++i) {
      sws[grp][i] =
          net.add_switch("g" + std::to_string(grp) + ".s" + std::to_string(i));
    }
    for (std::uint32_t i = 0; i < a; ++i) {
      for (std::uint32_t j = i + 1; j < a; ++j) {
        net.add_link(sws[grp][i], sws[grp][j]);
      }
    }
  }
  // Global links: switch i, global port j of group x handles group offset
  // o = i*h + j + 1 and connects to group (x + o) mod g, where the peer is
  // the switch handling the complementary offset g - o. Added once (x < y
  // ordering resolved via o <= g/2 with tie handling).
  for (std::uint32_t x = 0; x < g; ++x) {
    for (std::uint32_t i = 0; i < a; ++i) {
      for (std::uint32_t j = 0; j < h; ++j) {
        std::uint32_t o = i * h + j + 1;
        std::uint32_t y = (x + o) % g;
        std::uint32_t back = g - o;
        std::uint32_t peer_slot = back - 1;
        std::uint32_t pi = peer_slot / h;
        // Add each global link once: from the side with the smaller offset,
        // or for the symmetric middle offset from the smaller group id.
        if (o < back || (o == back && x < y)) {
          net.add_link(sws[x][i], sws[y][pi]);
        }
      }
    }
  }
  for (std::uint32_t grp = 0; grp < g; ++grp) {
    for (std::uint32_t i = 0; i < a; ++i) {
      for (std::uint32_t t = 0; t < p; ++t) net.add_terminal(sws[grp][i]);
    }
  }
  TopologyMeta meta;
  meta.family = "dragonfly";
  return finish("dragonfly-a" + std::to_string(a) + "p" + std::to_string(p) +
                    "h" + std::to_string(h) + "g" + std::to_string(g),
                std::move(net), std::move(meta));
}

Topology make_hyperx(std::span<const std::uint32_t> dims,
                     std::uint32_t terminals_per_switch) {
  if (dims.empty()) throw std::invalid_argument("hyperx: no dimensions");
  std::uint64_t total = 1;
  for (std::uint32_t d : dims) {
    if (d < 2) throw std::invalid_argument("hyperx: dimension radix < 2");
    total *= d;
  }
  Network net;
  std::vector<NodeId> sws(total);
  for (std::uint64_t i = 0; i < total; ++i) sws[i] = net.add_switch();

  auto coord_of = [&](std::uint64_t idx, std::size_t dim) {
    for (std::size_t d = 0; d < dim; ++d) idx /= dims[d];
    return checked_u32(idx % dims[dim], "hyperx coord");
  };
  // Full connectivity along each axis line: link to every higher coordinate
  // in the same dimension (each unordered pair once).
  for (std::uint64_t i = 0; i < total; ++i) {
    std::uint64_t stride = 1;
    for (std::size_t d = 0; d < dims.size(); ++d) {
      const std::uint32_t c = coord_of(i, d);
      for (std::uint32_t other = c + 1; other < dims[d]; ++other) {
        net.add_link(sws[i], sws[i + static_cast<std::uint64_t>(other - c) * stride]);
      }
      stride *= dims[d];
    }
  }
  for (NodeId sw : sws) {
    for (std::uint32_t t = 0; t < terminals_per_switch; ++t) {
      net.add_terminal(sw);
    }
  }
  TopologyMeta meta;
  meta.family = "hyperx";
  meta.dims.assign(dims.begin(), dims.end());
  meta.sw_coord.resize(total * dims.size());
  for (std::uint64_t i = 0; i < total; ++i) {
    for (std::size_t d = 0; d < dims.size(); ++d) {
      meta.sw_coord[i * dims.size() + d] = coord_of(i, d);
    }
  }
  std::string name = "hyperx";
  for (std::uint32_t d : dims) name += "-" + std::to_string(d);
  return finish(std::move(name), std::move(net), std::move(meta));
}

Topology make_fully_connected(std::uint32_t num_switches,
                              std::uint32_t terminals_per_switch) {
  if (num_switches < 2) throw std::invalid_argument("complete: >= 2 switches");
  Network net;
  std::vector<NodeId> sws;
  for (std::uint32_t i = 0; i < num_switches; ++i) {
    sws.push_back(net.add_switch());
  }
  for (std::uint32_t i = 0; i < num_switches; ++i) {
    for (std::uint32_t j = i + 1; j < num_switches; ++j) {
      net.add_link(sws[i], sws[j]);
    }
  }
  for (NodeId sw : sws) {
    for (std::uint32_t t = 0; t < terminals_per_switch; ++t) {
      net.add_terminal(sw);
    }
  }
  TopologyMeta meta;
  meta.family = "complete";
  return finish("complete-" + std::to_string(num_switches), std::move(net),
                std::move(meta));
}

// ---- real-system stand-ins --------------------------------------------------

Topology make_odin() {
  // One 144-port switch, modeled as 12 leaf chips x 12 external ports with
  // 12 spine chips (single links) so the internal Clos is non-blocking and
  // down-paths are unique (the OpenSM fat-tree engine handles Odin).
  Network net;
  TopologyMeta meta;
  std::vector<NodeId> leaves, spines;
  for (std::uint32_t i = 0; i < 12; ++i) {
    leaves.push_back(net.add_switch("odin.leaf" + std::to_string(i)));
    meta.sw_level.push_back(0);
  }
  for (std::uint32_t i = 0; i < 12; ++i) {
    spines.push_back(net.add_switch("odin.spine" + std::to_string(i)));
    meta.sw_level.push_back(1);
  }
  for (NodeId leaf : leaves) {
    for (NodeId spine : spines) net.add_link(leaf, spine);
  }
  attach_round_robin(net, leaves, 128);
  meta.family = "real/odin";
  return finish("odin", std::move(net), std::move(meta));
}

Topology make_chic() {
  // 550 nodes on 24-port leaf switches (18 down + 6 up), core = one
  // 288-port director modeled as a chip-level Clos.
  Network net;
  TopologyMeta meta;
  BigSwitch core = make_big_switch(net, /*num_chips=*/24, /*num_spines=*/12,
                                   "chic.core");
  const std::uint32_t num_leaves = 31;
  std::vector<NodeId> leaves;
  for (std::uint32_t i = 0; i < num_leaves; ++i) {
    leaves.push_back(net.add_switch("chic.leaf" + std::to_string(i)));
  }
  for (NodeId leaf : leaves) {
    for (std::uint32_t u = 0; u < 6; ++u) net.add_link(leaf, core.next_port());
  }
  std::uint32_t remaining = 550;
  for (NodeId leaf : leaves) {
    std::uint32_t here = std::min<std::uint32_t>(18, remaining);
    for (std::uint32_t t = 0; t < here; ++t) net.add_terminal(leaf);
    remaining -= here;
  }
  meta.family = "real/chic";
  return finish("chic", std::move(net), std::move(meta));
}

Topology make_deimos() {
  // Three 288-port directors in a chain, 30 parallel links between
  // neighbors (paper Figure 11); 724 endpoints split 248/228/248.
  Network net;
  TopologyMeta meta;
  std::vector<BigSwitch> bigs;
  for (std::uint32_t i = 0; i < 3; ++i) {
    // ISR-9288-class directors were commonly run with a partially populated
    // spine stage: 2:1 internal oversubscription (12 external ports per
    // chip, 6 spine links). This internal contention is what the paper's
    // Netgauge measurements expose and global balancing mitigates.
    bigs.push_back(make_big_switch(net, /*num_chips=*/24, /*num_spines=*/6,
                                   "deimos.sw" + std::to_string(i)));
  }
  for (std::uint32_t pair = 0; pair < 2; ++pair) {
    for (std::uint32_t l = 0; l < 30; ++l) {
      net.add_link(bigs[pair].next_port(), bigs[pair + 1].next_port());
    }
  }
  const std::uint32_t terminals[3] = {248, 228, 248};
  for (std::uint32_t i = 0; i < 3; ++i) {
    for (std::uint32_t t = 0; t < terminals[i]; ++t) {
      net.add_terminal(bigs[i].next_port());
    }
  }
  meta.family = "real/deimos";
  return finish("deimos", std::move(net), std::move(meta));
}

Topology make_tsubame() {
  // 1430-node configuration: six oversubscribed 288-port edge directors
  // (about 239 nodes and 48 uplinks each) under two core directors.
  Network net;
  TopologyMeta meta;
  std::vector<BigSwitch> edges;
  for (std::uint32_t i = 0; i < 6; ++i) {
    edges.push_back(make_big_switch(net, 24, 6, "tsubame.edge" + std::to_string(i)));
  }
  std::vector<BigSwitch> cores;
  for (std::uint32_t i = 0; i < 2; ++i) {
    cores.push_back(make_big_switch(net, 24, 12, "tsubame.core" + std::to_string(i)));
  }
  for (auto& edge : edges) {
    for (auto& core : cores) {
      for (std::uint32_t l = 0; l < 24; ++l) {
        net.add_link(edge.next_port(), core.next_port());
      }
    }
  }
  const std::uint32_t terminals[6] = {239, 239, 238, 238, 238, 238};
  for (std::uint32_t i = 0; i < 6; ++i) {
    for (std::uint32_t t = 0; t < terminals[i]; ++t) {
      net.add_terminal(edges[i].next_port());
    }
  }
  meta.family = "real/tsubame";
  return finish("tsubame", std::move(net), std::move(meta));
}

Topology make_juropa() {
  // 3288 nodes: 137 36-port leaf switches (24 nodes + 12 uplinks), one link
  // to each of 12 M9-class cores (modeled as abstract high-radix switches).
  Network net;
  TopologyMeta meta;
  std::vector<NodeId> cores, leaves;
  const std::uint32_t num_leaves = 137, num_cores = 12;
  for (std::uint32_t i = 0; i < num_leaves; ++i) {
    leaves.push_back(net.add_switch("juropa.leaf" + std::to_string(i)));
    meta.sw_level.push_back(0);
  }
  for (std::uint32_t i = 0; i < num_cores; ++i) {
    cores.push_back(net.add_switch("juropa.core" + std::to_string(i)));
    meta.sw_level.push_back(1);
  }
  for (NodeId leaf : leaves) {
    for (NodeId core : cores) net.add_link(leaf, core);
  }
  std::uint32_t remaining = 3288;
  for (NodeId leaf : leaves) {
    std::uint32_t here = std::min<std::uint32_t>(24, remaining);
    for (std::uint32_t t = 0; t < here; ++t) net.add_terminal(leaf);
    remaining -= here;
  }
  meta.family = "real/juropa";
  return finish("juropa", std::move(net), std::move(meta));
}

Topology make_ranger() {
  // 3936 nodes: 328 chassis NEMs (12 nodes each) with uplinks to two Magnum
  // directors (abstract high-radix switches). The production machine was
  // notoriously irregularly cabled (depopulated and failed uplinks), which
  // is where the paper's large DFSSSP gain comes from; the stand-in models
  // that with a deterministic mix of 4+4, 2+2 and single-rail NEMs.
  Network net;
  TopologyMeta meta;
  // Each Magnum is itself a chip-level Clos (110 leaf chips x 12 external
  // ports feed the 1312 used ports, 12 spine chips).
  BigSwitch magnumA = make_big_switch(net, 110, 12, "ranger.magnumA");
  BigSwitch magnumB = make_big_switch(net, 110, 12, "ranger.magnumB");
  const std::uint32_t num_nems = 328;
  for (std::uint32_t i = 0; i < num_nems; ++i) {
    NodeId nem = net.add_switch("ranger.nem" + std::to_string(i));
    std::uint32_t to_a = 4, to_b = 4;
    switch (i % 8) {
      case 1: to_a = 2; to_b = 2; break;  // depopulated chassis
      case 3: to_a = 4; to_b = 1; break;  // B-rail mostly dark
      case 5: to_a = 1; to_b = 4; break;  // A-rail mostly dark
      case 6: to_a = 3; to_b = 2; break;  // failed cables
      default: break;
    }
    for (std::uint32_t l = 0; l < to_a; ++l) {
      net.add_link(nem, magnumA.next_port());
    }
    for (std::uint32_t l = 0; l < to_b; ++l) {
      net.add_link(nem, magnumB.next_port());
    }
    for (std::uint32_t t = 0; t < 12; ++t) net.add_terminal(nem);
  }
  meta.family = "real/ranger";
  return finish("ranger", std::move(net), std::move(meta));
}

std::vector<Topology> make_all_real_systems() {
  std::vector<Topology> all;
  all.push_back(make_odin());
  all.push_back(make_chic());
  all.push_back(make_deimos());
  all.push_back(make_tsubame());
  all.push_back(make_juropa());
  all.push_back(make_ranger());
  return all;
}

}  // namespace dfsssp
