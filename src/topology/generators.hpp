// Topology generators for every network family in the paper's evaluation.
//
// Artificial families (Section V, Table I): extended generalized fat trees
// (XGFT), k-ary n-trees, Kautz graphs, plus the random switch fabrics of
// Figure 9 and the classical rings/tori/meshes used throughout the text.
//
// Real systems (Figures 4/8/10): the paper used topology files of six HPC
// installations (Odin, CHiC, Deimos, Tsubame, JUROPA, Ranger). Those files
// are not public; make_* builds synthetic stand-ins from the published
// structural descriptions — see DESIGN.md §4 for the substitution rationale.
//
// Conventions:
//  * every generator returns a frozen, validated Topology;
//  * XGFT(h; m1..mh; w1..wh) places switches on levels 0..h (level 0 = leaf
//    switches hosting m1 terminals each), wired per Ohring et al.: a level-i
//    switch has m_i children and w_{i+1} parents. With terminals-per-leaf
//    = m1 the endpoint counts line up with the k-ary n-tree sizes of
//    Table I (e.g. XGFT(2;14,14;7,7) and the 14-ary 3-tree both give 2744);
//  * Kautz(b,n) builds the Kautz digraph K(b,n) on (b+1)*b^(n-1) switches
//    and realizes each digraph arc as one bidirectional physical link
//    (deduplicated when both arc directions exist).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "topology/topology.hpp"

namespace dfsssp {

/// One switch with `num_terminals` endpoints (Odin-like degenerate case).
Topology make_single_switch(std::uint32_t num_terminals);

/// Line of switches, `terminals_per_switch` endpoints each.
Topology make_path(std::uint32_t num_switches,
                   std::uint32_t terminals_per_switch);

/// Ring of switches (the Figure 2 deadlock example uses 5 switches x 1).
Topology make_ring(std::uint32_t num_switches,
                   std::uint32_t terminals_per_switch);

/// k-ary n-cube (wraparound = torus) or mesh (no wraparound).
Topology make_torus(std::span<const std::uint32_t> dims,
                    std::uint32_t terminals_per_switch, bool wraparound);

/// Hypercube of the given dimension (a 2-ary d-cube without wrap duplicates).
Topology make_hypercube(std::uint32_t dimension,
                        std::uint32_t terminals_per_switch);

/// k-ary n-tree: n switch levels of k^(n-1) switches, k^n terminals.
Topology make_kary_ntree(std::uint32_t k, std::uint32_t n);

/// XGFT(h; ms; ws); ms and ws must each have h entries (see file header).
/// `terminals_per_leaf` defaults to ms[0] when 0.
Topology make_xgft(std::uint32_t h, std::span<const std::uint32_t> ms,
                   std::span<const std::uint32_t> ws,
                   std::uint32_t terminals_per_leaf = 0);

/// Kautz graph K(b,n) switch fabric with `num_terminals` endpoints
/// distributed round-robin over the switches.
Topology make_kautz(std::uint32_t b, std::uint32_t n,
                    std::uint32_t num_terminals);

/// Random connected switch fabric: `num_switches` switches with
/// `terminals_per_switch` endpoints each and `num_links` inter-switch links
/// (first a random spanning tree, then random extra links, respecting
/// `max_inter_switch_ports` per switch, no self loops, no parallel links
/// unless unavoidable). Figure 9 uses 128 switches x 16 terminals.
Topology make_random(std::uint32_t num_switches,
                     std::uint32_t terminals_per_switch,
                     std::uint32_t num_links,
                     std::uint32_t max_inter_switch_ports, Rng& rng);

/// Two-level Clos/fat-tree: `num_leaves` leaf switches with
/// `terminals_per_leaf` endpoints and `links_per_pair` parallel links to each
/// of `num_spines` spine switches.
Topology make_clos2(std::uint32_t num_leaves, std::uint32_t num_spines,
                    std::uint32_t links_per_pair,
                    std::uint32_t terminals_per_leaf);

/// Dragonfly(a,p,h,g): g groups of a switches; per switch p terminals and
/// h global links; full mesh inside a group (extension beyond the paper).
Topology make_dragonfly(std::uint32_t a, std::uint32_t p, std::uint32_t h,
                        std::uint32_t g);

/// HyperX / flattened butterfly: switches on a grid given by `dims`, fully
/// connected along every axis-parallel line (extension beyond the paper).
Topology make_hyperx(std::span<const std::uint32_t> dims,
                     std::uint32_t terminals_per_switch);

/// Complete graph of switches.
Topology make_fully_connected(std::uint32_t num_switches,
                              std::uint32_t terminals_per_switch);

/// Random near-regular fabric with even degree `degree`: a Hamiltonian
/// ring plus degree/2 - 1 keyed random-permutation cycle covers (see
/// ChunkedRandomRegular in topology/chunked.hpp for the construction and
/// the fixed-point caveat). This sequential builder is the seed reference
/// the chunked generator is pinned against bitwise.
Topology make_random_regular(std::uint32_t num_switches, std::uint32_t degree,
                             std::uint32_t terminals_per_switch,
                             std::uint64_t seed);

// ---- real-system stand-ins (see DESIGN.md §4) ------------------------------

/// Odin (Indiana University): 128 nodes behind one 144-port switch, modeled
/// as its internal 24-port-chip Clos (12 leaf chips, 6 spine chips, 2 links
/// per leaf-spine pair).
Topology make_odin();

/// CHiC (TU Chemnitz): 550 nodes, 24-port leaf switches (18 nodes + 6
/// uplinks) under a 288-port core modeled as a chip-level Clos.
Topology make_chic();

/// Deimos (TU Dresden): 724 nodes on three 288-port switches in a chain with
/// 30 parallel links between neighbors (Figure 11). Each big switch is
/// modeled as its internal Clos of 24-port chips.
Topology make_deimos();

/// Tsubame (TokyoTech, 1430-node configuration): six oversubscribed
/// 288-port edge switches under two cores.
Topology make_tsubame();

/// JUROPA/HPC-FF (FZ Juelich): 3288 nodes, 36-port leaf switches (24 nodes
/// + 12 uplinks) under 12 M9-class core switches (abstract high-radix).
Topology make_juropa();

/// Ranger (TACC): 3936 nodes, 328 chassis NEMs (12 nodes each) with 4
/// uplinks to each of two Magnum 3456-port switches (abstract high-radix).
Topology make_ranger();

/// All six stand-ins in the order the paper plots them.
std::vector<Topology> make_all_real_systems();

}  // namespace dfsssp
