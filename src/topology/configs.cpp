#include "topology/configs.hpp"

#include <stdexcept>
#include <utility>

#include "common/narrow.hpp"

#include "topology/chunked.hpp"
#include "topology/generators.hpp"

namespace dfsssp {

std::vector<TableOneRow> table_one(bool full) {
  std::vector<TableOneRow> rows = {
      {64, {6}, {3}, 2, 2, 6, 2},
      {128, {10}, {5}, 2, 2, 10, 2},
      {256, {16}, {8}, 2, 3, 16, 2},
      {512, {6, 6}, {3, 3}, 3, 3, 6, 3},
      {1024, {10, 10}, {5, 5}, 3, 3, 10, 3},
      {2048, {14, 14}, {7, 7}, 4, 3, 14, 3},
  };
  if (full) rows.push_back({4096, {18, 18}, {9, 9}, 6, 3, 18, 3});
  return rows;
}

namespace {

/// Dragonfly with `dests` terminals spread evenly instead of p per switch.
class SparseDragonfly : public ChunkedDragonfly {
 public:
  SparseDragonfly(std::uint32_t a, std::uint32_t h, std::uint32_t g,
                  std::uint32_t dests)
      : ChunkedDragonfly(a, /*p=*/0, h, g), dests_(dests) {
    if (dests == 0) {
      throw std::invalid_argument("warehouse dragonfly: dests >= 1");
    }
  }

  std::string topo_name() const override {
    return ChunkedDragonfly::topo_name() + "-d" + std::to_string(dests_);
  }

  GenLayout layout() const override {
    GenLayout lay = ChunkedDragonfly::layout();
    lay.num_terminals = dests_;
    lay.terminal_chunks = 1;
    return lay;
  }

  void emit_terminals(std::uint64_t chunk,
                      std::vector<std::uint32_t>& out) const override {
    (void)chunk;
    const std::uint64_t num_switches =
        static_cast<std::uint64_t>(a_) * g_;
    const std::uint64_t stride =
        std::max<std::uint64_t>(1, num_switches / dests_);
    for (std::uint32_t t = 0; t < dests_; ++t) {
      out.push_back(checked_u32((t * stride) % num_switches, "hot dest"));
    }
  }

 private:
  std::uint32_t dests_;
};

void add(std::vector<TopoConfig>& out, std::string name, std::string summary,
         std::function<Topology(const ExecContext&)> build) {
  out.push_back({std::move(name), std::move(summary), std::move(build)});
}

std::vector<TopoConfig> make_registry() {
  std::vector<TopoConfig> cfgs;

  // Table I families (paper Section V). Registry keys index by nominal
  // endpoint count; the built topology keeps its generator name.
  for (const TableOneRow& row : table_one(/*full=*/true)) {
    const std::string n = std::to_string(row.nominal_endpoints);
    add(cfgs, "xgft-" + n, "Table I XGFT, ~" + n + " endpoints",
        [row](const ExecContext&) {
          return make_xgft(checked_u32(row.xgft_ms.size(), "xgft height"),
                           row.xgft_ms, row.xgft_ws, 0);
        });
    add(cfgs, "kautz-" + n, "Table I Kautz graph, " + n + " endpoints",
        [row](const ExecContext&) {
          return make_kautz(row.kautz_b, row.kautz_n, row.nominal_endpoints);
        });
    add(cfgs, "tree-" + n, "Table I k-ary n-tree, ~" + n + " endpoints",
        [row](const ExecContext&) {
          return make_kary_ntree(row.tree_k, row.tree_n);
        });
  }

  // Real-system stand-ins (Figures 4/8/10).
  add(cfgs, "odin", "Odin stand-in: 128 nodes, one 144-port switch",
      [](const ExecContext&) { return make_odin(); });
  add(cfgs, "chic", "CHiC stand-in: 550 nodes, leaf/core",
      [](const ExecContext&) { return make_chic(); });
  add(cfgs, "deimos", "Deimos stand-in: 724 nodes, 3-director chain",
      [](const ExecContext&) { return make_deimos(); });
  add(cfgs, "tsubame", "Tsubame stand-in: 1430 nodes, 6 edges + 2 cores",
      [](const ExecContext&) { return make_tsubame(); });
  add(cfgs, "juropa", "JUROPA stand-in: 3288 nodes, 137 leaves x 12 cores",
      [](const ExecContext&) { return make_juropa(); });
  add(cfgs, "ranger", "Ranger stand-in: 3936 nodes, irregular NEM uplinks",
      [](const ExecContext&) { return make_ranger(); });

  // Modern-topology zoo (extension bench).
  add(cfgs, "dragonfly-a4p4h2g9", "dragonfly(4,4,2,9): 36 switches",
      [](const ExecContext&) { return make_dragonfly(4, 4, 2, 9); });
  add(cfgs, "hyperx-8-8", "HyperX 8x8, 4 terminals/switch",
      [](const ExecContext&) {
        const std::uint32_t dims[2] = {8, 8};
        return make_hyperx(dims, 4);
      });
  add(cfgs, "hyperx-4-4-4", "HyperX 4x4x4, 2 terminals/switch",
      [](const ExecContext&) {
        const std::uint32_t dims[3] = {4, 4, 4};
        return make_hyperx(dims, 2);
      });
  add(cfgs, "complete-16", "complete graph, 16 switches x 8 terminals",
      [](const ExecContext&) { return make_fully_connected(16, 8); });
  add(cfgs, "kautz-3-3", "Kautz K(3,3), 512 endpoints",
      [](const ExecContext&) { return make_kautz(3, 3, 512); });

  // Torus sweep (extension bench).
  for (const auto& dims : std::vector<std::vector<std::uint32_t>>{
           {8, 8}, {12, 12}, {6, 6, 6}, {16, 16}}) {
    std::string key = "torus";
    for (std::uint32_t d : dims) key += "-" + std::to_string(d);
    add(cfgs, key, "torus, 2 terminals/switch",
        [dims](const ExecContext&) { return make_torus(dims, 2, true); });
  }

  // Mid-size chunked configs: the gen_scale bench roster. Sized so quick
  // runs finish in seconds while the link streams are big enough to time.
  add(cfgs, "dragonfly-mid",
      "chunked dragonfly(32,1,16,513): 16416 switches, ~394k links",
      [](const ExecContext& exec) {
        return generate_chunked(ChunkedDragonfly(32, 1, 16, 513), exec);
      });
  add(cfgs, "torus-mid", "chunked torus 32x32x16: 16384 switches",
      [](const ExecContext& exec) {
        return generate_chunked(ChunkedTorus({32, 32, 16}, 1, true), exec);
      });
  add(cfgs, "xgft-mid", "chunked XGFT(2;32,32;16,16): 1792 switches",
      [](const ExecContext& exec) {
        return generate_chunked(ChunkedXgft(2, {32, 32}, {16, 16}, 1), exec);
      });
  add(cfgs, "random-regular-mid",
      "chunked random-regular 16384 switches, degree 8",
      [](const ExecContext& exec) {
        return generate_chunked(
            ChunkedRandomRegular(16384, 8, 1, 0xC0FFEE), exec);
      });

  // Warehouse scale: the full-tier end-to-end bench fabric.
  add(cfgs, "warehouse-dragonfly",
      "chunked dragonfly(50,40,2001): 100050 switches, 64 sharded dests",
      [](const ExecContext& exec) {
        return make_warehouse_dragonfly(50, 40, 2001, 64, exec);
      });

  return cfgs;
}

}  // namespace

const std::vector<TopoConfig>& topology_configs() {
  static const std::vector<TopoConfig> registry = make_registry();
  return registry;
}

const TopoConfig* find_topology_config(const std::string& name) {
  for (const TopoConfig& cfg : topology_configs()) {
    if (cfg.name == name) return &cfg;
  }
  return nullptr;
}

Topology build_topology_config(const std::string& name,
                               const ExecContext& exec) {
  const TopoConfig* cfg = find_topology_config(name);
  if (cfg == nullptr) {
    std::string known;
    for (const TopoConfig& c : topology_configs()) {
      known += known.empty() ? c.name : ", " + c.name;
    }
    throw std::invalid_argument("unknown topology config '" + name +
                                "' (known: " + known + ")");
  }
  return cfg->build(exec);
}

Topology make_warehouse_dragonfly(std::uint32_t a, std::uint32_t h,
                                  std::uint32_t g, std::uint32_t dests,
                                  const ExecContext& exec,
                                  bool record_names) {
  SparseDragonfly gen(a, h, g, dests);
  ChunkedOptions opts;
  opts.record_names = record_names;
  return generate_chunked(gen, exec, opts);
}

}  // namespace dfsssp
