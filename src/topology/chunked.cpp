#include "topology/chunked.hpp"

#include <stdexcept>
#include "common/narrow.hpp"
#include "obs/trace.hpp"

namespace dfsssp {

namespace {

/// Switch-id-range families split their streams into spans of this many
/// ids. A function of topology size only — never of the thread count —
/// so the chunk grid (and with it every chunk's RNG stream) is identical
/// at any --threads=N.
constexpr std::uint64_t kChunkSpan = 2048;

std::uint64_t chunk_count(std::uint64_t total) {
  return total == 0 ? 1 : (total + kChunkSpan - 1) / kChunkSpan;
}

/// [begin, end) of chunk `chunk` over [0, total).
std::pair<std::uint64_t, std::uint64_t> chunk_range(std::uint64_t chunk,
                                                    std::uint64_t total) {
  const std::uint64_t lo = chunk * kChunkSpan;
  const std::uint64_t hi = std::min(total, lo + kChunkSpan);
  return {std::min(lo, total), hi};
}

}  // namespace

Topology generate_chunked(const ChunkedGenerator& gen, const ExecContext& exec,
                          const ChunkedOptions& opts) {
  // Profiler/trace spans sit at work-item granularity (one per id-span
  // chunk): the chunk grid is size-derived, so invocation counts and the
  // emitted-link tallies are identical at any --threads=N.
  TRACE_SPAN("topology/generate_chunked");
  const GenLayout lay = gen.layout();
  NetworkBuilder builder(lay.num_switches);
  builder.reserve_links(lay.num_links);
  builder.reserve_terminals(lay.num_terminals);

  const std::uint64_t base_seed = gen.seed();
  for (std::uint32_t phase = 0; phase < lay.link_phases; ++phase) {
    auto chunks = parallel_map(
        exec, static_cast<std::size_t>(lay.link_chunks), [&](std::size_t i) {
          TRACE_SPAN("topology/emit_links");
          std::vector<SwitchLink> out;
          Rng rng(stream_seed(base_seed,
                              (static_cast<std::uint64_t>(phase) << 40) |
                                  static_cast<std::uint64_t>(i)));
          gen.emit_links(phase, i, rng, out);
          PROF_COUNT("topology/links_emitted", out.size());
          return out;
        });
    for (const auto& c : chunks) builder.add_links(c);
  }

  auto terminal_chunks = parallel_map(
      exec, static_cast<std::size_t>(lay.terminal_chunks), [&](std::size_t i) {
        TRACE_SPAN("topology/emit_terminals");
        std::vector<std::uint32_t> out;
        gen.emit_terminals(i, out);
        PROF_COUNT("topology/terminals_emitted", out.size());
        return out;
      });
  for (const auto& c : terminal_chunks) builder.add_terminals(c);

  if (opts.record_names) {
    for (std::uint64_t sw = 0; sw < lay.num_switches; ++sw) {
      std::string name = gen.switch_name(sw);
      if (!name.empty()) {
        builder.set_switch_name(checked_u32(sw, "switch name"),
                                std::move(name));
      }
    }
  }

  Topology topo;
  {
    TRACE_SPAN("topology/build");
    topo.net = builder.build(opts.validate);
  }
  topo.name = gen.topo_name();
  topo.meta.family = gen.family();
  gen.fill_meta(topo.meta);
  return topo;
}

// ---- dragonfly --------------------------------------------------------------

ChunkedDragonfly::ChunkedDragonfly(std::uint32_t a, std::uint32_t p,
                                   std::uint32_t h, std::uint32_t g)
    : a_(a), p_(p), h_(h), g_(g) {
  if (a == 0 || g == 0) {
    throw std::invalid_argument("dragonfly: a, g >= 1");
  }
  if (static_cast<std::uint64_t>(a) * h != g - 1) {
    throw std::invalid_argument(
        "dragonfly: balanced layout requires a*h == g-1");
  }
}

std::string ChunkedDragonfly::topo_name() const {
  return "dragonfly-a" + std::to_string(a_) + "p" + std::to_string(p_) + "h" +
         std::to_string(h_) + "g" + std::to_string(g_);
}

GenLayout ChunkedDragonfly::layout() const {
  GenLayout lay;
  lay.num_switches = static_cast<std::uint64_t>(a_) * g_;
  // Local cliques plus one global link per (group pair handled); every
  // switch owns h global ports and each link covers two.
  lay.num_links = static_cast<std::uint64_t>(g_) * a_ * (a_ - 1) / 2 +
                  lay.num_switches * h_ / 2;
  lay.num_terminals = static_cast<std::uint64_t>(p_) * lay.num_switches;
  lay.link_phases = 2;  // phase 0: local, phase 1: global
  lay.link_chunks = g_;
  lay.terminal_chunks = g_;
  return lay;
}

void ChunkedDragonfly::emit_links(std::uint32_t phase, std::uint64_t chunk,
                                  Rng& rng,
                                  std::vector<SwitchLink>& out) const {
  (void)rng;
  const std::uint32_t grp = checked_u32(chunk, "dragonfly group");
  const std::uint32_t base = grp * a_;
  if (phase == 0) {
    for (std::uint32_t i = 0; i < a_; ++i) {
      for (std::uint32_t j = i + 1; j < a_; ++j) {
        out.push_back({base + i, base + j});
      }
    }
    return;
  }
  // Global links: switch i, global port j of group x handles group offset
  // o = i*h + j + 1 and connects to group (x + o) mod g, where the peer is
  // the switch handling the complementary offset g - o. Added once, from
  // the side with the smaller offset (middle tie: smaller group id) — the
  // same rule as make_dragonfly.
  const std::uint32_t x = grp;
  for (std::uint32_t i = 0; i < a_; ++i) {
    for (std::uint32_t j = 0; j < h_; ++j) {
      const std::uint32_t o = i * h_ + j + 1;
      const std::uint32_t y = (x + o) % g_;
      const std::uint32_t back = g_ - o;
      const std::uint32_t pi = (back - 1) / h_;
      if (o < back || (o == back && x < y)) {
        out.push_back({x * a_ + i, y * a_ + pi});
      }
    }
  }
}

void ChunkedDragonfly::emit_terminals(std::uint64_t chunk,
                                      std::vector<std::uint32_t>& out) const {
  const std::uint32_t base = checked_u32(chunk, "dragonfly group") * a_;
  for (std::uint32_t i = 0; i < a_; ++i) {
    for (std::uint32_t t = 0; t < p_; ++t) out.push_back(base + i);
  }
}

std::string ChunkedDragonfly::switch_name(std::uint64_t sw) const {
  return "g" + std::to_string(sw / a_) + ".s" + std::to_string(sw % a_);
}

// ---- xgft -------------------------------------------------------------------

ChunkedXgft::ChunkedXgft(std::uint32_t h, std::vector<std::uint32_t> ms,
                         std::vector<std::uint32_t> ws,
                         std::uint32_t terminals_per_leaf)
    : h_(h), ms_(std::move(ms)), ws_(std::move(ws)), tpl_(terminals_per_leaf) {
  if (ms_.size() != h_ || ws_.size() != h_) {
    throw std::invalid_argument("xgft: need h entries in ms and ws");
  }
  if (h_ == 0) throw std::invalid_argument("xgft: h >= 1");
  if (tpl_ == 0) tpl_ = ms_[0];
  size_.assign(h_ + 1, 1);
  tops_.assign(h_ + 1, 1);
  leaves_.assign(h_ + 1, 1);
  for (std::uint32_t l = 1; l <= h_; ++l) {
    tops_[l] = tops_[l - 1] * ws_[l - 1];
    size_[l] = ms_[l - 1] * size_[l - 1] + tops_[l];
    leaves_[l] = ms_[l - 1] * leaves_[l - 1];
  }
}

std::string ChunkedXgft::topo_name() const {
  std::string name = "xgft-" + std::to_string(h_);
  for (std::uint32_t m : ms_) name += "-m" + std::to_string(m);
  for (std::uint32_t w : ws_) name += "-w" + std::to_string(w);
  return name;
}

GenLayout ChunkedXgft::layout() const {
  GenLayout lay;
  lay.num_switches = size_[h_];
  // Every level-l root carries m_l down-links; the whole tree holds
  // (number of height-l subtrees) * tops(l) such roots.
  std::uint64_t subtrees = 1;
  for (std::uint32_t l = h_; l >= 1; --l) {
    lay.num_links += subtrees * tops_[l] * ms_[l - 1];
    subtrees *= ms_[l - 1];
  }
  lay.num_terminals = leaves_[h_] * tpl_;
  lay.link_chunks = chunk_count(lay.num_switches);
  lay.terminal_chunks = chunk_count(lay.num_terminals);
  return lay;
}

ChunkedXgft::Decoded ChunkedXgft::decode(std::uint64_t id) const {
  std::uint64_t base = 0;
  for (std::uint32_t level = h_; level >= 1; --level) {
    const std::uint64_t rel = id - base;
    const std::uint64_t children = ms_[level - 1] * size_[level - 1];
    if (rel >= children) return {level, base, rel - children};
    base += (rel / size_[level - 1]) * size_[level - 1];
  }
  return {0, base, 0};
}

std::uint64_t ChunkedXgft::leaf_id(std::uint64_t leaf_index) const {
  std::uint64_t base = 0;
  for (std::uint32_t level = h_; level >= 1; --level) {
    const std::uint64_t s = leaf_index / leaves_[level - 1];
    base += s * size_[level - 1];
    leaf_index %= leaves_[level - 1];
  }
  return base;
}

void ChunkedXgft::emit_links(std::uint32_t phase, std::uint64_t chunk,
                             Rng& rng, std::vector<SwitchLink>& out) const {
  (void)phase;
  (void)rng;
  const auto [lo, hi] = chunk_range(chunk, size_[h_]);
  for (std::uint64_t id = lo; id < hi; ++id) {
    const Decoded d = decode(id);
    if (d.level == 0) continue;
    const std::uint32_t l = d.level;
    const std::uint64_t r = d.root_index / ws_[l - 1];
    // subtree_tops[s][r] of the recursive builder: root r of the s-th
    // height-(l-1) subtree (the leaf itself when l-1 == 0).
    const std::uint64_t child_top =
        l == 1 ? 0 : ms_[l - 2] * size_[l - 2] + r;
    for (std::uint32_t s = 0; s < ms_[l - 1]; ++s) {
      const std::uint64_t child = d.base + s * size_[l - 1] + child_top;
      out.push_back({checked_u32(id, "xgft switch"),
                     checked_u32(child, "xgft switch")});
    }
  }
}

void ChunkedXgft::emit_terminals(std::uint64_t chunk,
                                 std::vector<std::uint32_t>& out) const {
  const auto [lo, hi] = chunk_range(chunk, leaves_[h_] * tpl_);
  for (std::uint64_t t = lo; t < hi; ++t) {
    out.push_back(checked_u32(leaf_id(t / tpl_), "xgft leaf"));
  }
}

void ChunkedXgft::fill_meta(TopologyMeta& meta) const {
  meta.sw_level.resize(size_[h_]);
  for (std::uint64_t id = 0; id < size_[h_]; ++id) {
    meta.sw_level[id] = checked_narrow<std::int32_t>(decode(id).level,
                                                     "xgft level");
  }
}

// ---- torus / mesh -----------------------------------------------------------

ChunkedTorus::ChunkedTorus(std::vector<std::uint32_t> dims,
                           std::uint32_t terminals_per_switch, bool wraparound)
    : dims_(std::move(dims)), tps_(terminals_per_switch),
      wraparound_(wraparound), total_(1) {
  if (dims_.empty()) throw std::invalid_argument("torus: no dimensions");
  for (std::uint32_t d : dims_) {
    if (d < 2) throw std::invalid_argument("torus: dimension radix < 2");
    total_ *= d;
  }
}

std::uint32_t ChunkedTorus::coord_of(std::uint64_t idx,
                                     std::size_t dim) const {
  for (std::size_t d = 0; d < dim; ++d) idx /= dims_[d];
  return checked_u32(idx % dims_[dim], "torus coord");
}

std::string ChunkedTorus::topo_name() const {
  std::string name = family();
  for (std::uint32_t d : dims_) name += "-" + std::to_string(d);
  return name;
}

GenLayout ChunkedTorus::layout() const {
  GenLayout lay;
  lay.num_switches = total_;
  for (std::uint32_t d : dims_) {
    lay.num_links += total_ / d * (d - 1);               // +1 neighbors
    if (wraparound_ && d > 2) lay.num_links += total_ / d;  // wrap rings
  }
  lay.num_terminals = static_cast<std::uint64_t>(tps_) * total_;
  lay.link_chunks = chunk_count(total_);
  lay.terminal_chunks = chunk_count(lay.num_terminals);
  return lay;
}

void ChunkedTorus::emit_links(std::uint32_t phase, std::uint64_t chunk,
                              Rng& rng, std::vector<SwitchLink>& out) const {
  (void)phase;
  (void)rng;
  const auto [lo, hi] = chunk_range(chunk, total_);
  for (std::uint64_t i = lo; i < hi; ++i) {
    std::uint64_t stride = 1;
    for (std::size_t d = 0; d < dims_.size(); ++d) {
      const std::uint32_t c = coord_of(i, d);
      if (c + 1 < dims_[d]) {
        out.push_back({checked_u32(i, "torus switch"),
                       checked_u32(i + stride, "torus switch")});
      }
      // Wrap link once per ring, skipped for radix 2 where it would
      // duplicate the 0-1 link.
      if (wraparound_ && c == dims_[d] - 1 && dims_[d] > 2) {
        out.push_back({checked_u32(i, "torus switch"),
                       checked_u32(i - c * stride, "torus switch")});
      }
      stride *= dims_[d];
    }
  }
}

void ChunkedTorus::emit_terminals(std::uint64_t chunk,
                                  std::vector<std::uint32_t>& out) const {
  const auto [lo, hi] =
      chunk_range(chunk, static_cast<std::uint64_t>(tps_) * total_);
  for (std::uint64_t t = lo; t < hi; ++t) {
    out.push_back(checked_u32(t / tps_, "terminal switch"));
  }
}

void ChunkedTorus::fill_meta(TopologyMeta& meta) const {
  meta.dims = dims_;
  meta.wraparound = wraparound_;
  meta.sw_coord.resize(total_ * dims_.size());
  for (std::uint64_t i = 0; i < total_; ++i) {
    for (std::size_t d = 0; d < dims_.size(); ++d) {
      meta.sw_coord[i * dims_.size() + d] = coord_of(i, d);
    }
  }
}

// ---- hyperx -----------------------------------------------------------------

ChunkedHyperx::ChunkedHyperx(std::vector<std::uint32_t> dims,
                             std::uint32_t terminals_per_switch)
    : dims_(std::move(dims)), tps_(terminals_per_switch), total_(1) {
  if (dims_.empty()) throw std::invalid_argument("hyperx: no dimensions");
  for (std::uint32_t d : dims_) {
    if (d < 2) throw std::invalid_argument("hyperx: dimension radix < 2");
    total_ *= d;
  }
}

std::uint32_t ChunkedHyperx::coord_of(std::uint64_t idx,
                                      std::size_t dim) const {
  for (std::size_t d = 0; d < dim; ++d) idx /= dims_[d];
  return checked_u32(idx % dims_[dim], "hyperx coord");
}

std::string ChunkedHyperx::topo_name() const {
  std::string name = "hyperx";
  for (std::uint32_t d : dims_) name += "-" + std::to_string(d);
  return name;
}

GenLayout ChunkedHyperx::layout() const {
  GenLayout lay;
  lay.num_switches = total_;
  for (std::uint32_t d : dims_) {
    // Each axis line is a clique on d switches; total/d lines per dim.
    lay.num_links += total_ / d * (static_cast<std::uint64_t>(d) * (d - 1) / 2);
  }
  lay.num_terminals = static_cast<std::uint64_t>(tps_) * total_;
  lay.link_chunks = chunk_count(total_);
  lay.terminal_chunks = chunk_count(lay.num_terminals);
  return lay;
}

void ChunkedHyperx::emit_links(std::uint32_t phase, std::uint64_t chunk,
                               Rng& rng, std::vector<SwitchLink>& out) const {
  (void)phase;
  (void)rng;
  const auto [lo, hi] = chunk_range(chunk, total_);
  for (std::uint64_t i = lo; i < hi; ++i) {
    std::uint64_t stride = 1;
    for (std::size_t d = 0; d < dims_.size(); ++d) {
      const std::uint32_t c = coord_of(i, d);
      for (std::uint32_t other = c + 1; other < dims_[d]; ++other) {
        out.push_back({checked_u32(i, "hyperx switch"),
                       checked_u32(
                           i + static_cast<std::uint64_t>(other - c) * stride,
                           "hyperx switch")});
      }
      stride *= dims_[d];
    }
  }
}

void ChunkedHyperx::emit_terminals(std::uint64_t chunk,
                                   std::vector<std::uint32_t>& out) const {
  const auto [lo, hi] =
      chunk_range(chunk, static_cast<std::uint64_t>(tps_) * total_);
  for (std::uint64_t t = lo; t < hi; ++t) {
    out.push_back(checked_u32(t / tps_, "terminal switch"));
  }
}

void ChunkedHyperx::fill_meta(TopologyMeta& meta) const {
  meta.dims = dims_;
  meta.sw_coord.resize(total_ * dims_.size());
  for (std::uint64_t i = 0; i < total_; ++i) {
    for (std::size_t d = 0; d < dims_.size(); ++d) {
      meta.sw_coord[i * dims_.size() + d] = coord_of(i, d);
    }
  }
}

// ---- random-regular ---------------------------------------------------------

IndexPermutation::IndexPermutation(std::uint64_t n, std::uint64_t seed)
    : n_(n) {
  if (n == 0) throw std::invalid_argument("IndexPermutation: empty domain");
  std::uint32_t bits = 2;
  while ((std::uint64_t{1} << bits) < n) bits += 2;
  half_bits_ = bits / 2;
  half_mask_ = (std::uint64_t{1} << half_bits_) - 1;
  Rng rng(seed);
  for (auto& k : keys_) k = rng.next();
}

std::uint64_t IndexPermutation::permute_once(std::uint64_t x) const {
  std::uint64_t left = x >> half_bits_;
  std::uint64_t right = x & half_mask_;
  for (std::uint64_t key : keys_) {
    std::uint64_t state = right ^ key;
    const std::uint64_t mixed = splitmix64(state);
    const std::uint64_t next_right = left ^ (mixed & half_mask_);
    left = right;
    right = next_right;
  }
  return (left << half_bits_) | right;
}

std::uint64_t IndexPermutation::operator()(std::uint64_t i) const {
  // Cycle-walking: the Feistel bijection acts on the power-of-two
  // superdomain; iterating from an in-range start stays on a cycle, so the
  // first in-range image is reached in O(superdomain / n) expected steps
  // and the restriction to [0, n) is itself a bijection.
  std::uint64_t x = permute_once(i);
  while (x >= n_) x = permute_once(x);
  return x;
}

std::uint64_t random_regular_round_seed(std::uint64_t seed,
                                        std::uint32_t round) {
  return stream_seed(seed, 0x5252'0000ULL + round);
}

ChunkedRandomRegular::ChunkedRandomRegular(std::uint64_t n,
                                           std::uint32_t degree,
                                           std::uint32_t terminals_per_switch,
                                           std::uint64_t seed)
    : n_(n), degree_(degree), tps_(terminals_per_switch), seed_(seed) {
  if (n < 3) throw std::invalid_argument("random-regular: >= 3 switches");
  if (degree < 2 || degree % 2 != 0) {
    throw std::invalid_argument("random-regular: degree must be even >= 2");
  }
  if (n >= static_cast<std::uint64_t>(kInvalidNode)) {
    throw std::overflow_error("random-regular: switch count overflows NodeId");
  }
}

std::string ChunkedRandomRegular::topo_name() const {
  return "random-regular-" + std::to_string(n_) + "x" +
         std::to_string(degree_) + "-s" + std::to_string(seed_);
}

GenLayout ChunkedRandomRegular::layout() const {
  GenLayout lay;
  lay.num_switches = n_;
  lay.num_links = n_ * (degree_ / 2);  // upper bound; fixed points drop out
  lay.num_terminals = static_cast<std::uint64_t>(tps_) * n_;
  lay.link_phases = degree_ / 2;  // phase 0: ring, then permutation rounds
  lay.link_chunks = chunk_count(n_);
  lay.terminal_chunks = chunk_count(lay.num_terminals);
  return lay;
}

void ChunkedRandomRegular::emit_links(std::uint32_t phase, std::uint64_t chunk,
                                      Rng& rng,
                                      std::vector<SwitchLink>& out) const {
  (void)rng;
  const auto [lo, hi] = chunk_range(chunk, n_);
  if (phase == 0) {
    for (std::uint64_t i = lo; i < hi; ++i) {
      out.push_back({checked_u32(i, "rrg switch"),
                     checked_u32((i + 1) % n_, "rrg switch")});
    }
    return;
  }
  const IndexPermutation perm(n_, random_regular_round_seed(seed_, phase));
  for (std::uint64_t i = lo; i < hi; ++i) {
    const std::uint64_t j = perm(i);
    if (j != i) {
      out.push_back(
          {checked_u32(i, "rrg switch"), checked_u32(j, "rrg switch")});
    }
  }
}

void ChunkedRandomRegular::emit_terminals(std::uint64_t chunk,
                                          std::vector<std::uint32_t>& out)
    const {
  const auto [lo, hi] =
      chunk_range(chunk, static_cast<std::uint64_t>(tps_) * n_);
  for (std::uint64_t t = lo; t < hi; ++t) {
    out.push_back(checked_u32(t / tps_, "terminal switch"));
  }
}

}  // namespace dfsssp
