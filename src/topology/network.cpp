#include "topology/network.hpp"

#include <queue>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace dfsssp {

void Network::require_mutable() const {
  if (frozen_) throw std::logic_error("Network is frozen; cannot modify");
}

namespace {

// Ids double as array indices and kInvalid{Node,Channel} are sentinels, so
// the usable range ends one short of the uint32 maximum.
void check_node_capacity(std::size_t nodes, std::size_t adding) {
  if (nodes + adding > static_cast<std::size_t>(kInvalidNode)) {
    throw std::overflow_error("Network: node count overflows 32-bit NodeId");
  }
}

void check_channel_capacity(std::size_t channels, std::size_t adding) {
  if (channels + adding > static_cast<std::size_t>(kInvalidChannel)) {
    throw std::overflow_error(
        "Network: channel count overflows 32-bit ChannelId/CSR offsets");
  }
}

}  // namespace

std::string Network::node_name(NodeId n) const {
  auto it = names_.find(n);
  if (it != names_.end()) return it->second;
  const Node& nd = nodes_[n];
  return (nd.type == NodeType::kSwitch ? "sw" : "t") +
         std::to_string(nd.type_index);
}

void Network::set_node_name(NodeId n, std::string name) {
  if (n >= nodes_.size()) {
    throw std::invalid_argument("set_node_name: no such node");
  }
  if (name.empty()) {
    names_.erase(n);
  } else {
    names_[n] = std::move(name);
  }
}

NodeId Network::add_switch(std::string name) {
  require_mutable();
  check_node_capacity(nodes_.size(), 1);
  NodeId id = checked_narrow<NodeId>(nodes_.size(), "add_switch");
  std::uint32_t index = checked_u32(switches_.size(), "add_switch");
  nodes_.push_back({NodeType::kSwitch, index});
  switches_.push_back(id);
  terminals_on_switch_.push_back(0);
  if (!name.empty()) names_[id] = std::move(name);
  return id;
}

NodeId Network::add_terminal(NodeId sw, std::string name) {
  require_mutable();
  if (sw >= nodes_.size() || !is_switch(sw)) {
    throw std::invalid_argument("add_terminal: not a switch");
  }
  check_node_capacity(nodes_.size(), 1);
  check_channel_capacity(channels_.size(), 2);
  NodeId id = checked_narrow<NodeId>(nodes_.size(), "add_terminal");
  std::uint32_t index = checked_u32(terminals_.size(), "add_terminal");
  nodes_.push_back({NodeType::kTerminal, index});
  terminals_.push_back(id);
  terminal_switch_.push_back(sw);
  if (!name.empty()) names_[id] = std::move(name);
  ++terminals_on_switch_[nodes_[sw].type_index];

  ChannelId inj = checked_narrow<ChannelId>(channels_.size(), "add_terminal");
  ChannelId ej = inj + 1;
  channels_.push_back({id, sw, ej});
  channels_.push_back({sw, id, inj});
  injection_.push_back(inj);
  return id;
}

ChannelId Network::add_link(NodeId a, NodeId b) {
  require_mutable();
  if (a >= nodes_.size() || b >= nodes_.size() || !is_switch(a) ||
      !is_switch(b)) {
    throw std::invalid_argument("add_link: endpoints must be switches");
  }
  if (a == b) throw std::invalid_argument("add_link: self-loop");
  check_channel_capacity(channels_.size(), 2);
  ChannelId ab = checked_narrow<ChannelId>(channels_.size(), "add_link");
  ChannelId ba = ab + 1;
  channels_.push_back({a, b, ba});
  channels_.push_back({b, a, ab});
  return ab;
}

void Network::freeze() {
  if (frozen_) return;
  check_node_capacity(nodes_.size(), 0);
  check_channel_capacity(channels_.size(), 0);

  // Two counting passes: per-node out-degrees, prefix sums, then a scatter
  // of the channel ids. Scanning channels in id order keeps every node's
  // adjacency sorted by channel id — the same order incremental staging
  // used to produce.
  out_offset_.assign(nodes_.size() + 1, 0);
  for (const Channel& ch : channels_) ++out_offset_[ch.src + 1];
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    out_offset_[n + 1] += out_offset_[n];
  }
  out_.resize(channels_.size());
  std::vector<std::uint32_t> cursor(out_offset_.begin(),
                                    out_offset_.end() - 1);
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    out_[cursor[channels_[c].src]++] = checked_narrow<ChannelId>(c, "freeze");
  }

  sw_out_offset_.assign(switches_.size() + 1, 0);
  for (const Channel& ch : channels_) {
    if (is_switch(ch.src) && is_switch(ch.dst)) {
      ++sw_out_offset_[nodes_[ch.src].type_index + 1];
    }
  }
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    sw_out_offset_[i + 1] += sw_out_offset_[i];
  }
  sw_out_.resize(sw_out_offset_[switches_.size()]);
  cursor.assign(sw_out_offset_.begin(), sw_out_offset_.end() - 1);
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    const Channel& ch = channels_[c];
    if (is_switch(ch.src) && is_switch(ch.dst)) {
      sw_out_[cursor[nodes_[ch.src].type_index]++] =
          checked_narrow<ChannelId>(c, "freeze");
    }
  }
  frozen_ = true;
  obs::registry().gauge("topology/bytes").set(memory_footprint());
}

std::uint64_t Network::memory_footprint() const {
  auto vec = [](const auto& v) {
    return static_cast<std::uint64_t>(v.size()) *
           sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  std::uint64_t total = sizeof(Network);
  total += vec(nodes_) + vec(channels_) + vec(switches_) + vec(terminals_) +
           vec(terminal_switch_) + vec(injection_) +
           vec(terminals_on_switch_);
  total += vec(out_offset_) + vec(out_) + vec(sw_out_offset_) + vec(sw_out_);
  total += vec(link_up_) + vec(switch_up_) + vec(out_full_offset_) +
           vec(out_full_) + vec(sw_out_full_offset_) + vec(sw_out_full_);
  // Name side table: string payload plus a fixed per-entry estimate for the
  // tree node (kept implementation-independent so the figure is stable
  // across platforms).
  constexpr std::uint64_t kNameEntryOverhead = 48;
  for (const auto& [id, name] : names_) {
    (void)id;
    total += kNameEntryOverhead + name.size();
  }
  return total;
}

void Network::ensure_fault_state() {
  if (!frozen_) throw std::logic_error("fault injection before freeze()");
  if (has_fault_state()) return;
  link_up_.assign(channels_.size(), 1);
  switch_up_.assign(switches_.size(), 1);
  out_full_offset_ = out_offset_;
  out_full_ = out_;
  sw_out_full_offset_ = sw_out_offset_;
  sw_out_full_ = sw_out_;
}

void Network::rebuild_alive_adjacency() {
  num_dead_channels_ = 0;
  out_.clear();
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    out_offset_[n] = checked_u32(out_.size(), "rebuild adjacency");
    for (std::uint32_t i = out_full_offset_[n]; i < out_full_offset_[n + 1];
         ++i) {
      if (channel_alive(out_full_[i])) out_.push_back(out_full_[i]);
    }
  }
  out_offset_[nodes_.size()] = checked_u32(out_.size(), "rebuild adjacency");

  sw_out_.clear();
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    sw_out_offset_[i] = checked_u32(sw_out_.size(), "rebuild adjacency");
    for (std::uint32_t j = sw_out_full_offset_[i];
         j < sw_out_full_offset_[i + 1]; ++j) {
      if (channel_alive(sw_out_full_[j])) sw_out_.push_back(sw_out_full_[j]);
    }
  }
  sw_out_offset_[switches_.size()] =
      checked_u32(sw_out_.size(), "rebuild adjacency");

  for (std::size_t c = 0; c < channels_.size(); ++c) {
    if (!channel_alive(checked_narrow<ChannelId>(c, "rebuild adjacency"))) {
      ++num_dead_channels_;
    }
  }
}

void Network::set_link_up(ChannelId c, bool up) {
  ensure_fault_state();
  if (c >= channels_.size() || !is_switch_channel(c)) {
    throw std::invalid_argument(
        "set_link_up: only inter-switch links can change state");
  }
  link_up_[c] = up ? 1 : 0;
  link_up_[channels_[c].reverse] = up ? 1 : 0;
  rebuild_alive_adjacency();
}

void Network::set_switch_up(NodeId sw, bool up) {
  ensure_fault_state();
  if (sw >= nodes_.size() || !is_switch(sw)) {
    throw std::invalid_argument("set_switch_up: not a switch");
  }
  switch_up_[nodes_[sw].type_index] = up ? 1 : 0;
  rebuild_alive_adjacency();
}

std::size_t Network::num_alive_switches() const {
  if (!has_fault_state()) return switches_.size();
  std::size_t alive = 0;
  for (std::uint8_t u : switch_up_) alive += u;
  return alive;
}

bool Network::alive_connected() const {
  const std::size_t alive = num_alive_switches();
  if (alive <= 1) return true;
  NodeId start = kInvalidNode;
  for (NodeId sw : switches_) {
    if (switch_up(sw)) {
      start = sw;
      break;
    }
  }
  std::vector<bool> seen(nodes_.size(), false);
  std::queue<NodeId> q;
  q.push(start);
  seen[start] = true;
  std::size_t reached = 1;
  while (!q.empty()) {
    NodeId n = q.front();
    q.pop();
    for (ChannelId c : out_switch_channels(n)) {
      NodeId m = channels_[c].dst;
      if (!seen[m]) {
        seen[m] = true;
        ++reached;
        q.push(m);
      }
    }
  }
  return reached == alive;
}

void Network::validate() const {
  if (!frozen_) throw std::runtime_error("validate: network not frozen");
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    const Channel& ch = channels_[c];
    if (ch.src >= nodes_.size() || ch.dst >= nodes_.size()) {
      throw std::runtime_error("validate: channel endpoint out of range");
    }
    if (ch.reverse >= channels_.size() ||
        channels_[ch.reverse].reverse !=
            checked_narrow<ChannelId>(c, "validate") ||
        channels_[ch.reverse].src != ch.dst ||
        channels_[ch.reverse].dst != ch.src) {
      throw std::runtime_error("validate: broken reverse pairing");
    }
  }
  for (NodeId t : terminals_) {
    // Physical view: a down switch hides its terminals' channels from the
    // alive adjacency, but the structural invariant is about the wiring.
    if (out_channels_all(t).size() != 1) {
      throw std::runtime_error("validate: terminal must have exactly 1 link");
    }
    ChannelId inj = injection_channel(t);
    if (channels_[inj].src != t || !is_switch(channels_[inj].dst)) {
      throw std::runtime_error("validate: bad injection channel");
    }
  }
  // Cross-check the terminals_on_switch counters.
  std::vector<std::uint32_t> count(switches_.size(), 0);
  for (NodeId t : terminals_) ++count[nodes_[switch_of(t)].type_index];
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    if (count[i] != terminals_on_switch_[i]) {
      throw std::runtime_error("validate: terminal counter mismatch");
    }
  }
}

bool Network::connected() const {
  if (nodes_.empty()) return true;
  std::vector<bool> seen(nodes_.size(), false);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = true;
  std::size_t reached = 1;
  while (!q.empty()) {
    NodeId n = q.front();
    q.pop();
    for (ChannelId c : out_channels(n)) {
      NodeId m = channels_[c].dst;
      if (!seen[m]) {
        seen[m] = true;
        ++reached;
        q.push(m);
      }
    }
  }
  return reached == nodes_.size();
}

}  // namespace dfsssp
