// Serialization of topologies.
//
// Two formats:
//  * DOT (write-only) for visual inspection with graphviz;
//  * a line-based "netfile" (read/write), the role the paper's graph files
//    for ORCS played: one line per switch/terminal/link, '#' comments.
//
//      switch <name>
//      terminal <name> <switch-name>
//      link <switch-name> <switch-name>
#pragma once

#include <iosfwd>
#include <string>

#include "topology/topology.hpp"

namespace dfsssp {

/// Writes the network as an undirected graphviz graph (one edge per link).
void write_dot(const Network& net, std::ostream& out);

/// Writes the netfile format described in the file header.
void write_netfile(const Network& net, std::ostream& out);
void write_netfile(const Network& net, const std::string& path);

/// Parses a netfile. Throws std::runtime_error with a line number on
/// malformed input. The result is frozen and validated; meta is empty
/// (family "netfile").
Topology read_netfile(std::istream& in, const std::string& name = "netfile");
Topology read_netfile_path(const std::string& path);

/// Parses the text format of InfiniBand's `ibnetdiscover` tool (the way a
/// real fabric is dumped), covering the structural subset:
///
///   Switch  24 "S-0002c9020048d8f0"  # "sw1" ... lid 2 lmc 0
///   [1]  "H-0002c9020020e98c"[1](...)  # "node01 HCA-1" lid 4 4xDDR
///   [13] "S-0002c902004c0001"[2]       # ...
///   Ca  2 "H-0002c9020020e98c"         # "node01 HCA-1"
///   [1](...) "S-0002c9020048d8f0"[1]   # lid 4 ...
///
/// Every physical link appears in both endpoint blocks; duplicates are
/// folded by (guid,port,guid,port). Nodes are named by the quoted comment
/// name when present, else by GUID. CA links beyond port 1 are ignored
/// (our model is single-ported terminals; multi-rail HCAs keep rail 1).
Topology read_ibnetdiscover(std::istream& in,
                            const std::string& name = "ibnetdiscover");
Topology read_ibnetdiscover_path(const std::string& path);

}  // namespace dfsssp
