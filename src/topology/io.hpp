// Serialization of topologies.
//
// Three formats:
//  * DOT (write-only) for visual inspection with graphviz;
//  * a line-based "netfile" (read/write), the role the paper's graph files
//    for ORCS played: one line per switch/terminal/link, '#' comments;
//  * a binary streaming edge list ("DFEL"), the warehouse-scale format:
//    switch count up front, then raw little-endian u32 link pairs and
//    terminal attachment switch ids — 8 bytes per link, 4 per terminal,
//    no names. Read back through NetworkBuilder, which canonicalizes the
//    channel numbering to links-then-terminals (the order every generator
//    produces anyway).
//
//      switch <name>
//      terminal <name> <switch-name>
//      link <switch-name> <switch-name>
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>

#include "topology/builder.hpp"
#include "topology/topology.hpp"

namespace dfsssp {

/// Writes the network as an undirected graphviz graph (one edge per link).
void write_dot(const Network& net, std::ostream& out);

/// Writes the netfile format described in the file header.
void write_netfile(const Network& net, std::ostream& out);
void write_netfile(const Network& net, const std::string& path);

/// Parses a netfile. Throws std::runtime_error with a line number on
/// malformed input. The result is frozen and validated; meta is empty
/// (family "netfile").
Topology read_netfile(std::istream& in, const std::string& name = "netfile");
Topology read_netfile_path(const std::string& path);

// ---- binary edge list (DFEL) ------------------------------------------------
//
// Layout (all integers little-endian):
//   u64 magic        "DFELIST1"
//   u64 num_switches
//   u64 num_links
//   u64 num_terminals
//   num_links     x (u32 a, u32 b)   inter-switch links, stream order
//   num_terminals x u32              attachment switch per terminal, in
//                                    terminal-index order

/// The 8-byte magic ("DFELIST1" as a little-endian u64); exposed so format
/// sniffers (dftopo validate) can recognize the file.
constexpr std::uint64_t kEdgeListMagic = 0x315453494C454644ULL;

/// Incremental writer for generators that stream chunks to disk: the
/// header goes out with placeholder counts, add_links/add_terminals append
/// raw records (all links before any terminal), and finish() seeks back to
/// patch the counts. The stream must therefore be seekable (a file).
class EdgeListWriter {
 public:
  EdgeListWriter(const std::string& path, std::uint64_t num_switches);
  ~EdgeListWriter();

  EdgeListWriter(const EdgeListWriter&) = delete;
  EdgeListWriter& operator=(const EdgeListWriter&) = delete;

  void add_links(std::span<const SwitchLink> links);
  void add_terminals(std::span<const std::uint32_t> switch_of);

  /// Patches the header counts and closes the file. Called by the
  /// destructor when not invoked explicitly; call it directly to surface
  /// write errors as exceptions.
  void finish();

 private:
  struct Impl;
  Impl* impl_;
};

/// Writes a frozen network: links in channel order (each physical link
/// once), then terminals in terminal-index order.
void write_edgelist(const Network& net, const std::string& path);

/// Reads a DFEL file into a frozen, validated topology (family
/// "edgelist"). Throws std::runtime_error on bad magic, truncated body, or
/// out-of-range endpoints.
Topology read_edgelist(std::istream& in, const std::string& name = "edgelist");
Topology read_edgelist_path(const std::string& path);

/// Parses the text format of InfiniBand's `ibnetdiscover` tool (the way a
/// real fabric is dumped), covering the structural subset:
///
///   Switch  24 "S-0002c9020048d8f0"  # "sw1" ... lid 2 lmc 0
///   [1]  "H-0002c9020020e98c"[1](...)  # "node01 HCA-1" lid 4 4xDDR
///   [13] "S-0002c902004c0001"[2]       # ...
///   Ca  2 "H-0002c9020020e98c"         # "node01 HCA-1"
///   [1](...) "S-0002c9020048d8f0"[1]   # lid 4 ...
///
/// Every physical link appears in both endpoint blocks; duplicates are
/// folded by (guid,port,guid,port). Nodes are named by the quoted comment
/// name when present, else by GUID. CA links beyond port 1 are ignored
/// (our model is single-ported terminals; multi-rail HCAs keep rail 1).
Topology read_ibnetdiscover(std::istream& in,
                            const std::string& name = "ibnetdiscover");
Topology read_ibnetdiscover_path(const std::string& path);

}  // namespace dfsssp
