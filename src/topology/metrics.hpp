// Structural network metrics (Section I's "idealized specification"):
// diameter, average shortest-path length, degree statistics, and a
// bisection-width estimate. These are the upper bounds the paper contrasts
// with the routing-dependent effective bisection bandwidth.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "topology/network.hpp"

namespace dfsssp {

struct NetworkMetrics {
  /// Longest shortest switch-to-switch path (hops).
  std::uint32_t diameter = 0;
  /// Mean shortest-path length over ordered switch pairs.
  double avg_path_length = 0.0;
  /// Inter-switch degree statistics.
  std::uint32_t min_degree = 0;
  std::uint32_t max_degree = 0;
  double avg_degree = 0.0;
  /// Physical links between switches (channel pairs).
  std::uint64_t num_links = 0;
  /// Terminals per switch spread.
  std::uint32_t min_terminals = 0;
  std::uint32_t max_terminals = 0;
};

/// Exact metrics via per-switch BFS: O(S * (S + C)).
NetworkMetrics compute_metrics(const Network& net);

/// Estimated bisection width in physical links: the best (smallest) cut
/// found over `trials` randomized balanced partitions improved by
/// Kernighan-Lin-style greedy swaps. An upper bound on the true bisection
/// width; exact on small symmetric topologies in practice.
std::uint64_t estimate_bisection_width(const Network& net, Rng& rng,
                                       std::uint32_t trials = 8);

/// The relative effective-bisection-bandwidth ceiling implied by the
/// estimated bisection width: a random perfect matching sends about half
/// its flows across the cut, so eBB <= min(1, width / (terminals / 4)).
double bisection_bandwidth_ceiling(const Network& net, Rng& rng);

/// Order-sensitive 64-bit FNV-1a digest of the frozen network's structure:
/// node types/indices, the full channel list (src, dst, reverse) and the
/// terminal attachments. Names are excluded — two constructions that wire
/// the same channels in the same order hash equal regardless of naming.
/// The determinism fingerprint the gen_scale bench and the chunked-vs-seed
/// property tests compare.
std::uint64_t structure_hash(const Network& net);

}  // namespace dfsssp
