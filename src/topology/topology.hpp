// A Network bundled with generator metadata.
//
// Some routing engines need structural knowledge beyond the raw graph:
// DOR needs torus coordinates, fat-tree routing needs tree levels. The
// generators record that knowledge here; engines that cannot operate on a
// given topology report failure instead of guessing (the paper's Figure 4
// shows exactly this as missing bars).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/network.hpp"

namespace dfsssp {

struct TopologyMeta {
  /// Generator family: "ring", "torus", "mesh", "kary-ntree", "xgft",
  /// "kautz", "random", "clos", "dragonfly", "real/<name>", ...
  std::string family;

  /// Torus/mesh: radix of each dimension. Empty otherwise.
  std::vector<std::uint32_t> dims;
  bool wraparound = false;

  /// Torus/mesh: per switch index, dims.size() coordinates (flattened).
  std::vector<std::uint32_t> sw_coord;

  /// Trees: level per switch index (0 = leaf level). -1 when unknown,
  /// in which case fat-tree routing refuses the topology.
  std::vector<std::int32_t> sw_level;

  bool has_coords() const { return !sw_coord.empty(); }
  bool has_levels() const { return !sw_level.empty(); }
};

struct Topology {
  std::string name;
  Network net;
  TopologyMeta meta;
};

}  // namespace dfsssp
