// The paper's Figure 2, live: a 5-switch ring where SSSP routes all 2-hop
// traffic clockwise. With finite buffers the network physically deadlocks;
// DFSSSP's virtual-layer assignment drains the identical traffic.
//
//   ./deadlock_demo [--ring=5] [--shift=2] [--packets=16] [--buffers=1]
#include <cstdio>

#include "common/cli.hpp"
#include "routing/dfsssp.hpp"
#include "routing/sssp.hpp"
#include "sim/flitsim.hpp"
#include "topology/generators.hpp"

using namespace dfsssp;

namespace {

Flows shift_pattern(const Network& net, std::uint32_t shift) {
  Flows flows;
  const std::uint32_t n = static_cast<std::uint32_t>(net.num_terminals());
  for (std::uint32_t i = 0; i < n; ++i) {
    flows.emplace_back(net.terminal_by_index(i),
                       net.terminal_by_index((i + shift) % n));
  }
  return flows;
}

void run(const char* label, const Topology& topo, const RoutingTable& table,
         const Flows& flows, const FlitSimOptions& opts) {
  Rng rng(7);
  FlitSimResult r = simulate_flit_level(topo.net, table, flows, opts, rng);
  std::printf("%-8s: %s after %llu cycles (%llu delivered, %llu stuck), %u VLs\n",
              label,
              r.deadlocked ? "DEADLOCKED"
                           : (r.drained ? "drained" : "cycle limit"),
              static_cast<unsigned long long>(r.cycles),
              static_cast<unsigned long long>(r.delivered),
              static_cast<unsigned long long>(r.in_flight_at_end),
              unsigned(table.num_layers()));
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::uint32_t ring = static_cast<std::uint32_t>(cli.get_int("ring", 5));
  const std::uint32_t shift = static_cast<std::uint32_t>(cli.get_int("shift", 2));
  FlitSimOptions opts;
  opts.packets_per_flow = static_cast<std::uint32_t>(cli.get_int("packets", 16));
  opts.buffer_slots = static_cast<std::uint32_t>(cli.get_int("buffers", 1));

  Topology topo = make_ring(ring, 1);
  Flows flows = shift_pattern(topo.net, shift);
  std::printf("ring of %u switches, every node sends %u packets %u hops clockwise\n",
              ring, opts.packets_per_flow, shift);

  RouteResponse sssp = SsspRouter().route(RouteRequest(topo));
  RouteResponse dfsssp = DfssspRouter().route(RouteRequest(topo));
  if (!sssp.ok || !dfsssp.ok) {
    std::printf("routing failed\n");
    return 1;
  }
  run("SSSP", topo, sssp.table, flows, opts);
  run("DFSSSP", topo, dfsssp.table, flows, opts);
  std::printf("\nDFSSSP broke %llu dependency cycles into %u virtual layers.\n",
              static_cast<unsigned long long>(dfsssp.stats.cycles_broken),
              unsigned(dfsssp.stats.layers_used));
  return 0;
}
