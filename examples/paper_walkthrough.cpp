// A guided tour through the paper's running examples, as executable code:
//
//   Section II  - SSSP's weight balancing on a multi-path topology;
//   Section III - the ring whose channel dependency graph is cyclic
//                 (Figure 2) and its per-layer CDGs after Algorithm 2;
//   Section III-A - the Figure 3 APP instance and its exact minimum;
//   Theorem 1   - the k-coloring reduction on a small graph.
//
// Run: ./paper_walkthrough
#include <cstdio>
#include <numeric>
#include <sstream>

#include "cdg/app.hpp"
#include "cdg/report.hpp"
#include "cdg/verify.hpp"
#include "routing/collect.hpp"
#include "routing/dfsssp.hpp"
#include "routing/sssp.hpp"
#include "sim/congestion.hpp"
#include "topology/generators.hpp"

using namespace dfsssp;

namespace {

void section_sssp_balancing() {
  std::printf("== Section II: SSSP's global balancing ==\n");
  // Two leaf switches under two spines; all traffic between the leaves.
  Topology topo = make_clos2(2, 2, 1, 8);
  for (bool balance : {false, true}) {
    RouteResponse out =
        SsspRouter(SsspOptions{.balance = balance}).route(RouteRequest(topo));
    RankMap map = RankMap::round_robin(
        topo.net, static_cast<std::uint32_t>(topo.net.num_terminals()));
    Flows flows = map.to_flows(all_to_all(map.num_ranks()));
    LoadReport load = analyze_load(topo.net, out.table, flows);
    std::printf("  weights %-3s -> max fabric load %u, imbalance %.2f\n",
                balance ? "on" : "off", load.max_fabric_load, load.imbalance);
  }
  std::printf("  (Algorithm 1's edge-weight updates spread the load over "
              "both spines)\n\n");
}

void section_ring_cdg() {
  std::printf("== Section III: the Figure 2 ring's dependency cycle ==\n");
  Topology topo = make_ring(5, 1);
  RouteResponse sssp = SsspRouter().route(RouteRequest(topo));
  PathSet paths = collect_paths(topo.net, sssp.table);
  std::vector<std::uint32_t> all(paths.size());
  std::iota(all.begin(), all.end(), 0U);
  std::printf("  SSSP on the 5-ring: CDG acyclic? %s\n",
              paths_are_acyclic(paths, all,
                                static_cast<std::uint32_t>(topo.net.num_channels()))
                  ? "yes"
                  : "NO - deadlock possible");

  RouteResponse dfsssp =
      DfssspRouter(DfssspOptions{.balance = false}).route(RouteRequest(topo));
  PathSet dpaths = collect_paths(topo.net, dfsssp.table);
  std::vector<Layer> layers = collect_layers(topo.net, dfsssp.table, dpaths);
  std::printf("  DFSSSP breaks %llu cycles into %u layers:\n",
              static_cast<unsigned long long>(dfsssp.stats.cycles_broken),
              unsigned(dfsssp.stats.layers_used));
  for (const CdgLayerStats& s : cdg_layer_stats(
           dpaths, layers, static_cast<std::uint32_t>(topo.net.num_channels()))) {
    std::printf("    layer %u: %llu paths, %u CDG nodes, %u CDG edges\n",
                unsigned(s.layer), static_cast<unsigned long long>(s.paths),
                s.nodes, s.edges);
  }
  std::printf("  per-layer CDGs acyclic? %s\n\n",
              layering_is_deadlock_free(
                  dpaths, layers,
                  static_cast<std::uint32_t>(topo.net.num_channels()))
                  ? "yes - deadlock-free"
                  : "no");
}

void section_figure3() {
  std::printf("== Section III-A: the Figure 3 APP instance ==\n");
  // Channels a=0 b=1 c=2 d=3; p1=bc, p2=abc, p3=cdab.
  app::Instance inst;
  inst.num_nodes = 4;
  inst.paths = {{1, 2}, {0, 1, 2}, {2, 3, 0, 1}};
  std::printf("  all three paths in one class acyclic? %s\n",
              app::union_is_acyclic(inst, std::vector<std::uint32_t>{0, 1, 2})
                  ? "yes"
                  : "no");
  std::printf("  {p1,p2} | {p3} is a 2-cover? %s\n",
              app::is_cover(inst, std::vector<std::uint32_t>{0, 0, 1}, 2)
                  ? "yes"
                  : "no");
  std::printf("  exact minimum number of classes: %u\n\n",
              app::exact_min_layers(inst, 4));
}

void section_theorem1() {
  std::printf("== Theorem 1: k-coloring -> APP reduction ==\n");
  // A 5-cycle: chromatic number 3.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{
      {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}};
  app::Instance inst = app::reduction_from_coloring(5, edges);
  std::printf("  C5: chromatic number %u, reduced APP minimum %u\n",
              app::chromatic_number(5, edges, 5),
              app::exact_min_layers(inst, 5));
  std::printf("  (equal by construction - a k-cover is a k-coloring and "
              "vice versa)\n");
}

}  // namespace

int main() {
  section_sssp_balancing();
  section_ring_cdg();
  section_figure3();
  section_theorem1();
  return 0;
}
