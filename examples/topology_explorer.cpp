// Swiss-army CLI around the library: generate or load a topology, route it
// with any engine, print statistics, and export DOT/netfile renderings.
//
//   ./topology_explorer --family=torus --dims=4x4 --terminals=2
//     --router=DFSSSP --dot=out.dot --netfile=out.net
//   ./topology_explorer --load=my.net --router=LASH
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cdg/report.hpp"
#include "common/cli.hpp"
#include "routing/collect.hpp"
#include "routing/dump.hpp"
#include "routing/router.hpp"
#include "routing/verify.hpp"
#include "sim/congestion.hpp"
#include "topology/generators.hpp"
#include "topology/io.hpp"
#include "topology/metrics.hpp"

using namespace dfsssp;

namespace {

std::vector<std::uint32_t> parse_dims(const std::string& spec) {
  std::vector<std::uint32_t> dims;
  std::stringstream ss(spec);
  std::string part;
  while (std::getline(ss, part, 'x')) {
    dims.push_back(static_cast<std::uint32_t>(std::stoul(part)));
  }
  return dims;
}

Topology build(const Cli& cli) {
  if (cli.has("load")) return read_netfile_path(cli.get("load", ""));
  if (cli.has("load-ib")) return read_ibnetdiscover_path(cli.get("load-ib", ""));
  const std::string family = cli.get("family", "random");
  const std::uint32_t terminals =
      static_cast<std::uint32_t>(cli.get_int("terminals", 2));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));
  if (family == "ring") {
    return make_ring(static_cast<std::uint32_t>(cli.get_int("switches", 8)),
                     terminals);
  }
  if (family == "torus" || family == "mesh") {
    auto dims = parse_dims(cli.get("dims", "4x4"));
    return make_torus(dims, terminals, family == "torus");
  }
  if (family == "hypercube") {
    return make_hypercube(static_cast<std::uint32_t>(cli.get_int("dim", 4)),
                          terminals);
  }
  if (family == "tree") {
    return make_kary_ntree(static_cast<std::uint32_t>(cli.get_int("k", 4)),
                           static_cast<std::uint32_t>(cli.get_int("n", 2)));
  }
  if (family == "xgft") {
    auto ms = parse_dims(cli.get("ms", "4x4"));
    auto ws = parse_dims(cli.get("ws", "2x2"));
    return make_xgft(static_cast<std::uint32_t>(ms.size()), ms, ws);
  }
  if (family == "kautz") {
    return make_kautz(static_cast<std::uint32_t>(cli.get_int("b", 3)),
                      static_cast<std::uint32_t>(cli.get_int("n", 3)),
                      static_cast<std::uint32_t>(cli.get_int("endpoints", 256)));
  }
  if (family == "dragonfly") {
    return make_dragonfly(static_cast<std::uint32_t>(cli.get_int("a", 4)),
                          terminals,
                          static_cast<std::uint32_t>(cli.get_int("h", 2)),
                          static_cast<std::uint32_t>(cli.get_int("g", 9)));
  }
  if (family == "hyperx") {
    auto dims = parse_dims(cli.get("dims", "4x4"));
    return make_hyperx(dims, terminals);
  }
  if (family == "complete") {
    return make_fully_connected(
        static_cast<std::uint32_t>(cli.get_int("switches", 8)), terminals);
  }
  if (family == "random") {
    return make_random(static_cast<std::uint32_t>(cli.get_int("switches", 16)),
                       terminals,
                       static_cast<std::uint32_t>(cli.get_int("links", 40)),
                       static_cast<std::uint32_t>(cli.get_int("ports", 16)),
                       rng);
  }
  throw std::runtime_error("unknown --family=" + family);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  if (cli.has("help")) {
    std::printf(
        "usage: topology_explorer [--family=ring|torus|mesh|hypercube|tree|"
        "xgft|kautz|dragonfly|hyperx|complete|random] [--load=FILE]\n"
        "  [--router=MinHop|Up*/Down*|FatTree|DOR|LASH|SSSP|DFSSSP|all]\n"
        "  [--dot=FILE] [--netfile=FILE] [--patterns=N] [--metrics]\n"
        "  [--save-dump=FILE] [--load-dump=FILE] [--cdg-dot=FILE]\n");
    return 0;
  }
  Topology topo;
  try {
    topo = build(cli);
  } catch (const std::exception& e) {
    std::printf("cannot build topology: %s\n", e.what());
    return 1;
  }
  std::printf("%s: %zu switches, %zu terminals, %zu directed channels\n",
              topo.name.c_str(), topo.net.num_switches(),
              topo.net.num_terminals(), topo.net.num_channels());

  if (cli.has("dot")) {
    std::ofstream out(cli.get("dot", ""));
    write_dot(topo.net, out);
    std::printf("wrote DOT to %s\n", cli.get("dot", "").c_str());
  }
  if (cli.has("netfile")) {
    write_netfile(topo.net, cli.get("netfile", ""));
    std::printf("wrote netfile to %s\n", cli.get("netfile", "").c_str());
  }
  if (cli.get_bool("metrics", false)) {
    NetworkMetrics m = compute_metrics(topo.net);
    Rng mrng(1);
    std::printf(
        "metrics: diameter=%u avg_path=%.3f degree=%u..%u (avg %.2f) "
        "links=%llu bisection~%llu links (ceiling eBB ~%.3f)\n",
        m.diameter, m.avg_path_length, m.min_degree, m.max_degree,
        m.avg_degree, static_cast<unsigned long long>(m.num_links),
        static_cast<unsigned long long>(estimate_bisection_width(topo.net, mrng)),
        bisection_bandwidth_ceiling(topo.net, mrng));
  }

  if (cli.has("load-dump")) {
    try {
      RoutingTable loaded =
          read_forwarding_dump_path(topo.net, cli.get("load-dump", ""));
      VerifyReport report = verify_routing(topo.net, loaded);
      std::printf("loaded dump: connected=%s minimal=%s deadlock-free=%s\n",
                  report.connected() ? "yes" : "no",
                  report.minimal() ? "yes" : "no",
                  routing_is_deadlock_free(topo.net, loaded) ? "yes" : "no");
    } catch (const std::exception& e) {
      std::printf("cannot load dump: %s\n", e.what());
      return 1;
    }
  }

  const std::string engine = cli.get("router", "DFSSSP");
  const std::uint32_t patterns =
      static_cast<std::uint32_t>(cli.get_int("patterns", 100));
  RankMap map = RankMap::round_robin(
      topo.net, static_cast<std::uint32_t>(topo.net.num_terminals()));
  for (const auto& router : make_all_routers()) {
    if (engine != "all" && router->name() != engine) continue;
    RouteResponse out = router->route(RouteRequest(topo));
    if (!out.ok) {
      std::printf("%-10s failed: %s\n", router->name().c_str(),
                  out.error.c_str());
      continue;
    }
    VerifyReport report = verify_routing(topo.net, out.table);
    Rng rng(4711);
    EbbResult ebb =
        effective_bisection_bandwidth(topo.net, out.table, map, patterns, rng);
    std::printf(
        "%-10s routed %llu paths in %.2f ms | VLs=%u minimal=%s dlfree=%s "
        "eBB=%.4f\n",
        router->name().c_str(), static_cast<unsigned long long>(out.stats.paths),
        out.stats.total_seconds() * 1e3, unsigned(out.stats.layers_used),
        report.minimal() ? "yes" : "no",
        routing_is_deadlock_free(topo.net, out.table) ? "yes" : "no", ebb.ebb);

    if (cli.has("save-dump")) {
      write_forwarding_dump(topo.net, out.table, cli.get("save-dump", ""));
      std::printf("wrote forwarding dump to %s\n",
                  cli.get("save-dump", "").c_str());
    }
    if (cli.has("cdg-dot")) {
      PathSet paths = collect_paths(topo.net, out.table);
      std::vector<Layer> layers = collect_layers(topo.net, out.table, paths);
      std::ofstream cdg_out(cli.get("cdg-dot", ""));
      write_cdg_dot(topo.net, paths, layers, 0, cdg_out);
      std::printf("wrote layer-0 CDG DOT to %s\n",
                  cli.get("cdg-dot", "").c_str());
    }
  }
  return 0;
}
