// Quickstart: build a topology, route it deadlock-free with DFSSSP, and
// measure the effective bisection bandwidth.
//
//   ./quickstart [--switches=12] [--links=30] [--terminals=4] [--seed=1]
//
// Walks through the library's core loop:
//   topology -> Router::route -> verify -> simulate.
#include <cstdio>

#include "common/cli.hpp"
#include "routing/collect.hpp"
#include "routing/dfsssp.hpp"
#include "routing/minhop.hpp"
#include "routing/verify.hpp"
#include "sim/congestion.hpp"
#include "topology/generators.hpp"

using namespace dfsssp;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::uint32_t switches =
      static_cast<std::uint32_t>(cli.get_int("switches", 12));
  const std::uint32_t links = static_cast<std::uint32_t>(cli.get_int("links", 30));
  const std::uint32_t terminals =
      static_cast<std::uint32_t>(cli.get_int("terminals", 4));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));

  // 1. An irregular network - the case the paper targets: no specialized
  //    engine (fat-tree, DOR) can route it, but DFSSSP can.
  Topology topo = make_random(switches, terminals, links, 16, rng);
  std::printf("topology %s: %zu switches, %zu terminals, %zu channels\n",
              topo.name.c_str(), topo.net.num_switches(),
              topo.net.num_terminals(), topo.net.num_channels());

  // 2. Route it with DFSSSP (globally balanced minimal paths + virtual
  //    layers for deadlock freedom) and MinHop as the baseline.
  DfssspRouter dfsssp;
  MinHopRouter minhop;
  RouteResponse df = dfsssp.route(RouteRequest(topo));
  RouteResponse mh = minhop.route(RouteRequest(topo));
  if (!df.ok || !mh.ok) {
    std::printf("routing failed: %s%s\n", df.error.c_str(), mh.error.c_str());
    return 1;
  }
  std::printf("DFSSSP: %llu paths in %.3f ms, %u virtual layers, %llu cycles broken\n",
              static_cast<unsigned long long>(df.stats.paths),
              df.stats.total_seconds() * 1e3, unsigned(df.stats.layers_used),
              static_cast<unsigned long long>(df.stats.cycles_broken));

  // 3. Verify what the paper promises: connected, minimal, deadlock-free.
  VerifyReport report = verify_routing(topo.net, df.table);
  std::printf("verify: connected=%s minimal=%s deadlock-free=%s\n",
              report.connected() ? "yes" : "no",
              report.minimal() ? "yes" : "no",
              routing_is_deadlock_free(topo.net, df.table) ? "yes" : "no");
  std::printf("MinHop deadlock-free=%s (no layering - cycles are expected)\n",
              routing_is_deadlock_free(topo.net, mh.table) ? "yes" : "no");

  // 4. Effective bisection bandwidth, the paper's headline metric.
  RankMap map = RankMap::round_robin(
      topo.net, static_cast<std::uint32_t>(topo.net.num_terminals()));
  Rng pat(42);
  EbbResult df_ebb = effective_bisection_bandwidth(topo.net, df.table, map, 200, pat);
  Rng pat2(42);
  EbbResult mh_ebb = effective_bisection_bandwidth(topo.net, mh.table, map, 200, pat2);
  std::printf("effective bisection bandwidth: DFSSSP %.3f vs MinHop %.3f (%.1f%%)\n",
              df_ebb.ebb, mh_ebb.ebb, 100.0 * (df_ebb.ebb / mh_ebb.ebb - 1.0));
  return 0;
}
