// Compare the full engine roster on one of the real-system stand-ins —
// the Section V/VI story in one binary.
//
//   ./cluster_compare [--system=deimos] [--patterns=100] [--ranks=0]
//
// Prints routing runtime, virtual lanes, minimality, and effective
// bisection bandwidth per engine (missing rows = the engine refused the
// topology, exactly like Figure 4's missing bars).
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "routing/collect.hpp"
#include "routing/router.hpp"
#include "routing/verify.hpp"
#include "sim/congestion.hpp"
#include "topology/generators.hpp"

using namespace dfsssp;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string system = cli.get("system", "deimos");
  const std::uint32_t patterns =
      static_cast<std::uint32_t>(cli.get_int("patterns", 100));

  Topology topo;
  if (system == "odin") topo = make_odin();
  else if (system == "chic") topo = make_chic();
  else if (system == "deimos") topo = make_deimos();
  else if (system == "tsubame") topo = make_tsubame();
  else if (system == "juropa") topo = make_juropa();
  else if (system == "ranger") topo = make_ranger();
  else {
    std::printf("unknown --system=%s (odin|chic|deimos|tsubame|juropa|ranger)\n",
                system.c_str());
    return 1;
  }

  std::uint32_t ranks = static_cast<std::uint32_t>(cli.get_int("ranks", 0));
  if (ranks == 0) ranks = static_cast<std::uint32_t>(topo.net.num_terminals());
  std::printf("%s stand-in: %zu switches, %zu terminals; %u ranks, %u patterns\n",
              topo.name.c_str(), topo.net.num_switches(),
              topo.net.num_terminals(), ranks, patterns);

  Table table("Routing comparison on " + topo.name,
              {"engine", "route_ms", "layering_ms", "VLs", "minimal",
               "deadlock-free", "eBB"});
  RankMap map = RankMap::round_robin(topo.net, ranks);
  for (const auto& router : make_all_routers()) {
    RouteResponse out = router->route(RouteRequest(topo));
    if (!out.ok) {
      table.row().cell(router->name()).cell("-").cell("-").cell("-")
          .cell("-").cell("-").cell("failed: " + out.error);
      continue;
    }
    VerifyReport report = verify_routing(topo.net, out.table);
    Rng rng(4711);  // identical pattern stream per engine
    EbbResult ebb =
        effective_bisection_bandwidth(topo.net, out.table, map, patterns, rng);
    table.row()
        .cell(router->name())
        .cell(out.stats.route_seconds * 1e3, 1)
        .cell(out.stats.layering_seconds * 1e3, 1)
        .cell(static_cast<std::uint64_t>(out.stats.layers_used))
        .cell(report.minimal() ? "yes" : "no")
        .cell(routing_is_deadlock_free(topo.net, out.table) ? "yes" : "no")
        .cell(ebb.ebb, 4);
  }
  table.print();
  return 0;
}
