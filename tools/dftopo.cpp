// dftopo: generate, validate and inspect topology files.
//
// The separate-validator idiom: generation (possibly parallel, possibly on
// another machine) and validation are different invocations, so a corrupted
// or hand-edited file never reaches a router without an independent
// structural check.
//
//   dftopo list
//   dftopo generate <config> --out=FILE [--format=edgelist|netfile|dot]
//                   [--threads=N] [--no-validate]
//   dftopo validate <file> [--format=edgelist|netfile|ibnetdiscover]
//   dftopo stats <config-or-file> [--threads=N]
//
// Every command also accepts --trace=FILE: a Chrome trace_event span log
// of the generation/validation phases (load in ui.perfetto.dev), the same
// instrumentation stream the bench binaries expose.
//
// Formats are sniffed from the file content when --format is absent (the
// DFEL magic, else netfile).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"
#include "topology/configs.hpp"
#include "topology/io.hpp"
#include "topology/metrics.hpp"

namespace dfsssp {
namespace {

int usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s <command> ...\n"
      "  list                         known topology configs\n"
      "  generate <config> --out=FILE [--format=edgelist|netfile|dot]\n"
      "                               [--threads=N] [--no-validate]\n"
      "  validate <file>              [--format=edgelist|netfile|ibnetdiscover]\n"
      "  stats <config-or-file>       [--threads=N]\n"
      "  --trace=FILE                 Chrome trace_event span log (any "
      "command)\n",
      prog);
  return 2;
}

ExecContext exec_from(const Cli& cli) {
  return ExecContext(
      static_cast<unsigned>(cli.get_int("threads", 0)));  // 0 = hardware
}

std::string sniff_format(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open: " + path);
  unsigned char head[8] = {0};
  in.read(reinterpret_cast<char*>(head), sizeof head);
  std::uint64_t magic = 0;
  for (int i = 7; i >= 0; --i) magic = (magic << 8) | head[i];
  if (in.gcount() == 8 && magic == kEdgeListMagic) return "edgelist";
  return "netfile";
}

Topology load_file(const std::string& path, std::string format) {
  if (format.empty()) format = sniff_format(path);
  if (format == "edgelist") return read_edgelist_path(path);
  if (format == "netfile") return read_netfile_path(path);
  if (format == "ibnetdiscover") return read_ibnetdiscover_path(path);
  throw std::runtime_error("unknown format '" + format + "'");
}

/// A config name builds the config; anything else is treated as a file.
Topology load_any(const std::string& arg, const Cli& cli) {
  if (find_topology_config(arg) != nullptr) {
    return build_topology_config(arg, exec_from(cli));
  }
  return load_file(arg, cli.get("format", ""));
}

void print_stats(const Topology& topo) {
  const Network& net = topo.net;
  std::uint64_t min_deg = ~0ULL, max_deg = 0, sum_deg = 0, links = 0;
  for (NodeId sw : net.switches()) {
    const std::uint64_t d = net.switch_degree(sw);
    min_deg = std::min(min_deg, d);
    max_deg = std::max(max_deg, d);
    sum_deg += d;
  }
  if (net.num_switches() == 0) min_deg = 0;
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    const Channel& ch = net.channel(c);
    if (c < ch.reverse && net.is_switch(ch.src) && net.is_switch(ch.dst)) {
      ++links;
    }
  }
  std::printf("name            %s\n", topo.name.c_str());
  std::printf("family          %s\n", topo.meta.family.c_str());
  std::printf("switches        %zu\n", net.num_switches());
  std::printf("terminals       %zu\n", net.num_terminals());
  std::printf("links           %llu\n", (unsigned long long)links);
  std::printf("channels        %zu\n", net.num_channels());
  std::printf("degree min/avg/max  %llu / %.2f / %llu\n",
              (unsigned long long)min_deg,
              net.num_switches() == 0
                  ? 0.0
                  : static_cast<double>(sum_deg) /
                        static_cast<double>(net.num_switches()),
              (unsigned long long)max_deg);
  std::printf("memory_bytes    %llu\n",
              (unsigned long long)net.memory_footprint());
  std::printf("structure_hash  %016llx\n",
              (unsigned long long)structure_hash(net));
}

int cmd_list() {
  for (const TopoConfig& cfg : topology_configs()) {
    std::printf("%-24s %s\n", cfg.name.c_str(), cfg.summary.c_str());
  }
  return 0;
}

int cmd_generate(const Cli& cli) {
  if (cli.positional().size() < 2) {
    std::fprintf(stderr, "generate: missing <config>\n");
    return 2;
  }
  const std::string config = cli.positional()[1];
  const std::string out = cli.get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate: missing --out=FILE\n");
    return 2;
  }
  const std::string format = cli.get("format", "edgelist");
  Timer timer;
  Topology topo = build_topology_config(config, exec_from(cli));
  const double gen_ms = timer.milliseconds();
  if (!cli.get_bool("no-validate", false)) {
    topo.net.validate();
    if (!topo.net.connected()) {
      std::fprintf(stderr, "generate: '%s' is not connected\n",
                   config.c_str());
      return 1;
    }
  }
  timer.restart();
  if (format == "edgelist") {
    write_edgelist(topo.net, out);
  } else if (format == "netfile") {
    write_netfile(topo.net, out);
  } else if (format == "dot") {
    std::ofstream os(out);
    if (!os) throw std::runtime_error("cannot open for writing: " + out);
    write_dot(topo.net, os);
  } else {
    std::fprintf(stderr, "generate: unknown format '%s'\n", format.c_str());
    return 2;
  }
  std::printf(
      "%s: %zu switches, %zu terminals -> %s (%s)  "
      "[generate %.1f ms, write %.1f ms, hash %016llx]\n",
      topo.name.c_str(), topo.net.num_switches(), topo.net.num_terminals(),
      out.c_str(), format.c_str(), gen_ms, timer.milliseconds(),
      (unsigned long long)structure_hash(topo.net));
  return 0;
}

int cmd_validate(const Cli& cli) {
  if (cli.positional().size() < 2) {
    std::fprintf(stderr, "validate: missing <file>\n");
    return 2;
  }
  const std::string path = cli.positional()[1];
  Topology topo = load_file(path, cli.get("format", ""));
  // read_* already ran Network::validate(); re-run explicitly so a future
  // relaxed reader still gets caught here, then check connectivity, which
  // loaders deliberately do not enforce.
  topo.net.validate();
  const bool connected = topo.net.connected();
  print_stats(topo);
  std::printf("validate        ok\n");
  std::printf("connected       %s\n", connected ? "yes" : "NO");
  if (!connected) return 1;
  return 0;
}

int cmd_stats(const Cli& cli) {
  if (cli.positional().size() < 2) {
    std::fprintf(stderr, "stats: missing <config-or-file>\n");
    return 2;
  }
  print_stats(load_any(cli.positional()[1], cli));
  return 0;
}

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  if (cli.positional().empty()) return usage(argv[0]);
  // Spans buffer from here; the atexit hook writes the file, so every exit
  // path (including thrown errors) still produces the trace.
  const std::string trace = cli.get("trace", "");
  if (!trace.empty()) obs::start_tracing(trace);
  const std::string& cmd = cli.positional()[0];
  if (cmd == "list") return cmd_list();
  if (cmd == "generate") return cmd_generate(cli);
  if (cmd == "validate") return cmd_validate(cli);
  if (cmd == "stats") return cmd_stats(cli);
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return usage(argv[0]);
}

}  // namespace
}  // namespace dfsssp

int main(int argc, char** argv) {
  try {
    return dfsssp::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dftopo: %s\n", e.what());
    return 1;
  }
}
