// dfroutectl: command-line client for the dfrouted daemon.
//
//   dfroutectl --socket=/tmp/dfrouted.sock route
//   dfroutectl --socket=... fault --kind=link_down --channel=17
//   dfroutectl --socket=... repair
//   dfroutectl --socket=... lookup --src=0 --dst=5
//   dfroutectl --socket=... lookups --count=1000   # CI load client
//   dfroutectl --socket=... stats [--json] | info | shutdown
//   dfroutectl --socket=... tail [--follow] [--kind=repair] [--from=N]
//   dfroutectl --socket=... journal        # flight-recorder counters
//
// Exit codes: 0 on a kOk response (for `lookups`: all responses ok),
// 1 on a structured error response, 2 on usage/transport failure.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "common/cli.hpp"
#include "fault/schedule.hpp"
#include "obs/journal/journal.hpp"
#include "obs/report/json_value.hpp"
#include "service/envelope.hpp"
#include "service/frame.hpp"

namespace {

using namespace dfsssp;
using namespace dfsssp::service;

int usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s --socket=<path> <command> [flags]\n"
      "commands:\n"
      "  route     [--max-layers=N]   recompute forwarding from scratch\n"
      "  repair                       coalesce pending faults and repair\n"
      "  fault     --kind=link_down|link_up|switch_down|switch_up\n"
      "            [--channel=C] [--switch=S]\n"
      "  lookup    --src=<switch id> --dst=<terminal id>\n"
      "  lookups   --count=N [--src-stride=K]  deterministic lookup loop\n"
      "  stats     [--json]           metrics summary (raw JSON with --json)\n"
      "  info                         snapshot version / daemon identity\n"
      "  tail      [--follow] [--kind=<event kind>] [--from=SEQ] [--max=N]\n"
      "                               stream flight-recorder records\n"
      "  journal                      flight-recorder counters\n"
      "  shutdown                     begin drain; daemon exits 0\n",
      prog);
  return 2;
}

int connect_socket(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// One request-response exchange. Returns false on transport failure.
bool exchange(int fd, const ServiceRequest& req, ServiceResponse& resp) {
  if (!write_frame(fd, encode_request(req))) return false;
  std::string payload;
  if (read_frame(fd, payload) != FrameResult::kFrame) return false;
  return decode_response(payload, resp) == Status::kOk;
}

int print_outcome(const ServiceResponse& resp) {
  if (resp.status != Status::kOk) {
    std::fprintf(stderr, "%s: %s (%s)\n", to_string(resp.kind),
                 resp.error.c_str(), to_string(resp.status));
    return 1;
  }
  switch (resp.kind) {
    case MsgKind::kRoute:
      std::printf("routed: snapshot v%llu, %u layers, %llu paths, %.3f ms\n",
                  static_cast<unsigned long long>(resp.snapshot_version),
                  unsigned{resp.layers},
                  static_cast<unsigned long long>(resp.paths),
                  static_cast<double>(resp.elapsed_ns) / 1e6);
      break;
    case MsgKind::kRepair:
      std::printf(
          "repaired: snapshot v%llu, %u events coalesced, %s, "
          "%u destinations rerouted, %llu paths migrated, %.3f ms\n",
          static_cast<unsigned long long>(resp.snapshot_version),
          resp.events_coalesced,
          resp.incremental ? "incremental" : "full recompute",
          resp.destinations_rerouted,
          static_cast<unsigned long long>(resp.paths_migrated),
          static_cast<double>(resp.elapsed_ns) / 1e6);
      break;
    case MsgKind::kFaultEvent:
      std::printf("queued: %u pending fault events\n", resp.pending_events);
      break;
    case MsgKind::kLookup:
      if (resp.ejected) {
        std::printf("snapshot v%llu: eject (destination on this switch)\n",
                    static_cast<unsigned long long>(resp.snapshot_version));
      } else {
        std::printf("snapshot v%llu: channel %u, layer %u\n",
                    static_cast<unsigned long long>(resp.snapshot_version),
                    resp.next_channel, unsigned{resp.layer});
      }
      break;
    case MsgKind::kStats:
      std::printf("%s\n", resp.stats_json.c_str());
      break;
    case MsgKind::kSnapshotInfo:
      std::printf(
          "dfrouted: engine %s, topology \"%s\" (%u switches, %u "
          "terminals)\nsnapshot v%llu (%llu swaps), %u layers, %llu paths, "
          "%u pending fault events\n",
          resp.engine.c_str(), resp.topology.c_str(), resp.switches,
          resp.terminals,
          static_cast<unsigned long long>(resp.snapshot_version),
          static_cast<unsigned long long>(resp.snapshot_swaps),
          unsigned{resp.layers},
          static_cast<unsigned long long>(resp.paths), resp.pending_events);
      std::printf("uptime %.1f s, peak rss %.1f MiB\n",
                  static_cast<double>(resp.uptime_ns) / 1e9,
                  static_cast<double>(resp.peak_rss_bytes) /
                      (1024.0 * 1024.0));
      break;
    case MsgKind::kShutdown:
      std::printf("draining\n");
      break;
    case MsgKind::kJournalTail:
      // Handled by run_tail; reaching here means a bare exchange.
      for (const auto& rec : resp.journal_records) {
        std::printf("%s\n", obs::journal::describe(rec).c_str());
      }
      break;
    case MsgKind::kJournalStats: {
      const obs::journal::JournalStats& s = resp.journal_stats;
      std::printf(
          "journal: %llu recorded (%u in ring of %u, %llu dropped), "
          "next seq %llu\n",
          static_cast<unsigned long long>(s.appended), s.size, s.capacity,
          static_cast<unsigned long long>(s.dropped),
          static_cast<unsigned long long>(s.next_seq));
      static const char* const kKindNames[] = {
          "?",    "route",          "repair", "fault_event",
          "coalesced_batch", "snapshot_swap", "veto"};
      for (int k = 1; k <= 6; ++k) {
        if (s.by_kind[k] == 0) continue;
        std::printf("  %-16s %llu\n", kKindNames[k],
                    static_cast<unsigned long long>(s.by_kind[k]));
      }
      if (!s.sink_path.empty()) {
        std::printf("  sink %s: %llu bytes%s\n", s.sink_path.c_str(),
                    static_cast<unsigned long long>(s.disk_bytes),
                    s.sink_failed ? " (FAILED)" : "");
      }
      break;
    }
  }
  return 0;
}

/// Maps a --kind flag value to the journal's event-kind byte; 0 = all.
/// Returns false for an unknown name.
bool parse_event_kind(const std::string& name, std::uint8_t& out) {
  out = 0;
  if (name.empty()) return true;
  for (std::uint8_t k = 1; k <= 6; ++k) {
    if (name == obs::journal::to_string(
                    static_cast<obs::journal::EventKind>(k))) {
      out = k;
      return true;
    }
  }
  return false;
}

/// `tail`: stream flight-recorder records, one describe() line each.
/// --follow keeps polling (200 ms ticks) until the transport drops.
int run_tail(int fd, const Cli& cli) {
  const bool follow = cli.get_bool("follow", false);
  std::uint8_t kind_filter = 0;
  if (!parse_event_kind(cli.get("kind", ""), kind_filter)) {
    std::fprintf(stderr,
                 "tail: unknown --kind (want route|repair|fault_event|"
                 "coalesced_batch|snapshot_swap|veto)\n");
    return 2;
  }
  ServiceRequest req;
  req.kind = MsgKind::kJournalTail;
  req.journal_from_seq =
      static_cast<std::uint64_t>(cli.get_int("from", 0));
  req.journal_max = static_cast<std::uint32_t>(cli.get_int("max", 0));
  req.journal_kind = kind_filter;
  for (;;) {
    ServiceResponse resp;
    req.request_id++;
    if (!exchange(fd, req, resp)) {
      std::fprintf(stderr, "tail: transport failure\n");
      return 2;
    }
    if (resp.status != Status::kOk) {
      std::fprintf(stderr, "tail: %s (%s)\n", resp.error.c_str(),
                   to_string(resp.status));
      return 1;
    }
    for (const auto& rec : resp.journal_records) {
      std::printf("%s\n", obs::journal::describe(rec).c_str());
    }
    std::fflush(stdout);
    req.journal_from_seq = resp.journal_next_seq;
    if (!follow) {
      // One full drain: keep asking until the ring has nothing newer.
      if (resp.journal_records.empty()) return 0;
      continue;
    }
    if (resp.journal_records.empty()) ::usleep(200 * 1000);
  }
}

/// Renders the stats JSON as tables; falls back to raw JSON when the
/// payload does not parse (a newer daemon, say).
void render_stats(const std::string& json) {
  obs::JsonValue doc;
  try {
    doc = obs::JsonValue::parse(json);
  } catch (const std::exception&) {
    std::printf("%s\n", json.c_str());
    return;
  }

  if (const obs::JsonValue* lat = doc.find("latency")) {
    std::printf("request latency:\n");
    std::printf("  %-8s %10s %12s %12s %12s %12s\n", "kind", "count",
                "p50 ms", "p90 ms", "p99 ms", "max ms");
    for (const auto& m : lat->members()) {
      const auto ns_field = [&](const char* key) {
        const obs::JsonValue* v = m.second.find(key);
        return v != nullptr && v->is_number() ? v->as_double() / 1e6 : 0.0;
      };
      const obs::JsonValue* count = m.second.find("count");
      std::printf("  %-8s %10llu %12.4f %12.4f %12.4f %12.4f\n",
                  m.first.c_str(),
                  static_cast<unsigned long long>(
                      count != nullptr && count->is_integer()
                          ? count->as_uint()
                          : 0),
                  ns_field("p50_ns"), ns_field("p90_ns"), ns_field("p99_ns"),
                  ns_field("max_ns"));
    }
  }
  if (const obs::JsonValue* proc = doc.find("process")) {
    const obs::JsonValue* uptime = proc->find("uptime_ns");
    const obs::JsonValue* rss = proc->find("peak_rss_bytes");
    std::printf("process: uptime %.1f s, peak rss %.1f MiB\n",
                uptime != nullptr && uptime->is_number()
                    ? uptime->as_double() / 1e9
                    : 0.0,
                rss != nullptr && rss->is_number()
                    ? rss->as_double() / (1024.0 * 1024.0)
                    : 0.0);
  }
  const auto print_section = [&](const char* key, const char* title) {
    const obs::JsonValue* sec = doc.find(key);
    if (sec == nullptr || !sec->is_object() || sec->size() == 0) return;
    std::printf("%s:\n", title);
    for (const auto& m : sec->members()) {
      if (m.second.is_object()) {
        // Histogram reading: show the merged tallies, not the buckets.
        const auto field = [&](const char* f) -> unsigned long long {
          const obs::JsonValue* v = m.second.find(f);
          return v != nullptr && v->is_number()
                     ? static_cast<unsigned long long>(v->as_double())
                     : 0;
        };
        std::printf("  %-40s count=%llu sum=%llu max=%llu\n", m.first.c_str(),
                    field("count"), field("sum"), field("max"));
      } else if (m.second.is_number()) {
        std::printf("  %-40s %llu\n", m.first.c_str(),
                    static_cast<unsigned long long>(m.second.as_double()));
      }
    }
  };
  print_section("metrics", "metrics");
  print_section("timing_metrics", "timing metrics");
}

/// `lookups`: a deterministic read-load client for the CI soak job. Needs
/// the fabric's node-id layout, so it first asks the daemon via
/// snapshot_info-style lookups: node ids are probed by walking src/dst
/// indices until the daemon answers kErrBadArgument.
int run_lookup_loop(int fd, const Cli& cli) {
  const auto count = static_cast<std::uint64_t>(cli.get_int("count", 1000));
  const auto stride =
      static_cast<std::uint32_t>(cli.get_int("src-stride", 7));

  ServiceRequest info_req;
  info_req.kind = MsgKind::kSnapshotInfo;
  ServiceResponse info;
  if (!exchange(fd, info_req, info) || info.status != Status::kOk) {
    std::fprintf(stderr, "lookups: cannot query daemon identity\n");
    return 2;
  }
  if (info.switches == 0 || info.terminals == 0) return 2;

  // Node ids are dense but interleaved by type, and the wire API does not
  // promise a layout — so walk the id space and keep going until `count`
  // lookups succeeded. kErrBadArgument just means the walk hit the wrong
  // node type; any other error counts as a failure. The walk is
  // deterministic, so repeated runs produce identical request streams.
  std::uint64_t ok = 0;
  std::uint64_t errs = 0;
  std::uint64_t sent = 0;
  const std::uint64_t max_sent = count * 64;
  const std::uint32_t total_nodes = info.switches + info.terminals;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  while (ok < count && sent < max_sent) {
    ServiceRequest req;
    req.kind = MsgKind::kLookup;
    req.request_id = ++sent;
    req.src_switch = src;
    req.dst_terminal = dst;
    ServiceResponse resp;
    if (!exchange(fd, req, resp)) return 2;
    if (resp.status == Status::kOk) {
      ++ok;
    } else if (resp.status != Status::kErrBadArgument) {
      ++errs;
    }
    src = (src + stride) % total_nodes;
    dst = (dst + 1) % total_nodes;
  }
  std::printf("lookups: %llu ok, %llu errors, %llu sent\n",
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(errs),
              static_cast<unsigned long long>(sent));
  return errs == 0 && ok == count ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string socket_path = cli.get("socket", "");
  if (socket_path.empty() || cli.positional().empty()) {
    return usage(cli.program().c_str());
  }
  const std::string& cmd = cli.positional().front();

  const int fd = connect_socket(socket_path);
  if (fd < 0) {
    std::fprintf(stderr, "dfroutectl: cannot connect to %s\n",
                 socket_path.c_str());
    return 2;
  }

  ServiceRequest req;
  req.request_id = 1;
  int rc = 2;
  if (cmd == "route") {
    req.kind = MsgKind::kRoute;
    req.max_layers = static_cast<Layer>(cli.get_int("max-layers", 0));
  } else if (cmd == "repair") {
    req.kind = MsgKind::kRepair;
  } else if (cmd == "fault") {
    req.kind = MsgKind::kFaultEvent;
    const std::string kind = cli.get("kind", "");
    if (kind == "link_down") {
      req.fault_kind = static_cast<std::uint8_t>(FaultKind::kLinkDown);
    } else if (kind == "link_up") {
      req.fault_kind = static_cast<std::uint8_t>(FaultKind::kLinkUp);
    } else if (kind == "switch_down") {
      req.fault_kind = static_cast<std::uint8_t>(FaultKind::kSwitchDown);
    } else if (kind == "switch_up") {
      req.fault_kind = static_cast<std::uint8_t>(FaultKind::kSwitchUp);
    } else {
      ::close(fd);
      return usage(cli.program().c_str());
    }
    req.channel = static_cast<ChannelId>(cli.get_int("channel", -1));
    req.sw = static_cast<NodeId>(cli.get_int("switch", -1));
  } else if (cmd == "lookup") {
    req.kind = MsgKind::kLookup;
    req.src_switch = static_cast<NodeId>(cli.get_int("src", -1));
    req.dst_terminal = static_cast<NodeId>(cli.get_int("dst", -1));
  } else if (cmd == "lookups") {
    rc = run_lookup_loop(fd, cli);
    ::close(fd);
    return rc;
  } else if (cmd == "tail") {
    rc = run_tail(fd, cli);
    ::close(fd);
    return rc;
  } else if (cmd == "stats") {
    req.kind = MsgKind::kStats;
  } else if (cmd == "journal") {
    req.kind = MsgKind::kJournalStats;
  } else if (cmd == "info") {
    req.kind = MsgKind::kSnapshotInfo;
  } else if (cmd == "shutdown") {
    req.kind = MsgKind::kShutdown;
  } else {
    ::close(fd);
    return usage(cli.program().c_str());
  }

  ServiceResponse resp;
  if (!exchange(fd, req, resp)) {
    std::fprintf(stderr, "dfroutectl: transport failure\n");
    rc = 2;
  } else if (cmd == "stats" && resp.status == Status::kOk &&
             !cli.get_bool("json", false)) {
    render_stats(resp.stats_json);
    rc = 0;
  } else {
    rc = print_outcome(resp);
  }
  ::close(fd);
  return rc;
}
