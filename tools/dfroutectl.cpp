// dfroutectl: command-line client for the dfrouted daemon.
//
//   dfroutectl --socket=/tmp/dfrouted.sock route
//   dfroutectl --socket=... fault --kind=link_down --channel=17
//   dfroutectl --socket=... repair
//   dfroutectl --socket=... lookup --src=0 --dst=5
//   dfroutectl --socket=... lookups --count=1000   # CI load client
//   dfroutectl --socket=... stats | info | shutdown
//
// Exit codes: 0 on a kOk response (for `lookups`: all responses ok),
// 1 on a structured error response, 2 on usage/transport failure.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "common/cli.hpp"
#include "fault/schedule.hpp"
#include "service/envelope.hpp"
#include "service/frame.hpp"

namespace {

using namespace dfsssp;
using namespace dfsssp::service;

int usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s --socket=<path> <command> [flags]\n"
      "commands:\n"
      "  route     [--max-layers=N]   recompute forwarding from scratch\n"
      "  repair                       coalesce pending faults and repair\n"
      "  fault     --kind=link_down|link_up|switch_down|switch_up\n"
      "            [--channel=C] [--switch=S]\n"
      "  lookup    --src=<switch id> --dst=<terminal id>\n"
      "  lookups   --count=N [--src-stride=K]  deterministic lookup loop\n"
      "  stats                        metrics snapshot as JSON\n"
      "  info                         snapshot version / daemon identity\n"
      "  shutdown                     begin drain; daemon exits 0\n",
      prog);
  return 2;
}

int connect_socket(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// One request-response exchange. Returns false on transport failure.
bool exchange(int fd, const ServiceRequest& req, ServiceResponse& resp) {
  if (!write_frame(fd, encode_request(req))) return false;
  std::string payload;
  if (read_frame(fd, payload) != FrameResult::kFrame) return false;
  return decode_response(payload, resp) == Status::kOk;
}

int print_outcome(const ServiceResponse& resp) {
  if (resp.status != Status::kOk) {
    std::fprintf(stderr, "%s: %s (%s)\n", to_string(resp.kind),
                 resp.error.c_str(), to_string(resp.status));
    return 1;
  }
  switch (resp.kind) {
    case MsgKind::kRoute:
      std::printf("routed: snapshot v%llu, %u layers, %llu paths, %.3f ms\n",
                  static_cast<unsigned long long>(resp.snapshot_version),
                  unsigned{resp.layers},
                  static_cast<unsigned long long>(resp.paths),
                  static_cast<double>(resp.elapsed_ns) / 1e6);
      break;
    case MsgKind::kRepair:
      std::printf(
          "repaired: snapshot v%llu, %u events coalesced, %s, "
          "%u destinations rerouted, %llu paths migrated, %.3f ms\n",
          static_cast<unsigned long long>(resp.snapshot_version),
          resp.events_coalesced,
          resp.incremental ? "incremental" : "full recompute",
          resp.destinations_rerouted,
          static_cast<unsigned long long>(resp.paths_migrated),
          static_cast<double>(resp.elapsed_ns) / 1e6);
      break;
    case MsgKind::kFaultEvent:
      std::printf("queued: %u pending fault events\n", resp.pending_events);
      break;
    case MsgKind::kLookup:
      if (resp.ejected) {
        std::printf("snapshot v%llu: eject (destination on this switch)\n",
                    static_cast<unsigned long long>(resp.snapshot_version));
      } else {
        std::printf("snapshot v%llu: channel %u, layer %u\n",
                    static_cast<unsigned long long>(resp.snapshot_version),
                    resp.next_channel, unsigned{resp.layer});
      }
      break;
    case MsgKind::kStats:
      std::printf("%s\n", resp.stats_json.c_str());
      break;
    case MsgKind::kSnapshotInfo:
      std::printf(
          "dfrouted: engine %s, topology \"%s\" (%u switches, %u "
          "terminals)\nsnapshot v%llu (%llu swaps), %u layers, %llu paths, "
          "%u pending fault events\n",
          resp.engine.c_str(), resp.topology.c_str(), resp.switches,
          resp.terminals,
          static_cast<unsigned long long>(resp.snapshot_version),
          static_cast<unsigned long long>(resp.snapshot_swaps),
          unsigned{resp.layers},
          static_cast<unsigned long long>(resp.paths), resp.pending_events);
      break;
    case MsgKind::kShutdown:
      std::printf("draining\n");
      break;
  }
  return 0;
}

/// `lookups`: a deterministic read-load client for the CI soak job. Needs
/// the fabric's node-id layout, so it first asks the daemon via
/// snapshot_info-style lookups: node ids are probed by walking src/dst
/// indices until the daemon answers kErrBadArgument.
int run_lookup_loop(int fd, const Cli& cli) {
  const auto count = static_cast<std::uint64_t>(cli.get_int("count", 1000));
  const auto stride =
      static_cast<std::uint32_t>(cli.get_int("src-stride", 7));

  ServiceRequest info_req;
  info_req.kind = MsgKind::kSnapshotInfo;
  ServiceResponse info;
  if (!exchange(fd, info_req, info) || info.status != Status::kOk) {
    std::fprintf(stderr, "lookups: cannot query daemon identity\n");
    return 2;
  }
  if (info.switches == 0 || info.terminals == 0) return 2;

  // Node ids are dense but interleaved by type, and the wire API does not
  // promise a layout — so walk the id space and keep going until `count`
  // lookups succeeded. kErrBadArgument just means the walk hit the wrong
  // node type; any other error counts as a failure. The walk is
  // deterministic, so repeated runs produce identical request streams.
  std::uint64_t ok = 0;
  std::uint64_t errs = 0;
  std::uint64_t sent = 0;
  const std::uint64_t max_sent = count * 64;
  const std::uint32_t total_nodes = info.switches + info.terminals;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  while (ok < count && sent < max_sent) {
    ServiceRequest req;
    req.kind = MsgKind::kLookup;
    req.request_id = ++sent;
    req.src_switch = src;
    req.dst_terminal = dst;
    ServiceResponse resp;
    if (!exchange(fd, req, resp)) return 2;
    if (resp.status == Status::kOk) {
      ++ok;
    } else if (resp.status != Status::kErrBadArgument) {
      ++errs;
    }
    src = (src + stride) % total_nodes;
    dst = (dst + 1) % total_nodes;
  }
  std::printf("lookups: %llu ok, %llu errors, %llu sent\n",
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(errs),
              static_cast<unsigned long long>(sent));
  return errs == 0 && ok == count ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string socket_path = cli.get("socket", "");
  if (socket_path.empty() || cli.positional().empty()) {
    return usage(cli.program().c_str());
  }
  const std::string& cmd = cli.positional().front();

  const int fd = connect_socket(socket_path);
  if (fd < 0) {
    std::fprintf(stderr, "dfroutectl: cannot connect to %s\n",
                 socket_path.c_str());
    return 2;
  }

  ServiceRequest req;
  req.request_id = 1;
  int rc = 2;
  if (cmd == "route") {
    req.kind = MsgKind::kRoute;
    req.max_layers = static_cast<Layer>(cli.get_int("max-layers", 0));
  } else if (cmd == "repair") {
    req.kind = MsgKind::kRepair;
  } else if (cmd == "fault") {
    req.kind = MsgKind::kFaultEvent;
    const std::string kind = cli.get("kind", "");
    if (kind == "link_down") {
      req.fault_kind = static_cast<std::uint8_t>(FaultKind::kLinkDown);
    } else if (kind == "link_up") {
      req.fault_kind = static_cast<std::uint8_t>(FaultKind::kLinkUp);
    } else if (kind == "switch_down") {
      req.fault_kind = static_cast<std::uint8_t>(FaultKind::kSwitchDown);
    } else if (kind == "switch_up") {
      req.fault_kind = static_cast<std::uint8_t>(FaultKind::kSwitchUp);
    } else {
      ::close(fd);
      return usage(cli.program().c_str());
    }
    req.channel = static_cast<ChannelId>(cli.get_int("channel", -1));
    req.sw = static_cast<NodeId>(cli.get_int("switch", -1));
  } else if (cmd == "lookup") {
    req.kind = MsgKind::kLookup;
    req.src_switch = static_cast<NodeId>(cli.get_int("src", -1));
    req.dst_terminal = static_cast<NodeId>(cli.get_int("dst", -1));
  } else if (cmd == "lookups") {
    rc = run_lookup_loop(fd, cli);
    ::close(fd);
    return rc;
  } else if (cmd == "stats") {
    req.kind = MsgKind::kStats;
  } else if (cmd == "info") {
    req.kind = MsgKind::kSnapshotInfo;
  } else if (cmd == "shutdown") {
    req.kind = MsgKind::kShutdown;
  } else {
    ::close(fd);
    return usage(cli.program().c_str());
  }

  ServiceResponse resp;
  if (!exchange(fd, req, resp)) {
    std::fprintf(stderr, "dfroutectl: transport failure\n");
    rc = 2;
  } else {
    rc = print_outcome(resp);
  }
  ::close(fd);
  return rc;
}
