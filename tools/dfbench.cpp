// dfbench — continuous-benchmarking orchestrator for the bench roster.
//
//   dfbench run      [--tier=quick|full] [--filter=GLOB] [--repetitions=N]
//                    [--out=DIR] [--bench-dir=DIR] [--threads=N]
//                    [--timeout=SECONDS] [--verbose]
//   dfbench compare  <baseline-dir> <run-dir>
//                    [--mad-k=K] [--rel-eps=F] [--abs-eps-ms=MS]
//                    [--fail-on-timing] [--verbose]
//   dfbench profile  <bench> [--tier=quick|full] [--out=DIR]
//                    [--bench-dir=DIR] [--threads=N] [--top=N]
//                    [--min-attribution=PCT] [--timeout=SECONDS]
//   dfbench list     [--tier=quick|full]
//
// `run` executes every roster bench (quick tier: small configurations that
// finish in seconds; full tier: the paper's largest configurations plus the
// extended benches), N repetitions each, and aggregates the per-repetition
// --json reports into one canonical BENCH_<name>.json per bench (median +
// MAD timing statistics; deterministic sections asserted identical across
// repetitions). Benches run as subprocesses with a per-bench timeout; a
// hung bench is killed, recorded as a failure, and the roster continues.
//
// `profile` runs one roster bench under the span-tree profiler and renders
// its hierarchical wall-time/work attribution: a top-N self-time table
// with the deterministic cost counters (heap operations, cycle-search
// steps, CDG insertions) per node, plus a collapsed-stack .folded export
// for flamegraph.pl / speedscope. --min-attribution=PCT fails the run when
// less than PCT% of the root wall time lands below the root — the CI guard
// that keeps the hot paths instrumented.
//
// `compare` pairs BENCH_*.json files by name across two directories and
// applies the obs/report gate: deterministic quality metrics (layer
// counts, eBB tables, CDG statistics, path histograms) must match the
// baseline EXACTLY — they are bitwise-stable at any --threads=N, so any
// drift is a real behavior change and exits nonzero. Wall-clock timings
// get noise-aware verdicts (PASS/REGRESSED/IMPROVED/NEW) from MAD-scaled
// thresholds and never fail the gate unless --fail-on-timing is given
// (committed baselines travel across machines; wall clock does not).
//
// Exit codes: 0 = all benches ran / gate passed, 1 = bench failure or
// quality drift, 2 = usage or I/O error.
#include <fcntl.h>
#include <fnmatch.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "obs/profile/profile.hpp"
#include "obs/report/build_info.hpp"
#include "obs/report/compare.hpp"
#include "obs/report/report.hpp"
#include "obs/report/stats.hpp"
#include "routing/registry.hpp"

namespace dfsssp {
namespace {

namespace fs = std::filesystem;

int usage() {
  std::fprintf(
      stderr,
      "usage: dfbench <command> [flags]\n"
      "\n"
      "commands:\n"
      "  run                    run the bench roster, write BENCH_<name>.json\n"
      "    --tier=quick|full    roster tier (default quick)\n"
      "    --filter=GLOB        only benches whose name matches (fnmatch)\n"
      "    --repetitions=N      repetitions per bench (default 3)\n"
      "    --out=DIR            output directory (default out)\n"
      "    --bench-dir=DIR      bench binaries (default build/bench)\n"
      "    --threads=N          forwarded to every bench (default 0 = auto)\n"
      "    --timeout=SECONDS    override the per-bench timeout\n"
      "  compare BASE RUN       gate RUN's reports against BASE's\n"
      "    --mad-k=K            timing threshold in MAD-sigmas (default 3)\n"
      "    --rel-eps=F          relative timing floor (default 0.10)\n"
      "    --abs-eps-ms=MS      absolute timing floor (default 0.5)\n"
      "    --fail-on-timing     timing regressions fail the gate too\n"
      "  profile BENCH          run one bench under the span-tree profiler\n"
      "    --tier=quick|full    argument tier (default quick)\n"
      "    --out=DIR            output directory (default out)\n"
      "    --bench-dir=DIR      bench binaries (default build/bench)\n"
      "    --threads=N          forwarded to the bench (default 0 = auto)\n"
      "    --top=N              rows in the self-time table (default 20)\n"
      "    --min-attribution=P  fail when < P%% of wall time is attributed\n"
      "                         below the root (default 0 = report only)\n"
      "    --timeout=SECONDS    override the per-bench timeout\n"
      "  list                   print the roster\n"
      "  engines                print the routing-engine registry\n"
      "  --verbose              also print PASS findings / bench stdout\n");
  return 2;
}

// ---- roster -----------------------------------------------------------------

enum class Tier : std::uint8_t { kQuick, kFull };

struct RosterEntry {
  std::string name;    // BENCH_<name>.json
  std::string binary;  // executable under --bench-dir
  /// Quick-tier membership; full-only benches still run under --tier=full.
  bool quick = true;
  /// google-benchmark binary (different CLI and report translation).
  bool micro = false;
  std::vector<std::string> quick_args;
  std::vector<std::string> full_args;
  int timeout_s = 300;
};

/// The bench roster. Quick-tier arguments are sized so the whole tier
/// finishes in a few minutes on one core — they are the committed-baseline
/// configurations, so changing them invalidates baselines/ (refresh and
/// commit together).
std::vector<RosterEntry> roster() {
  std::vector<RosterEntry> r;
  auto add = [&r](std::string name, std::string binary, bool quick,
                  std::vector<std::string> quick_args,
                  std::vector<std::string> full_args, int timeout_s) {
    RosterEntry e;
    e.name = std::move(name);
    e.binary = std::move(binary);
    e.quick = quick;
    e.quick_args = std::move(quick_args);
    e.full_args = std::move(full_args);
    e.timeout_s = timeout_s;
    r.push_back(std::move(e));
  };
  add("fig4", "bench_fig4_realworld_ebb", true, {"--patterns=20"},
      {"--full", "--patterns=1000"}, 600);
  add("fig5", "bench_fig5_xgft_ebb", true, {"--patterns=10"},
      {"--full", "--patterns=1000"}, 600);
  add("fig6", "bench_fig6_kautz_ebb", true, {"--patterns=10"},
      {"--full", "--patterns=1000"}, 600);
  add("fig7", "bench_fig7_runtime_trees", true, {}, {"--full"}, 600);
  add("fig8", "bench_fig8_runtime_realworld", true, {}, {"--full"}, 600);
  add("fig9", "bench_fig9_vl_random", true, {"--seeds=3"},
      {"--full", "--seeds=100"}, 900);
  add("fig10", "bench_fig10_vl_realworld", true, {}, {"--full"}, 600);
  add("fig12", "bench_fig12_netgauge_deimos", true, {"--patterns=10"},
      {"--full", "--patterns=100"}, 900);
  add("fig13", "bench_fig13_alltoall", true, {}, {"--full"}, 600);
  add("fig14", "bench_fig14_nas_bt", true, {}, {"--full"}, 600);
  add("fig15", "bench_fig15_nas_sp", true, {}, {"--full"}, 600);
  add("fig16", "bench_fig16_nas_ft", true, {}, {"--full"}, 600);
  add("table2", "bench_table2_nas_1024", true, {}, {"--full"}, 900);
  // Defaults are the README's headline configuration (32-ary 2-tree,
  // 40 events) and already run in quick-tier time.
  add("churn", "bench_churn", true, {}, {"--events=200"}, 900);
  // Routing-as-a-service soak: concurrent lookup clients through the
  // service envelope while churn batches repair (RCU snapshot swaps).
  add("soak", "bench_soak", true, {"--events=200", "--clients=4",
                                   "--lookups=2000"},
      {"--events=2000", "--clients=8", "--lookups=20000"}, 900);
  // Chunked generation at 16k switches; the structure hashes in the table
  // pin the emitted streams bitwise against the committed baseline.
  add("gen_scale", "bench_gen_scale", true, {}, {"--full"}, 600);
  {
    RosterEntry micro;
    micro.name = "micro";
    micro.binary = "bench_micro";
    micro.micro = true;
    micro.quick_args = {"--benchmark_min_time=0.05"};
    micro.full_args = {"--benchmark_min_time=0.5"};
    micro.timeout_s = 900;
    r.push_back(std::move(micro));
  }
  // Extended benches beyond the paper's figures: full tier only.
  add("heuristics", "bench_heuristics", false, {}, {}, 900);
  add("online_vs_offline", "bench_online_vs_offline", false, {}, {}, 900);
  add("app_exact_gap", "bench_app_exact_gap", false, {}, {}, 900);
  add("fault_sweep", "bench_fault_sweep", false, {}, {}, 900);
  add("ablation_balancing", "bench_ablation_balancing", false, {}, {}, 900);
  add("modern_topologies", "bench_modern_topologies", false, {}, {}, 900);
  add("lmc_multipath", "bench_lmc_multipath", false, {}, {}, 900);
  add("torus_routing", "bench_torus_routing", false, {}, {}, 900);
  // 100k-switch dragonfly generated, routed (destination-sharded) and
  // verified end to end; records phase timings and peak RSS.
  add("warehouse", "bench_warehouse", false, {}, {"--full"}, 1800);
  return r;
}

// ---- subprocess -------------------------------------------------------------

struct RunResult {
  int exit_code = -1;
  bool timed_out = false;
  double seconds = 0.0;
};

/// Runs `argv` with stdout+stderr redirected to `log_path`, killing the
/// child after `timeout_s`. Keeps dfbench's own output readable and a hung
/// bench from wedging the roster.
RunResult run_subprocess(const std::vector<std::string>& argv,
                         const std::string& log_path, int timeout_s) {
  RunResult result;
  Timer timer;
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("dfbench: fork");
    return result;
  }
  if (pid == 0) {
    const int fd = open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      dup2(fd, STDOUT_FILENO);
      dup2(fd, STDERR_FILENO);
      close(fd);
    }
    execv(cargv[0], cargv.data());
    std::fprintf(stderr, "dfbench: exec %s: %s\n", cargv[0],
                 std::strerror(errno));
    _exit(127);
  }

  const double deadline = static_cast<double>(timeout_s);
  int status = 0;
  while (true) {
    const pid_t done = waitpid(pid, &status, WNOHANG);
    if (done == pid) break;
    if (done < 0) {
      std::perror("dfbench: waitpid");
      return result;
    }
    if (timer.seconds() > deadline) {
      kill(pid, SIGKILL);
      waitpid(pid, &status, 0);
      result.timed_out = true;
      result.seconds = timer.seconds();
      return result;
    }
    usleep(20 * 1000);
  }
  result.seconds = timer.seconds();
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  else if (WIFSIGNALED(status)) result.exit_code = 128 + WTERMSIG(status);
  return result;
}

// ---- micro translation ------------------------------------------------------

/// Translates one google-benchmark JSON document into the run-report
/// schema: each benchmark's real_time becomes a timing stat under
/// "micro/<name>". No deterministic sections — microbenchmarks measure
/// time only.
obs::RunReport translate_google_benchmark(const std::string& text) {
  const obs::JsonValue doc = obs::JsonValue::parse(text);
  obs::RunReport report;
  report.bench = "bench_micro";
  report.git_rev = obs::git_rev();
  report.build_flags = obs::build_flags();
  report.tables_deterministic = false;
  const obs::JsonValue& benchmarks = doc.at("benchmarks");
  for (const obs::JsonValue& b : benchmarks.items()) {
    const std::string& name = b.at("name").as_string();
    double ms = b.at("real_time").as_double();
    const std::string unit =
        b.contains("time_unit") ? b.at("time_unit").as_string() : "ns";
    if (unit == "ns") ms /= 1e6;
    else if (unit == "us") ms /= 1e3;
    else if (unit == "s") ms *= 1e3;
    obs::TimingStat st;
    st.median_ms = ms;
    st.reps = 1;
    report.timing_stats.emplace("micro/" + name, st);
  }
  return report;
}

// ---- run --------------------------------------------------------------------

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("cannot open " + path);
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

int cmd_run(const Cli& cli) {
  const std::string tier_name = cli.get("tier", "quick");
  if (tier_name != "quick" && tier_name != "full") return usage();
  const Tier tier = tier_name == "full" ? Tier::kFull : Tier::kQuick;
  const std::string filter = cli.get("filter", "");
  const auto repetitions = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, cli.get_int("repetitions", 3)));
  const std::string out_dir = cli.get("out", "out");
  const std::string bench_dir = cli.get("bench-dir", "build/bench");
  const std::int64_t threads =
      std::max<std::int64_t>(0, cli.get_int("threads", 0));
  const std::int64_t timeout_override = cli.get_int("timeout", 0);
  const bool verbose = cli.get_bool("verbose", false);

  fs::create_directories(out_dir);
  fs::create_directories(out_dir + "/logs");
  fs::create_directories(out_dir + "/raw");

  Table summary("dfbench run: tier=" + tier_name + ", repetitions=" +
                    std::to_string(repetitions),
                {"bench", "status", "reps", "wall s (median)", "report"});
  std::uint32_t failures = 0, selected = 0;

  for (const RosterEntry& e : roster()) {
    if (tier == Tier::kQuick && !e.quick) continue;
    if (!filter.empty() &&
        fnmatch(filter.c_str(), e.name.c_str(), 0) != 0) {
      continue;
    }
    ++selected;
    const std::string binary = bench_dir + "/" + e.binary;
    const int timeout_s = timeout_override > 0
                              ? static_cast<int>(timeout_override)
                              : e.timeout_s;
    if (!fs::exists(binary)) {
      std::fprintf(stderr, "dfbench: %s: missing binary %s (build it first)\n",
                   e.name.c_str(), binary.c_str());
      summary.row().cell(e.name).cell("NO BINARY").cell(0u).cell("-").cell("-");
      ++failures;
      continue;
    }

    std::vector<obs::RunReport> reps;
    std::string failure;
    for (std::uint32_t rep = 0; rep < repetitions && failure.empty(); ++rep) {
      const std::string raw = out_dir + "/raw/" + e.name + ".rep" +
                              std::to_string(rep) + ".json";
      const std::string log = out_dir + "/logs/" + e.name + ".rep" +
                              std::to_string(rep) + ".log";
      std::vector<std::string> argv{binary};
      const std::vector<std::string>& extra =
          tier == Tier::kFull ? e.full_args : e.quick_args;
      argv.insert(argv.end(), extra.begin(), extra.end());
      if (e.micro) {
        argv.push_back("--benchmark_format=json");
        argv.push_back("--benchmark_out=" + raw);
        argv.push_back("--benchmark_out_format=json");
      } else {
        argv.push_back("--threads=" + std::to_string(threads));
        argv.push_back("--json=" + raw);
      }
      std::fprintf(stderr, "dfbench: %s rep %u/%u ...\n", e.name.c_str(),
                   rep + 1, repetitions);
      const RunResult run = run_subprocess(argv, log, timeout_s);
      if (run.timed_out) {
        failure = "TIMEOUT after " + std::to_string(timeout_s) + "s";
        break;
      }
      if (run.exit_code != 0) {
        failure = "exit " + std::to_string(run.exit_code) + " (see " + log +
                  ")";
        break;
      }
      try {
        obs::RunReport r = e.micro
                               ? translate_google_benchmark(read_file(raw))
                               : obs::read_run_report(raw);
        if (e.micro) r.wall_seconds = run.seconds;
        reps.push_back(std::move(r));
      } catch (const std::exception& ex) {
        failure = std::string("bad report: ") + ex.what();
      }
      if (verbose) {
        const std::string text = read_file(log);
        std::fwrite(text.data(), 1, text.size(), stdout);
      }
    }

    if (failure.empty()) {
      try {
        obs::RunReport final_report = obs::aggregate_runs(reps);
        // Every routing bench must surface its phase timings — an empty
        // timing section means the ScopedTimer plumbing broke.
        if (final_report.timing_stats.size() <= 1) {
          throw std::runtime_error(
              "timing_metrics/timing_stats are empty — phase timers did not "
              "reach the report");
        }
        const std::string path = out_dir + "/BENCH_" + e.name + ".json";
        obs::write_run_report(final_report, path);
        char wall[32];
        std::snprintf(wall, sizeof(wall), "%.2f", final_report.wall_seconds);
        summary.row()
            .cell(e.name)
            .cell("ok")
            .cell(repetitions)
            .cell(wall)
            .cell(path);
      } catch (const std::exception& ex) {
        failure = ex.what();
      }
    }
    if (!failure.empty()) {
      std::fprintf(stderr, "dfbench: %s FAILED: %s\n", e.name.c_str(),
                   failure.c_str());
      summary.row().cell(e.name).cell("FAILED").cell(
          static_cast<std::uint32_t>(reps.size()))
          .cell("-")
          .cell(failure);
      ++failures;
    }
  }

  if (selected == 0) {
    std::fprintf(stderr, "dfbench: no roster bench matches --filter=%s\n",
                 filter.c_str());
    return 2;
  }
  summary.print();
  if (failures > 0) {
    std::printf("dfbench: %u of %u benches FAILED\n", failures, selected);
    return 1;
  }
  std::printf("dfbench: all %u benches ok; reports in %s\n", selected,
              out_dir.c_str());
  return 0;
}

// ---- compare ----------------------------------------------------------------

std::map<std::string, std::string> report_files(const std::string& dir) {
  std::map<std::string, std::string> out;
  if (!fs::is_directory(dir)) {
    throw std::runtime_error(dir + " is not a directory");
  }
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    const std::string file = entry.path().filename().string();
    if (file.rfind("BENCH_", 0) == 0 && file.size() > 11 &&
        file.substr(file.size() - 5) == ".json") {
      out.emplace(file.substr(6, file.size() - 11), entry.path().string());
    }
  }
  return out;
}

int cmd_compare(const Cli& cli) {
  const auto& pos = cli.positional();
  if (pos.size() != 3) return usage();  // "compare" BASE RUN
  obs::CompareOptions opts;
  opts.mad_k = cli.get_double("mad-k", opts.mad_k);
  opts.rel_epsilon = cli.get_double("rel-eps", opts.rel_epsilon);
  opts.abs_epsilon_ms = cli.get_double("abs-eps-ms", opts.abs_epsilon_ms);
  opts.fail_on_timing = cli.get_bool("fail-on-timing", false);
  const bool verbose = cli.get_bool("verbose", false);

  const auto base_files = report_files(pos[1]);
  const auto run_files = report_files(pos[2]);

  std::uint32_t gated = 0, failed = 0, timing_flags = 0;
  for (const auto& [name, run_path] : run_files) {
    const auto base_it = base_files.find(name);
    if (base_it == base_files.end()) {
      std::printf("[%s] NEW — no baseline; commit one to start the "
                  "trajectory\n", name.c_str());
      continue;
    }
    const obs::RunReport base = obs::read_run_report(base_it->second);
    const obs::RunReport run = obs::read_run_report(run_path);
    const obs::CompareResult result = obs::compare_reports(base, run, opts);
    ++gated;
    const bool ok = result.gate_ok(opts);
    if (!ok) ++failed;
    timing_flags += result.timing_regressions;
    std::printf("[%s] %s — %u quality drift, %u timing regressed, "
                "%u improved, %u new (baseline rev %s, run rev %s)\n",
                name.c_str(), ok ? "PASS" : "FAIL", result.quality_drift,
                result.timing_regressions, result.timing_improvements,
                result.new_metrics, base.git_rev.c_str(),
                run.git_rev.c_str());
    for (const obs::Finding& f : result.findings) {
      if (!verbose && f.verdict == obs::Verdict::kPass) continue;
      std::printf("  %-9s %-32s base=%s run=%s%s%s\n", to_string(f.verdict),
                  f.metric.c_str(), f.baseline.c_str(), f.run.c_str(),
                  f.note.empty() ? "" : "  ", f.note.c_str());
    }
  }
  for (const auto& [name, path] : base_files) {
    if (run_files.count(name) == 0) {
      std::printf("[%s] SKIPPED — baseline %s has no counterpart in the "
                  "run\n", name.c_str(), path.c_str());
    }
  }

  if (gated == 0) {
    std::fprintf(stderr, "dfbench compare: no overlapping BENCH_*.json "
                         "between %s and %s\n", pos[1].c_str(),
                 pos[2].c_str());
    return 2;
  }
  std::printf("dfbench compare: %u bench(es) gated, %u failed%s\n", gated,
              failed,
              !opts.fail_on_timing && timing_flags > 0
                  ? " (timing regressions reported but not gated; use "
                    "--fail-on-timing to gate them)"
                  : "");
  return failed == 0 ? 0 : 1;
}

// ---- profile ----------------------------------------------------------------

/// Rebuilds an obs::Profile from a schema-3 run report: the deterministic
/// columns come from the `profile` array (already in canonical DFS
/// preorder), the wall times from the "prof/<path>/{total,self}_ms" timing
/// stats the same report carries.
obs::Profile profile_from_report(const obs::RunReport& report) {
  obs::Profile prof;
  if (!report.profile.is_array()) return prof;
  for (const obs::JsonValue& node : report.profile.items()) {
    const obs::JsonValue* path = node.find("path");
    if (path == nullptr || !path->is_string()) continue;
    obs::ProfileNode n;
    n.path = path->as_string();
    const std::size_t semi = n.path.find_last_of(';');
    n.name = semi == std::string::npos ? n.path : n.path.substr(semi + 1);
    n.depth = static_cast<std::uint32_t>(
        std::count(n.path.begin(), n.path.end(), ';'));
    if (const obs::JsonValue* v = node.find("invocations")) {
      n.invocations = v->as_uint();
    }
    if (const obs::JsonValue* v = node.find("counters")) {
      for (const obs::JsonValue::Member& m : v->members()) {
        n.counters.emplace(m.first, m.second.as_uint());
      }
    }
    const auto ns_of = [&report, &n](const char* suffix) -> std::uint64_t {
      const auto it = report.timing_stats.find("prof/" + n.path + suffix);
      if (it == report.timing_stats.end() || it->second.median_ms < 0) {
        return 0;
      }
      return static_cast<std::uint64_t>(
          std::llround(it->second.median_ms * 1e6));
    };
    n.total_ns = ns_of("/total_ms");
    n.self_ns = ns_of("/self_ms");
    prof.nodes.push_back(std::move(n));
  }
  return prof;
}

int cmd_profile(const Cli& cli) {
  const auto& pos = cli.positional();
  if (pos.size() != 2) return usage();  // "profile" BENCH
  const std::string& bench_name = pos[1];
  const std::string tier_name = cli.get("tier", "quick");
  if (tier_name != "quick" && tier_name != "full") return usage();
  const Tier tier = tier_name == "full" ? Tier::kFull : Tier::kQuick;
  const std::string out_dir = cli.get("out", "out");
  const std::string bench_dir = cli.get("bench-dir", "build/bench");
  const std::int64_t threads =
      std::max<std::int64_t>(0, cli.get_int("threads", 0));
  const auto top_n = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("top", 20)));
  const double min_attribution = cli.get_double("min-attribution", 0.0);
  const std::int64_t timeout_override = cli.get_int("timeout", 0);

  const RosterEntry* entry = nullptr;
  static const std::vector<RosterEntry> all = roster();
  for (const RosterEntry& e : all) {
    if (e.name == bench_name) { entry = &e; break; }
  }
  if (entry == nullptr) {
    std::fprintf(stderr, "dfbench profile: unknown bench '%s' (see "
                         "`dfbench list --tier=full`)\n", bench_name.c_str());
    return 2;
  }
  if (entry->micro) {
    std::fprintf(stderr, "dfbench profile: '%s' is a google-benchmark "
                         "binary without span instrumentation\n",
                 bench_name.c_str());
    return 2;
  }
  const std::string binary = bench_dir + "/" + entry->binary;
  if (!fs::exists(binary)) {
    std::fprintf(stderr, "dfbench profile: missing binary %s (build it "
                         "first)\n", binary.c_str());
    return 2;
  }

  fs::create_directories(out_dir);
  const std::string report_path =
      out_dir + "/BENCH_" + entry->name + ".profile.json";
  const std::string folded_path = out_dir + "/" + entry->name + ".folded";
  const std::string log_path = out_dir + "/" + entry->name + ".profile.log";

  std::vector<std::string> argv{binary};
  const std::vector<std::string>& extra =
      tier == Tier::kFull ? entry->full_args : entry->quick_args;
  argv.insert(argv.end(), extra.begin(), extra.end());
  argv.push_back("--threads=" + std::to_string(threads));
  argv.push_back("--json=" + report_path);
  argv.push_back("--profile=" + folded_path);
  const int timeout_s = timeout_override > 0 ? static_cast<int>(timeout_override)
                                             : entry->timeout_s;
  std::fprintf(stderr, "dfbench: profiling %s (%s tier) ...\n",
               entry->name.c_str(), tier_name.c_str());
  const RunResult run = run_subprocess(argv, log_path, timeout_s);
  if (run.timed_out) {
    std::fprintf(stderr, "dfbench profile: %s TIMEOUT after %ds\n",
                 entry->name.c_str(), timeout_s);
    return 1;
  }
  if (run.exit_code != 0) {
    std::fprintf(stderr, "dfbench profile: %s exited %d (see %s)\n",
                 entry->name.c_str(), run.exit_code, log_path.c_str());
    return 1;
  }

  const obs::RunReport report = obs::read_run_report(report_path);
  const obs::Profile prof = profile_from_report(report);
  if (prof.nodes.empty()) {
    std::fprintf(stderr, "dfbench profile: %s produced no profile section "
                         "— was the binary built with DFS_OBS_TRACING=OFF?\n",
                 entry->name.c_str());
    return 1;
  }
  obs::write_profile_text(std::cout, prof, top_n);
  const double attributed = obs::attributed_fraction(prof) * 100.0;
  std::printf("\nattribution: %.1f%% of %.0f ms wall time attributed below "
              "the root\nfolded stacks: %s\nreport: %s\n",
              attributed, static_cast<double>(prof.nodes.front().total_ns) / 1e6,
              folded_path.c_str(), report_path.c_str());
  if (attributed < min_attribution) {
    std::printf("dfbench profile: FAIL — attribution %.1f%% is below the "
                "--min-attribution=%.1f%% floor; instrument the uncovered "
                "hot paths\n", attributed, min_attribution);
    return 1;
  }
  return 0;
}

int cmd_list(const Cli& cli) {
  const std::string tier_name = cli.get("tier", "quick");
  const Tier tier = tier_name == "full" ? Tier::kFull : Tier::kQuick;
  Table table("dfbench roster (tier=" + tier_name + ")",
              {"name", "binary", "args", "timeout s"});
  for (const RosterEntry& e : roster()) {
    if (tier == Tier::kQuick && !e.quick) continue;
    std::string args;
    for (const std::string& a :
         tier == Tier::kFull ? e.full_args : e.quick_args) {
      args += (args.empty() ? "" : " ") + a;
    }
    table.row().cell(e.name).cell(e.binary).cell(args).cell(e.timeout_s);
  }
  table.print();
  return 0;
}

int cmd_engines() {
  Table table("routing-engine registry (dfcheck --route / dfrouted --engine)",
              {"key", "display", "deadlock-free", "layered", "incremental",
               "roster", "description"});
  for (const routing::EngineInfo& e : routing::engine_roster()) {
    table.row()
        .cell(e.name)
        .cell(e.display_name)
        .cell(e.deadlock_free ? "yes" : "no")
        .cell(e.layered ? "yes" : "no")
        .cell(e.incremental ? "yes" : "no")
        .cell(e.in_default_roster ? "yes" : "-")
        .cell(e.description);
  }
  table.print();
  return 0;
}

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto& pos = cli.positional();
  if (pos.empty()) return usage();
  const std::string& command = pos[0];
  if (command == "run") return cmd_run(cli);
  if (command == "compare") return cmd_compare(cli);
  if (command == "profile") return cmd_profile(cli);
  if (command == "list") return cmd_list(cli);
  if (command == "engines") return cmd_engines();
  return usage();
}

}  // namespace
}  // namespace dfsssp

int main(int argc, char** argv) {
  try {
    return dfsssp::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dfbench: %s\n", e.what());
    return 2;
  }
}
