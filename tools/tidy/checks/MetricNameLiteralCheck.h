// dfs-metric-name-literal — metric registrations on an obs Registry
// (`counter`, `gauge`, `histogram`, `timing_histogram`) must pass a string
// literal of the form "family/name" in [a-z0-9_]+(/[a-z0-9_]+)+ . Dynamic
// names defeat the registry's deterministic ordering audit and make the
// schema-2 report diff across runs; genuinely bounded dynamic families are
// allowlisted with a NOLINT rationale. `RegistryClass` is the unqualified
// class name the methods must belong to (default "Registry").
#ifndef DFS_TIDY_METRIC_NAME_LITERAL_CHECK_H
#define DFS_TIDY_METRIC_NAME_LITERAL_CHECK_H

#include <string>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::dfs {

class MetricNameLiteralCheck : public ClangTidyCheck {
 public:
  MetricNameLiteralCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context),
        RegistryClass(Options.get("RegistryClass", "Registry")) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override {
    Options.store(Opts, "RegistryClass", RegistryClass);
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;

 private:
  const std::string RegistryClass;
};

}  // namespace clang::tidy::dfs

#endif  // DFS_TIDY_METRIC_NAME_LITERAL_CHECK_H
