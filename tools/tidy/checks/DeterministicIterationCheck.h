// dfs-deterministic-iteration — flags traversal of std::unordered_map /
// std::unordered_set (range-for or explicit begin()/cbegin() iteration):
// hash-table order is implementation- and seed-dependent, so any traversal
// feeding result values breaks the repo's bitwise-determinism contract.
// Order-free traversals (commutative folds) are allowlisted via NOLINT
// with a written rationale (docs/verification.md).
#ifndef DFS_TIDY_DETERMINISTIC_ITERATION_CHECK_H
#define DFS_TIDY_DETERMINISTIC_ITERATION_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::dfs {

class DeterministicIterationCheck : public ClangTidyCheck {
 public:
  DeterministicIterationCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::dfs

#endif  // DFS_TIDY_DETERMINISTIC_ITERATION_CHECK_H
