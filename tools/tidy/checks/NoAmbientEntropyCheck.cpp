#include "NoAmbientEntropyCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/Support/Regex.h"

using namespace clang::ast_matchers;

namespace clang::tidy::dfs {

void NoAmbientEntropyCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "::rand", "::srand", "::drand48", "::lrand48", "::random",
                   "::time", "::clock", "::gettimeofday", "::clock_gettime",
                   "::std::time", "::std::clock"))))
          .bind("entropy-call"),
      this);
  Finder->addMatcher(
      callExpr(callee(cxxMethodDecl(
                   hasName("now"),
                   ofClass(hasAnyName("::std::chrono::system_clock",
                                      "::std::chrono::high_resolution_clock")))))
          .bind("entropy-call"),
      this);
  Finder->addMatcher(
      varDecl(hasType(qualType(hasUnqualifiedDesugaredType(recordType(
                  hasDeclaration(cxxRecordDecl(
                      hasName("::std::random_device"))))))))
          .bind("entropy-var"),
      this);
}

void NoAmbientEntropyCheck::check(const MatchFinder::MatchResult &Result) {
  SourceLocation Loc;
  StringRef What;
  if (const auto *Call = Result.Nodes.getNodeAs<CallExpr>("entropy-call")) {
    Loc = Call->getBeginLoc();
    What = "ambient entropy/clock call";
  } else if (const auto *Var = Result.Nodes.getNodeAs<VarDecl>(
                 "entropy-var")) {
    Loc = Var->getLocation();
    What = "std::random_device";
  }
  if (Loc.isInvalid() || Loc.isMacroID()) return;
  const SourceManager &SM = *Result.SourceManager;
  llvm::Regex Allowed(AllowedFiles);
  if (!AllowedFiles.empty() &&
      Allowed.match(SM.getFilename(SM.getExpansionLoc(Loc)))) {
    return;
  }
  diag(Loc,
       "%0 draws irreproducible state; use seeded Rng streams "
       "(common/rng.hpp) or Timer (common/timer.hpp)")
      << What;
}

}  // namespace clang::tidy::dfs
