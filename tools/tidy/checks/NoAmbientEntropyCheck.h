// dfs-no-ambient-entropy — bans rand()/srand()/time()/clock(),
// std::random_device, and the non-monotonic chrono clocks outside the
// observability layer: all randomness must flow through seeded
// dfsssp::Rng streams (common/rng.hpp) and all timing through
// common/timer.hpp, or runs stop being reproducible. `AllowedFiles` is an
// ERE matched against the expansion file name (default: the obs layer and
// the timer itself).
#ifndef DFS_TIDY_NO_AMBIENT_ENTROPY_CHECK_H
#define DFS_TIDY_NO_AMBIENT_ENTROPY_CHECK_H

#include <string>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::dfs {

class NoAmbientEntropyCheck : public ClangTidyCheck {
 public:
  NoAmbientEntropyCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context),
        AllowedFiles(
            Options.get("AllowedFiles", "src/obs/|common/timer\\.hpp")) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override {
    Options.store(Opts, "AllowedFiles", AllowedFiles);
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;

 private:
  const std::string AllowedFiles;
};

}  // namespace clang::tidy::dfs

#endif  // DFS_TIDY_NO_AMBIENT_ENTROPY_CHECK_H
