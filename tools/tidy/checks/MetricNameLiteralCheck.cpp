#include "MetricNameLiteralCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::dfs {

namespace {

// Digs the string literal out of `reg.counter("a/b")`: the char array decays
// and then converts to std::string, so unwrap implicit conversions and the
// std::string converting constructor.
const StringLiteral *resolveStringLiteral(const Expr *E) {
  E = E->IgnoreParenImpCasts();
  if (const auto *Bind = dyn_cast<CXXBindTemporaryExpr>(E)) {
    E = Bind->getSubExpr()->IgnoreParenImpCasts();
  }
  if (const auto *Construct = dyn_cast<CXXConstructExpr>(E)) {
    if (Construct->getNumArgs() >= 1) {
      return resolveStringLiteral(Construct->getArg(0));
    }
    return nullptr;
  }
  return dyn_cast<StringLiteral>(E);
}

bool validMetricName(StringRef Name) {
  if (Name.empty()) return false;
  bool SawSlash = false;
  bool SegmentEmpty = true;
  for (char C : Name) {
    if (C == '/') {
      if (SegmentEmpty) return false;
      SawSlash = true;
      SegmentEmpty = true;
    } else if ((C >= 'a' && C <= 'z') || (C >= '0' && C <= '9') || C == '_') {
      SegmentEmpty = false;
    } else {
      return false;
    }
  }
  return SawSlash && !SegmentEmpty;
}

}  // namespace

void MetricNameLiteralCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(hasAnyName("counter", "gauge", "histogram",
                                          "timing_histogram"),
                               ofClass(hasName(RegistryClass)))),
          argumentCountIs(1))
          .bind("register-call"),
      this);
}

void MetricNameLiteralCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Call =
      Result.Nodes.getNodeAs<CXXMemberCallExpr>("register-call");
  if (!Call) return;
  SourceLocation Loc = Call->getBeginLoc();
  if (Loc.isInvalid() || Loc.isMacroID()) return;

  const StringLiteral *Literal = resolveStringLiteral(Call->getArg(0));
  if (!Literal) {
    diag(Loc,
         "metric name must be a string literal so the registry's ordering "
         "audit stays static; bounded dynamic families need a NOLINT "
         "rationale");
    return;
  }
  if (!validMetricName(Literal->getString())) {
    diag(Loc,
         "metric name %0 does not match \"family/name\" "
         "([a-z0-9_]+(/[a-z0-9_]+)+)")
        << Literal->getString();
  }
}

}  // namespace clang::tidy::dfs
