// dfs-engine-api — structural replacement for the old CI grep gate.
// Every concrete subclass of dfsssp::Router must override
// `route(const RouteRequest&)`, and nothing may declare the legacy
// `route(const Topology&)` overload that predates the engine API
// (PR 5, src/engine/). Abstract subclasses are exempt (a further
// subclass must still satisfy the rule).
#ifndef DFS_TIDY_ENGINE_API_CHECK_H
#define DFS_TIDY_ENGINE_API_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::dfs {

class EngineApiCheck : public ClangTidyCheck {
 public:
  EngineApiCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::dfs

#endif  // DFS_TIDY_ENGINE_API_CHECK_H
