// dfs-checked-narrowing — flags raw static_cast from a 64-bit integer to a
// 32-bit-or-narrower integer inside the topology layer (`PathFilter`, an
// ERE on the expansion file name). Warehouse-scale builders routinely hold
// counts in size_t/uint64_t and store them in NodeId/ChannelId (uint32_t);
// a silent truncation there corrupts the CSR arrays. Use
// checked_narrow<T>() / checked_u32() / lo_u32() / hi_u32()
// (src/common/narrow.hpp), which range-check before converting.
#ifndef DFS_TIDY_CHECKED_NARROWING_CHECK_H
#define DFS_TIDY_CHECKED_NARROWING_CHECK_H

#include <string>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::dfs {

class CheckedNarrowingCheck : public ClangTidyCheck {
 public:
  CheckedNarrowingCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context),
        PathFilter(Options.get("PathFilter",
                               "src/topology/|tools/tidy/fixtures/")) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override {
    Options.store(Opts, "PathFilter", PathFilter);
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;

 private:
  const std::string PathFilter;
};

}  // namespace clang::tidy::dfs

#endif  // DFS_TIDY_CHECKED_NARROWING_CHECK_H
