#include "DeterministicIterationCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::dfs {

namespace {

AST_MATCHER_FUNCTION(ast_matchers::internal::Matcher<QualType>,
                     unorderedContainerType) {
  auto UnorderedDecl = cxxRecordDecl(hasAnyName(
      "::std::unordered_map", "::std::unordered_set",
      "::std::unordered_multimap", "::std::unordered_multiset"));
  return qualType(hasUnqualifiedDesugaredType(
      recordType(hasDeclaration(UnorderedDecl))));
}

}  // namespace

void DeterministicIterationCheck::registerMatchers(MatchFinder *Finder) {
  auto UnorderedExpr = expr(anyOf(
      hasType(unorderedContainerType()),
      hasType(references(unorderedContainerType()))));
  Finder->addMatcher(
      cxxForRangeStmt(hasRangeInit(UnorderedExpr)).bind("range-for"), this);
  Finder->addMatcher(
      cxxMemberCallExpr(callee(cxxMethodDecl(hasAnyName("begin", "cbegin"))),
                        on(UnorderedExpr))
          .bind("begin-call"),
      this);
}

void DeterministicIterationCheck::check(
    const MatchFinder::MatchResult &Result) {
  SourceLocation Loc;
  if (const auto *Loop =
          Result.Nodes.getNodeAs<CXXForRangeStmt>("range-for")) {
    Loc = Loop->getForLoc();
  } else if (const auto *Call =
                 Result.Nodes.getNodeAs<CXXMemberCallExpr>("begin-call")) {
    Loc = Call->getBeginLoc();
  }
  if (Loc.isInvalid() || Loc.isMacroID()) return;
  diag(Loc,
       "iteration over an unordered container has a hash-dependent order; "
       "use a deterministic container (std::map / sorted vector) or NOLINT "
       "with a rationale why the order cannot reach results");
}

}  // namespace clang::tidy::dfs
