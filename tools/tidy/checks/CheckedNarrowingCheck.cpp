#include "CheckedNarrowingCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/Support/Regex.h"

using namespace clang::ast_matchers;

namespace clang::tidy::dfs {

void CheckedNarrowingCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      cxxStaticCastExpr(unless(isExpansionInSystemHeader())).bind("cast"),
      this);
}

void CheckedNarrowingCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Cast = Result.Nodes.getNodeAs<CXXStaticCastExpr>("cast");
  if (!Cast) return;
  SourceLocation Loc = Cast->getBeginLoc();
  if (Loc.isInvalid() || Loc.isMacroID()) return;

  const SourceManager &SM = *Result.SourceManager;
  llvm::Regex Filter(PathFilter);
  if (!PathFilter.empty() &&
      !Filter.match(SM.getFilename(SM.getExpansionLoc(Loc)))) {
    return;
  }

  ASTContext &Ctx = *Result.Context;
  QualType Dest = Cast->getTypeAsWritten().getCanonicalType();
  QualType Src =
      Cast->getSubExprAsWritten()->getType().getCanonicalType();
  if (!Dest->isIntegerType() || !Src->isIntegerType()) return;
  if (Dest->isBooleanType() || Src->isBooleanType()) return;
  if (Src->isEnumeralType()) return;  // enum scaling is not a count narrowing
  const uint64_t DestBits = Ctx.getTypeSize(Dest);
  const uint64_t SrcBits = Ctx.getTypeSize(Src);
  if (SrcBits < 64 || DestBits > 32) return;

  diag(Loc,
       "raw static_cast narrows a %0-bit value to %1 bits in the topology "
       "layer; use checked_narrow<T>() / checked_u32() "
       "(src/common/narrow.hpp) so overflow throws instead of truncating")
      << static_cast<unsigned>(SrcBits) << static_cast<unsigned>(DestBits);
}

}  // namespace clang::tidy::dfs
