#include "EngineApiCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/DeclCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::dfs {

namespace {

bool paramIsConstRefTo(const ParmVarDecl *Param, StringRef TypeName) {
  QualType T = Param->getType();
  const auto *Ref = T->getAs<ReferenceType>();
  if (!Ref) return false;
  QualType Pointee = Ref->getPointeeType();
  if (!Pointee.isConstQualified()) return false;
  const auto *Record = Pointee->getAsCXXRecordDecl();
  return Record && Record->getName() == TypeName;
}

}  // namespace

void EngineApiCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      functionDecl(hasName("route"), parameterCountIs(1),
                   unless(isExpansionInSystemHeader()))
          .bind("route-fn"),
      this);
  Finder->addMatcher(
      cxxRecordDecl(isDefinition(),
                    isDerivedFrom(cxxRecordDecl(hasName("::dfsssp::Router"))),
                    unless(isExpansionInSystemHeader()))
          .bind("engine"),
      this);
}

void EngineApiCheck::check(const MatchFinder::MatchResult &Result) {
  if (const auto *Fn = Result.Nodes.getNodeAs<FunctionDecl>("route-fn")) {
    if (Fn->getLocation().isMacroID() || !Fn->isFirstDecl()) return;
    if (paramIsConstRefTo(Fn->getParamDecl(0), "Topology")) {
      diag(Fn->getLocation(),
           "legacy 'route(const Topology&)' overload; engines speak "
           "RouteRequest/RouteResponse only (src/engine/route_request.hpp)");
    }
    return;
  }
  const auto *Engine = Result.Nodes.getNodeAs<CXXRecordDecl>("engine");
  if (!Engine || Engine->getLocation().isMacroID()) return;
  // Abstract intermediates defer the obligation to their concrete leaves.
  if (Engine->isAbstract()) return;
  for (const CXXMethodDecl *Method : Engine->methods()) {
    if (Method->getDeclName().isIdentifier() &&
        Method->getName() == "route" && Method->getNumParams() == 1 &&
        paramIsConstRefTo(Method->getParamDecl(0), "RouteRequest")) {
      return;
    }
  }
  diag(Engine->getLocation(),
       "Router subclass %0 does not override 'route(const RouteRequest&)'; "
       "every concrete engine must implement the engine API entry point")
      << Engine;
}

}  // namespace clang::tidy::dfs
