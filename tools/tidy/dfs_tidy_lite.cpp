// dfs-tidy-lite — dependency-free fallback driver for the repo's dfs-*
// static-analysis checks (tools/tidy/README.md has the catalog).
//
// The authoritative implementation is the clang-tidy plugin next to this
// file: full AST, exact types, loadable into any clang-tidy >= 14 via
// -load. The plugin needs LLVM/Clang dev headers, which not every dev box
// has — this driver re-implements the same checks at the token level
// (comments and string literals stripped, identifiers tokenized, braces
// and parens tracked) so the fixture tests and the whole-tree gate run
// under plain ctest everywhere. Token-level means best effort: the lite
// narrowing check, for instance, flags a 64->32 static_cast only when the
// operand *looks* 64-bit (`.size()`, `size_t`, `uint64`, `strtoul`, ...),
// where the plugin proves it from the type. CI runs the plugin; the lite
// driver keeps the gate honest in between.
//
// Modes:
//   dfs_tidy_lite [--root=DIR] [--checks=LIST] [--json=FILE] PATH...
//       scan files/directories; print clang-tidy-style diagnostics;
//       exit 1 when any finding survives NOLINT filtering
//   dfs_tidy_lite --verify [--checks=LIST] FIXTURE...
//       expected-diagnostics harness: compare findings against the
//       `// dfs-expect: <check>[, <check>...]` annotations in the file;
//       exit 1 on any missing or unexpected diagnostic
//
// NOLINT policy (docs/verification.md): `NOLINT(dfs-...)` and
// `NOLINTNEXTLINE(dfs-...)` suppress a finding, but any NOLINT that names
// a dfs- check must carry a written rationale after the check list
// (`// NOLINT(dfs-foo): why this is sound`); a bare suppression is itself
// a dfs-nolint-rationale finding that no NOLINT can silence.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/report/build_info.hpp"
#include "obs/report/report.hpp"

namespace dfsssp::tidy {
namespace {

namespace fs = std::filesystem;

const char* const kAllChecks[] = {
    "dfs-deterministic-iteration", "dfs-no-ambient-entropy",
    "dfs-engine-api",              "dfs-checked-narrowing",
    "dfs-metric-name-literal",     "dfs-nolint-rationale",
};

struct Finding {
  std::string file;  // display (root-relative when --root given)
  int line = 0;
  std::string check;
  std::string message;
};

// -- source model ------------------------------------------------------------

/// One parsed source file: the code view has comments blanked and string /
/// character literal *contents* blanked (quotes kept as anchors); comment
/// text is collected per line for NOLINT and dfs-expect parsing; raw lines
/// keep literal contents for the metric-name check.
struct FileView {
  std::string display;
  std::string rel;  // '/'-separated path used for scope decisions
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::string> comments;
};

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> out;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    out.push_back(line);
  }
  return out;
}

/// Comment/literal-aware scan. Line-based with carry-over state for block
/// comments and raw strings; good enough for the repo's style (no
/// multi-line plain string literals).
FileView parse_file(const std::string& path, const std::string& display,
                    const std::string& rel) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  FileView v;
  v.display = display;
  v.rel = rel;
  v.raw = split_lines(buf.str());
  v.code.resize(v.raw.size());
  v.comments.resize(v.raw.size());

  enum class St { kNormal, kBlockComment, kRawString } st = St::kNormal;
  std::string raw_delim;  // for raw strings: ")delim\""
  for (std::size_t li = 0; li < v.raw.size(); ++li) {
    const std::string& s = v.raw[li];
    std::string code(s.size(), ' ');
    std::string& comment = v.comments[li];
    std::size_t i = 0;
    while (i < s.size()) {
      if (st == St::kBlockComment) {
        auto end = s.find("*/", i);
        if (end == std::string::npos) {
          comment += s.substr(i);
          i = s.size();
        } else {
          comment += s.substr(i, end - i);
          i = end + 2;
          st = St::kNormal;
        }
        continue;
      }
      if (st == St::kRawString) {
        auto end = s.find(raw_delim, i);
        if (end == std::string::npos) {
          i = s.size();
        } else {
          i = end + raw_delim.size();
          code[i - 1] = '"';  // closing anchor
          st = St::kNormal;
        }
        continue;
      }
      char c = s[i];
      if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
        comment += s.substr(i + 2);
        break;
      }
      if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
        i += 2;
        st = St::kBlockComment;
        continue;
      }
      if (c == '"') {
        // Raw string? Identifier char 'R' immediately before the quote.
        if (i > 0 && s[i - 1] == 'R' &&
            (i < 2 || !(std::isalnum(static_cast<unsigned char>(s[i - 2])) ||
                        s[i - 2] == '_'))) {
          auto open = s.find('(', i + 1);
          if (open != std::string::npos) {
            raw_delim = ")" + s.substr(i + 1, open - i - 1) + "\"";
            code[i] = '"';
            i = open + 1;
            st = St::kRawString;
            continue;
          }
        }
        code[i] = '"';
        ++i;
        while (i < s.size()) {
          if (s[i] == '\\') {
            i += 2;
            continue;
          }
          if (s[i] == '"') {
            code[i] = '"';
            ++i;
            break;
          }
          ++i;
        }
        continue;
      }
      if (c == '\'') {
        // Character literal (or digit separator — 4'000 — which has a
        // digit before it and is harmless to keep).
        bool digit_sep = i > 0 && std::isdigit(static_cast<unsigned char>(
                                      s[i - 1]));
        if (digit_sep) {
          code[i] = ' ';
          ++i;
          continue;
        }
        ++i;
        while (i < s.size()) {
          if (s[i] == '\\') {
            i += 2;
            continue;
          }
          if (s[i] == '\'') {
            ++i;
            break;
          }
          ++i;
        }
        continue;
      }
      code[i] = c;
      ++i;
    }
    v.code[li] = std::move(code);
  }
  return v;
}

// -- tokens ------------------------------------------------------------------

struct Tok {
  std::string text;
  int line = 0;  // 0-based
  int col = 0;
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<Tok> tokenize(const FileView& v) {
  std::vector<Tok> toks;
  for (std::size_t li = 0; li < v.code.size(); ++li) {
    const std::string& s = v.code[li];
    std::size_t i = 0;
    while (i < s.size()) {
      char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (ident_char(c)) {
        std::size_t j = i;
        while (j < s.size() && ident_char(s[j])) ++j;
        toks.push_back({s.substr(i, j - i), static_cast<int>(li),
                        static_cast<int>(i)});
        i = j;
        continue;
      }
      toks.push_back({std::string(1, c), static_cast<int>(li),
                      static_cast<int>(i)});
      ++i;
    }
  }
  return toks;
}

bool is_ident(const Tok& t) {
  return !t.text.empty() && ident_char(t.text[0]) &&
         !std::isdigit(static_cast<unsigned char>(t.text[0]));
}

/// Index of the matching closer for the opener at `open`; toks.size() when
/// unbalanced.
std::size_t match_forward(const std::vector<Tok>& toks, std::size_t open,
                          const char* opener, const char* closer) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == opener) ++depth;
    if (toks[i].text == closer && --depth == 0) return i;
  }
  return toks.size();
}

/// The two tokens form one operator (`::`, `->`) only when adjacent in the
/// source.
bool adjacent(const Tok& a, const Tok& b) {
  return a.line == b.line &&
         a.col + static_cast<int>(a.text.size()) == b.col;
}

// -- NOLINT / expectations ---------------------------------------------------

bool glob_matches(const std::string& pattern, const std::string& name) {
  if (!pattern.empty() && pattern.back() == '*') {
    return name.rfind(pattern.substr(0, pattern.size() - 1), 0) == 0;
  }
  return pattern == name;
}

/// Does this comment line suppress `check`? `key` is "NOLINT" or
/// "NOLINTNEXTLINE".
bool nolint_suppresses(const std::string& comment, const char* key,
                       const std::string& check) {
  auto pos = comment.find(key);
  while (pos != std::string::npos) {
    std::size_t after = pos + std::string(key).size();
    // Reject NOLINTNEXTLINE when probing for NOLINT.
    if (!(after < comment.size() && ident_char(comment[after]))) {
      if (after < comment.size() && comment[after] == '(') {
        auto close = comment.find(')', after);
        std::string list = comment.substr(
            after + 1, close == std::string::npos ? std::string::npos
                                                  : close - after - 1);
        std::string item;
        std::istringstream in(list);
        while (std::getline(in, item, ',')) {
          item.erase(0, item.find_first_not_of(" \t"));
          item.erase(item.find_last_not_of(" \t") + 1);
          if (glob_matches(item, check)) return true;
        }
      } else {
        return true;  // bare NOLINT: suppress everything
      }
    }
    pos = comment.find(key, pos + 1);
  }
  return false;
}

struct CheckContext {
  const FileView* file = nullptr;
  std::vector<Finding>* findings = nullptr;
  bool fixture_mode = false;  // --verify: path scoping disabled

  void emit(int line, const std::string& check, std::string message) const {
    const auto& comments = file->comments;
    if (check != "dfs-nolint-rationale") {
      if (line < static_cast<int>(comments.size()) &&
          nolint_suppresses(comments[line], "NOLINT", check)) {
        return;
      }
      if (line > 0 && nolint_suppresses(comments[line - 1], "NOLINTNEXTLINE",
                                        check)) {
        return;
      }
    }
    findings->push_back({file->display, line + 1, check, std::move(message)});
  }
};

// -- check: dfs-deterministic-iteration --------------------------------------

const char* const kUnorderedTypes[] = {"unordered_map", "unordered_set",
                                       "unordered_multimap",
                                       "unordered_multiset"};

bool is_unordered_type_token(const std::string& t,
                             const std::set<std::string>& aliases) {
  for (const char* u : kUnorderedTypes) {
    if (t == u) return true;
  }
  return aliases.count(t) > 0;
}

/// Collects `using Alias = std::unordered_map<...>` aliases, then the names
/// of variables/members declared with an unordered type (or alias).
void harvest_unordered(const std::vector<Tok>& toks,
                       std::set<std::string>& aliases,
                       std::set<std::string>& vars) {
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (toks[i].text == "using" && is_ident(toks[i + 1]) &&
        toks[i + 2].text == "=") {
      for (std::size_t j = i + 3; j < toks.size() && toks[j].text != ";";
           ++j) {
        if (is_unordered_type_token(toks[j].text, {})) {
          aliases.insert(toks[i + 1].text);
          break;
        }
      }
    }
  }
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_unordered_type_token(toks[i].text, aliases)) continue;
    std::size_t j = i + 1;
    if (j < toks.size() && toks[j].text == "<") {
      j = match_forward(toks, j, "<", ">");
      if (j == toks.size()) continue;
      ++j;
    }
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            toks[j].text == "const")) {
      ++j;
    }
    if (j < toks.size() && is_ident(toks[j])) vars.insert(toks[j].text);
  }
}

void check_deterministic_iteration(const CheckContext& ctx,
                                   const std::vector<Tok>& toks,
                                   const std::set<std::string>& sibling_vars) {
  std::set<std::string> aliases, vars;
  harvest_unordered(toks, aliases, vars);
  vars.insert(sibling_vars.begin(), sibling_vars.end());
  if (vars.empty()) return;

  auto flag = [&](const Tok& at, const std::string& var) {
    ctx.emit(at.line, "dfs-deterministic-iteration",
             "iteration over unordered container '" + var +
                 "' has a hash-dependent order; use a deterministic "
                 "container (std::map / sorted vector) or NOLINT with a "
                 "rationale why the order cannot reach results");
  };
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text == "for" && toks[i + 1].text == "(") {
      std::size_t close = match_forward(toks, i + 1, "(", ")");
      if (close == toks.size()) continue;
      // Top-level ':' (skipping '::') makes it a range-for.
      std::size_t colon = 0;
      int depth = 0;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (toks[j].text == "(" || toks[j].text == "[" ||
            toks[j].text == "<") {
          ++depth;
        }
        if (toks[j].text == ")" || toks[j].text == "]" ||
            toks[j].text == ">") {
          --depth;
        }
        if (depth == 0 && toks[j].text == ":" &&
            !(j + 1 < close && toks[j + 1].text == ":" &&
              adjacent(toks[j], toks[j + 1])) &&
            !(j > 0 && toks[j - 1].text == ":" &&
              adjacent(toks[j - 1], toks[j]))) {
          colon = j;
          break;
        }
      }
      if (colon == 0) continue;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (is_ident(toks[j]) && vars.count(toks[j].text)) {
          flag(toks[i], toks[j].text);
          break;
        }
      }
    }
    // Explicit iterator loops: var.begin() / var.cbegin().
    if (is_ident(toks[i]) && vars.count(toks[i].text) &&
        i + 3 < toks.size() && toks[i + 1].text == "." &&
        (toks[i + 2].text == "begin" || toks[i + 2].text == "cbegin") &&
        toks[i + 3].text == "(") {
      flag(toks[i], toks[i].text);
    }
  }
}

// -- check: dfs-no-ambient-entropy -------------------------------------------

void check_no_ambient_entropy(const CheckContext& ctx,
                              const std::vector<Tok>& toks) {
  if (!ctx.fixture_mode) {
    // Allowlist: the obs layer and the wall-clock timer are the only
    // places that may observe the environment; everything else draws
    // randomness from seeded dfsssp::Rng streams.
    const std::string& rel = ctx.file->rel;
    if (rel.find("src/obs/") != std::string::npos) return;
    if (rel.size() >= 16 &&
        rel.compare(rel.size() - 16, 16, "common/timer.hpp") == 0) {
      return;
    }
  }
  static const std::set<std::string> kBannedCalls = {
      "rand",   "srand",         "drand48",      "lrand48",
      "random", "gettimeofday",  "clock_gettime", "time",
      "clock"};
  static const std::set<std::string> kBannedTypes = {
      "random_device", "system_clock", "high_resolution_clock"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i])) continue;
    if (kBannedTypes.count(toks[i].text)) {
      ctx.emit(toks[i].line, "dfs-no-ambient-entropy",
               "'" + toks[i].text +
                   "' is an ambient entropy/clock source; all randomness "
                   "must flow through seeded Rng streams (common/rng.hpp) "
                   "and timing through common/timer.hpp");
      continue;
    }
    if (kBannedCalls.count(toks[i].text) && i + 1 < toks.size() &&
        toks[i + 1].text == "(") {
      // Member calls (config.time(...)) are a different function; '::'
      // qualification (std::time) is still the libc one.
      if (i > 0 && (toks[i - 1].text == "." ||
                    (toks[i - 1].text == ">" && i > 1 &&
                     toks[i - 2].text == "-" &&
                     adjacent(toks[i - 2], toks[i - 1])))) {
        continue;
      }
      // A type name right before means this is a declaration of an
      // unrelated function (std::int64_t time() const), not a call.
      static const std::set<std::string> kExprKeywords = {
          "return", "case", "else", "do", "throw", "co_return", "co_yield"};
      if (i > 0 && is_ident(toks[i - 1]) &&
          !kExprKeywords.count(toks[i - 1].text)) {
        continue;
      }
      // Qualification by anything other than std is a different function
      // (FaultSchedule::random(...)), not the libc one.
      if (i >= 3 && toks[i - 1].text == ":" && toks[i - 2].text == ":" &&
          is_ident(toks[i - 3]) && toks[i - 3].text != "std") {
        continue;
      }
      // `random`, `time`, and `clock` are common method/function names; the
      // libc originals take at most one argument, so a comma at argument
      // depth means this is an unrelated overload.
      static const std::set<std::string> kCollisionProne = {"random", "time",
                                                            "clock"};
      if (kCollisionProne.count(toks[i].text)) {
        int depth = 0;
        bool has_comma = false;
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
          if (toks[j].text == "(") ++depth;
          else if (toks[j].text == ")" && --depth == 0) break;
          else if (toks[j].text == "," && depth == 1) has_comma = true;
        }
        if (has_comma) continue;
      }
      ctx.emit(toks[i].line, "dfs-no-ambient-entropy",
               "call to '" + toks[i].text +
                   "()' draws ambient entropy/time; use seeded Rng streams "
                   "(common/rng.hpp) or Timer (common/timer.hpp)");
    }
  }
}

// -- check: dfs-engine-api ---------------------------------------------------

void check_engine_api(const CheckContext& ctx, const std::vector<Tok>& toks) {
  // Any spelling of the removed transitional overload, anywhere.
  for (std::size_t i = 0; i + 4 < toks.size(); ++i) {
    if (toks[i].text == "route" && toks[i + 1].text == "(" &&
        toks[i + 2].text == "const" && toks[i + 3].text == "Topology" &&
        toks[i + 4].text == "&") {
      ctx.emit(toks[i].line, "dfs-engine-api",
               "legacy route(const Topology&) overload: engines speak "
               "RouteRequest/RouteResponse only (routing/router.hpp)");
    }
  }
  // Every Router subclass must override route(const RouteRequest&).
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text != "class" && toks[i].text != "struct") continue;
    if (i > 0 && toks[i - 1].text == "enum") continue;
    if (!is_ident(toks[i + 1])) continue;
    const std::string name = toks[i + 1].text;
    if (name == "Router") continue;
    std::size_t j = i + 2;
    if (j < toks.size() && toks[j].text == "final") ++j;
    if (j >= toks.size() || toks[j].text != ":") continue;
    bool derives_router = false;
    std::size_t body_open = toks.size();
    for (std::size_t k = j + 1; k < toks.size(); ++k) {
      if (toks[k].text == "{") {
        body_open = k;
        break;
      }
      if (toks[k].text == ";") break;  // not a definition
      if (toks[k].text == "Router") derives_router = true;
    }
    if (!derives_router || body_open == toks.size()) continue;
    std::size_t body_close = match_forward(toks, body_open, "{", "}");
    bool has_override = false;
    for (std::size_t k = body_open; k + 4 < body_close; ++k) {
      if (toks[k].text == "route" && toks[k + 1].text == "(" &&
          toks[k + 2].text == "const" &&
          toks[k + 3].text == "RouteRequest" && toks[k + 4].text == "&") {
        std::size_t close = match_forward(toks, k + 1, "(", ")");
        for (std::size_t m = close; m < body_close; ++m) {
          if (toks[m].text == ";" || toks[m].text == "{") break;
          if (toks[m].text == "override" || toks[m].text == "final") {
            has_override = true;
            break;
          }
        }
      }
    }
    if (!has_override) {
      ctx.emit(toks[i].line, "dfs-engine-api",
               "'" + name +
                   "' derives from Router but does not override "
                   "route(const RouteRequest&)");
    }
  }
}

// -- check: dfs-checked-narrowing --------------------------------------------

void check_checked_narrowing(const CheckContext& ctx,
                             const std::vector<Tok>& toks) {
  if (!ctx.fixture_mode &&
      ctx.file->rel.find("src/topology/") == std::string::npos) {
    return;
  }
  static const std::set<std::string> kNarrowTargets = {
      "std::uint32_t", "uint32_t", "std::int32_t", "int32_t",
      "NodeId",        "ChannelId", "Layer",       "std::uint16_t",
      "uint16_t",      "std::int16_t", "int16_t",  "std::uint8_t",
      "uint8_t",       "std::int8_t",  "int8_t",   "unsigned",
      "int"};
  static const std::set<std::string> kWideHints = {
      "size_t",   "uint64_t", "int64_t",  "uintptr_t", "intptr_t",
      "ptrdiff_t", "streamoff", "strtoul", "strtoull",  "stoul",
      "stoull",   "tellg",    "tellp"};
  static const std::set<std::string> kWideTypes = {
      "size_t",  "uint64_t", "int64_t",   "uintptr_t",
      "intptr_t", "ptrdiff_t", "streamoff", "streamsize"};
  // Names declared with a 64-bit type in this file (params and locals):
  // `std::uint64_t offset` makes a later static_cast<u32>(offset) wide.
  std::set<std::string> wide_vars;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!kWideTypes.count(toks[i].text)) continue;
    std::size_t j = i + 1;
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            toks[j].text == "const")) {
      ++j;
    }
    if (j < toks.size() && is_ident(toks[j])) wide_vars.insert(toks[j].text);
  }
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "static_cast" || toks[i + 1].text != "<") continue;
    std::size_t type_close = match_forward(toks, i + 1, "<", ">");
    if (type_close == toks.size()) continue;
    std::string type_text;
    for (std::size_t k = i + 2; k < type_close; ++k) {
      type_text += toks[k].text;
    }
    if (!kNarrowTargets.count(type_text)) continue;
    if (type_close + 1 >= toks.size() ||
        toks[type_close + 1].text != "(") {
      continue;
    }
    std::size_t arg_close = match_forward(toks, type_close + 1, "(", ")");
    bool wide = false;
    for (std::size_t k = type_close + 2; k < arg_close && !wide; ++k) {
      if (!is_ident(toks[k])) continue;
      if (kWideHints.count(toks[k].text) || wide_vars.count(toks[k].text)) {
        wide = true;
      }
      if (toks[k].text.size() > 2 &&
          toks[k].text.compare(toks[k].text.size() - 2, 2, "64") == 0) {
        wide = true;
      }
      if (toks[k].text == "size" && k + 1 < arg_close &&
          toks[k + 1].text == "(" && k > 0 && toks[k - 1].text == ".") {
        wide = true;
      }
    }
    if (wide) {
      ctx.emit(toks[i].line, "dfs-checked-narrowing",
               "raw static_cast<" + type_text +
                   "> from a 64-bit value; use checked_narrow()/"
                   "checked_u32() (common/narrow.hpp), or lo_u32()/hi_u32() "
                   "for intentional word splits");
    }
  }
}

// -- check: dfs-metric-name-literal ------------------------------------------

bool valid_metric_name(const std::string& s) {
  if (s.empty() || s.front() == '/' || s.back() == '/') return false;
  int slashes = 0;
  char prev = 0;
  for (char c : s) {
    if (c == '/') {
      if (prev == '/') return false;
      ++slashes;
    } else if (!(std::islower(static_cast<unsigned char>(c)) ||
                 std::isdigit(static_cast<unsigned char>(c)) || c == '_' ||
                 c == '.' || c == '-')) {
      return false;
    }
    prev = c;
  }
  return slashes >= 1;
}

/// String literal content starting at the opening quote (line, col) of the
/// code view, read from the raw line (contents are blanked in code).
std::string literal_at(const FileView& v, int line, int col) {
  const std::string& s = v.raw[line];
  std::string out;
  for (std::size_t i = col + 1; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      out += s[i + 1];
      ++i;
      continue;
    }
    if (s[i] == '"') break;
    out += s[i];
  }
  return out;
}

void check_metric_name_literal(const CheckContext& ctx,
                               const std::vector<Tok>& toks) {
  static const std::set<std::string> kRegisterFns = {
      "counter", "gauge", "histogram", "timing_histogram"};
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (!kRegisterFns.count(toks[i].text)) continue;
    if (toks[i + 1].text != "(") continue;
    // Registration is a member call: registry().counter(...), sink.gauge().
    const Tok& prev = toks[i - 1];
    bool member = prev.text == "." ||
                  (prev.text == ">" && i > 1 && toks[i - 2].text == "-" &&
                   adjacent(toks[i - 2], prev));
    if (!member) continue;
    const Tok& arg = toks[i + 2];
    if (arg.text == ")") continue;  // zero-arg overload: not a registration
    if (arg.text != "\"") {
      ctx.emit(toks[i].line, "dfs-metric-name-literal",
               "metric name passed to " + toks[i].text +
                   "() must be a string literal (constant cardinality); "
                   "dynamic names need a NOLINT rationale bounding the "
                   "cardinality");
      continue;
    }
    const std::string name = literal_at(*ctx.file, arg.line, arg.col);
    if (!valid_metric_name(name)) {
      ctx.emit(toks[i].line, "dfs-metric-name-literal",
               "metric name \"" + name +
                   "\" does not match the family/name pattern "
                   "([a-z0-9_.-]+ segments joined by '/')");
    }
  }
}

// -- check: dfs-nolint-rationale ---------------------------------------------

void check_nolint_rationale(const CheckContext& ctx) {
  const auto& comments = ctx.file->comments;
  for (std::size_t li = 0; li < comments.size(); ++li) {
    std::string c = comments[li];
    // Fixture expectation markers are harness syntax, not rationale prose.
    if (auto marker = c.find("dfs-expect:"); marker != std::string::npos) {
      c.erase(marker);
    }
    auto pos = c.find("NOLINT");
    while (pos != std::string::npos) {
      // Backtick-quoted mentions are documentation about the policy, not a
      // suppression (clang-tidy also only honours bare NOLINT markers).
      if (pos > 0 && c[pos - 1] == '`') {
        pos = c.find("NOLINT", pos + 6);
        continue;
      }
      std::size_t after = pos + 6;
      if (after + 8 < c.size() && c.compare(after, 8, "NEXTLINE") == 0) {
        after += 8;
      }
      if (after < c.size() && c[after] == '(') {
        auto close = c.find(')', after);
        const std::string list =
            c.substr(after + 1, close == std::string::npos
                                    ? std::string::npos
                                    : close - after - 1);
        if (list.find("dfs-") != std::string::npos) {
          std::string rest = close == std::string::npos
                                 ? std::string()
                                 : c.substr(close + 1);
          // Require a written rationale: some prose after the check list.
          rest.erase(0, rest.find_first_not_of(" \t:-"));
          if (rest.size() < 10) {
            ctx.emit(static_cast<int>(li), "dfs-nolint-rationale",
                     "NOLINT of a dfs- check needs a written rationale "
                     "after the check list "
                     "(`// NOLINT(dfs-...): why this is sound`)");
          }
        }
      }
      pos = c.find("NOLINT", pos + 6);
    }
  }
}

// -- driver ------------------------------------------------------------------

struct Options {
  std::set<std::string> checks;  // enabled set
  std::string root;
  std::string json_out;
  bool verify = false;
  std::vector<std::string> paths;
};

bool parse_checks(const std::string& spec, std::set<std::string>& out) {
  out.clear();
  for (const char* c : kAllChecks) out.insert(c);
  std::string item;
  std::istringstream in(spec);
  bool any_positive = false;
  std::vector<std::string> positives, negatives;
  while (std::getline(in, item, ',')) {
    item.erase(0, item.find_first_not_of(" \t"));
    item.erase(item.find_last_not_of(" \t") + 1);
    if (item.empty()) continue;
    if (item[0] == '-') {
      negatives.push_back(item.substr(1));
    } else {
      positives.push_back(item);
      any_positive = true;
    }
  }
  if (any_positive) {
    out.clear();
    for (const std::string& p : positives) {
      for (const char* c : kAllChecks) {
        if (glob_matches(p, c)) out.insert(c);
      }
    }
  }
  for (const std::string& n : negatives) {
    for (const char* c : kAllChecks) {
      if (glob_matches(n, c)) out.erase(c);
    }
  }
  return !out.empty() || !spec.empty();
}

/// Scans one file; sibling_vars carries unordered-container member names
/// harvested from the paired header/source of the same stem.
void run_checks(const Options& opt, const FileView& view,
                const std::set<std::string>& sibling_vars,
                std::vector<Finding>& findings) {
  CheckContext ctx{&view, &findings, opt.verify};
  const std::vector<Tok> toks = tokenize(view);
  if (opt.checks.count("dfs-deterministic-iteration")) {
    check_deterministic_iteration(ctx, toks, sibling_vars);
  }
  if (opt.checks.count("dfs-no-ambient-entropy")) {
    check_no_ambient_entropy(ctx, toks);
  }
  if (opt.checks.count("dfs-engine-api")) check_engine_api(ctx, toks);
  if (opt.checks.count("dfs-checked-narrowing")) {
    check_checked_narrowing(ctx, toks);
  }
  if (opt.checks.count("dfs-metric-name-literal")) {
    check_metric_name_literal(ctx, toks);
  }
  if (opt.checks.count("dfs-nolint-rationale")) check_nolint_rationale(ctx);
}

bool scannable(const fs::path& p) {
  const std::string ext = p.extension().string();
  if (ext != ".cpp" && ext != ".hpp" && ext != ".h" && ext != ".cc") {
    return false;
  }
  const std::string s = p.generic_string();
  // Deliberate violations live in the fixture corpus; build trees carry
  // generated sources.
  return s.find("tools/tidy/fixtures/") == std::string::npos &&
         s.find("/build/") == std::string::npos &&
         s.find("CMakeFiles") == std::string::npos;
}

std::vector<std::string> collect_files(const Options& opt) {
  std::vector<std::string> files;
  for (const std::string& p : opt.paths) {
    fs::path full = p;
    if (!opt.root.empty() && full.is_relative()) {
      full = fs::path(opt.root) / full;
    }
    if (fs::is_directory(full)) {
      for (const auto& e : fs::recursive_directory_iterator(full)) {
        if (e.is_regular_file() && scannable(e.path())) {
          files.push_back(e.path().generic_string());
        }
      }
    } else if (fs::exists(full)) {
      files.push_back(full.generic_string());
    } else {
      std::fprintf(stderr, "dfs_tidy_lite: no such path: %s\n", p.c_str());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::string relative_display(const std::string& file,
                             const std::string& root) {
  if (root.empty()) return file;
  const std::string r = fs::path(root).generic_string();
  std::string f = fs::path(file).generic_string();
  if (f.rfind(r, 0) == 0) {
    f = f.substr(r.size());
    if (!f.empty() && f.front() == '/') f.erase(0, 1);
  }
  return f;
}

/// Expected diagnostics of a fixture: `// dfs-expect: check[, check...]`.
std::multiset<std::pair<int, std::string>> expectations(const FileView& v) {
  std::multiset<std::pair<int, std::string>> out;
  for (std::size_t li = 0; li < v.comments.size(); ++li) {
    auto pos = v.comments[li].find("dfs-expect:");
    if (pos == std::string::npos) continue;
    std::string list = v.comments[li].substr(pos + 11);
    std::string item;
    std::istringstream in(list);
    while (std::getline(in, item, ',')) {
      item.erase(0, item.find_first_not_of(" \t"));
      item.erase(item.find_last_not_of(" \t") + 1);
      if (!item.empty()) {
        out.insert({static_cast<int>(li) + 1, item});
      }
    }
  }
  return out;
}

int verify_fixture(const Options& opt, const FileView& view) {
  std::vector<Finding> findings;
  std::set<std::string> no_sibling;
  run_checks(opt, view, no_sibling, findings);

  const auto expected = expectations(view);
  std::multiset<std::pair<int, std::string>> actual;
  for (const Finding& f : findings) actual.insert({f.line, f.check});

  int failures = 0;
  for (const auto& e : expected) {
    // Expectations for disabled checks are vacuous, so a fixture verified
    // with --checks=-dfs-foo *fails*: the expected diagnostics go missing.
    if (actual.count(e) == 0) {
      std::printf("%s:%d: missing expected diagnostic [%s]\n",
                  view.display.c_str(), e.first, e.second.c_str());
      ++failures;
    }
  }
  for (const auto& a : actual) {
    if (expected.count(a) == 0) {
      std::printf("%s:%d: unexpected diagnostic [%s]\n",
                  view.display.c_str(), a.first, a.second.c_str());
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("%s: %zu diagnostic(s) matched\n", view.display.c_str(),
                expected.size());
  }
  return failures == 0 ? 0 : 1;
}

/// Findings as a schema-2-style run report, so CI can diff tidy runs the
/// same way it diffs bench runs (dfbench compare tolerates extra files;
/// the artifact is for humans and trend tooling).
void write_json(const Options& opt, const std::vector<Finding>& findings,
                std::size_t files_scanned) {
  obs::RunReport rep;
  rep.bench = "dfs-tidy";
  rep.git_rev = obs::git_rev();
  rep.build_flags = obs::build_flags();

  obs::JsonValue config = obs::JsonValue::object();
  std::string checks;
  for (const std::string& c : opt.checks) {
    checks += (checks.empty() ? "" : ",") + c;
  }
  config.set("checks", obs::JsonValue::string(checks));
  config.set("files_scanned", obs::JsonValue::integer(
                                  static_cast<std::int64_t>(files_scanned)));
  rep.config = std::move(config);

  std::map<std::string, std::int64_t> per_check;
  for (const char* c : kAllChecks) per_check[c] = 0;
  for (const Finding& f : findings) ++per_check[f.check];
  obs::JsonValue metrics = obs::JsonValue::object();
  metrics.set("tidy/findings_total",
              obs::JsonValue::integer(
                  static_cast<std::int64_t>(findings.size())));
  for (const auto& [check, n] : per_check) {
    metrics.set("tidy/findings/" + check, obs::JsonValue::integer(n));
  }
  rep.metrics = std::move(metrics);

  obs::JsonValue rows = obs::JsonValue::array();
  for (const Finding& f : findings) {
    obs::JsonValue row = obs::JsonValue::array();
    row.push_back(obs::JsonValue::string(f.file));
    row.push_back(obs::JsonValue::integer(f.line));
    row.push_back(obs::JsonValue::string(f.check));
    row.push_back(obs::JsonValue::string(f.message));
    rows.push_back(std::move(row));
  }
  obs::JsonValue table = obs::JsonValue::object();
  table.set("title", obs::JsonValue::string("dfs-tidy findings"));
  obs::JsonValue cols = obs::JsonValue::array();
  for (const char* c : {"file", "line", "check", "message"}) {
    cols.push_back(obs::JsonValue::string(c));
  }
  table.set("columns", std::move(cols));
  table.set("rows", std::move(rows));
  rep.tables.push_back(std::move(table));

  obs::write_run_report(rep, opt.json_out);
}

int usage() {
  std::fprintf(
      stderr,
      "usage: dfs_tidy_lite [--root=DIR] [--checks=LIST] [--json=FILE] "
      "PATH...\n"
      "       dfs_tidy_lite --verify [--checks=LIST] FIXTURE...\n"
      "checks: dfs-deterministic-iteration dfs-no-ambient-entropy\n"
      "        dfs-engine-api dfs-checked-narrowing dfs-metric-name-literal\n"
      "        dfs-nolint-rationale\n"
      "LIST is comma-separated; '-name' disables, bare names select.\n");
  return 2;
}

int run(int argc, char** argv) {
  Options opt;
  for (const char* c : kAllChecks) opt.checks.insert(c);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verify") {
      opt.verify = true;
    } else if (arg.rfind("--checks=", 0) == 0) {
      if (!parse_checks(arg.substr(9), opt.checks)) return usage();
    } else if (arg.rfind("--root=", 0) == 0) {
      opt.root = arg.substr(7);
    } else if (arg.rfind("--json=", 0) == 0) {
      opt.json_out = arg.substr(7);
    } else if (arg == "--help" || arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      opt.paths.push_back(arg);
    }
  }
  if (opt.paths.empty()) return usage();

  const std::vector<std::string> files = collect_files(opt);
  if (files.empty()) {
    std::fprintf(stderr, "dfs_tidy_lite: nothing to scan\n");
    return 2;
  }

  if (opt.verify) {
    int rc = 0;
    for (const std::string& f : files) {
      const FileView view = parse_file(f, relative_display(f, opt.root),
                                       fs::path(f).generic_string());
      rc = std::max(rc, verify_fixture(opt, view));
    }
    return rc;
  }

  // Pair each .cpp with its sibling .hpp (and vice versa) so member
  // containers declared in the header are known when the source iterates
  // them — the repo's universal layout.
  std::vector<Finding> findings;
  for (const std::string& f : files) {
    const FileView view = parse_file(f, relative_display(f, opt.root),
                                     fs::path(f).generic_string());
    std::set<std::string> sibling_vars;
    const fs::path p(f);
    for (const char* ext : {".hpp", ".cpp", ".h"}) {
      fs::path sib = p;
      sib.replace_extension(ext);
      if (sib != p && fs::exists(sib)) {
        const FileView sv = parse_file(sib.generic_string(), "", "");
        std::set<std::string> aliases;
        harvest_unordered(tokenize(sv), aliases, sibling_vars);
      }
    }
    run_checks(opt, view, sibling_vars, findings);
  }

  for (const Finding& f : findings) {
    std::printf("%s:%d: warning: %s [%s]\n", f.file.c_str(), f.line,
                f.message.c_str(), f.check.c_str());
  }
  if (!opt.json_out.empty()) write_json(opt, findings, files.size());
  if (findings.empty()) {
    std::printf("dfs_tidy_lite: %zu file(s) clean\n", files.size());
  } else {
    std::printf("dfs_tidy_lite: %zu finding(s) in %zu file(s)\n",
                findings.size(), files.size());
  }
  return findings.empty() ? 0 : 1;
}

}  // namespace
}  // namespace dfsssp::tidy

int main(int argc, char** argv) {
  try {
    return dfsssp::tidy::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dfs_tidy_lite: %s\n", e.what());
    return 2;
  }
}
