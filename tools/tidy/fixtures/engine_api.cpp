// Fixture for dfs-engine-api: every Router subclass overrides
// route(const RouteRequest&), and the transitional route(const Topology&)
// overload is gone for good. The stubs mirror routing/router.hpp.
#include <string>

namespace dfsssp {

struct Topology {};
struct RouteRequest {};
struct RouteResponse {
  bool ok = false;
};

class Router {
 public:
  virtual ~Router() = default;
  virtual std::string name() const = 0;
  virtual bool deadlock_free() const = 0;
  virtual RouteResponse route(const RouteRequest& request) const = 0;
};

// A conforming engine: new API, override spelled out.
class GoodRouter final : public Router {
 public:
  std::string name() const override { return "Good"; }
  bool deadlock_free() const override { return true; }
  RouteResponse route(const RouteRequest& request) const override;
};

// Subclass that never implements the RouteRequest entry point.
class StaleRouter final : public Router {  // dfs-expect: dfs-engine-api
 public:
  std::string name() const override { return "Stale"; }
  bool deadlock_free() const override { return false; }
};

// Subclass that resurrects the removed legacy overload.
class LegacyRouter final : public Router {
 public:
  std::string name() const override { return "Legacy"; }
  bool deadlock_free() const override { return false; }
  RouteResponse route(const RouteRequest& request) const override;
  RouteResponse route(const Topology& topo) const;  // dfs-expect: dfs-engine-api
};

// Non-Router classes may call their methods whatever they like.
class Planner {
 public:
  int route(int hops) const { return hops; }
};

}  // namespace dfsssp
