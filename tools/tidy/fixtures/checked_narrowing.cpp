// Fixture for dfs-checked-narrowing: 64-bit values shrink into the
// topology layer's 32-bit index space only through the throwing helpers in
// common/narrow.hpp.
#include <cstdint>
#include <vector>

namespace fixture {

using NodeId = std::uint32_t;

std::uint32_t bad_size_cast(const std::vector<int>& v) {
  return static_cast<std::uint32_t>(v.size());  // dfs-expect: dfs-checked-narrowing
}

NodeId bad_id_cast(const std::vector<int>& nodes) {
  return static_cast<NodeId>(nodes.size());  // dfs-expect: dfs-checked-narrowing
}

std::uint32_t bad_u64_cast(std::uint64_t offset) {
  return static_cast<std::uint32_t>(offset);  // dfs-expect: dfs-checked-narrowing
}

std::uint32_t bad_sizet_cast(std::size_t count) {
  return static_cast<std::uint32_t>(count);  // dfs-expect: dfs-checked-narrowing
}

// Widening and same-width casts are not narrowing.
std::uint64_t good_widening(std::uint32_t v) {
  return static_cast<std::uint64_t>(v) << 32;
}

std::uint32_t good_u8_widen(std::uint8_t b) {
  return static_cast<std::uint32_t>(b) << 8;
}

}  // namespace fixture
