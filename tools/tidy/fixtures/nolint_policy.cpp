// Fixture for the NOLINT policy: a dfs- suppression with a written
// rationale silences the check; one without a rationale is itself a
// dfs-nolint-rationale finding (which no NOLINT can silence).
#include <cstdint>
#include <string>
#include <unordered_map>

namespace fixture {

struct Tables {
  std::unordered_map<std::uint32_t, std::string> names_;
};

std::uint64_t justified(const Tables& t) {
  std::uint64_t total = 0;
  // NOLINTNEXTLINE(dfs-deterministic-iteration): commutative sum, order-free
  for (const auto& [id, name] : t.names_) {
    total += id + name.size();
  }
  return total;
}

std::uint64_t unjustified(const Tables& t) {
  std::uint64_t total = 0;
  for (const auto& [id, name] : t.names_) {  // NOLINT(dfs-deterministic-iteration)  dfs-expect: dfs-nolint-rationale
    total += id + name.size();
  }
  return total;
}

std::uint64_t unrelated_suppression(const Tables& t) {
  // A NOLINT that names only upstream checks neither silences dfs- checks
  // nor needs a dfs rationale.
  std::uint64_t total = 0;
  for (const auto& [id, name] : t.names_) {  // NOLINT(performance-unnecessary-copy)  dfs-expect: dfs-deterministic-iteration
    total += id + name.size();
  }
  return total;
}

}  // namespace fixture
