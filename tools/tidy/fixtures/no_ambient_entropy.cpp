// Fixture for dfs-no-ambient-entropy: randomness must flow through seeded
// Rng streams and timing through the repo's Timer; ambient sources make
// runs irreproducible.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

std::uint32_t bad_rand() {
  return static_cast<std::uint32_t>(rand());  // dfs-expect: dfs-no-ambient-entropy
}

std::uint64_t bad_random_device() {
  std::random_device rd;  // dfs-expect: dfs-no-ambient-entropy
  return rd();
}

std::int64_t bad_wall_clock() {
  return std::chrono::system_clock::now().time_since_epoch().count();  // dfs-expect: dfs-no-ambient-entropy
}

std::int64_t bad_time() {
  return static_cast<std::int64_t>(std::time(nullptr));  // dfs-expect: dfs-no-ambient-entropy
}

// Seeded engines and monotonic clocks are the sanctioned tools.
std::uint64_t good_seeded(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return rng();
}

std::int64_t good_steady() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

// A member function that happens to be called `time` is not libc time().
struct Config {
  std::int64_t time() const { return 7; }
};

std::int64_t good_member_time(const Config& c) { return c.time(); }

}  // namespace fixture
