// Negative control: idiomatic repo code that every dfs- check must leave
// alone. Near-misses on purpose — ordered containers, seeded RNG, checked
// narrowing, literal metric names, non-Router route() methods.
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

namespace fixture {

std::uint64_t ordered_iteration(const std::map<std::string, int>& m) {
  std::uint64_t total = 0;
  for (const auto& [k, v] : m) {
    total += k.size() + static_cast<std::uint64_t>(v);
  }
  return total;
}

std::uint64_t seeded_stream(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return rng();
}

std::uint32_t checked_index(std::size_t n) {
  if (n > 0xFFFF'FFFFull) return 0;
  // The checked helper owns the one sanctioned cast; plain widening below.
  std::uint8_t low = 3;
  return static_cast<std::uint32_t>(low);
}

class Itinerary {
 public:
  // route() on a class that is no Router subclass.
  std::string route(const std::string& via) const { return via; }
};

struct MetricSink {
  void counter(const char*) {}
};

void literal_names(MetricSink& sink) {
  sink.counter("traffic/messages_sent");
}

}  // namespace fixture
