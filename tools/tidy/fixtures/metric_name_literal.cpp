// Fixture for dfs-metric-name-literal: metric registrations take a string
// literal matching the family/name pattern, so the metric namespace stays
// bounded and greppable. The stub mirrors obs/metrics.hpp.
#include <cstdint>
#include <string>
#include <vector>

namespace fixture {

class Counter {
 public:
  void inc() {}
};
class Gauge {
 public:
  void set(std::uint64_t) {}
};
class Histogram {
 public:
  void record(std::uint64_t) {}
};

class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> edges);
  Histogram& timing_histogram(const std::string& name);
};

Registry& registry();

void good_literals() {
  registry().counter("cdg/cycles_found").inc();
  registry().gauge("topology/bytes").set(0);
  registry().histogram("sim/max_congestion", {1, 2, 4}).record(1);
  registry().timing_histogram("dfcheck/route_ns").record(5);
}

void bad_dynamic_name(const std::string& engine) {
  registry().counter("cdg/edges_broken/" + engine).inc();  // dfs-expect: dfs-metric-name-literal
}

void bad_variable_name(const std::string& name) {
  registry().timing_histogram(name).record(1);  // dfs-expect: dfs-metric-name-literal
}

void bad_flat_name() {
  registry().counter("cycles").inc();  // dfs-expect: dfs-metric-name-literal
}

void bad_uppercase_name() {
  registry().gauge("Topology/Bytes").set(1);  // dfs-expect: dfs-metric-name-literal
}

}  // namespace fixture
