// Fixture for dfs-deterministic-iteration: traversing an unordered
// container produces hash-dependent order; result-producing code must use
// deterministic containers or justify the traversal.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

using GuidIndex = std::unordered_map<std::uint64_t, std::uint32_t>;

struct SideTables {
  std::unordered_map<std::uint32_t, std::string> names_;
  std::unordered_set<std::uint32_t> marked_;
  std::map<std::uint32_t, std::string> ordered_;
};

std::uint64_t bad_range_for(const SideTables& t) {
  std::uint64_t total = 0;
  for (const auto& [id, name] : t.names_) {  // dfs-expect: dfs-deterministic-iteration
    total += id + name.size();
  }
  return total;
}

std::uint64_t bad_alias_iteration(const GuidIndex& guids) {
  std::uint64_t total = 0;
  for (const auto& [guid, index] : guids) {  // dfs-expect: dfs-deterministic-iteration
    total += guid + index;
  }
  return total;
}

std::size_t bad_iterator_loop(const SideTables& t) {
  std::size_t n = 0;
  for (auto it = t.marked_.begin(); it != t.marked_.end(); ++it) {  // dfs-expect: dfs-deterministic-iteration
    ++n;
  }
  return n;
}

// Deterministic traversals must stay silent: std::map iterates in key
// order, and point lookups into unordered containers are order-free.
std::uint64_t good_ordered(const SideTables& t) {
  std::uint64_t total = 0;
  for (const auto& [id, name] : t.ordered_) {
    total += id + name.size();
  }
  return total;
}

bool good_lookup(const SideTables& t, std::uint32_t id) {
  return t.names_.count(id) > 0 && t.marked_.count(id) > 0;
}

}  // namespace fixture
