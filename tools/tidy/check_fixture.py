#!/usr/bin/env python3
"""Run the dfs-tidy clang-tidy plugin over a fixture and compare diagnostics.

Fixtures annotate each expected diagnostic with a trailing comment:

    auto it = table.begin();  // dfs-expect: dfs-deterministic-iteration

The expectation is a (line, check) multiset: every annotated diagnostic must
be emitted on exactly that line, and no unannotated dfs-* diagnostic may
appear. `--ignore` drops a check from both sides (used for
dfs-nolint-rationale, which only the lite scanner implements).

Exit status: 0 on exact match, 1 on any mismatch, 2 on usage/tool errors.
"""

import argparse
import re
import subprocess
import sys
from collections import Counter

EXPECT_RE = re.compile(r"//\s*dfs-expect:\s*([a-z0-9_,\-\s]+)")
DIAG_RE = re.compile(r"^(.+?):(\d+):\d+:\s+warning:.*\[([a-z0-9\-]+)\]\s*$")


def parse_expectations(path, ignore):
    expected = Counter()
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            m = EXPECT_RE.search(line)
            if not m:
                continue
            for check in m.group(1).split(","):
                check = check.strip()
                if check and check not in ignore:
                    expected[(lineno, check)] += 1
    return expected


def run_clang_tidy(args, fixture):
    cmd = [
        args.clang_tidy,
        f"-load={args.plugin}",
        "-checks=-*,dfs-*",
        "--quiet",
        fixture,
        "--",
        "-std=c++20",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True, check=False)
    # clang-tidy exits non-zero when it emits warnings promoted to errors or
    # on real failures; compile errors in the fixture are fatal for us.
    if "error:" in proc.stdout or "error:" in proc.stderr:
        sys.stderr.write(proc.stdout + proc.stderr)
        sys.stderr.write(f"check_fixture: clang-tidy failed on {fixture}\n")
        sys.exit(2)
    return proc.stdout


def parse_diagnostics(output, fixture, ignore):
    got = Counter()
    for line in output.splitlines():
        m = DIAG_RE.match(line)
        if not m:
            continue
        file_, lineno, check = m.group(1), int(m.group(2)), m.group(3)
        if not check.startswith("dfs-") or check in ignore:
            continue
        if not file_.endswith(fixture.rsplit("/", 1)[-1]):
            continue
        got[(lineno, check)] += 1
    return got


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--clang-tidy", required=True)
    ap.add_argument("--plugin", required=True)
    ap.add_argument("--ignore", action="append", default=[])
    ap.add_argument("fixture")
    args = ap.parse_args()
    ignore = set(args.ignore)

    expected = parse_expectations(args.fixture, ignore)
    got = parse_diagnostics(run_clang_tidy(args, args.fixture), args.fixture,
                            ignore)

    missing = expected - got
    surplus = got - expected
    for (lineno, check), n in sorted(missing.items()):
        print(f"MISSING  {args.fixture}:{lineno} [{check}] x{n}")
    for (lineno, check), n in sorted(surplus.items()):
        print(f"SURPLUS  {args.fixture}:{lineno} [{check}] x{n}")
    if missing or surplus:
        print(f"check_fixture: {args.fixture}: "
              f"{sum(missing.values())} missing, {sum(surplus.values())} surplus")
        return 1
    print(f"check_fixture: {args.fixture}: "
          f"{sum(expected.values())} diagnostics matched")
    return 0


if __name__ == "__main__":
    sys.exit(main())
