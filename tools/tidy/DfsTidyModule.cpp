// dfs-tidy: the repo-specific clang-tidy module.
//
// Built as a loadable plugin (libdfs_tidy_module.so) and injected with
//   clang-tidy -load=libdfs_tidy_module.so -checks=dfs-*
// or through run-clang-tidy over build/compile_commands.json. The checks
// encode invariants the repo previously enforced by convention or grep:
//
//   dfs-deterministic-iteration  no hash-ordered traversals
//   dfs-no-ambient-entropy       no rand()/random_device/wall clocks
//   dfs-engine-api               Router subclasses speak RouteRequest
//   dfs-checked-narrowing        no raw 64->32 casts in src/topology/
//   dfs-metric-name-literal      metric names are literal "family/name"
//
// tools/tidy/dfs_tidy_lite.cpp mirrors the same five checks (plus
// dfs-nolint-rationale) as a token-level scanner for toolchains without
// clang-tidy; fixtures under tools/tidy/fixtures/ pin both implementations
// to the same expected diagnostics.

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "checks/CheckedNarrowingCheck.h"
#include "checks/DeterministicIterationCheck.h"
#include "checks/EngineApiCheck.h"
#include "checks/MetricNameLiteralCheck.h"
#include "checks/NoAmbientEntropyCheck.h"

namespace clang::tidy {
namespace dfs {

class DfsTidyModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories &Factories) override {
    Factories.registerCheck<DeterministicIterationCheck>(
        "dfs-deterministic-iteration");
    Factories.registerCheck<NoAmbientEntropyCheck>("dfs-no-ambient-entropy");
    Factories.registerCheck<EngineApiCheck>("dfs-engine-api");
    Factories.registerCheck<CheckedNarrowingCheck>("dfs-checked-narrowing");
    Factories.registerCheck<MetricNameLiteralCheck>("dfs-metric-name-literal");
  }
};

}  // namespace dfs

static ClangTidyModuleRegistry::Add<dfs::DfsTidyModule> DfsTidyModuleAdd(
    "dfs-module", "Determinism, engine-API, and narrowing checks for the "
                  "dfsssp repo.");

// Referenced so the registry entry above is not dead-stripped when the
// module is linked statically into a custom tool.
volatile int DfsTidyModuleAnchorSource = 0;

}  // namespace clang::tidy
