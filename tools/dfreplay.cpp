// dfreplay: feed a recorded flight-recorder journal (DFJR segment) back
// through a fresh routing service and prove the run reproduces.
//
//   dfreplay <journal>                 replay in-process, verify
//   dfreplay <journal> --no-verify     load-replay only (no comparison)
//   dfreplay <journal> --socket=PATH   replay against a live dfrouted
//                                      (started with --journal on the
//                                      same topo/engine)
//   dfreplay <journal> --dump          print the records, do nothing else
//
// Verification holds the replay to the recorder's determinism contract:
// every transaction must emit the same records — snapshot versions, layer
// counts, forwarding-table digests, certificate digests — with only
// latency_ns free to differ. Exit 0 when everything matches, 1 on any
// mismatch or replay failure, 2 on usage/IO errors.
#include <cstdio>
#include <exception>
#include <string>

#include "common/cli.hpp"
#include "obs/journal/journal.hpp"
#include "service/replay.hpp"

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <journal.dfjr> [--verify|--no-verify] [--dump]\n"
               "          [--socket=<path>] [--quiet]\n",
               prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dfsssp;
  Cli cli(argc, argv);
  if (cli.positional().size() != 1) return usage(cli.program().c_str());
  const std::string path = cli.positional().front();
  // --verify is the default; --no-verify (or --verify=0) turns the replay
  // into a pure load-replay.
  const bool verify =
      cli.get_bool("verify", true) && !cli.get_bool("no-verify", false);
  const bool quiet = cli.get_bool("quiet", false);

  obs::journal::JournalFile file;
  std::string error;
  if (!obs::journal::read_journal(path, file, error)) {
    std::fprintf(stderr, "dfreplay: %s\n", error.c_str());
    return 2;
  }
  if (!quiet) {
    std::printf("journal %s: topo %s, engine %s, max_layers %u, %zu records%s\n",
                path.c_str(), file.topo_config.c_str(), file.engine.c_str(),
                unsigned{file.max_layers}, file.records.size(),
                file.truncated_tail ? " (truncated tail)" : "");
  }

  if (cli.get_bool("dump", false)) {
    for (const obs::journal::Record& rec : file.records) {
      std::printf("%s\n", obs::journal::describe(rec).c_str());
    }
    return 0;
  }

  try {
    std::unique_ptr<service::ReplayTarget> target;
    const std::string socket_path = cli.get("socket", "");
    if (!socket_path.empty()) {
      target = service::make_socket_target(socket_path, error);
      if (!target) {
        std::fprintf(stderr, "dfreplay: %s\n", error.c_str());
        return 2;
      }
    } else {
      target = service::make_inprocess_target(file);
    }

    const service::ReplayResult result =
        service::replay_journal(file, *target, verify);
    if (!result.error.empty()) {
      std::fprintf(stderr, "dfreplay: %s\n", result.error.c_str());
      return 1;
    }
    for (const service::ReplayMismatch& m : result.mismatches) {
      std::fprintf(stderr, "dfreplay: MISMATCH ts=%llu: %s\n",
                   static_cast<unsigned long long>(m.logical_ts),
                   m.detail.c_str());
    }
    if (!quiet) {
      std::printf(
          "replayed %llu transactions: %llu records %s, "
          "%llu generations%s\n",
          static_cast<unsigned long long>(result.transactions),
          static_cast<unsigned long long>(result.records_checked),
          verify ? "verified" : "re-issued (no verify)",
          static_cast<unsigned long long>(result.generations),
          result.ok ? "" : " — FAILED");
    }
    return result.ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dfreplay: %s\n", e.what());
    return 2;
  }
}
