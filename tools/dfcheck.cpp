// dfcheck — static routing analyzer with machine-checkable deadlock-freedom
// certificates, the role OpenSM's ibdmchk plays for real fabrics.
//
// Takes a topology (file or built-in generator) plus a routing (forwarding
// dump or in-memory engine run) and:
//   * default: decides deadlock freedom; on failure prints a minimal
//     witness cycle with the inducing paths per CDG edge;
//   * --cert-out:   emits a certificate (per layer, a topological order of
//                   the layer's CDG) a third party can re-check;
//   * --cert-check: validates a certificate against the routing in one
//                   O(V+E) pass, with no cycle search;
//   * --lints:      runs the static lint suite (unreachable destinations,
//                   non-minimal paths, layer skew, VL budget, dangling or
//                   duplicate LFT entries, out-of-range SL entries, and the
//                   conservative existence lower bound on the layer count);
//   * --json:       machine-readable report of everything above;
//   * --report:     versioned run report (the dfbench BENCH_*.json schema),
//                   so dfcheck runs slot into the same baseline trajectory
//                   and compare gate as the benches.
//
// Exit codes: 0 = clean, 1 = deadlock possible / certificate rejected /
// structural lint defects, 2 = usage or I/O error.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <memory>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/certificate.hpp"
#include "analysis/lints.hpp"
#include "analysis/witness.hpp"
#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/report/build_info.hpp"
#include "obs/report/report.hpp"
#include "obs/trace.hpp"
#include "routing/dump.hpp"
#include "routing/registry.hpp"
#include "routing/router.hpp"
#include "topology/generators.hpp"
#include "topology/io.hpp"

namespace dfsssp {
namespace {

int usage(const char* program) {
  std::fprintf(stderr,
               "usage: %s <topology> <routing> [actions]\n"
               "\n"
               "topology (one of):\n"
               "  --topo=FILE         netfile or ibnetdiscover dump\n"
               "  --topo-format=F     netfile|ibnetdiscover (default: sniff)\n"
               "  --gen=SPEC          built-in generator:\n"
               "                        ring:<switches>:<terminals>\n"
               "                        torus:<a>x<b>[x<c>]:<terminals>\n"
               "                        tree:<k>:<n>\n"
               "                        random:<sw>:<term>:<links>:<ports>:<seed>\n"
               "                        real:<odin|chic|deimos|tsubame|juropa|ranger>\n"
               "routing (one of):\n"
               "  --dump=FILE         read a forwarding dump\n"
               "  --route=ENGINE      engine registry key (minhop|updown|fattree|\n"
               "                      dor|dordateline|lash|sssp|dfsssp)\n"
               "  --max-layers=N      layer budget for --route engines (default 8)\n"
               "actions (default: deadlock-freedom analysis + witness):\n"
               "  --cert-out=FILE     emit a deadlock-freedom certificate\n"
               "  --cert-check=FILE   validate a certificate (no cycle search)\n"
               "  --dump-out=FILE     write the forwarding dump\n"
               "  --lints             run the lint suite\n"
               "  --json              machine-readable output\n"
               "  --report=FILE       versioned run report (dfbench schema)\n"
               "  --witness-paths=N   inducing paths shown per cycle edge (3)\n"
               "  --threads=N         worker threads (0 = hardware)\n"
               "  --trace=FILE        Chrome trace_event span log (Perfetto)\n",
               program);
  return 2;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(s);
  while (std::getline(in, item, sep)) out.push_back(item);
  return out;
}

std::uint32_t parse_u32(const std::string& tok, const std::string& what) {
  std::size_t used = 0;
  unsigned long v = 0;
  try {
    v = std::stoul(tok, &used);
  } catch (...) {
    used = 0;
  }
  if (used != tok.size() || v > 0xFFFFFFFFul) {
    throw std::runtime_error("bad " + what + " '" + tok + "'");
  }
  return static_cast<std::uint32_t>(v);
}

Topology generate(const std::string& spec) {
  const auto parts = split(spec, ':');
  if (parts.empty()) throw std::runtime_error("empty --gen spec");
  const std::string& family = parts[0];
  auto want = [&](std::size_t n) {
    if (parts.size() != n + 1) {
      throw std::runtime_error("--gen=" + family + " needs " +
                               std::to_string(n) + " ':'-separated fields");
    }
  };
  if (family == "ring") {
    want(2);
    return make_ring(parse_u32(parts[1], "switch count"),
                     parse_u32(parts[2], "terminal count"));
  }
  if (family == "torus") {
    want(2);
    std::vector<std::uint32_t> dims;
    for (const std::string& d : split(parts[1], 'x')) {
      dims.push_back(parse_u32(d, "torus dimension"));
    }
    return make_torus(dims, parse_u32(parts[2], "terminal count"), true);
  }
  if (family == "tree") {
    want(2);
    return make_kary_ntree(parse_u32(parts[1], "k"), parse_u32(parts[2], "n"));
  }
  if (family == "random") {
    want(5);
    Rng rng(0xDFC0'0000ULL + parse_u32(parts[5], "seed"));
    return make_random(parse_u32(parts[1], "switch count"),
                       parse_u32(parts[2], "terminal count"),
                       parse_u32(parts[3], "link count"),
                       parse_u32(parts[4], "port count"), rng);
  }
  if (family == "real") {
    want(1);
    for (Topology& t : make_all_real_systems()) {
      std::string lowered;
      for (char c : t.name) {
        lowered.push_back(static_cast<char>(std::tolower(c)));
      }
      if (lowered.find(parts[1]) != std::string::npos) return std::move(t);
    }
    throw std::runtime_error("unknown real system '" + parts[1] + "'");
  }
  throw std::runtime_error("unknown generator family '" + family + "'");
}

Topology load_topology(const std::string& path, const std::string& format) {
  std::string fmt = format;
  if (fmt.empty()) {
    // Sniff: netfiles start with switch/terminal/link keywords.
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open topology: " + path);
    std::string line;
    fmt = "ibnetdiscover";
    while (std::getline(in, line)) {
      std::istringstream ls(line);
      std::string tok;
      if (!(ls >> tok) || tok[0] == '#') continue;
      if (tok == "switch" || tok == "terminal" || tok == "link") {
        fmt = "netfile";
      }
      break;
    }
  }
  if (fmt == "netfile") return read_netfile_path(path);
  if (fmt == "ibnetdiscover") return read_ibnetdiscover_path(path);
  throw std::runtime_error("unknown --topo-format '" + fmt + "'");
}

std::string json_escape(const std::string& s) {
  // Escaped content without the surrounding quotes (print_json supplies
  // them); delegates to the shared quoting helper.
  const std::string quoted = json_quote(s);
  return quoted.substr(1, quoted.size() - 2);
}

/// "dfcheck/..." timing histograms from the obs registry, as (name, ms,
/// samples). What --trace records as spans, this reports as totals.
std::vector<std::tuple<std::string, double, std::uint64_t>> dfcheck_timings() {
  std::vector<std::tuple<std::string, double, std::uint64_t>> out;
  for (const auto& [name, v] : obs::registry().snapshot()) {
    if (name.rfind("dfcheck/", 0) != 0 ||
        v.type != obs::MetricValue::Type::kHistogram || v.hist.count == 0) {
      continue;
    }
    out.emplace_back(name, static_cast<double>(v.hist.sum) / 1e6,
                     v.hist.count);
  }
  return out;
}

struct Report {
  std::string topology;
  std::size_t switches = 0, terminals = 0, channels = 0;
  std::string routing_source;
  Layer layers = 1;
  bool analyzed = false;
  bool deadlock_free = false;
  DeadlockWitness witness;
  std::string cert_out, cert_check;
  CertCheckResult check;
  bool checked = false;
  bool linted = false;
  LintReport lints;
};

void print_json(const Network& net, const Report& r, std::ostream& out) {
  out << "{\n";
  out << "  \"topology\": \"" << json_escape(r.topology) << "\",\n";
  out << "  \"switches\": " << r.switches << ",\n";
  out << "  \"terminals\": " << r.terminals << ",\n";
  out << "  \"channels\": " << r.channels << ",\n";
  out << "  \"routing\": \"" << json_escape(r.routing_source) << "\",\n";
  out << "  \"layers\": " << unsigned(r.layers);
  if (r.analyzed) {
    out << ",\n  \"deadlock_free\": " << (r.deadlock_free ? "true" : "false");
    if (!r.witness.empty()) {
      out << ",\n  \"witness\": {\"layer\": " << unsigned(r.witness.layer)
          << ", \"cycle\": [";
      for (std::size_t i = 0; i < r.witness.edges.size(); ++i) {
        const WitnessEdge& e = r.witness.edges[i];
        const Channel& ch = net.channel(e.from);
        out << (i ? ", " : "") << "{\"channel\": \""
            << json_escape(net.node_name(ch.src) + "->" +
                           net.node_name(ch.dst))
            << "\", \"inducing_paths\": " << e.inducing_paths << "}";
      }
      out << "]}";
    }
  }
  if (!r.cert_out.empty()) {
    out << ",\n  \"certificate_written\": \"" << json_escape(r.cert_out)
        << "\"";
  }
  if (r.checked) {
    out << ",\n  \"certificate\": {\"file\": \"" << json_escape(r.cert_check)
        << "\", \"ok\": " << (r.check.ok ? "true" : "false")
        << ", \"paths_checked\": " << r.check.paths_checked
        << ", \"deps_checked\": " << r.check.deps_checked;
    if (!r.check.ok) {
      out << ", \"error\": \"" << json_escape(r.check.error) << "\"";
    }
    out << "}";
  }
  if (r.linted) {
    out << ",\n  \"lint_counts\": {";
    bool first = true;
    for (std::size_t k = 0; k < kNumLintKinds; ++k) {
      if (r.lints.counts[k] == 0) continue;
      out << (first ? "" : ", ") << "\""
          << to_string(static_cast<LintKind>(k)) << "\": "
          << r.lints.counts[k];
      first = false;
    }
    out << "},\n  \"lints\": [";
    for (std::size_t i = 0; i < r.lints.lints.size(); ++i) {
      const Lint& l = r.lints.lints[i];
      out << (i ? ",\n    " : "\n    ") << "{\"kind\": \"" << to_string(l.kind)
          << "\", \"message\": \"" << json_escape(l.message) << "\"}";
    }
    out << (r.lints.lints.empty() ? "]" : "\n  ]");
  }
  const auto timings = dfcheck_timings();
  if (!timings.empty()) {
    out << ",\n  \"timing_ms\": {";
    for (std::size_t i = 0; i < timings.size(); ++i) {
      char ms[32];
      std::snprintf(ms, sizeof(ms), "%.3f", std::get<1>(timings[i]));
      out << (i ? ", " : "") << "\"" << json_escape(std::get<0>(timings[i]))
          << "\": " << ms;
    }
    out << "}";
  }
  out << "\n}\n";
}

/// Writes the analysis as a versioned run report (the dfbench BENCH_*.json
/// schema): analysis outcomes land in the deterministic `metrics` section,
/// registry timing histograms in `timing_metrics`/`timing_stats`. A dfcheck
/// run on a fixed topology+routing is bitwise reproducible, so the report
/// slots straight into `dfbench compare`'s quality gate.
void write_report(const Report& r, const obs::JsonValue& config,
                  double wall_seconds, const std::string& path) {
  obs::RunReport out;
  out.bench = "dfcheck";
  out.git_rev = obs::git_rev();
  out.build_flags = obs::build_flags();
  out.config = config;
  out.wall_seconds = wall_seconds;

  obs::JsonValue m = obs::JsonValue::object();
  auto put = [&m](const char* key, std::uint64_t v) {
    m.set(key, obs::JsonValue::integer(static_cast<std::int64_t>(v)));
  };
  put("dfcheck/switches", r.switches);
  put("dfcheck/terminals", r.terminals);
  put("dfcheck/channels", r.channels);
  put("dfcheck/layers", r.layers);
  if (r.analyzed) {
    m.set("dfcheck/deadlock_free", obs::JsonValue::boolean(r.deadlock_free));
    put("dfcheck/witness_edges", r.witness.edges.size());
  }
  if (r.checked) {
    m.set("dfcheck/cert_ok", obs::JsonValue::boolean(r.check.ok));
    put("dfcheck/cert_paths_checked", r.check.paths_checked);
    put("dfcheck/cert_deps_checked", r.check.deps_checked);
  }
  if (r.linted) {
    put("dfcheck/lint_paths_checked", r.lints.paths_checked);
    for (std::size_t k = 0; k < kNumLintKinds; ++k) {
      put((std::string("dfcheck/lint_") +
           to_string(static_cast<LintKind>(k))).c_str(),
          r.lints.counts[k]);
    }
  }
  out.metrics = std::move(m);

  const obs::Snapshot snap = obs::registry().snapshot();
  out.timing_metrics = obs::metrics_to_json(snap, obs::Kind::kTiming);
  obs::derive_timing_stats(out);
  obs::write_run_report(out, path);
}

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  if (cli.get_bool("help", false)) return usage(cli.program().c_str());
  Timer wall_timer;

  const std::string topo_file = cli.get("topo", "");
  const std::string gen_spec = cli.get("gen", "");
  const std::string dump_file = cli.get("dump", "");
  const std::string engine = cli.get("route", "");
  if ((topo_file.empty() == gen_spec.empty()) ||
      (dump_file.empty() == engine.empty())) {
    return usage(cli.program().c_str());
  }

  const ExecContext exec(static_cast<unsigned>(
      std::max<std::int64_t>(0, cli.get_int("threads", 0))));

  const std::string trace_file = cli.get("trace", "");
  if (!trace_file.empty()) obs::start_tracing(trace_file);

  Topology topo = topo_file.empty() ? generate(gen_spec)
                                    : load_topology(topo_file,
                                                    cli.get("topo-format", ""));
  Report report;
  report.topology = topo.name;
  report.switches = topo.net.num_switches();
  report.terminals = topo.net.num_terminals();
  report.channels = topo.net.num_channels();

  RoutingTable table;
  DumpStats dump_stats;
  const DumpStats* dump_stats_ptr = nullptr;
  if (!dump_file.empty()) {
    table = read_forwarding_dump_path(topo.net, dump_file, &dump_stats);
    dump_stats_ptr = &dump_stats;
    report.routing_source = "dump:" + dump_file;
  } else {
    const Layer max_layers = static_cast<Layer>(std::min<std::int64_t>(
        kMaxLayers, std::max<std::int64_t>(1, cli.get_int("max-layers", 8))));
    std::unique_ptr<Router> chosen = routing::make_router(engine, max_layers);
    if (!chosen) {
      std::fprintf(stderr, "dfcheck: unknown engine '%s' (have: %s)\n",
                   engine.c_str(), routing::engine_names().c_str());
      return 2;
    }
    RouteResponse out = [&] {
      TRACE_SPAN("dfcheck/route");
      ScopedTimer timer("dfcheck/route_ns");
      return chosen->route(RouteRequest(topo, exec));
    }();
    if (!out.ok) {
      std::fprintf(stderr, "dfcheck: %s refused %s: %s\n",
                   chosen->name().c_str(), topo.name.c_str(),
                   out.error.c_str());
      return 2;
    }
    table = std::move(out.table);
    report.routing_source = "engine:" + chosen->name();
  }
  report.layers = table.num_layers();

  const std::string dump_out = cli.get("dump-out", "");
  if (!dump_out.empty()) write_forwarding_dump(topo.net, table, dump_out);

  const std::uint32_t witness_paths = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, cli.get_int("witness-paths", 3)));
  const bool json = cli.get_bool("json", false);
  const std::string cert_out = cli.get("cert-out", "");
  const std::string cert_check = cli.get("cert-check", "");
  const bool want_lints = cli.get_bool("lints", false);

  int exit_code = 0;

  // Certificate emission and the default analysis share the build: both
  // need the per-layer topological orders (or the cyclic layer).
  if (!cert_check.empty()) {
    report.cert_check = cert_check;
    const Certificate cert = read_certificate_path(topo.net, cert_check);
    {
      TRACE_SPAN("dfcheck/cert_check");
      ScopedTimer timer("dfcheck/cert_check_ns");
      report.check = check_certificate(topo.net, table, cert);
    }
    report.checked = true;
    if (!report.check.ok) exit_code = 1;
    if (!json) {
      if (report.check.ok) {
        std::printf("certificate %s: OK (%llu paths, %llu dependencies "
                    "checked, no cycle search)\n",
                    cert_check.c_str(),
                    static_cast<unsigned long long>(report.check.paths_checked),
                    static_cast<unsigned long long>(report.check.deps_checked));
      } else {
        std::printf("certificate %s: REJECTED: %s\n", cert_check.c_str(),
                    report.check.error.c_str());
      }
    }
  } else {
    report.analyzed = true;
    const CertificateResult cert = [&] {
      TRACE_SPAN("dfcheck/certificate");
      ScopedTimer timer("dfcheck/certificate_ns");
      return make_certificate(topo.net, table, exec);
    }();
    report.deadlock_free = cert.ok;
    if (!cert.ok) {
      exit_code = 1;
      report.witness = extract_witness(topo.net, table, witness_paths);
      if (!json) {
        std::printf("routing is NOT deadlock-free (layer %u CDG is cyclic)\n",
                    unsigned(cert.cyclic_layer));
        write_witness(topo.net, report.witness, std::cout);
      }
    } else {
      if (!json) {
        std::printf("routing is deadlock-free: every one of the %u layer "
                    "CDGs admits a topological order\n",
                    unsigned(cert.cert.num_layers));
      }
      if (!cert_out.empty()) {
        write_certificate_path(topo.net, cert.cert, cert_out);
        report.cert_out = cert_out;
        if (!json) {
          std::printf("certificate written to %s\n", cert_out.c_str());
        }
      }
    }
    if (!cert.ok && !cert_out.empty() && !json) {
      std::printf("no certificate written (no topological order exists)\n");
    }
  }

  if (want_lints) {
    report.linted = true;
    {
      TRACE_SPAN("dfcheck/lints");
      ScopedTimer timer("dfcheck/lints_ns");
      report.lints = lint_routing(topo.net, table, {}, dump_stats_ptr, exec);
    }
    if (report.lints.count(LintKind::kUnreachableDestination) > 0 ||
        report.lints.count(LintKind::kSlOutOfRange) > 0) {
      exit_code = std::max(exit_code, 1);
    }
    if (!json) {
      if (report.lints.clean()) {
        std::printf("lints: clean (%llu paths checked)\n",
                    static_cast<unsigned long long>(
                        report.lints.paths_checked));
      } else {
        for (const Lint& l : report.lints.lints) {
          std::printf("lint[%s]: %s\n", to_string(l.kind), l.message.c_str());
        }
        for (std::size_t k = 0; k < kNumLintKinds; ++k) {
          if (report.lints.counts[k] != 0) {
            std::printf("lint-count[%s]: %llu\n",
                        to_string(static_cast<LintKind>(k)),
                        static_cast<unsigned long long>(
                            report.lints.counts[k]));
          }
        }
      }
    }
  }

  const std::string report_file = cli.get("report", "");
  if (!report_file.empty()) {
    obs::JsonValue config = obs::JsonValue::object();
    config.set("topology", obs::JsonValue::string(
                               topo_file.empty() ? gen_spec : topo_file));
    config.set("routing", obs::JsonValue::string(report.routing_source));
    config.set("threads", obs::JsonValue::integer(
                              cli.get_int("threads", 0)));
    config.set("lints", obs::JsonValue::boolean(want_lints));
    write_report(report, config, wall_timer.seconds(), report_file);
    if (!json) {
      std::printf("run report written to %s\n", report_file.c_str());
    }
  }

  if (json) {
    print_json(topo.net, report, std::cout);
  } else {
    for (const auto& [name, ms, samples] : dfcheck_timings()) {
      std::printf("timing[%s]: %.3f ms (%llu sample%s)\n", name.c_str(), ms,
                  static_cast<unsigned long long>(samples),
                  samples == 1 ? "" : "s");
    }
  }
  if (!trace_file.empty()) {
    const std::size_t spans = obs::stop_tracing();
    std::fprintf(stderr, "trace written to %s (%zu spans)\n",
                 trace_file.c_str(), spans);
  }
  return exit_code;
}

}  // namespace
}  // namespace dfsssp

int main(int argc, char** argv) {
  try {
    return dfsssp::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dfcheck: %s\n", e.what());
    return 2;
  }
}
