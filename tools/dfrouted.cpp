// dfrouted: the routing service daemon.
//
// Owns one Topology for its whole lifetime, keeps the DFSSSP engine's
// incremental state (per-layer online CDGs, channel weights) warm across
// fault events, and serves the versioned framed protocol of
// src/service/envelope.hpp — the process shape of a subnet manager:
// long-lived state, short-lived requests.
//
//   dfrouted --topo=deimos --engine=dfsssp --socket=/tmp/dfrouted.sock
//   dfrouted --topo=xgft-4096 --pipe            # stdin/stdout framing
//
// In --pipe mode the daemon serves exactly one framed stream on
// stdin/stdout and exits 0 on EOF — the mode tests and CI drive. SIGTERM
// (either mode) or a shutdown request begins the drain: in-flight
// requests finish, later frames are answered with kErrDraining, then the
// process exits 0.
#include <csignal>
#include <cstdio>
#include <exception>
#include <string>

#include "common/cli.hpp"
#include "routing/registry.hpp"
#include "service/core.hpp"
#include "service/server.hpp"
#include "topology/configs.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_sigterm(int) { g_stop = 1; }

int usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s --topo=<config> [--engine=<name>] [--max-layers=N]\n"
      "          (--socket=<path> | --pipe)\n"
      "  --topo        topology config name (see `dftopo list`)\n"
      "  --engine      routing engine registry key (default dfsssp;\n"
      "                see `dfbench engines`)\n"
      "  --max-layers  virtual-layer budget (default 8)\n"
      "  --socket      serve a unix-domain socket at <path>\n"
      "  --pipe        serve one framed stream on stdin/stdout\n"
      "  --journal     record every mutation in the flight recorder\n"
      "                (serves `dfroutectl tail` / `journal`)\n"
      "  --journal-file=PATH      also append a DFJR segment for dfreplay\n"
      "  --journal-capacity=N     ring size in records (default 8192)\n",
      prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dfsssp;
  Cli cli(argc, argv);
  const std::string topo_name = cli.get("topo", "");
  const std::string socket_path = cli.get("socket", "");
  const bool pipe_mode = cli.get_bool("pipe", false);
  if (topo_name.empty() || (socket_path.empty() && !pipe_mode)) {
    return usage(cli.program().c_str());
  }

  service::ServiceCoreOptions core_options;
  core_options.engine = cli.get("engine", "dfsssp");
  core_options.max_layers =
      static_cast<Layer>(cli.get_int("max-layers", 8));
  core_options.journal_path = cli.get("journal-file", "");
  core_options.journal =
      cli.get_bool("journal", false) || !core_options.journal_path.empty();
  core_options.journal_capacity =
      static_cast<std::uint32_t>(cli.get_int("journal-capacity", 8192));
  core_options.journal_config = topo_name;

  try {
    Topology topo = build_topology_config(topo_name);
    service::ServiceCore core(std::move(topo), core_options);

    std::signal(SIGTERM, on_sigterm);
    std::signal(SIGINT, on_sigterm);

    service::ServerOptions server_options;
    server_options.socket_path = socket_path;
    server_options.stop = &g_stop;
    service::Server server(core, server_options);
    if (pipe_mode) {
      return server.run_pipe();
    }
    std::fprintf(stderr, "dfrouted: serving %s (%s) on %s\n",
                 core.topo().name.c_str(), core.engine_name().c_str(),
                 socket_path.c_str());
    return server.run_socket();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dfrouted: %s\n", e.what());
    return 2;
  }
}
