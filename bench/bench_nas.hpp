// Shared harness for the NAS-model benches (Figures 14-16, Table II).
#pragma once

#include <functional>

#include "bench_util.hpp"
#include "routing/dfsssp.hpp"
#include "routing/lash.hpp"
#include "routing/minhop.hpp"
#include "sim/appmodel.hpp"

namespace dfsssp::bench {

using KernelFactory = std::function<AppKernel(std::uint32_t)>;

/// Runs one NAS kernel model on the Deimos stand-in for the paper's core
/// counts under MinHop / LASH / DFSSSP and prints total Gflop/s per step.
/// Allocation mirrors Section VI: one process per node up to 512 cores,
/// 1024 processes on 250 nodes.
inline void run_nas_bench(const std::string& figure, const std::string& kernel_name,
                          const KernelFactory& factory, BenchConfig& cfg,
                          std::span<const std::uint32_t> core_steps) {
  Topology topo = make_deimos();
  struct Engine {
    std::string name;
    RouteResponse out;
  };
  std::vector<Engine> engines;
  engines.push_back({"MinHop", MinHopRouter().route(RouteRequest(topo))});
  engines.push_back({"LASH", LashRouter().route(RouteRequest(topo))});
  engines.push_back({"DFSSSP", DfssspRouter().route(RouteRequest(topo))});

  Table table(figure + ": NAS " + kernel_name +
                  " model on the Deimos stand-in [total Gflop/s]",
              {"cores(request)", "ranks", "MinHop", "LASH", "DFSSSP",
               "DFSSSP vs MinHop"});
  for (std::uint32_t cores : core_steps) {
    AppKernel kernel = factory(cores);
    const std::uint32_t ranks = kernel_ranks(kernel);
    const std::uint32_t nodes = std::min<std::uint32_t>(
        ranks, cores > 512 ? 250 : ranks);
    Rng alloc_rng(0xA55ULL + cores);
    RankMap map =
        RankMap::random_allocation(topo.net, ranks, nodes, alloc_rng);
    double minhop_gf = 0, dfsssp_gf = 0;
    table.row().cell(cores).cell(ranks);
    for (const auto& e : engines) {
      if (!e.out.ok) {
        table.cell("-");
        continue;
      }
      AppRunResult r = run_app_model(topo.net, e.out.table, map, kernel);
      table.cell(r.gflops, 2);
      if (e.name == "MinHop") minhop_gf = r.gflops;
      if (e.name == "DFSSSP") dfsssp_gf = r.gflops;
    }
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "+%.1f%%",
                  100.0 * (dfsssp_gf / minhop_gf - 1.0));
    table.cell(ratio);
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");
  cfg.emit(table);
}

}  // namespace dfsssp::bench
