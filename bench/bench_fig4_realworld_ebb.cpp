// Figure 4: simulated effective bisection bandwidth of the six real-world
// HPC systems (synthetic stand-ins, DESIGN.md §4) under every routing
// engine. Paper: 1000 bisection patterns; default here 100 (--patterns).
//
// Expected shape: DF-/SSSP clearly best on the irregular systems (Ranger,
// Deimos, Tsubame), near-parity on the non-blocking Odin; LASH far behind
// on fat-tree-like systems; FatTree/DOR fail on most.
#include "bench_util.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  auto routers = make_all_routers();

  std::vector<std::string> columns{"system", "terminals"};
  for (const auto& r : routers) columns.push_back(r->name());
  Table table("Figure 4: eBB on real-world systems (relative, 1.0 = none congested)",
              columns);

  for (const Topology& topo : make_all_real_systems()) {
    table.row().cell(topo.name).cell(topo.net.num_terminals());
    for (const auto& router : routers) {
      const double ebb = ebb_for(topo, *router, cfg.patterns, 0xF16'4);
      table.cell(fmt_or_dash(ebb, 4));
    }
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  cfg.emit(table);
  return 0;
}
