// Figure 4: simulated effective bisection bandwidth of the six real-world
// HPC systems (synthetic stand-ins, DESIGN.md §4) under every routing
// engine. Paper: 1000 bisection patterns; default here 100 (--patterns).
//
// Expected shape: DF-/SSSP clearly best on the irregular systems (Ranger,
// Deimos, Tsubame), near-parity on the non-blocking Odin; LASH far behind
// on fat-tree-like systems; FatTree/DOR fail on most.
#include "bench_util.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  Table table = run_roster(
      "Figure 4: eBB on real-world systems (relative, 1.0 = none congested)",
      {"system", "terminals"}, "", make_all_real_systems(),
      roster_routers(cfg),
      [](Table& t, const Topology& topo, std::size_t) {
        t.cell(topo.name).cell(topo.net.num_terminals());
      },
      ebb_cell(cfg, 0xF16'4));
  cfg.emit(table);
  return 0;
}
