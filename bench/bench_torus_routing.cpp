// Extension: the torus story the paper tells in passing. LASH was designed
// for tori (its paper's target); plain DOR deadlocks there; OpenSM's
// answer is Torus-2QoS (our DOR-dateline). This bench compares them with
// DFSSSP across torus sizes: eBB, virtual lanes, and verified deadlock
// freedom.
#include "bench_util.hpp"
#include "routing/collect.hpp"
#include "routing/dfsssp.hpp"
#include "routing/dor.hpp"
#include "routing/dor_dateline.hpp"
#include "routing/lash.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  const ExecContext exec = cfg.exec();

  Table table("Extension: routing tori (eBB | VLs | deadlock-free)",
              {"torus", "terminals", "DOR", "DOR-dateline",
               "LASH(structured)", "DFSSSP(16VL)", "DFSSSP online(16VL)"});

  std::vector<std::string> sizes{"torus-8-8", "torus-12-12", "torus-6-6-6"};
  if (cfg.full) sizes.push_back("torus-16-16");

  for (const auto& key : sizes) {
    Topology topo = build_topology_config(key);
    table.row().cell(topo.name).cell(topo.net.num_terminals());
    std::vector<std::unique_ptr<Router>> routers;
    routers.push_back(std::make_unique<DorRouter>());
    routers.push_back(std::make_unique<DorDatelineRouter>());
    routers.push_back(std::make_unique<LashRouter>(LashOptions{
        .max_layers = 16,
        .selection = LashOptions::PathSelection::kFirstCandidate}));
    routers.push_back(std::make_unique<DfssspRouter>(
        DfssspOptions{.max_layers = 16, .balance = false}));
    routers.push_back(std::make_unique<DfssspRouter>(
        DfssspOptions{.max_layers = 16, .balance = false,
                      .mode = LayeringMode::kOnline}));
    for (const auto& router : routers) {
      RouteResponse out = router->route(RouteRequest(topo));
      if (!out.ok) {
        table.cell("failed");
        continue;
      }
      RankMap map = RankMap::round_robin(
          topo.net, static_cast<std::uint32_t>(topo.net.num_terminals()));
      Rng pat(0x7040);
      EbbResult ebb = effective_bisection_bandwidth(topo.net, out.table, map,
                                                    cfg.patterns, pat, {},
                                                    exec);
      const bool df = routing_is_deadlock_free(topo.net, out.table, exec);
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%.4f | %u | %s", ebb.ebb,
                    unsigned(out.stats.layers_used), df ? "yes" : "NO");
      table.cell(cell);
      std::fprintf(stderr, ".");
      std::fflush(stderr);
    }
  }
  std::fprintf(stderr, "\n");
  cfg.emit(table);
  return 0;
}
