// Table II: NAS Parallel Benchmarks at 1024 cores on Deimos - total
// Gflop/s under MinHop vs DFSSSP and the improvement percentage.
// Paper: improvements between +30% (CG/SP) and +95% (BT), FT/MG ~ +91%.
#include "bench_nas.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  Topology topo = make_deimos();
  RouteResponse minhop = MinHopRouter().route(RouteRequest(topo));
  RouteResponse dfsssp = DfssspRouter().route(RouteRequest(topo));
  if (!minhop.ok || !dfsssp.ok) {
    std::printf("routing failed\n");
    return 1;
  }

  struct Kernel {
    const char* name;
    AppKernel kernel;
  };
  const std::uint32_t cores = 1024;
  std::vector<Kernel> kernels;
  kernels.push_back({"BT", make_nas_bt(cores)});
  kernels.push_back({"CG", make_nas_cg(cores)});
  kernels.push_back({"FT", make_nas_ft(cores)});
  kernels.push_back({"LU", make_nas_lu(cores)});
  kernels.push_back({"MG", make_nas_mg(cores)});
  kernels.push_back({"SP", make_nas_sp(cores)});

  Table table("Table II: NAS models at 1024 cores on the Deimos stand-in",
              {"kernel", "ranks", "MinHop Gflop/s", "DFSSSP Gflop/s",
               "improvement"});
  for (const Kernel& k : kernels) {
    const std::uint32_t ranks = kernel_ranks(k.kernel);
    Rng alloc_rng(0x7AB2ULL + ranks);
    RankMap map = RankMap::random_allocation(topo.net, ranks, 250, alloc_rng);
    AppRunResult a = run_app_model(topo.net, minhop.table, map, k.kernel);
    AppRunResult b = run_app_model(topo.net, dfsssp.table, map, k.kernel);
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "+%.1f%%",
                  100.0 * (b.gflops / a.gflops - 1.0));
    table.row().cell(k.name).cell(ranks).cell(a.gflops, 2).cell(b.gflops, 2)
        .cell(ratio);
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");
  cfg.emit(table);
  return 0;
}
