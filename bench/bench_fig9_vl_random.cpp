// Figure 9: number of virtual layers needed on random topologies.
// 128 32-port switches with 16 endpoints each (16 ports left for fabric
// links); the number of inter-switch links sweeps the density. Per point,
// `--seeds` random topologies (paper: 100) are routed with LASH and with
// DFSSSP (no balancing - we count *required* layers) and min/avg/max are
// reported.
//
// Expected shape: DFSSSP needs fewer layers on sparse networks, LASH on
// dense ones (its per-pair paths get shorter and conflict less), with a
// crossover of the averages. The paper sees the crossover near 200 links;
// with our LASH path selection it lands near 450 (see EXPERIMENTS.md).
#include "bench_util.hpp"
#include "routing/dfsssp.hpp"
#include "routing/lash.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

namespace {

struct Agg {
  int min = 1000, max = 0;
  double sum = 0;
  int n = 0;
  int failures = 0;

  void add(int v) {
    min = std::min(min, v);
    max = std::max(max, v);
    sum += v;
    ++n;
  }
  std::string str() const {
    if (n == 0) return "-";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%d/%.2f/%d", min, sum / n, max);
    std::string s = buf;
    if (failures > 0) s += " (" + std::to_string(failures) + " fail)";
    return s;
  }
};

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  // --cert-dir=DIR: additionally emit (and independently re-check) a
  // deadlock-freedom certificate per data point's seed-0 routing.
  const std::string cert_dir = Cli(argc, argv).get("cert-dir", "");
  const std::uint32_t num_switches = 128;
  const std::uint32_t terminals = 16;
  const std::uint32_t ports = 16;  // 32-port switch minus 16 endpoints
  const Layer max_layers = 16;     // count the demand, don't clip at 8

  std::vector<std::uint32_t> link_counts{140, 160, 180, 200, 240,
                                         280, 320, 400, 500, 700};
  if (cfg.full) link_counts.push_back(1000);

  Table table("Figure 9: required virtual layers on random topologies "
              "(min/avg/max over " + std::to_string(cfg.seeds) + " seeds)",
              {"links", "LASH", "DFSSSP"});

  LashRouter lash(LashOptions{.max_layers = max_layers});
  DfssspRouter dfsssp(
      DfssspOptions{.max_layers = max_layers, .balance = false});

  std::vector<std::string> cert_notes;
  const ExecContext exec = cfg.exec();
  for (std::uint32_t links : link_counts) {
    Agg lash_agg, dfsssp_agg;
    for (std::uint32_t seed = 0; seed < cfg.seeds; ++seed) {
      Rng rng(0xF169'0000ULL + seed * 977 + links);
      Topology topo = make_random(num_switches, terminals, links, ports, rng);
      RouteResponse l = lash.route(RouteRequest(topo));
      if (l.ok) lash_agg.add(l.stats.layers_used);
      else ++lash_agg.failures;
      RouteResponse d = dfsssp.route(RouteRequest(topo));
      if (d.ok) dfsssp_agg.add(d.stats.layers_used);
      else ++dfsssp_agg.failures;
      if (!cert_dir.empty() && seed == 0 && d.ok) {
        cert_notes.push_back(emit_certificate(
            topo, d.table, cert_dir,
            "fig9-links" + std::to_string(links) + "-dfsssp", exec));
      }
      std::fprintf(stderr, ".");
      std::fflush(stderr);
    }
    table.row().cell(links).cell(lash_agg.str()).cell(dfsssp_agg.str());
  }
  std::fprintf(stderr, "\n");
  for (const std::string& note : cert_notes) {
    std::printf("certificate %s\n", note.c_str());
  }
  cfg.emit(table);
  return 0;
}
