// Incremental repair under churn (fault subsystem end-to-end).
//
// Drives a seeded stream of link/switch down/up events into a k-ary n-tree
// IN PLACE and repairs after every event with IncrementalDfsssp, validating
// the repaired table's deadlock-freedom certificate with the independent
// checker at every step. Two tables (and the --json report used as the
// committed BENCH_churn.json trajectory point):
//
//   * single-link-failure repair vs from-scratch DFSSSP on the pristine
//     fabric — the headline wall-clock speedup and the count of
//     destinations the repair actually touched;
//   * the churn soak summary — events applied/vetoed, full-recompute
//     fallbacks, repair-latency stats against sampled from-scratch runs,
//     and the certificate-check failure count (always 0 on a passing run).
//
// Extra flags on top of the bench_util set:
//   --k=K --n=N       fabric (default 32-ary 2-tree: 1024 terminals)
//   --events=E        churn events to generate (default 40)
//   --event-seed=S    schedule seed
//   --batch=B         coalesce B consecutive events into one repair via
//                     ChurnEngine::apply_all (default 1 = repair per event,
//                     the daemon's behavior between fault notifications)
//   --full-every=F    sample a from-scratch recompute every F applied
//                     batches (0 = never; default 10)
//   --cert-dir=DIR    also write the certificate at every sample point
#include <algorithm>
#include <span>

#include "bench_util.hpp"
#include "fault/churn.hpp"
#include "fault/incremental.hpp"
#include "fault/schedule.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  // Table cells embed wall clock; keep them out of the dfbench quality gate.
  cfg.tables_deterministic = false;
  Cli cli(argc, argv);
  const std::uint32_t k = static_cast<std::uint32_t>(cli.get_int("k", 32));
  const std::uint32_t n = static_cast<std::uint32_t>(cli.get_int("n", 2));
  const std::uint32_t events =
      static_cast<std::uint32_t>(cli.get_int("events", 40));
  const std::uint64_t event_seed =
      static_cast<std::uint64_t>(cli.get_int("event-seed", 0xC4A17));
  const std::size_t batch =
      static_cast<std::size_t>(std::max<std::int64_t>(cli.get_int("batch", 1),
                                                      1));
  const std::uint32_t full_every =
      static_cast<std::uint32_t>(cli.get_int("full-every", 10));
  const std::string cert_dir = cli.get("cert-dir", "");
  const ExecContext exec = cfg.exec();

  Topology topo = make_kary_ntree(k, n);
  std::printf("fabric: %s (%zu switches, %zu terminals, %zu channels)\n",
              topo.name.c_str(), topo.net.num_switches(),
              topo.net.num_terminals(), topo.net.num_channels());

  // --- headline: one link failure, repair vs recompute -------------------
  IncrementalDfsssp inc;
  Timer route_timer;
  RouteResponse base = inc.route(RouteRequest(topo, exec));
  const double initial_route_ms = route_timer.seconds() * 1e3;
  if (!base.ok) {
    std::fprintf(stderr, "initial route failed: %s\n", base.error.c_str());
    return 1;
  }

  ChurnEngine churn(topo);
  const FaultSchedule one_kill =
      FaultSchedule::link_kills(topo.net, 1, event_seed);
  Table headline("Single-link-failure repair vs from-scratch DFSSSP",
                 {"fabric", "alive dests", "dests rerouted", "repair ms",
                  "full ms", "speedup"});
  if (!one_kill.empty()) {
    const ChurnDelta delta = churn.apply(one_kill[0]);
    Timer repair_timer;
    RouteResponse repaired = inc.repair(RouteRequest(topo, exec), delta);
    const double repair_ms = repair_timer.seconds() * 1e3;
    if (!repaired.ok || !repaired.repair.incremental) {
      std::fprintf(stderr, "single-link repair was not incremental: %s%s\n",
                   repaired.error.c_str(),
                   repaired.repair.fallback_reason.c_str());
      return 1;
    }
    Timer full_timer;
    IncrementalDfsssp fresh;
    RouteResponse full = fresh.route(RouteRequest(topo, exec));
    const double full_ms = full_timer.seconds() * 1e3;
    if (!full.ok) {
      std::fprintf(stderr, "full recompute failed: %s\n", full.error.c_str());
      return 1;
    }
    std::uint32_t alive = 0;
    for (NodeId t : topo.net.terminals()) {
      alive += topo.net.terminal_alive(t) ? 1 : 0;
    }
    headline.row()
        .cell(topo.name)
        .cell(alive)
        .cell(repaired.repair.destinations_rerouted)
        .cell(fmt_or_dash(repair_ms, 3))
        .cell(fmt_or_dash(full_ms, 3))
        .cell(repair_ms > 0 ? fmt_or_dash(full_ms / repair_ms, 1) : "-");
    base = std::move(repaired);
  }
  cfg.emit(headline);

  // --- churn soak --------------------------------------------------------
  FaultScheduleOptions sched_opts;
  sched_opts.num_events = events;
  const FaultSchedule schedule =
      FaultSchedule::random(topo.net, sched_opts, event_seed + 1);

  // batch == 1 takes the exact path a daemon takes per fault notification
  // (apply_all delegates to apply()); larger batches coalesce consecutive
  // events into one delta and one repair, the daemon's burst behavior.
  std::uint32_t applied = 0, vetoed = 0, fallbacks = 0, cert_failures = 0;
  std::uint64_t dests_rerouted = 0;
  std::vector<double> repair_ms, full_ms;
  for (std::size_t i = 0; i < schedule.size(); i += batch) {
    const std::size_t count = std::min(batch, schedule.size() - i);
    const ChurnDelta delta = churn.apply_all(
        std::span<const FaultEvent>(schedule.events().data() + i, count));
    if (!delta.applied) {
      ++vetoed;
      continue;
    }
    ++applied;

    Timer repair_timer;
    base = inc.repair(RouteRequest(topo, exec), delta);
    repair_ms.push_back(repair_timer.seconds() * 1e3);
    if (!base.ok) {
      std::fprintf(stderr, "repair after event %zu (%s) failed: %s\n", i,
                   schedule[i].describe(topo.net).c_str(), base.error.c_str());
      return 1;
    }
    if (!base.repair.incremental) ++fallbacks;
    dests_rerouted += base.repair.destinations_rerouted;

    // Every repaired state is independently certified deadlock-free.
    const CertCheckResult check =
        check_certificate(topo.net, base.table, inc.certificate());
    if (!check.ok) {
      ++cert_failures;
      std::fprintf(stderr, "certificate check failed after event %zu: %s\n",
                   i, check.error.c_str());
    }

    if (full_every > 0 && applied % full_every == 0) {
      Timer full_timer;
      IncrementalDfsssp fresh;
      RouteResponse full = fresh.route(RouteRequest(topo, exec));
      if (full.ok) full_ms.push_back(full_timer.seconds() * 1e3);
      if (!cert_dir.empty()) {
        std::printf("  %s\n",
                    emit_certificate(topo, base.table, cert_dir,
                                     "churn-" + std::to_string(applied), exec)
                        .c_str());
      }
    }
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");

  auto mean = [](const std::vector<double>& v) {
    if (v.empty()) return -1.0;
    double sum = 0;
    for (double x : v) sum += x;
    return sum / static_cast<double>(v.size());
  };
  const double mean_repair = mean(repair_ms);
  const double mean_full = mean(full_ms);
  const double max_repair =
      repair_ms.empty() ? -1.0
                        : *std::max_element(repair_ms.begin(), repair_ms.end());

  Table soak("Churn soak",
             {"events", "applied", "vetoed", "full fallbacks",
              "dests rerouted", "mean repair ms", "max repair ms",
              "mean full ms", "speedup", "VLs", "cert failures",
              "initial route ms"});
  soak.row()
      .cell(static_cast<std::uint64_t>(schedule.size()))
      .cell(applied)
      .cell(vetoed)
      .cell(fallbacks)
      .cell(dests_rerouted)
      .cell(fmt_or_dash(mean_repair, 3))
      .cell(fmt_or_dash(max_repair, 3))
      .cell(fmt_or_dash(mean_full, 3))
      .cell(mean_repair > 0 && mean_full > 0
                ? fmt_or_dash(mean_full / mean_repair, 1)
                : "-")
      .cell(base.stats.layers_used)
      .cell(cert_failures)
      .cell(fmt_or_dash(initial_route_ms, 3));
  cfg.emit(soak);
  return cert_failures == 0 ? 0 : 1;
}
