// Extension (DESIGN.md §7): DFSSSP on topologies beyond the paper's set -
// dragonfly, HyperX/flattened butterfly, complete graph - versus the
// generic engines. The paper's thesis ("arbitrary topologies") predicts
// DFSSSP routes all of them deadlock-free with eBB at or above MinHop,
// while the specialized engines refuse.
#include "bench_util.hpp"
#include "routing/dfsssp.hpp"
#include "routing/verify.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  auto routers = make_all_routers();

  std::vector<std::string> columns{"topology", "terminals", "DFSSSP VLs"};
  for (const auto& r : routers) columns.push_back(r->name());
  Table table("Extension: eBB on modern topologies (relative)", columns);

  std::vector<Topology> zoo;
  zoo.push_back(make_dragonfly(4, 4, 2, 9));
  {
    std::uint32_t dims[2] = {8, 8};
    zoo.push_back(make_hyperx(dims, 4));
  }
  {
    std::uint32_t dims[3] = {4, 4, 4};
    zoo.push_back(make_hyperx(dims, 2));
  }
  zoo.push_back(make_fully_connected(16, 8));
  zoo.push_back(make_kautz(3, 3, 512));

  for (const Topology& topo : zoo) {
    DfssspRouter dfsssp(DfssspOptions{.max_layers = 8, .balance = false});
    RouteResponse df = dfsssp.route(RouteRequest(topo));
    table.row().cell(topo.name).cell(topo.net.num_terminals())
        .cell(df.ok ? std::to_string(df.stats.layers_used) : "-");
    for (const auto& router : routers) {
      table.cell(fmt_or_dash(ebb_for(topo, *router, cfg.patterns, 0x30D3), 4));
    }
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");
  cfg.emit(table);
  return 0;
}
