// Extension (DESIGN.md §7): DFSSSP on topologies beyond the paper's set -
// dragonfly, HyperX/flattened butterfly, complete graph - versus the
// generic engines. The paper's thesis ("arbitrary topologies") predicts
// DFSSSP routes all of them deadlock-free with eBB at or above MinHop,
// while the specialized engines refuse.
#include "bench_util.hpp"
#include "routing/dfsssp.hpp"
#include "routing/verify.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  auto routers = make_all_routers();

  std::vector<std::string> columns{"topology", "terminals", "DFSSSP VLs"};
  for (const auto& r : routers) columns.push_back(r->name());
  Table table("Extension: eBB on modern topologies (relative)", columns);

  std::vector<Topology> zoo;
  for (const char* key : {"dragonfly-a4p4h2g9", "hyperx-8-8", "hyperx-4-4-4",
                          "complete-16", "kautz-3-3"}) {
    zoo.push_back(build_topology_config(key));
  }

  for (const Topology& topo : zoo) {
    DfssspRouter dfsssp(DfssspOptions{.max_layers = 8, .balance = false});
    RouteResponse df = dfsssp.route(RouteRequest(topo));
    table.row().cell(topo.name).cell(topo.net.num_terminals())
        .cell(df.ok ? std::to_string(df.stats.layers_used) : "-");
    for (const auto& router : routers) {
      table.cell(fmt_or_dash(ebb_for(topo, *router, cfg.patterns, 0x30D3), 4));
    }
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");
  cfg.emit(table);
  return 0;
}
