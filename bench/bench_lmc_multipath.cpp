// Extension (DESIGN.md §7): LMC multipathing. OpenSM assigns each port
// 2^lmc LIDs; SSSP/DFSSSP route every LID against one shared weight map, so
// consecutive LIDs take different minimal paths and sources can spread
// flows. This bench measures the eBB gain of lmc = 0/1/2 under DFSSSP with
// a joint (all planes) deadlock-free layer assignment.
#include "bench_util.hpp"
#include "routing/multipath.hpp"
#include "sim/multipath_sim.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);

  // eBB over random bisections is expected to be ~neutral (Algorithm 1
  // already balances the single path well; round-robin plane choice only
  // re-randomizes). The win shows on fixed adversarial permutations, where
  // a single static path per pair collides systematically.
  Table table("Extension: LMC multipath under DFSSSP",
              {"topology", "lmc", "planes", "VLs", "eBB", "vs lmc=0",
               "tornado bw", "vs lmc=0 "});

  std::vector<Topology> zoo;
  {
    Rng rng(0x71CULL);
    zoo.push_back(make_random(32, 8, 72, 16, rng));
  }
  zoo.push_back(make_deimos());
  {
    std::uint32_t ms[2] = {10, 10};
    std::uint32_t ws[2] = {5, 5};
    zoo.push_back(make_xgft(2, ms, ws));
  }

  for (const Topology& topo : zoo) {
    RankMap map = RankMap::round_robin(
        topo.net, static_cast<std::uint32_t>(topo.net.num_terminals()));
    Flows tornado_flows = map.to_flows(tornado(map.num_ranks()));
    double base = 0.0, tornado_base = 0.0;
    for (std::uint8_t lmc = 0; lmc <= 2; ++lmc) {
      MultipathOutcome out = route_dfsssp_multipath(
          topo, lmc, DfssspOptions{.max_layers = 8, .balance = false});
      if (!out.ok) {
        table.row().cell(topo.name).cell(int(lmc)).cell("-").cell("-")
            .cell("failed: " + out.error).cell("-");
        continue;
      }
      Rng pat(0x71C0 + lmc * 0);  // identical patterns for every lmc
      EbbResult ebb = effective_bisection_bandwidth_multipath(
          topo.net, out.planes, map, cfg.patterns, pat);
      PatternResult storm =
          simulate_pattern_multipath(topo.net, out.planes, tornado_flows);
      if (lmc == 0) {
        base = ebb.ebb;
        tornado_base = storm.avg_flow_bandwidth;
      }
      char rel[32], trel[32];
      std::snprintf(rel, sizeof(rel), "%+.1f%%", 100.0 * (ebb.ebb / base - 1.0));
      std::snprintf(trel, sizeof(trel), "%+.1f%%",
                    100.0 * (storm.avg_flow_bandwidth / tornado_base - 1.0));
      table.row()
          .cell(topo.name)
          .cell(int(lmc))
          .cell(out.planes.size())
          .cell(static_cast<std::uint64_t>(out.stats.layers_used))
          .cell(ebb.ebb, 4)
          .cell(rel)
          .cell(storm.avg_flow_bandwidth, 4)
          .cell(trel);
      std::fprintf(stderr, ".");
      std::fflush(stderr);
    }
  }
  std::fprintf(stderr, "\n");
  cfg.emit(table);
  return 0;
}
