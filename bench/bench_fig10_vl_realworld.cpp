// Figure 10: virtual layers required to route the real-world systems
// deadlock-free, LASH vs DFSSSP (balancing off - we count demand).
// Paper shape: the tree-like systems need 1 layer under both; the
// director-chain systems (Deimos, Tsubame) need a few, with DFSSSP at or
// below LASH. On our stand-ins the offline Algorithm 2 over-fragments the
// chain systems (its bulk cycle cuts cascade), so the online first-fit
// variant is reported alongside - see EXPERIMENTS.md for the discussion.
#include "bench_util.hpp"
#include "routing/dfsssp.hpp"
#include "routing/lash.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  // --cert-dir=DIR: additionally emit (and independently re-check) a
  // deadlock-freedom certificate per system's DFSSSP routing.
  const std::string cert_dir = Cli(argc, argv).get("cert-dir", "");
  const Layer max_layers = 16;

  Table table("Figure 10: required virtual layers on real-world systems",
              {"system", "LASH", "DFSSSP(offline)", "DFSSSP(online)"});
  LashRouter lash(LashOptions{.max_layers = max_layers});
  DfssspRouter dfsssp(
      DfssspOptions{.max_layers = max_layers, .balance = false});
  DfssspRouter dfsssp_online(DfssspOptions{
      .max_layers = max_layers, .balance = false, .online = true});

  std::vector<std::string> cert_notes;
  const ExecContext exec = cfg.exec();
  for (const Topology& topo : make_all_real_systems()) {
    RouteResponse l = lash.route(RouteRequest(topo));
    RouteResponse d = dfsssp.route(RouteRequest(topo));
    RouteResponse o = dfsssp_online.route(RouteRequest(topo));
    table.row()
        .cell(topo.name)
        .cell(l.ok ? std::to_string(l.stats.layers_used) : "failed")
        .cell(d.ok ? std::to_string(d.stats.layers_used) : "failed")
        .cell(o.ok ? std::to_string(o.stats.layers_used) : "failed");
    if (!cert_dir.empty() && d.ok) {
      cert_notes.push_back(emit_certificate(topo, d.table, cert_dir,
                                            "fig10-" + topo.name + "-dfsssp",
                                            exec));
    }
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");
  for (const std::string& note : cert_notes) {
    std::printf("certificate %s\n", note.c_str());
  }
  cfg.emit(table);
  return 0;
}
