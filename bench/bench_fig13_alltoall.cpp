// Figure 13: runtime of MPI_Alltoall on 128 Deimos cores as the per-rank
// send buffer grows from 4 to 4096 floats. The paper measured 18.88 ms
// (MinHop) vs 10.06 ms (DFSSSP) at 4096 floats (254 MiB aggregate).
//
// Model: all P*(P-1) flows are simultaneously live; the slowest flow (most
// congested path, bottleneck-share bandwidth) gates the collective.
// Expected shape: DFSSSP clearly below MinHop at large buffers; LASH worst.
#include "bench_util.hpp"
#include "routing/dfsssp.hpp"
#include "routing/lash.hpp"
#include "routing/minhop.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  Topology topo = make_deimos();
  const std::uint32_t cores = 128;
  const double link_bytes = 946.0 * 1024 * 1024;

  struct Engine {
    std::string name;
    RouteResponse out;
  };
  std::vector<Engine> engines;
  engines.push_back({"MinHop", MinHopRouter().route(RouteRequest(topo))});
  engines.push_back({"LASH", LashRouter().route(RouteRequest(topo))});
  engines.push_back({"DFSSSP", DfssspRouter().route(RouteRequest(topo))});

  Rng alloc_rng(0xF1613ULL);
  RankMap map = RankMap::random_allocation(topo.net, cores, cores, alloc_rng);
  Flows flows = map.to_flows(all_to_all(cores));

  CongestionOptions copts;
  copts.link_capacity = link_bytes;

  Table table("Figure 13: modeled MPI_Alltoall runtime on 128 Deimos cores "
              "[ms]",
              {"floats/rank", "aggregate MiB", "MinHop", "LASH", "DFSSSP"});
  for (std::uint32_t floats = 4; floats <= 4096; floats *= 4) {
    // Each rank sends `floats` floats to every other rank.
    const double bytes = 4.0 * floats;
    const double aggregate =
        bytes * cores * (cores - 1) / (1024.0 * 1024.0);
    table.row().cell(floats).cell(aggregate, 1);
    for (const auto& e : engines) {
      if (!e.out.ok) {
        table.cell("-");
        continue;
      }
      PatternResult r = simulate_pattern(topo.net, e.out.table, flows, copts);
      // Latency term: one software pipeline stage per peer.
      const double seconds =
          bytes / r.min_flow_bandwidth + (cores - 1) * 2e-6;
      table.cell(seconds * 1e3, 2);
    }
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");
  cfg.emit(table);
  return 0;
}
