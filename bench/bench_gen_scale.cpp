// Extension: generator throughput and reproducibility at mid scale. Builds
// the chunked 16k-switch configurations through the named-config registry
// and reports structural invariants (switch/link/channel counts, memory
// footprint, structure hash) as deterministic table cells — the committed
// baseline pins them, so a scheduling or refactoring bug that perturbs the
// emitted stream fails the dfbench compare gate bitwise. Wall-clock
// generation time goes to timing histograms only.
#include "bench_util.hpp"
#include "topology/metrics.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  const ExecContext exec = cfg.exec();

  Table table("Extension: chunked generation at scale (structure pinned)",
              {"config", "switches", "terminals", "channels", "mem MiB",
               "structure hash"});

  std::vector<std::string> keys{"dragonfly-mid", "torus-mid", "xgft-mid",
                                "random-regular-mid"};
  if (cfg.full) keys.push_back("warehouse-dragonfly");

  ScopedTimer total("gen/total_ns");
  for (const std::string& key : keys) {
    Topology topo;
    {
      ScopedTimer t("gen/generate_ns");
      topo = build_topology_config(key, exec);
    }
    const std::uint64_t hash = structure_hash(topo.net);
    obs::registry()
        // One gauge per registry config key: bounded by the static table
        // in topology/configs.cpp.
        // NOLINTNEXTLINE(dfs-metric-name-literal): bounded by config table
        .gauge("gen/" + key + "/structure_hash")
        .set(hash);
    char hash_cell[24], mem_cell[24];
    std::snprintf(hash_cell, sizeof(hash_cell), "%016llx",
                  (unsigned long long)hash);
    std::snprintf(mem_cell, sizeof(mem_cell), "%.1f",
                  static_cast<double>(topo.net.memory_footprint()) /
                      (1024.0 * 1024.0));
    table.row()
        .cell(topo.name)
        .cell(topo.net.num_switches())
        .cell(topo.net.num_terminals())
        .cell(topo.net.num_channels())
        .cell(mem_cell)
        .cell(hash_cell);
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");
  cfg.emit(table);
  return 0;
}
