// Section IV's motivation for Algorithm 2: layering runtime of the online
// first-fit variants vs the offline one-resumable-cycle-search-per-layer
// algorithm as networks grow. The paper cites ~170 s offline vs ~2 h
// online at 4096 endpoints; "naive online" below is that original variant
// (full DFS per insertion attempt). Our Pearce-Kelly "online" column shows
// how far incremental cycle detection closes the gap (an improvement over
// both of the paper's variants on these sizes).
#include "bench_util.hpp"
#include "routing/dfsssp.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  // Table cells embed wall clock; keep them out of the dfbench quality gate.
  cfg.tables_deterministic = false;

  std::vector<std::uint32_t> switch_counts{16, 32, 64, 96};
  if (cfg.full) {
    switch_counts.push_back(128);
    switch_counts.push_back(256);  // 4096 endpoints
  }

  Table table("Section IV: DFSSSP layering runtime, offline vs online [ms]",
              {"switches", "endpoints", "links", "offline",
               "naive online (paper)", "PK online (ours)", "VLs off/naive/PK"});

  for (std::uint32_t sw : switch_counts) {
    const std::uint32_t terminals = 16;
    const std::uint32_t links = sw * 2;
    Rng rng(0x0FF11ULL + sw);
    Topology topo = make_random(sw, terminals, links, 16, rng);

    DfssspRouter offline(DfssspOptions{.max_layers = 16, .balance = false});
    DfssspRouter online(DfssspOptions{.max_layers = 16, .balance = false,
                                      .mode = LayeringMode::kOnline});
    DfssspRouter naive(DfssspOptions{.max_layers = 16, .balance = false,
                                     .mode = LayeringMode::kOnlineNaive});
    RouteResponse off = offline.route(RouteRequest(topo));
    RouteResponse on = online.route(RouteRequest(topo));
    // The naive variant is the slow one (423 s already at 96 switches /
    // 1536 endpoints — the paper's 4096-endpoint data point took ~2 h);
    // keep the default bench snappy.
    const bool run_naive = sw <= 32 || cfg.full;
    RouteResponse nv =
        run_naive ? naive.route(RouteRequest(topo)) : RouteResponse::failure("skipped");
    table.row()
        .cell(sw)
        .cell(topo.net.num_terminals())
        .cell(links)
        .cell(off.ok ? fmt_or_dash(off.stats.layering_seconds * 1e3, 1) : "-")
        .cell(nv.ok ? fmt_or_dash(nv.stats.layering_seconds * 1e3, 1)
                    : (run_naive ? "-" : "(skipped)"))
        .cell(on.ok ? fmt_or_dash(on.stats.layering_seconds * 1e3, 1) : "-")
        .cell((off.ok ? std::to_string(off.stats.layers_used) : "-") + "/" +
              (nv.ok ? std::to_string(nv.stats.layers_used) : "-") + "/" +
              (on.ok ? std::to_string(on.stats.layers_used) : "-"));
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");
  cfg.emit(table);
  return 0;
}
