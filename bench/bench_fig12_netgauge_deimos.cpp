// Figure 12: Netgauge effective-bisection-bandwidth measurements on Deimos.
// The paper ran 1000 random partitionings of 128..1024 MPI processes (one
// process per node up to 512; 1024 processes over 250 nodes) with 1 MiB
// ping-pongs on PCIe-1.1 HCAs (946 MiB/s peak).
//
// We replay the experiment twice on the Deimos stand-in:
//  * "share" columns: ORCS-style congestion counting (bottleneck share),
//    which matches the paper's *simulated* gaps (Figure 4 - small);
//  * "flit" columns: the packet-level simulator with finite per-VL buffers,
//    whose head-of-line blocking reproduces why *measured* gaps (this
//    figure) are much larger than simulated ones.
// Expected shape: DFSSSP's advantage grows with core count and is several
// times larger under the flit model than under the counting model;
// absolute values fall with scale.
#include "bench_util.hpp"
#include "routing/dfsssp.hpp"
#include "routing/lash.hpp"
#include "routing/minhop.hpp"
#include "sim/flitsim.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  const ExecContext exec = cfg.exec();
  Topology topo = make_deimos();
  const double link_mib = 946.0;

  struct Engine {
    std::string name;
    RouteResponse out;
  };
  std::vector<Engine> engines;
  engines.push_back({"MinHop", MinHopRouter().route(RouteRequest(topo))});
  engines.push_back({"LASH", LashRouter().route(RouteRequest(topo))});
  engines.push_back({"DFSSSP", DfssspRouter().route(RouteRequest(topo))});
  for (const auto& e : engines) {
    if (!e.out.ok) {
      std::printf("%s failed: %s\n", e.name.c_str(), e.out.error.c_str());
      return 1;
    }
  }

  Table table("Figure 12: Netgauge-style eBB on the Deimos stand-in "
              "[MiB/s per pair]",
              {"cores", "nodes", "MinHop(share)", "LASH(share)",
               "DFSSSP(share)", "MinHop(flit)", "LASH(flit)", "DFSSSP(flit)",
               "DFSSSP vs MinHop (flit)"});
  struct Step {
    std::uint32_t cores, nodes;
  };
  // One process per node up to 512 cores; 1024 processes on 250 nodes.
  const Step steps[] = {{128, 128}, {256, 256}, {512, 512}, {1024, 250}};
  CongestionOptions copts;
  copts.link_capacity = link_mib;

  for (const Step& step : steps) {
    // Several random allocations; all engines see identical allocations and
    // identical bisection patterns (the paper pinned the allocation too).
    const std::uint32_t allocs = cfg.full ? 10 : 5;
    std::vector<double> share(engines.size(), 0.0), flit(engines.size(), 0.0);
    for (std::uint32_t a = 0; a < allocs; ++a) {
      Rng alloc_rng(0xF1612ULL + a * 7919 + step.cores);
      RankMap map = RankMap::random_allocation(topo.net, step.cores,
                                               step.nodes, alloc_rng);
      for (std::size_t e = 0; e < engines.size(); ++e) {
        Rng pat(0xBEEFULL + a);
        EbbResult r = effective_bisection_bandwidth(
            topo.net, engines[e].out.table, map, cfg.patterns / allocs + 1,
            pat, copts, exec);
        share[e] += r.ebb / allocs;
      }
      // One flit-level bisection per allocation; one packet = one 2 KiB MTU
      // slot, so throughput 1.0 = the 946 MiB/s link peak.
      Rng pat(0xBEEFULL + a);
      Flows flows = map.to_flows(random_bisection(step.cores, pat));
      FlitSimOptions fopts;
      fopts.packets_per_flow = 128;
      fopts.buffer_slots = 4;
      for (std::size_t e = 0; e < engines.size(); ++e) {
        Rng srng(0x517ULL + a);
        FlitSimResult r = simulate_flit_level(topo.net, engines[e].out.table,
                                              flows, fopts, srng);
        flit[e] += r.avg_flow_throughput * link_mib / allocs;
      }
      std::fprintf(stderr, ".");
      std::fflush(stderr);
    }
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "+%.0f%%",
                  100.0 * (flit[2] / flit[0] - 1.0));
    table.row().cell(step.cores).cell(step.nodes).cell(share[0], 1)
        .cell(share[1], 1).cell(share[2], 1).cell(flit[0], 1)
        .cell(flit[1], 1).cell(flit[2], 1).cell(ratio);
  }
  std::fprintf(stderr, "\n");
  cfg.emit(table);
  return 0;
}
