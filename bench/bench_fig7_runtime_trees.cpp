// Figure 7: routing runtime on k-ary n-trees, Table I parameters.
// Expected shape: offline DFSSSP about an order of magnitude above MinHop,
// LASH cheap on trees (no cycles to resolve), SSSP between MinHop and
// DFSSSP.
#include "bench_util.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  auto routers = make_all_routers();

  std::vector<std::string> columns{"tree", "endpoints"};
  for (const auto& r : routers) columns.push_back(r->name() + " [ms]");
  Table table("Figure 7: routing runtime on k-ary n-trees", columns);

  for (const TableOneRow& row : table_one(cfg.full)) {
    Topology topo = make_kary_ntree(row.tree_k, row.tree_n);
    table.row()
        .cell(std::to_string(row.tree_k) + "-ary " +
              std::to_string(row.tree_n) + "-tree")
        .cell(topo.net.num_terminals());
    for (const auto& router : routers) {
      Timer timer;
      RoutingOutcome out = router->route(topo);
      const double ms = timer.milliseconds();
      table.cell(out.ok ? fmt_or_dash(ms, 1) : "-");
    }
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  cfg.emit(table);
  return 0;
}
