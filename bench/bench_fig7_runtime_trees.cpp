// Figure 7: routing runtime on k-ary n-trees, Table I parameters.
// Expected shape: offline DFSSSP about an order of magnitude above MinHop,
// LASH cheap on trees (no cycles to resolve), SSSP between MinHop and
// DFSSSP.
#include "bench_util.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  // Table cells embed wall clock; keep them out of the dfbench quality gate.
  cfg.tables_deterministic = false;
  const std::vector<TableOneRow> rows = table_one(cfg.full);
  std::vector<Topology> topos;
  for (const TableOneRow& row : rows) {
    topos.push_back(make_kary_ntree(row.tree_k, row.tree_n));
  }

  Table table = run_roster(
      "Figure 7: routing runtime on k-ary n-trees", {"tree", "endpoints"},
      " [ms]", topos, roster_routers(cfg),
      [&](Table& t, const Topology& topo, std::size_t i) {
        t.cell(std::to_string(rows[i].tree_k) + "-ary " +
               std::to_string(rows[i].tree_n) + "-tree")
            .cell(topo.net.num_terminals());
      },
      runtime_cell);
  cfg.emit(table);
  return 0;
}
