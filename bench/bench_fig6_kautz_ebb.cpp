// Figure 6: effective bisection bandwidth on Kautz-graph networks, Table I
// parameters. Expected shape: all engines deliver similar eBB (path
// diversity of Kautz graphs leaves little for balancing to win), including
// LASH — unlike on the trees of Figure 5.
#include "bench_util.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  const std::vector<TableOneRow> rows = table_one(cfg.full);
  std::vector<Topology> topos;
  for (const TableOneRow& row : rows) {
    topos.push_back(make_kautz(row.kautz_b, row.kautz_n,
                               row.nominal_endpoints));
  }

  Table table = run_roster(
      "Figure 6: eBB on Kautz networks (relative)",
      {"endpoints", "Kautz(b;n)", "switches"}, "", topos, make_all_routers(),
      [&](Table& t, const Topology& topo, std::size_t i) {
        std::string bn = "(";
        bn += std::to_string(rows[i].kautz_b);
        bn += ';';
        bn += std::to_string(rows[i].kautz_n);
        bn += ')';
        t.cell(rows[i].nominal_endpoints)
            .cell(bn)
            .cell(topo.net.num_switches());
      },
      ebb_cell(cfg, 0xF16'6));
  cfg.emit(table);
  return 0;
}
