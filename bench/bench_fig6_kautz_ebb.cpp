// Figure 6: effective bisection bandwidth on Kautz-graph networks, Table I
// parameters. Expected shape: all engines deliver similar eBB (path
// diversity of Kautz graphs leaves little for balancing to win), including
// LASH — unlike on the trees of Figure 5.
#include "bench_util.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  auto routers = make_all_routers();

  std::vector<std::string> columns{"endpoints", "Kautz(b;n)", "switches"};
  for (const auto& r : routers) columns.push_back(r->name());
  Table table("Figure 6: eBB on Kautz networks (relative)", columns);

  for (const TableOneRow& row : table_one(cfg.full)) {
    Topology topo =
        make_kautz(row.kautz_b, row.kautz_n, row.nominal_endpoints);
    table.row().cell(row.nominal_endpoints)
        .cell("(" + std::to_string(row.kautz_b) + ";" +
              std::to_string(row.kautz_n) + ")")
        .cell(topo.net.num_switches());
    for (const auto& router : routers) {
      table.cell(fmt_or_dash(ebb_for(topo, *router, cfg.patterns, 0xF16'6), 4));
    }
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  cfg.emit(table);
  return 0;
}
