// Extension (DESIGN.md §7): optimality gap of the practical heuristics.
// On networks small enough for the exact exponential APP solver, compare
// the minimum possible layer count against what the offline heuristics and
// LASH-style first-fit produce. APP is NP-complete (Theorem 1), so this is
// only feasible at toy scale - which is exactly why the heuristics exist.
#include <numeric>

#include "bench_util.hpp"
#include "cdg/app.hpp"
#include "routing/collect.hpp"
#include "routing/sssp.hpp"
#include "routing/dfsssp.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

namespace {

/// SSSP paths of a topology as an abstract APP instance.
app::Instance to_instance(const Topology& topo, const RoutingTable& table) {
  app::Instance inst;
  inst.num_nodes = static_cast<std::uint32_t>(topo.net.num_channels());
  PathSet paths = collect_paths(topo.net, table);
  for (std::uint32_t p = 0; p < paths.size(); ++p) {
    auto seq = paths.channels(p);
    if (seq.size() < 2) continue;
    inst.paths.emplace_back(seq.begin(), seq.end());
  }
  return inst;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);

  Table table("Extension: exact APP minimum vs heuristics (toy networks)",
              {"topology", "paths", "exact", "weakest", "heaviest", "first",
               "first-fit"});

  std::vector<Topology> zoo;
  zoo.push_back(make_ring(5, 1));
  zoo.push_back(make_ring(6, 1));
  {
    std::uint32_t dims[2] = {3, 3};
    zoo.push_back(make_torus(dims, 1, true));
  }
  Rng rng(0xE46ULL);
  zoo.push_back(make_random(6, 1, 9, 6, rng));

  for (const Topology& topo : zoo) {
    RouteResponse sssp = SsspRouter().route(RouteRequest(topo));
    if (!sssp.ok) continue;
    app::Instance inst = to_instance(topo, sssp.table);

    const std::uint32_t exact = app::exact_min_layers(inst, 6);
    const std::uint32_t first_fit = app::first_fit_layers(inst, 16);

    table.row().cell(topo.name).cell(inst.paths.size())
        .cell(exact ? std::to_string(exact) : ">6");
    for (CycleHeuristic h : {CycleHeuristic::kWeakestEdge,
                             CycleHeuristic::kHeaviestEdge,
                             CycleHeuristic::kFirstEdge}) {
      DfssspRouter router(
          DfssspOptions{.max_layers = 16, .heuristic = h, .balance = false});
      RouteResponse out = router.route(RouteRequest(topo));
      table.cell(out.ok ? std::to_string(out.stats.layers_used) : "-");
    }
    table.cell(first_fit ? std::to_string(first_fit) : "-");
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");
  cfg.emit(table);
  return 0;
}
