// Figure 14: NAS BT (block-tridiagonal solver) on Deimos, 121-1024 cores.
// Expected shape: MinHop and DFSSSP tie at 121/256 cores (nearest-neighbor
// traffic barely congests), diverge at 484 and strongly at 1024 where the
// communication share dominates under MinHop.
#include "bench_nas.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  const std::uint32_t steps[] = {121, 256, 484, 1024};
  run_nas_bench("Figure 14", "BT", [](std::uint32_t p) { return make_nas_bt(p); },
                cfg, steps);
  return 0;
}
