// Shared plumbing for the per-figure bench binaries.
//
// Every binary accepts:
//   --full        run the largest paper configurations too (slower)
//   --patterns=N  random bisection patterns per eBB data point
//   --seeds=N     repetitions for randomized experiments
//   --csv=FILE    additionally dump the table as CSV
// Default sizes finish in seconds so `for b in build/bench/*; do $b; done`
// stays practical; --full reproduces the paper's largest configurations.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "routing/router.hpp"
#include "sim/congestion.hpp"
#include "topology/generators.hpp"

namespace dfsssp::bench {

struct BenchConfig {
  bool full = false;
  std::uint32_t patterns = 100;
  std::uint32_t seeds = 10;
  std::string csv;

  static BenchConfig parse(int argc, char** argv) {
    Cli cli(argc, argv);
    BenchConfig cfg;
    cfg.full = cli.get_bool("full", false);
    cfg.patterns = static_cast<std::uint32_t>(cli.get_int("patterns", 100));
    cfg.seeds = static_cast<std::uint32_t>(cli.get_int("seeds", 10));
    cfg.csv = cli.get("csv", "");
    return cfg;
  }

  void emit(Table& table) const {
    table.print();
    if (!csv.empty()) {
      table.write_csv(csv);
      std::printf("(csv written to %s)\n", csv.c_str());
    }
  }
};

/// eBB over all terminals with a fixed pattern stream (so engines see
/// identical patterns). Returns -1 when the engine refused the topology.
inline double ebb_for(const Topology& topo, const Router& router,
                      std::uint32_t patterns, std::uint64_t pattern_seed) {
  RoutingOutcome out = router.route(topo);
  if (!out.ok) return -1.0;
  RankMap map = RankMap::round_robin(
      topo.net, static_cast<std::uint32_t>(topo.net.num_terminals()));
  Rng rng(pattern_seed);
  return effective_bisection_bandwidth(topo.net, out.table, map, patterns, rng)
      .ebb;
}

inline std::string fmt_or_dash(double v, int precision = 3) {
  if (v < 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Table I of the paper, as data.
struct TableOneRow {
  std::uint32_t nominal_endpoints;
  std::vector<std::uint32_t> xgft_ms, xgft_ws;
  std::uint32_t kautz_b, kautz_n;
  std::uint32_t tree_k, tree_n;
};

inline std::vector<TableOneRow> table_one(bool full) {
  std::vector<TableOneRow> rows = {
      {64, {6}, {3}, 2, 2, 6, 2},
      {128, {10}, {5}, 2, 2, 10, 2},
      {256, {16}, {8}, 2, 3, 16, 2},
      {512, {6, 6}, {3, 3}, 3, 3, 6, 3},
      {1024, {10, 10}, {5, 5}, 3, 3, 10, 3},
      {2048, {14, 14}, {7, 7}, 4, 3, 14, 3},
  };
  if (full) rows.push_back({4096, {18, 18}, {9, 9}, 6, 3, 18, 3});
  return rows;
}

}  // namespace dfsssp::bench
