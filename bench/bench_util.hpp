// Shared plumbing for the per-figure bench binaries.
//
// Every binary accepts:
//   --full        run the largest paper configurations too (slower)
//   --patterns=N  random bisection patterns per eBB data point
//   --seeds=N     repetitions for randomized experiments
//   --threads=N   worker threads for the parallel layers (default: one per
//                 hardware core; results are identical at any N)
//   --csv=FILE    additionally dump the table as CSV
//   --json=FILE   structured run report in the versioned obs/report schema
//                 (schema_version, git_rev, build_flags, config, tables,
//                 metrics, timing_metrics, timing_stats, profile); the
//                 `metrics` and `profile` sections are bitwise identical
//                 at any --threads=N
//   --trace=FILE  Chrome trace_event span log (load in ui.perfetto.dev)
//   --profile=FILE collapsed-stack flamegraph export (dfprof.folded format,
//                 feed to flamegraph.pl or speedscope); either --json or
//                 --profile activates the span-tree profiler
// Default sizes finish in seconds so `for b in build/bench/*; do $b; done`
// stays practical; --full reproduces the paper's largest configurations.
#pragma once

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analysis/certificate.hpp"
#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/profile/profile.hpp"
#include "obs/report/build_info.hpp"
#include "obs/report/report.hpp"
#include "obs/rusage.hpp"
#include "obs/trace.hpp"
#include "routing/registry.hpp"
#include "routing/router.hpp"
#include "sim/congestion.hpp"
#include "topology/configs.hpp"
#include "topology/generators.hpp"

namespace dfsssp::bench {

struct BenchConfig {
  bool full = false;
  std::uint32_t patterns = 100;
  std::uint32_t seeds = 10;
  /// 0 = one thread per hardware core.
  std::uint32_t threads = 0;
  std::string csv;
  std::string json;
  std::string trace;
  std::string profile;
  std::string program;
  /// --engines=key1,key2 — restrict roster_routers() to these registry
  /// keys (empty = the full default roster).
  std::string engines;
  /// Whether this binary's table cells are derived purely from the work
  /// (eBB values, layer counts, modeled times) and therefore bitwise
  /// identical across runs and thread counts. Binaries whose cells embed
  /// wall clock (fig7/fig8 runtimes, churn repair latencies) clear this so
  /// the dfbench quality gate never diffs their tables.
  bool tables_deterministic = true;

  static BenchConfig parse(int argc, char** argv) {
    Cli cli(argc, argv);
    BenchConfig cfg;
    cfg.full = cli.get_bool("full", false);
    cfg.patterns = static_cast<std::uint32_t>(cli.get_int("patterns", 100));
    cfg.seeds = static_cast<std::uint32_t>(cli.get_int("seeds", 10));
    // Negative counts would wrap to billions of workers; treat them as the
    // hardware default, like --threads=0.
    cfg.threads = static_cast<std::uint32_t>(
        std::max<std::int64_t>(0, cli.get_int("threads", 0)));
    cfg.csv = cli.get("csv", "");
    cfg.json = cli.get("json", "");
    cfg.trace = cli.get("trace", "");
    cfg.profile = cli.get("profile", "");
    cfg.engines = cli.get("engines", "");
    cfg.program = cli.program();
    const std::size_t slash = cfg.program.find_last_of('/');
    if (slash != std::string::npos) cfg.program.erase(0, slash + 1);
    // Spans buffer from here on; the atexit hook writes the file, so a
    // bench that exits through any path still produces its trace.
    if (!cfg.trace.empty()) obs::start_tracing(cfg.trace);
    // Every --json report carries the schema-3 profile section, so the
    // profiler runs whenever a report or a folded export was requested.
    if (!cfg.json.empty() || !cfg.profile.empty()) obs::start_profiling();
    return cfg;
  }

  /// Execution context for the parallel layers. Build it once per binary:
  /// each call spins up a fresh thread pool.
  ExecContext exec() const { return ExecContext(threads); }

  void emit(Table& table) {
    table.print();
    if (!csv.empty()) {
      table.write_csv(csv);
      std::printf("(csv written to %s)\n", csv.c_str());
    }
    emitted_.push_back(table);
    if (!json.empty()) {
      write_json_report();
      std::printf("(json report written to %s)\n", json.c_str());
    }
    if (!profile.empty()) {
      write_folded_profile();
      std::printf("(folded profile written to %s)\n", profile.c_str());
    }
  }

  /// Extra wall-clock statistics merged into the --json report's
  /// timing_stats (benches that compute their own percentiles — e.g.
  /// bench_soak's p50/p99 lookup latency — publish them here; existing
  /// derived entries win on name collision).
  std::map<std::string, obs::TimingStat> extra_timing_stats;

  /// The structured run report behind --json, in the versioned schema of
  /// obs/report (schema_version, git rev, build flags, deterministic
  /// `metrics` vs wall-clock `timing_metrics`/`timing_stats` split).
  /// Rewritten on every emit() so multi-table binaries accumulate; dfbench
  /// aggregates several of these single-repetition reports into the
  /// canonical BENCH_<name>.json trajectory points.
  void write_json_report() const {
    obs::RunReport report;
    report.bench = program;
    report.git_rev = obs::git_rev();
    report.build_flags = obs::build_flags();
    report.repetitions = 1;
    report.tables_deterministic = tables_deterministic;
    report.config.set("full", obs::JsonValue::boolean(full));
    report.config.set("patterns", obs::JsonValue::integer(patterns));
    report.config.set("seeds", obs::JsonValue::integer(seeds));
    report.config.set("threads", obs::JsonValue::integer(threads));
    report.wall_seconds = wall_.seconds();
    for (const Table& t : emitted_) {
      obs::JsonValue table = obs::JsonValue::object();
      table.set("title", obs::JsonValue::string(t.title()));
      obs::JsonValue columns = obs::JsonValue::array();
      for (const std::string& c : t.columns()) {
        columns.push_back(obs::JsonValue::string(c));
      }
      table.set("columns", std::move(columns));
      obs::JsonValue rows = obs::JsonValue::array();
      for (const auto& r : t.rows()) {
        obs::JsonValue row = obs::JsonValue::array();
        for (const std::string& cell : r) {
          row.push_back(obs::JsonValue::string(cell));
        }
        rows.push_back(std::move(row));
      }
      table.set("rows", std::move(rows));
      report.tables.push_back(std::move(table));
    }
    // Peak RSS at report time, as a timing-kind gauge (machine-dependent,
    // never exact-diffed) — recorded for every bench, not just warehouse.
    obs::registry()
        .gauge("process/peak_rss_bytes", obs::Kind::kTiming)
        .set(obs::peak_rss_bytes());
    const obs::Snapshot snap = obs::registry().snapshot();
    report.metrics = obs::metrics_to_json(snap, obs::Kind::kDeterministic);
    report.timing_metrics = obs::metrics_to_json(snap, obs::Kind::kTiming);
    obs::derive_timing_stats(report);
    report.timing_stats.insert(extra_timing_stats.begin(),
                               extra_timing_stats.end());
    if (obs::profiling_active()) {
      const obs::Profile prof = obs::collect_profile();
      report.profile = obs::profile_to_json(prof);
      obs::profile_timing_stats(prof, report.timing_stats);
    }
    try {
      obs::write_run_report(report, json);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot write json report: %s\n", e.what());
    }
  }

  /// Collapsed-stack export behind --profile; rewritten on every emit()
  /// like the json report, so the final write covers the whole run.
  void write_folded_profile() const {
    std::ofstream out(profile);
    if (!out) {
      std::fprintf(stderr, "cannot write folded profile: %s\n",
                   profile.c_str());
      return;
    }
    obs::write_folded(out, obs::collect_profile());
  }

 private:
  Timer wall_;
  std::vector<Table> emitted_;
};

/// The bench's engine roster, resolved through the routing registry: the
/// full default roster (make_all_routers order) or, with --engines=a,b,
/// just the named registry keys in roster order. Throws on unknown keys so
/// a typo fails loudly instead of silently benchmarking nothing.
inline std::vector<std::unique_ptr<Router>> roster_routers(
    const BenchConfig& cfg, Layer max_layers = 8) {
  if (cfg.engines.empty()) return make_all_routers(max_layers);
  std::vector<std::string> keys;
  std::string key;
  std::istringstream in(cfg.engines);
  while (std::getline(in, key, ',')) {
    if (routing::find_engine(key) == nullptr) {
      throw std::invalid_argument("--engines: unknown engine '" + key +
                                  "' (have: " + routing::engine_names() +
                                  ")");
    }
    keys.push_back(key);
  }
  std::vector<std::unique_ptr<Router>> routers;
  for (const routing::EngineInfo& e : routing::engine_roster()) {
    for (const std::string& k : keys) {
      if (routing::find_engine(k) == &e) {
        routers.push_back(routing::make_router(e.name, max_layers));
        break;
      }
    }
  }
  return routers;
}

/// eBB over all terminals with a fixed pattern stream (so engines see
/// identical patterns). Returns -1 when the engine refused the topology.
inline double ebb_for(const Topology& topo, const Router& router,
                      std::uint32_t patterns, std::uint64_t pattern_seed,
                      const ExecContext& exec = {}) {
  RouteResponse out = router.route(RouteRequest(topo, exec));
  if (!out.ok) return -1.0;
  RankMap map = RankMap::round_robin(
      topo.net, static_cast<std::uint32_t>(topo.net.num_terminals()));
  Rng rng(pattern_seed);
  return effective_bisection_bandwidth(topo.net, out.table, map, patterns, rng,
                                       {}, exec)
      .ebb;
}

inline std::string fmt_or_dash(double v, int precision = 3) {
  if (v < 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// The engine×topology loop shared by the roster figures (4-8): one table
/// row per topology, one column per engine. `prefix` fills the leading
/// cells of a row; `cell` computes one engine cell. Replaces the loop that
/// used to be copy-pasted into every per-figure binary.
inline Table run_roster(
    const std::string& title, std::vector<std::string> prefix_columns,
    const std::string& engine_column_suffix,
    const std::vector<Topology>& topos,
    const std::vector<std::unique_ptr<Router>>& routers,
    const std::function<void(Table&, const Topology&, std::size_t)>& prefix,
    const std::function<std::string(const Topology&, const Router&,
                                    std::size_t)>& cell) {
  std::vector<std::string> columns = std::move(prefix_columns);
  for (const auto& r : routers) columns.push_back(r->name() +
                                                  engine_column_suffix);
  Table table(title, std::move(columns));
  for (std::size_t i = 0; i < topos.size(); ++i) {
    table.row();
    prefix(table, topos[i], i);
    for (const auto& router : routers) {
      table.cell(cell(topos[i], *router, i));
    }
    // Progress goes to stderr: with stdout redirected to a file the dots
    // would interleave with the table output.
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");
  return table;
}

/// Canned run_roster cell: eBB under `cfg`'s pattern count and thread
/// count, with the pattern stream keyed by `pattern_seed`.
inline std::function<std::string(const Topology&, const Router&, std::size_t)>
ebb_cell(const BenchConfig& cfg, std::uint64_t pattern_seed) {
  return [patterns = cfg.patterns, exec = cfg.exec(), pattern_seed](
             const Topology& topo, const Router& router, std::size_t) {
    return fmt_or_dash(ebb_for(topo, router, patterns, pattern_seed, exec), 4);
  };
}

/// Canned run_roster cell: wall-clock routing time in milliseconds. The
/// sample also lands in the "bench/route_ns" timing histogram, so --json
/// reports carry the full routing-runtime distribution.
inline std::string runtime_cell(const Topology& topo, const Router& router,
                                std::size_t) {
  ScopedTimer timer("bench/route_ns");
  RouteResponse out = router.route(RouteRequest(topo));
  const double ms = timer.milliseconds();
  return out.ok ? fmt_or_dash(ms, 1) : "-";
}

/// Emits a deadlock-freedom certificate for a finished routing into
/// `<dir>/<name>.cert` — after validating it with the independent checker,
/// so a bench run doubles as an end-to-end certificate round trip. Returns
/// a one-line status for the bench log.
inline std::string emit_certificate(const Topology& topo,
                                    const RoutingTable& table,
                                    const std::string& dir,
                                    std::string name,
                                    const ExecContext& exec = {}) {
  for (char& c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '-' &&
        c != '_') {
      c = '-';
    }
  }
  const std::string file = dir + "/" + name + ".cert";
  CertificateResult cert = make_certificate(topo.net, table, exec);
  if (!cert.ok) {
    return file + ": FAILED (layer " +
           std::to_string(unsigned(cert.cyclic_layer)) + " CDG is cyclic)";
  }
  const CertCheckResult check = check_certificate(topo.net, table, cert.cert);
  if (!check.ok) return file + ": FAILED self-check: " + check.error;
  write_certificate_path(topo.net, cert.cert, file);
  return file + ": ok (" + std::to_string(check.paths_checked) + " paths, " +
         std::to_string(check.deps_checked) + " deps)";
}

// TableOneRow / table_one() moved to topology/configs.hpp — the named-config
// registry shared by benches, dftopo and tests.

}  // namespace dfsssp::bench
