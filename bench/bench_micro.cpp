// Google-benchmark microbenchmarks of the hot kernels: the per-destination
// Dijkstra loop, the offline CDG build + resumable cycle search, the
// Pearce-Kelly online CDG, the heap, and one congestion-simulation pattern.
#include <benchmark/benchmark.h>

#include <numeric>

#include "cdg/cdg.hpp"
#include "cdg/online.hpp"
#include "common/heap.hpp"
#include "common/rng.hpp"
#include "routing/collect.hpp"
#include "routing/dfsssp.hpp"
#include "routing/minhop.hpp"
#include "routing/sssp.hpp"
#include "sim/congestion.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

void BM_MinHopRoute(benchmark::State& state) {
  Topology topo = make_kary_ntree(static_cast<std::uint32_t>(state.range(0)), 2);
  MinHopRouter router;
  for (auto _ : state) {
    RouteResponse out = router.route(RouteRequest(topo));
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(topo.net.num_terminals()));
}
BENCHMARK(BM_MinHopRoute)->Arg(6)->Arg(10)->Arg(16);

void BM_SsspRoute(benchmark::State& state) {
  Topology topo = make_kary_ntree(static_cast<std::uint32_t>(state.range(0)), 2);
  SsspRouter router;
  for (auto _ : state) {
    RouteResponse out = router.route(RouteRequest(topo));
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(topo.net.num_terminals()));
}
BENCHMARK(BM_SsspRoute)->Arg(6)->Arg(10)->Arg(16);

void BM_OfflineLayering(benchmark::State& state) {
  Rng rng(42);
  Topology topo = make_random(static_cast<std::uint32_t>(state.range(0)), 8,
                              static_cast<std::uint32_t>(state.range(0)) * 2,
                              16, rng);
  RouteResponse sssp = SsspRouter().route(RouteRequest(topo));
  PathSet paths = collect_paths(topo.net, sssp.table);
  for (auto _ : state) {
    LayerResult r = assign_layers_offline(
        paths, static_cast<std::uint32_t>(topo.net.num_channels()),
        LayerOptions{.max_layers = 16});
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(paths.size()));
}
BENCHMARK(BM_OfflineLayering)->Arg(16)->Arg(32)->Arg(64);

void BM_OnlineCdgInsert(benchmark::State& state) {
  Rng rng(43);
  Topology topo = make_random(32, 8, 64, 16, rng);
  RouteResponse sssp = SsspRouter().route(RouteRequest(topo));
  PathSet paths = collect_paths(topo.net, sssp.table);
  for (auto _ : state) {
    OnlineCdg cdg(static_cast<std::uint32_t>(topo.net.num_channels()));
    std::uint64_t accepted = 0;
    for (std::uint32_t p = 0; p < paths.size(); ++p) {
      accepted += cdg.try_add_path(paths.channels(p));
    }
    benchmark::DoNotOptimize(accepted);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(paths.size()));
}
BENCHMARK(BM_OnlineCdgInsert);

void BM_HeapPushPop(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng.next();
  MinHeap<std::uint64_t> heap(n);
  for (auto _ : state) {
    heap.reset(n);
    for (std::uint32_t i = 0; i < n; ++i) heap.push(keys[i], i);
    while (!heap.empty()) benchmark::DoNotOptimize(heap.pop());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HeapPushPop)->Arg(1024)->Arg(16384);

void BM_CongestionPattern(benchmark::State& state) {
  Topology topo = make_deimos();
  RouteResponse out = DfssspRouter().route(RouteRequest(topo));
  RankMap map = RankMap::round_robin(
      topo.net, static_cast<std::uint32_t>(topo.net.num_terminals()));
  Rng rng(11);
  Flows flows = map.to_flows(random_bisection(map.num_ranks(), rng));
  for (auto _ : state) {
    PatternResult r = simulate_pattern(topo.net, out.table, flows);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(flows.size()));
}
BENCHMARK(BM_CongestionPattern);

}  // namespace
}  // namespace dfsssp

BENCHMARK_MAIN();
