// Figure 16: NAS FT (3-D FFT, alltoall-dominated) on Deimos, 128-1024
// cores. Expected shape: because every iteration is a full alltoall,
// DFSSSP's balancing pays off even at 128/256 cores (~25% in the paper).
#include "bench_nas.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  const std::uint32_t steps[] = {128, 256, 512, 1024};
  run_nas_bench("Figure 16", "FT", [](std::uint32_t p) { return make_nas_ft(p); },
                cfg, steps);
  return 0;
}
