// Ablation (DESIGN.md §7): how much each balancing mechanism contributes.
//  * Algorithm 1's edge-weight updates (SSSP's global balancing) on vs off;
//  * Algorithm 2's final layer-balancing loop on vs off (affects how paths
//    spread over virtual lanes, visible in the per-layer load split).
// Output: eBB, fabric-load imbalance of one large random bisection, and the
// weighted path count of the heaviest virtual layer.
#include "bench_util.hpp"
#include "cdg/report.hpp"
#include "routing/collect.hpp"
#include "routing/dfsssp.hpp"
#include "routing/sssp.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

namespace {

std::uint64_t heaviest_layer_weight(const Topology& topo,
                                    const RoutingTable& table) {
  PathSet paths = collect_paths(topo.net, table);
  std::vector<Layer> layers = collect_layers(topo.net, table, paths);
  std::uint64_t heaviest = 0;
  for (const CdgLayerStats& s : cdg_layer_stats(
           paths, layers, static_cast<std::uint32_t>(topo.net.num_channels()))) {
    heaviest = std::max(heaviest, s.weight);
  }
  return heaviest;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  const ExecContext exec = cfg.exec();

  Table table("Ablation: balancing mechanisms",
              {"topology", "variant", "eBB", "load imbalance", "VLs",
               "heaviest VL weight"});

  std::vector<Topology> zoo;
  {
    Rng rng(0xAB1ULL);
    zoo.push_back(make_random(32, 8, 80, 16, rng));
  }
  zoo.push_back(make_deimos());
  std::uint32_t ms[2] = {10, 10};
  std::uint32_t ws[2] = {5, 5};
  zoo.push_back(make_xgft(2, ms, ws));

  for (const Topology& topo : zoo) {
    struct Variant {
      std::string name;
      RouteResponse out;
    };
    std::vector<Variant> variants;
    variants.push_back(
        {"SSSP unbalanced", SsspRouter(SsspOptions{.balance = false}).route(RouteRequest(topo))});
    variants.push_back({"SSSP balanced", SsspRouter().route(RouteRequest(topo))});
    variants.push_back(
        {"DFSSSP, no layer balance",
         DfssspRouter(DfssspOptions{.balance = false}).route(RouteRequest(topo))});
    variants.push_back(
        {"DFSSSP, layer balance",
         DfssspRouter(DfssspOptions{.balance = true}).route(RouteRequest(topo))});

    RankMap map = RankMap::round_robin(
        topo.net, static_cast<std::uint32_t>(topo.net.num_terminals()));
    for (const Variant& v : variants) {
      if (!v.out.ok) {
        table.row().cell(topo.name).cell(v.name).cell("-").cell("-").cell("-")
            .cell("-");
        continue;
      }
      Rng pat(0xAB1E);
      EbbResult ebb = effective_bisection_bandwidth(topo.net, v.out.table, map,
                                                    cfg.patterns, pat, {},
                                                    exec);
      Rng pat2(0xAB1E);
      Flows flows = map.to_flows(random_bisection(map.num_ranks(), pat2));
      LoadReport load = analyze_load(topo.net, v.out.table, flows);
      table.row()
          .cell(topo.name)
          .cell(v.name)
          .cell(ebb.ebb, 4)
          .cell(load.imbalance, 2)
          .cell(static_cast<std::uint64_t>(v.out.stats.layers_used))
          .cell(heaviest_layer_weight(topo, v.out.table));
      std::fprintf(stderr, ".");
      std::fflush(stderr);
    }
  }
  std::fprintf(stderr, "\n");
  cfg.emit(table);
  return 0;
}
