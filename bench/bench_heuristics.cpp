// Section IV's heuristic comparison: random topologies with 64 switches,
// 1024 endpoints (16 per switch) and 128 inter-switch links; the number of
// virtual layers each cycle-break heuristic needs.
//
// Expected shape (paper): weakest edge 3-5 layers, pseudo-random (first
// edge) 4-8, heaviest edge 4-16 - weakest wins.
#include "bench_util.hpp"
#include "routing/dfsssp.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  const std::uint32_t num_switches = 64;
  const std::uint32_t terminals = 16;
  const std::uint32_t links = 128;
  const std::uint32_t ports = 16;

  Table table("Section IV: virtual layers per cycle-break heuristic (" +
                  std::to_string(cfg.seeds) + " random topologies)",
              {"heuristic", "min", "avg", "max", "failures(>32)"});

  for (CycleHeuristic h : {CycleHeuristic::kWeakestEdge,
                           CycleHeuristic::kFirstEdge,
                           CycleHeuristic::kHeaviestEdge}) {
    int mn = 1000, mx = 0, failures = 0;
    double sum = 0;
    int n = 0;
    DfssspRouter router(
        DfssspOptions{.max_layers = 32, .heuristic = h, .balance = false});
    for (std::uint32_t seed = 0; seed < cfg.seeds; ++seed) {
      Rng rng(0x4E0'0000ULL + seed * 131);
      Topology topo = make_random(num_switches, terminals, links, ports, rng);
      RouteResponse out = router.route(RouteRequest(topo));
      if (!out.ok) {
        ++failures;
        continue;
      }
      const int v = out.stats.layers_used;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
      sum += v;
      ++n;
      std::fprintf(stderr, ".");
      std::fflush(stderr);
    }
    table.row().cell(to_string(h)).cell(n ? std::to_string(mn) : "-")
        .cell(n ? fmt_or_dash(sum / n, 2) : "-")
        .cell(n ? std::to_string(mx) : "-")
        .cell(failures);
  }
  std::fprintf(stderr, "\n");
  cfg.emit(table);
  return 0;
}
