// Routing-service soak: interleaved churn and lookup traffic.
//
// Drives a ServiceCore — the dfrouted daemon's brain — through the FULL
// wire path (encode_request → handle → encode/decode_response) with
// concurrent lookup clients hammering the RCU forwarding snapshot while
// the driver thread feeds fault-event batches and repairs through the
// engine. This is the end-to-end latency picture of the service PR:
//
//   * lookup p50/p99 — what a forwarding query costs while the fabric
//     churns underneath it (the RCU swap is the whole point: lookups
//     never wait for a repair);
//   * repair p50/p99 — fault-batch coalescing + incremental DFSSSP repair
//     + snapshot publication, per batch;
//   * snapshot swaps, coalesced events, veto/fallback counts.
//
// Latency percentiles are wall clock and land in the --json report's
// timing_stats (service/lookup_p50_ms, ...), which the perf gate noise-
// checks against baselines/BENCH_soak.json; every deterministic count
// (requests, repairs, swaps, fault/* provenance) lands in `metrics` and is
// exact-diffed.
//
// Extra flags on top of the bench_util set:
//   --k=K --n=N       k-ary n-tree fabric (default 16-ary 2-tree)
//   --events=E        churn events to generate (default 200)
//   --event-seed=S    schedule seed
//   --batch=B         fault events coalesced per repair (default 4)
//   --clients=C       concurrent lookup client threads (default 4)
//   --lookups=L       total lookups across all clients (default 2000)
//   --journal=0|1     flight recorder on the service core (default on,
//                     so baselines price in the recording cost)
//   --journal-file=P  also append the DFJR segment to P (for dfreplay)
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "fault/schedule.hpp"
#include "obs/report/stats.hpp"
#include "service/core.hpp"
#include "service/envelope.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;
using namespace dfsssp::service;

namespace {

/// Sends one request through the complete wire path: serialize, decode on
/// the "server", handle, serialize the response, decode it back. Keeps the
/// bench honest about envelope cost and round-trip fidelity.
ServiceResponse wire_call(ServiceCore& core, const ServiceRequest& req) {
  ServiceRequest decoded;
  if (decode_request(encode_request(req), decoded) != Status::kOk) {
    ServiceResponse bad;
    bad.status = Status::kErrMalformed;
    return bad;
  }
  ServiceResponse resp = core.handle(decoded);
  ServiceResponse round;
  if (decode_response(encode_response(resp), round) != Status::kOk) {
    ServiceResponse bad;
    bad.status = Status::kErrMalformed;
    return bad;
  }
  return round;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  // Table cells embed wall clock; keep them out of the dfbench quality gate.
  cfg.tables_deterministic = false;
  Cli cli(argc, argv);
  const auto k = static_cast<std::uint32_t>(cli.get_int("k", 16));
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 2));
  const auto events = static_cast<std::uint32_t>(cli.get_int("events", 200));
  const auto event_seed =
      static_cast<std::uint64_t>(cli.get_int("event-seed", 0x50AC));
  const auto batch = static_cast<std::size_t>(
      std::max<std::int64_t>(cli.get_int("batch", 4), 1));
  const auto clients = static_cast<std::uint32_t>(
      std::max<std::int64_t>(cli.get_int("clients", 4), 1));
  const auto lookups =
      static_cast<std::uint64_t>(cli.get_int("lookups", 2000));

  Topology topo = make_kary_ntree(k, n);
  std::printf("fabric: %s (%zu switches, %zu terminals, %zu channels)\n",
              topo.name.c_str(), topo.net.num_switches(),
              topo.net.num_terminals(), topo.net.num_channels());
  const std::vector<NodeId> switches(topo.net.switches().begin(),
                                     topo.net.switches().end());
  const std::vector<NodeId> terminals(topo.net.terminals().begin(),
                                      topo.net.terminals().end());
  const FaultSchedule schedule =
      FaultSchedule::random(topo.net, {.num_events = events}, event_seed);

  ServiceCoreOptions core_options;
  // Journal on by default: the soak baseline prices in the recording cost
  // (ring append + DFJR frame + per-publish digests on the mutation path;
  // lookups are never journaled).
  core_options.journal = cli.get_bool("journal", true);
  core_options.journal_path = cli.get("journal-file", "");
  core_options.journal_config =
      "kary-tree:" + std::to_string(k) + ":" + std::to_string(n);
  ServiceCore core(std::move(topo), core_options);

  // Initial route over the wire path.
  ServiceRequest route_req;
  route_req.kind = MsgKind::kRoute;
  route_req.request_id = 1;
  const ServiceResponse routed = wire_call(core, route_req);
  if (routed.status != Status::kOk) {
    std::fprintf(stderr, "initial route failed: %s\n", routed.error.c_str());
    return 1;
  }

  // Lookup clients: fixed per-thread request counts (so every counter is
  // deterministic), deterministic (src, dst) walks, latencies kept in
  // thread-local vectors and merged after the join. No trace spans on
  // these threads — the profiler tree must stay deterministic.
  const std::uint64_t per_client = lookups / clients;
  std::vector<std::vector<double>> client_lat(clients);
  std::vector<std::uint64_t> client_errors(clients, 0);
  std::vector<std::thread> client_threads;
  client_threads.reserve(clients);
  for (std::uint32_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      std::vector<double>& lat = client_lat[c];
      lat.reserve(per_client);
      std::size_t src_i = c % switches.size();
      std::size_t dst_i = (c * 37) % terminals.size();
      for (std::uint64_t i = 0; i < per_client; ++i) {
        ServiceRequest req;
        req.kind = MsgKind::kLookup;
        req.request_id = i + 1;
        req.src_switch = switches[src_i];
        req.dst_terminal = terminals[dst_i];
        Timer t;
        const ServiceResponse resp = wire_call(core, req);
        lat.push_back(t.milliseconds());
        if (resp.status != Status::kOk) ++client_errors[c];
        src_i = (src_i + 7) % switches.size();
        dst_i = (dst_i + 1) % terminals.size();
      }
    });
  }

  // Driver: feed fault events in batches, one repair per batch, all
  // through the wire path, while the clients run.
  std::vector<double> repair_lat;
  std::uint64_t coalesced = 0;
  std::uint32_t repairs = 0, repair_errors = 0, fallbacks = 0;
  std::uint64_t request_id = 2;
  for (std::size_t i = 0; i < schedule.size(); i += batch) {
    const std::size_t count = std::min(batch, schedule.size() - i);
    for (std::size_t j = 0; j < count; ++j) {
      const FaultEvent& e = schedule[i + j];
      ServiceRequest fault_req;
      fault_req.kind = MsgKind::kFaultEvent;
      fault_req.request_id = request_id++;
      fault_req.fault_kind = static_cast<std::uint8_t>(e.kind);
      fault_req.channel = e.channel;
      fault_req.sw = e.sw;
      if (wire_call(core, fault_req).status != Status::kOk) ++repair_errors;
    }
    ServiceRequest repair_req;
    repair_req.kind = MsgKind::kRepair;
    repair_req.request_id = request_id++;
    Timer t;
    const ServiceResponse resp = wire_call(core, repair_req);
    repair_lat.push_back(t.milliseconds());
    ++repairs;
    if (resp.status != Status::kOk) {
      ++repair_errors;
    } else {
      coalesced += resp.events_coalesced;
      if (!resp.incremental) ++fallbacks;
    }
  }
  for (std::thread& t : client_threads) t.join();

  std::vector<double> lookup_lat;
  std::uint64_t lookup_errors = 0;
  for (std::uint32_t c = 0; c < clients; ++c) {
    lookup_lat.insert(lookup_lat.end(), client_lat[c].begin(),
                      client_lat[c].end());
    lookup_errors += client_errors[c];
  }

  if (const obs::journal::Journal* journal = core.journal()) {
    const obs::journal::JournalStats js = journal->stats();
    std::printf("journal: %llu records (%llu dropped)%s%s\n",
                static_cast<unsigned long long>(js.appended),
                static_cast<unsigned long long>(js.dropped),
                js.sink_path.empty() ? "" : ", sink ",
                js.sink_path.c_str());
    if (js.sink_failed) {
      std::fprintf(stderr, "journal sink FAILED: %s\n",
                   core.journal()->error().c_str());
      return 1;
    }
  }

  const auto info_snapshot = core.snapshot();
  const double lookup_p50 = percentile(lookup_lat, 0.50);
  const double lookup_p99 = percentile(lookup_lat, 0.99);
  const double repair_p50 = percentile(repair_lat, 0.50);
  const double repair_p99 = percentile(repair_lat, 0.99);

  // Percentiles into the report's (noise-gated) timing_stats.
  cfg.extra_timing_stats["service/lookup_p50_ms"] = obs::TimingStat{
      lookup_p50, obs::mad(lookup_lat, obs::median(lookup_lat)),
      static_cast<std::uint32_t>(lookup_lat.size())};
  cfg.extra_timing_stats["service/lookup_p99_ms"] = obs::TimingStat{
      lookup_p99, 0.0, static_cast<std::uint32_t>(lookup_lat.size())};
  cfg.extra_timing_stats["service/repair_p50_ms"] = obs::TimingStat{
      repair_p50, obs::mad(repair_lat, obs::median(repair_lat)),
      static_cast<std::uint32_t>(repair_lat.size())};
  cfg.extra_timing_stats["service/repair_p99_ms"] = obs::TimingStat{
      repair_p99, 0.0, static_cast<std::uint32_t>(repair_lat.size())};

  Table table("Service soak: churn + concurrent lookups",
              {"events", "repairs", "coalesced", "fallbacks", "swaps",
               "lookups", "lookup p50 ms", "lookup p99 ms", "repair p50 ms",
               "repair p99 ms", "errors"});
  table.row()
      .cell(static_cast<std::uint64_t>(schedule.size()))
      .cell(repairs)
      .cell(coalesced)
      .cell(fallbacks)
      .cell(info_snapshot ? info_snapshot->version : 0)
      .cell(static_cast<std::uint64_t>(lookup_lat.size()))
      .cell(fmt_or_dash(lookup_p50, 4))
      .cell(fmt_or_dash(lookup_p99, 4))
      .cell(fmt_or_dash(repair_p50, 3))
      .cell(fmt_or_dash(repair_p99, 3))
      .cell(lookup_errors + repair_errors);
  cfg.emit(table);
  return lookup_errors + repair_errors == 0 ? 0 : 1;
}
