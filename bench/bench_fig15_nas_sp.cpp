// Figure 15: NAS SP (scalar-pentadiagonal solver) on Deimos, 121-1024
// cores. Finer-grained than BT: the MinHop curve dips earlier (484 cores)
// while DFSSSP keeps scaling.
#include "bench_nas.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  const std::uint32_t steps[] = {121, 256, 484, 1024};
  run_nas_bench("Figure 15", "SP", [](std::uint32_t p) { return make_nas_sp(p); },
                cfg, steps);
  return 0;
}
