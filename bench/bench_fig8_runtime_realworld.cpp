// Figure 8: routing runtime on the real-world systems (stand-ins).
// Expected shape: same as Figure 7 - offline DFSSSP roughly 10x MinHop,
// dominated by the per-destination Dijkstra runs plus one cycle search.
#include "bench_util.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  auto routers = make_all_routers();

  std::vector<std::string> columns{"system", "terminals"};
  for (const auto& r : routers) columns.push_back(r->name() + " [ms]");
  Table table("Figure 8: routing runtime on real-world systems", columns);

  for (const Topology& topo : make_all_real_systems()) {
    table.row().cell(topo.name).cell(topo.net.num_terminals());
    for (const auto& router : routers) {
      Timer timer;
      RoutingOutcome out = router->route(topo);
      const double ms = timer.milliseconds();
      table.cell(out.ok ? fmt_or_dash(ms, 1) : "-");
    }
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  cfg.emit(table);
  return 0;
}
