// Figure 8: routing runtime on the real-world systems (stand-ins).
// Expected shape: same as Figure 7 - offline DFSSSP roughly 10x MinHop,
// dominated by the per-destination Dijkstra runs plus one cycle search.
#include "bench_util.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  // Table cells embed wall clock; keep them out of the dfbench quality gate.
  cfg.tables_deterministic = false;
  Table table = run_roster(
      "Figure 8: routing runtime on real-world systems",
      {"system", "terminals"}, " [ms]", make_all_real_systems(),
      make_all_routers(),
      [](Table& t, const Topology& topo, std::size_t) {
        t.cell(topo.name).cell(topo.net.num_terminals());
      },
      runtime_cell);
  cfg.emit(table);
  return 0;
}
