// Extension (DESIGN.md §7): graceful degradation. Remove a growing number
// of random links from a k-ary n-tree and track which engines still route
// it, the virtual-layer demand, and the effective bisection bandwidth.
// This is the paper's story in one sweep: specialized engines die with the
// first irregularity; DFSSSP keeps minimal, deadlock-free, high-bandwidth
// routing all the way down.
#include <set>

#include "bench_util.hpp"
#include "routing/verify.hpp"
#include "routing/dfsssp.hpp"
#include "routing/fattree.hpp"
#include "routing/minhop.hpp"
#include "routing/updown.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

namespace {

Topology remove_links(const Topology& src_topo, std::uint32_t kill, Rng& rng) {
  const Network& src = src_topo.net;
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::vector<std::pair<NodeId, NodeId>> links;
    for (ChannelId c = 0; c < src.num_channels(); ++c) {
      if (src.is_switch_channel(c) && c < src.channel(c).reverse) {
        links.emplace_back(src.channel(c).src, src.channel(c).dst);
      }
    }
    std::set<std::size_t> dead;
    while (dead.size() < kill) dead.insert(rng.next_below(links.size()));
    Network net;
    std::vector<NodeId> remap(src.num_nodes());
    for (NodeId sw : src.switches()) remap[sw] = net.add_switch();
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (!dead.count(i)) {
        net.add_link(remap[links[i].first], remap[links[i].second]);
      }
    }
    for (NodeId t : src.terminals()) net.add_terminal(remap[src.switch_of(t)]);
    net.freeze();
    if (!net.connected()) continue;
    Topology out;
    out.name = src_topo.name + "-minus" + std::to_string(kill);
    out.net = std::move(net);
    out.meta.family = "degraded";  // deliberately no levels: like a real
                                   // subnet manager seeing a broken fabric
    return out;
  }
  throw std::runtime_error("could not degrade while staying connected");
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  const ExecContext exec = cfg.exec();
  Topology pristine = make_kary_ntree(8, 2);

  Table table("Extension: k-ary n-tree under link failures",
              {"links removed", "FatTree", "MinHop eBB", "Up*/Down* eBB",
               "DFSSSP eBB", "DFSSSP VLs", "DFSSSP minimal"});
  Rng rng(0xFA17ULL);
  for (std::uint32_t kill : {0U, 2U, 4U, 8U, 16U}) {
    Topology topo = kill == 0 ? make_kary_ntree(8, 2)
                              : remove_links(pristine, kill, rng);
    FatTreeRouter fattree;
    const bool ft_ok = fattree.route(kill == 0 ? pristine : topo).ok;

    MinHopRouter minhop;
    UpDownRouter updown;
    // balance=false so the VL column shows demand, not the spread-out count.
    DfssspRouter dfsssp(DfssspOptions{.max_layers = 16, .balance = false});
    const double mh = ebb_for(topo, minhop, cfg.patterns, 0xFA17, exec);
    const double ud = ebb_for(topo, updown, cfg.patterns, 0xFA17, exec);
    RoutingOutcome df = dfsssp.route(topo);
    double df_ebb = -1;
    bool minimal = false;
    if (df.ok) {
      RankMap map = RankMap::round_robin(
          topo.net, static_cast<std::uint32_t>(topo.net.num_terminals()));
      Rng pat(0xFA17);
      df_ebb = effective_bisection_bandwidth(topo.net, df.table, map,
                                             cfg.patterns, pat, {}, exec)
                   .ebb;
      minimal = verify_routing(topo.net, df.table, exec).minimal();
    }
    table.row()
        .cell(kill)
        .cell(ft_ok ? "ok" : "refused")
        .cell(fmt_or_dash(mh, 4))
        .cell(fmt_or_dash(ud, 4))
        .cell(fmt_or_dash(df_ebb, 4))
        .cell(df.ok ? std::to_string(df.stats.layers_used) : "-")
        .cell(minimal ? "yes" : "no");
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");
  cfg.emit(table);
  return 0;
}
