// Extension (DESIGN.md §7): graceful degradation. Kill links of a k-ary
// n-tree one by one — IN PLACE, through the fault subsystem, no rebuild —
// and track which engines still route it, the virtual-layer demand, and the
// effective bisection bandwidth. This is the paper's story in one sweep:
// specialized engines die with the first irregularity; DFSSSP keeps
// minimal, deadlock-free, high-bandwidth routing all the way down. On top,
// the incremental engine repairs each kill instead of recomputing, and the
// repair-latency table (also in the --json report) shows what that buys.
#include "bench_util.hpp"
#include "fault/churn.hpp"
#include "fault/incremental.hpp"
#include "fault/schedule.hpp"
#include "routing/fattree.hpp"
#include "routing/minhop.hpp"
#include "routing/updown.hpp"
#include "routing/verify.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  // Table cells embed wall clock; keep them out of the dfbench quality gate.
  cfg.tables_deterministic = false;
  const ExecContext exec = cfg.exec();
  Topology topo = make_kary_ntree(8, 2);

  // One monotone, connectivity-preserving kill sequence drives the whole
  // sweep; the topology degrades in place and every ChannelId stays stable.
  const FaultSchedule schedule =
      FaultSchedule::link_kills(topo.net, 16, 0xFA17ULL);
  ChurnEngine churn(topo);
  IncrementalDfsssp inc(IncrementalOptions{.max_layers = 16});

  Table table("Extension: k-ary n-tree under link failures",
              {"links removed", "FatTree", "MinHop eBB", "Up*/Down* eBB",
               "DFSSSP eBB", "DFSSSP VLs", "DFSSSP minimal"});
  Table latency("Incremental repair latency per kill",
                {"kill", "link", "dests rerouted", "paths migrated",
                 "repair ms", "full ms", "speedup"});

  RouteResponse df = inc.route(RouteRequest(topo, exec));
  std::uint32_t applied = 0;
  auto checkpoint = [&](std::uint32_t kills) {
    const bool ft_ok = FatTreeRouter().route(RouteRequest(topo, exec)).ok;
    MinHopRouter minhop;
    UpDownRouter updown;
    const double mh = ebb_for(topo, minhop, cfg.patterns, 0xFA17, exec);
    const double ud = ebb_for(topo, updown, cfg.patterns, 0xFA17, exec);
    double df_ebb = -1;
    bool minimal = false;
    if (df.ok) {
      RankMap map = RankMap::round_robin(
          topo.net, static_cast<std::uint32_t>(topo.net.num_terminals()));
      Rng pat(0xFA17);
      df_ebb = effective_bisection_bandwidth(topo.net, df.table, map,
                                             cfg.patterns, pat, {}, exec)
                   .ebb;
      minimal = verify_routing(topo.net, df.table, exec).minimal();
    }
    table.row()
        .cell(kills)
        .cell(ft_ok ? "ok" : "refused")
        .cell(fmt_or_dash(mh, 4))
        .cell(fmt_or_dash(ud, 4))
        .cell(fmt_or_dash(df_ebb, 4))
        .cell(df.ok ? std::to_string(df.stats.layers_used) : "-")
        .cell(minimal ? "yes" : "no");
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  };

  checkpoint(0);
  const std::uint32_t checkpoints[] = {2, 4, 8, 16};
  std::size_t next_checkpoint = 0;
  for (const FaultEvent& ev : schedule) {
    const ChurnDelta delta = churn.apply(ev);
    if (!delta.applied) continue;
    ++applied;

    Timer repair_timer;
    df = inc.repair(RouteRequest(topo, exec), delta);
    const double repair_ms = repair_timer.seconds() * 1e3;

    // From-scratch DFSSSP of the same degraded state, for the latency
    // comparison the repair replaces.
    Timer full_timer;
    IncrementalDfsssp fresh(IncrementalOptions{.max_layers = 16});
    RouteResponse full = fresh.route(RouteRequest(topo, exec));
    const double full_ms = full_timer.seconds() * 1e3;

    latency.row()
        .cell(applied)
        .cell(ev.describe(topo.net))
        .cell(df.repair.destinations_rerouted)
        .cell(df.repair.paths_migrated)
        .cell(fmt_or_dash(repair_ms, 3))
        .cell(full.ok ? fmt_or_dash(full_ms, 3) : "-")
        .cell(repair_ms > 0 ? fmt_or_dash(full_ms / repair_ms, 1) : "-");

    while (next_checkpoint < std::size(checkpoints) &&
           applied == checkpoints[next_checkpoint]) {
      checkpoint(applied);
      ++next_checkpoint;
    }
  }
  std::fprintf(stderr, "\n");
  cfg.emit(table);
  cfg.emit(latency);
  return 0;
}
