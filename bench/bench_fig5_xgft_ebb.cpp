// Figure 5: effective bisection bandwidth on extended generalized fat
// trees, Table I parameters (64..2048 endpoints; --full adds 4096).
//
// Expected shape: MinHop / Up*/Down* / SSSP / DFSSSP roughly flat per tree
// height with DF-/SSSP on top (about 2x MinHop at 1024); LASH and DOR
// degrade steadily (DOR refuses: no coordinates on trees - the paper's DOR
// bars exist because OpenSM's DOR falls back to lexicographic orders; we
// report the failure instead).
#include "bench_util.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  const std::vector<TableOneRow> rows = table_one(cfg.full);
  std::vector<Topology> topos;
  std::vector<std::string> params;
  for (const TableOneRow& row : rows) {
    topos.push_back(make_xgft(static_cast<std::uint32_t>(row.xgft_ms.size()),
                              row.xgft_ms, row.xgft_ws));
    std::string p = "(";
    p += std::to_string(row.xgft_ms.size());
    p += ';';
    for (auto m : row.xgft_ms) p += std::to_string(m) + ",";
    p.back() = ';';
    for (auto w : row.xgft_ws) p += std::to_string(w) + ",";
    p.back() = ')';
    params.push_back(std::move(p));
  }

  Table table = run_roster(
      "Figure 5: eBB on XGFTs (relative)",
      {"endpoints(nominal)", "XGFT", "actual"}, "", topos, make_all_routers(),
      [&](Table& t, const Topology& topo, std::size_t i) {
        t.cell(rows[i].nominal_endpoints).cell(params[i])
            .cell(topo.net.num_terminals());
      },
      ebb_cell(cfg, 0xF16'5));
  cfg.emit(table);
  return 0;
}
