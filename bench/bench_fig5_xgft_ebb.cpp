// Figure 5: effective bisection bandwidth on extended generalized fat
// trees, Table I parameters (64..2048 endpoints; --full adds 4096).
//
// Expected shape: MinHop / Up*/Down* / SSSP / DFSSSP roughly flat per tree
// height with DF-/SSSP on top (about 2x MinHop at 1024); LASH and DOR
// degrade steadily (DOR refuses: no coordinates on trees - the paper's DOR
// bars exist because OpenSM's DOR falls back to lexicographic orders; we
// report the failure instead).
#include "bench_util.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  auto routers = make_all_routers();

  std::vector<std::string> columns{"endpoints(nominal)", "XGFT", "actual"};
  for (const auto& r : routers) columns.push_back(r->name());
  Table table("Figure 5: eBB on XGFTs (relative)", columns);

  for (const TableOneRow& row : table_one(cfg.full)) {
    Topology topo = make_xgft(static_cast<std::uint32_t>(row.xgft_ms.size()),
                              row.xgft_ms, row.xgft_ws);
    std::string params = "(" + std::to_string(row.xgft_ms.size()) + ";";
    for (auto m : row.xgft_ms) params += std::to_string(m) + ",";
    params.back() = ';';
    for (auto w : row.xgft_ws) params += std::to_string(w) + ",";
    params.back() = ')';
    table.row().cell(row.nominal_endpoints).cell(params)
        .cell(topo.net.num_terminals());
    for (const auto& router : routers) {
      table.cell(fmt_or_dash(ebb_for(topo, *router, cfg.patterns, 0xF16'5), 4));
    }
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  cfg.emit(table);
  return 0;
}
