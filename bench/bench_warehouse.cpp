// Extension: warehouse-scale end-to-end run. Generates a large chunked
// dragonfly (100k+ switches under --full), routes it with DFSSSP against a
// destination-sharded terminal set, verifies the paths and the deadlock
// freedom of the result, and records per-phase wall-clock plus peak RSS.
// Structural cells (counts, VLs, verification verdicts, structure hash) are
// deterministic; all wall-clock lands in timing metrics only.
//
//   --full       dragonfly(50,40,2001): 100050 switches, ~4.45M links
//   --dests=N    sharded destination terminals (default 64)
#include "bench_util.hpp"
#include "obs/rusage.hpp"
#include "routing/collect.hpp"
#include "routing/dfsssp.hpp"
#include "routing/verify.hpp"
#include "topology/metrics.hpp"

using namespace dfsssp;
using namespace dfsssp::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchConfig cfg = BenchConfig::parse(argc, argv);
  const ExecContext exec = cfg.exec();
  const std::uint32_t dests =
      static_cast<std::uint32_t>(cli.get_int("dests", 64));

  // Balanced dragonflies (a*h == g-1). The quick shape keeps the same
  // construction path at ~7k switches so the bench stays runnable outside
  // the full tier.
  const std::uint32_t a = cfg.full ? 50 : 24;
  const std::uint32_t h = cfg.full ? 40 : 12;
  const std::uint32_t g = cfg.full ? 2001 : 289;

  Table table("Extension: warehouse-scale dragonfly, end to end",
              {"phase", "result"});

  Topology topo;
  {
    ScopedTimer t("warehouse/generate_ns");
    topo = make_warehouse_dragonfly(a, h, g, dests, exec);
  }
  obs::registry()
      .gauge("warehouse/peak_rss_after_generate_bytes", obs::Kind::kTiming)
      .set(obs::peak_rss_bytes());
  std::uint64_t links = 0;
  for (ChannelId c = 0; c < topo.net.num_channels(); ++c) {
    const Channel& ch = topo.net.channel(c);
    if (c < ch.reverse && topo.net.is_switch(ch.src) &&
        topo.net.is_switch(ch.dst)) {
      ++links;
    }
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "%zu switches, %llu links, %zu sharded terminals",
                topo.net.num_switches(), (unsigned long long)links,
                topo.net.num_terminals());
  table.row().cell("generate " + topo.name).cell(buf);
  std::snprintf(buf, sizeof(buf), "%016llx",
                (unsigned long long)structure_hash(topo.net));
  table.row().cell("structure hash").cell(buf);
  std::snprintf(buf, sizeof(buf), "%.1f MiB",
                static_cast<double>(topo.net.memory_footprint()) /
                    (1024.0 * 1024.0));
  table.row().cell("topology footprint").cell(buf);
  std::fprintf(stderr, "generated\n");

  DfssspRouter router(DfssspOptions{.max_layers = 8, .balance = false});
  RouteResponse out;
  {
    ScopedTimer t("warehouse/route_ns");
    out = router.route(RouteRequest(topo, exec));
  }
  if (!out.ok) {
    table.row().cell("route DFSSSP").cell("FAILED: " + out.error);
    cfg.emit(table);
    return 1;
  }
  std::snprintf(buf, sizeof(buf), "ok, %u VLs",
                unsigned(out.stats.layers_used));
  table.row().cell("route DFSSSP").cell(buf);
  std::fprintf(stderr, "routed\n");

  VerifyReport verify;
  {
    ScopedTimer t("warehouse/verify_paths_ns");
    verify = verify_routing(topo.net, out.table, exec);
  }
  std::snprintf(buf, sizeof(buf), "%llu paths, %llu broken, %llu non-minimal",
                (unsigned long long)verify.total_paths,
                (unsigned long long)verify.broken,
                (unsigned long long)verify.non_minimal);
  table.row().cell("verify paths").cell(buf);

  bool deadlock_free;
  {
    ScopedTimer t("warehouse/verify_deadlock_ns");
    deadlock_free = routing_is_deadlock_free(topo.net, out.table, exec);
  }
  table.row().cell("deadlock-free").cell(deadlock_free ? "yes" : "NO");

  obs::registry()
      .gauge("warehouse/peak_rss_bytes", obs::Kind::kTiming)
      .set(obs::peak_rss_bytes());

  cfg.emit(table);
  const bool ok = verify.connected() && deadlock_free;
  return ok ? 0 : 1;
}
