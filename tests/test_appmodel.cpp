#include "sim/appmodel.hpp"

#include <gtest/gtest.h>

#include "routing/dfsssp.hpp"
#include "routing/minhop.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

TEST(AppModel, KernelFactoriesRoundRanks) {
  EXPECT_EQ(kernel_ranks(make_nas_bt(1024)), 1024U);   // 32x32
  EXPECT_EQ(kernel_ranks(make_nas_bt(128)), 121U);     // 11x11
  EXPECT_EQ(kernel_ranks(make_nas_ft(100)), 64U);      // pow2
  EXPECT_EQ(kernel_ranks(make_nas_cg(128)), 128U);
  EXPECT_EQ(kernel_ranks(make_nas_mg(200)), 128U);
  EXPECT_EQ(kernel_ranks(make_nas_sp(256)), 256U);
  EXPECT_EQ(kernel_ranks(make_nas_lu(64)), 64U);
}

TEST(AppModel, PhasesAreWellFormed) {
  for (const AppKernel& k : {make_nas_bt(64), make_nas_sp(64), make_nas_ft(64),
                             make_nas_cg(64), make_nas_mg(64), make_nas_lu(64)}) {
    EXPECT_FALSE(k.phases.empty()) << k.name;
    EXPECT_GT(k.flops_per_iteration, 0.0) << k.name;
    for (const CommPhase& phase : k.phases) {
      EXPECT_GE(phase.repeat, 1U) << k.name;
      EXPECT_GT(phase.bytes_per_flow, 0.0) << k.name;
      for (auto [a, b] : phase.pattern) {
        EXPECT_NE(a, b) << k.name;
        EXPECT_LT(a, kernel_ranks(k)) << k.name;
        EXPECT_LT(b, kernel_ranks(k)) << k.name;
      }
    }
  }
}

TEST(AppModel, MultipartitionPipelineDepthMatchesGrid) {
  // BT/SP sweeps repeat once per pipeline stage (q = sqrt(ranks)).
  AppKernel bt = make_nas_bt(1024);
  for (const CommPhase& phase : bt.phases) EXPECT_EQ(phase.repeat, 32U);
  AppKernel sp = make_nas_sp(121);
  for (const CommPhase& phase : sp.phases) EXPECT_EQ(phase.repeat, 11U);
}

TEST(AppModel, FtAlltoallDominatesItsFlowCount) {
  AppKernel ft = make_nas_ft(64);
  // First phase is the transpose alltoall: 64*63 flows.
  ASSERT_FALSE(ft.phases.empty());
  EXPECT_EQ(ft.phases.front().pattern.size(), 64U * 63U);
  // Remaining phases are the log2(64)=6 allreduce butterfly stages.
  EXPECT_EQ(ft.phases.size(), 1U + 6U);
}

TEST(AppModel, RunProducesPositiveNumbers) {
  Topology topo = make_kary_ntree(4, 2);  // 16 terminals
  RouteResponse out = DfssspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  AppKernel bt = make_nas_bt(16);
  RankMap map = RankMap::round_robin(topo.net, kernel_ranks(bt));
  AppRunResult r = run_app_model(topo.net, out.table, map, bt);
  EXPECT_GT(r.comm_seconds, 0.0);
  EXPECT_GT(r.compute_seconds, 0.0);
  EXPECT_GT(r.gflops, 0.0);
  EXPECT_NEAR(r.seconds_per_iteration, r.comm_seconds + r.compute_seconds,
              1e-12);
}

TEST(AppModel, LessCongestionMeansMoreGflops) {
  // Same kernel on a heavily oversubscribed tree: a routing with double the
  // effective bandwidth must yield at least the Gflop/s of its baseline.
  Topology topo = make_clos2(8, 2, 1, 8);  // 64 terminals, 4:1 oversubscribed
  RouteResponse minhop = MinHopRouter().route(RouteRequest(topo));
  RouteResponse dfsssp = DfssspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(minhop.ok);
  ASSERT_TRUE(dfsssp.ok);
  AppKernel ft = make_nas_ft(64);
  RankMap map = RankMap::round_robin(topo.net, kernel_ranks(ft));
  AppRunResult a = run_app_model(topo.net, minhop.table, map, ft);
  AppRunResult b = run_app_model(topo.net, dfsssp.table, map, ft);
  // DFSSSP balances globally; it must not be meaningfully worse.
  EXPECT_GE(b.gflops, a.gflops * 0.95);
}

TEST(AppModel, BandwidthOptionScalesCommTime) {
  Topology topo = make_kary_ntree(2, 2);
  RouteResponse out = DfssspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  AppKernel cg = make_nas_cg(4);
  RankMap map = RankMap::round_robin(topo.net, kernel_ranks(cg));
  AppModelOptions fast, slow;
  slow.link_bandwidth_bytes = fast.link_bandwidth_bytes / 2;
  slow.message_latency_seconds = fast.message_latency_seconds = 0.0;
  AppRunResult rf = run_app_model(topo.net, out.table, map, cg, fast);
  AppRunResult rs = run_app_model(topo.net, out.table, map, cg, slow);
  EXPECT_NEAR(rs.comm_seconds, 2.0 * rf.comm_seconds, 1e-12);
}

}  // namespace
}  // namespace dfsssp
