#include "routing/multipath.hpp"

#include <gtest/gtest.h>

#include "routing/verify.hpp"
#include "sim/multipath_sim.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

TEST(Multipath, PlaneCountFollowsLmc) {
  Topology topo = make_ring(5, 1);
  EXPECT_EQ(route_sssp_multipath(topo, 0).planes.size(), 1U);
  EXPECT_EQ(route_sssp_multipath(topo, 1).planes.size(), 2U);
  EXPECT_EQ(route_sssp_multipath(topo, 2).planes.size(), 4U);
  EXPECT_FALSE(route_sssp_multipath(topo, 4).ok);
}

TEST(Multipath, EveryPlaneIsConnectedAndMinimal) {
  Rng rng(5);
  Topology topo = make_random(12, 2, 28, 8, rng);
  MultipathOutcome out = route_sssp_multipath(topo, 2);
  ASSERT_TRUE(out.ok) << out.error;
  for (const RoutingTable& plane : out.planes) {
    VerifyReport report = verify_routing(topo.net, plane);
    EXPECT_TRUE(report.connected());
    EXPECT_TRUE(report.minimal());
  }
}

TEST(Multipath, PlanesActuallyDiversify) {
  // On a 2-spine Clos the shared weight map must push consecutive planes
  // onto different spines for at least some (switch, dst) entries.
  Topology topo = make_clos2(2, 2, 1, 4);
  MultipathOutcome out = route_sssp_multipath(topo, 1);
  ASSERT_TRUE(out.ok);
  std::size_t different = 0, total = 0;
  for (NodeId s : topo.net.switches()) {
    for (NodeId t : topo.net.terminals()) {
      if (topo.net.switch_of(t) == s) continue;
      ++total;
      if (out.planes[0].next(s, t) != out.planes[1].next(s, t)) ++different;
    }
  }
  EXPECT_GT(different, total / 4);
}

TEST(Multipath, DfssspJointLayeringIsDeadlockFree) {
  Topology topo = make_ring(7, 2);
  MultipathOutcome out = route_dfsssp_multipath(topo, 1);
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_TRUE(multipath_is_deadlock_free(topo.net, out.planes));
  EXPECT_GE(out.stats.layers_used, 2);
  // Every plane individually is also deadlock-free (a subset of an acyclic
  // union stays acyclic).
  for (const RoutingTable& plane : out.planes) {
    EXPECT_TRUE(verify_routing(topo.net, plane).connected());
  }
}

TEST(Multipath, SsspPlanesAloneAreNotDeadlockFreeOnRing) {
  Topology topo = make_ring(5, 1);
  MultipathOutcome out = route_sssp_multipath(topo, 1);
  ASSERT_TRUE(out.ok);
  EXPECT_FALSE(multipath_is_deadlock_free(topo.net, out.planes));
}

TEST(Multipath, SimulationUsesAllPlanes) {
  Topology topo = make_clos2(2, 2, 1, 8);
  MultipathOutcome out = route_dfsssp_multipath(topo, 1);
  ASSERT_TRUE(out.ok);
  Rng rng(9);
  RankMap map = RankMap::round_robin(topo.net, 16);
  EbbResult multi = effective_bisection_bandwidth_multipath(
      topo.net, out.planes, map, 50, rng);
  EXPECT_GT(multi.ebb, 0.0);
  EXPECT_LE(multi.ebb, 1.0 + 1e-9);
}

TEST(Multipath, Lmc1ImprovesAdversarialPattern) {
  // A fixed permutation that hurts a single-path routing: with two planes
  // the flows spread, so the bottleneck share cannot get worse.
  Topology topo = make_clos2(4, 2, 1, 4);
  MultipathOutcome multi = route_dfsssp_multipath(topo, 1);
  ASSERT_TRUE(multi.ok);
  RankMap map = RankMap::round_robin(topo.net, 16);
  Flows flows = map.to_flows(ring_shift(16, 4));  // leaf-to-leaf shift
  PatternResult single = simulate_pattern_multipath(
      topo.net, {multi.planes[0]}, flows);
  PatternResult both = simulate_pattern_multipath(topo.net, multi.planes, flows);
  EXPECT_GE(both.avg_flow_bandwidth, single.avg_flow_bandwidth - 1e-9);
}

}  // namespace
}  // namespace dfsssp
