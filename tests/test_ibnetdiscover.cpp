#include <gtest/gtest.h>

#include <sstream>

#include "routing/dfsssp.hpp"
#include "routing/collect.hpp"
#include "routing/verify.hpp"
#include "topology/io.hpp"

namespace dfsssp {
namespace {

// A small fabric the way `ibnetdiscover` prints it: two 24-port switches,
// three HCAs (one dual-ported), every link mentioned from both sides.
constexpr const char* kSample = R"(#
# Topology file: generated on Thu Jul  2 12:00:00 2026
#
vendid=0x2c9
devid=0xb924
sysimgguid=0x2c9020048d8f3
switchguid=0x2c9020048d8f0(2c9020048d8f0)
Switch  24 "S-0002c9020048d8f0"   # "sw-left ISR9024" base port 0 lid 2 lmc 0
[1]  "H-0002c90200aaaaaa"[1](2c90200aaaaab)  # "node01 HCA-1" lid 4 4xDDR
[2]  "H-0002c90200bbbbbb"[1](2c90200bbbbbc)  # "node02 HCA-1" lid 6 4xDDR
[13] "S-0002c902004c0001"[13]  # "sw-right ISR9024" lid 3 4xDDR
[14] "S-0002c902004c0001"[14]  # "sw-right ISR9024" lid 3 4xDDR

switchguid=0x2c902004c0001(2c902004c0001)
Switch  24 "S-0002c902004c0001"   # "sw-right ISR9024" base port 0 lid 3 lmc 0
[1]  "H-0002c90200cccccc"[1](2c90200cccccd)  # "node03 HCA-1" lid 8 4xDDR
[5]  "H-0002c90200cccccc"[2](2c90200ccccce)  # "node03 HCA-2" lid 9 4xDDR
[13] "S-0002c9020048d8f0"[13]  # "sw-left ISR9024" lid 2 4xDDR
[14] "S-0002c9020048d8f0"[14]  # "sw-left ISR9024" lid 2 4xDDR

caguid=0x2c90200aaaaaa
Ca  1 "H-0002c90200aaaaaa"  # "node01 HCA-1"
[1](2c90200aaaaab)  "S-0002c9020048d8f0"[1]  # lid 4 lmc 0 "sw-left" lid 2 4xDDR

caguid=0x2c90200bbbbbb
Ca  1 "H-0002c90200bbbbbb"  # "node02 HCA-1"
[1](2c90200bbbbbc)  "S-0002c9020048d8f0"[2]  # lid 6 lmc 0 "sw-left" lid 2 4xDDR

caguid=0x2c90200cccccc
Ca  2 "H-0002c90200cccccc"  # "node03 HCA-1"
[1](2c90200cccccd)  "S-0002c902004c0001"[1]  # lid 8 lmc 0 "sw-right" lid 3 4xDDR
[2](2c90200ccccce)  "S-0002c902004c0001"[5]  # lid 9 lmc 0 "sw-right" lid 3 4xDDR
)";

TEST(IbNetDiscover, ParsesStructure) {
  std::istringstream in(kSample);
  Topology topo = read_ibnetdiscover(in);
  EXPECT_EQ(topo.net.num_switches(), 2U);
  // Three HCAs; node03's second rail is dropped (single-port model).
  EXPECT_EQ(topo.net.num_terminals(), 3U);
  // Two parallel inter-switch links, each mentioned twice -> deduped to 2.
  std::size_t inter = 0;
  for (ChannelId c = 0; c < topo.net.num_channels(); ++c) {
    if (topo.net.is_switch_channel(c) && c < topo.net.channel(c).reverse) {
      ++inter;
    }
  }
  EXPECT_EQ(inter, 2U);
  EXPECT_TRUE(topo.net.connected());
}

TEST(IbNetDiscover, UsesCommentNames) {
  std::istringstream in(kSample);
  Topology topo = read_ibnetdiscover(in);
  bool found_sw = false, found_node = false;
  for (NodeId sw : topo.net.switches()) {
    if (topo.net.node_name(sw).rfind("sw-left", 0) == 0) found_sw = true;
  }
  for (NodeId t : topo.net.terminals()) {
    if (topo.net.node_name(t).rfind("node01", 0) == 0) found_node = true;
  }
  EXPECT_TRUE(found_sw);
  EXPECT_TRUE(found_node);
}

TEST(IbNetDiscover, LoadedFabricRoutes) {
  std::istringstream in(kSample);
  Topology topo = read_ibnetdiscover(in);
  RouteResponse out = DfssspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_TRUE(verify_routing(topo.net, out.table).connected());
  EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table));
}

TEST(IbNetDiscover, RejectsEmptyOrSwitchless) {
  std::istringstream empty("# nothing here\n");
  EXPECT_THROW(read_ibnetdiscover(empty), std::runtime_error);
  std::istringstream only_ca("Ca 1 \"H-01\"\n[1](x) \"H-02\"[1]\n");
  EXPECT_THROW(read_ibnetdiscover(only_ca), std::runtime_error);
}

TEST(IbNetDiscover, PortLineOutsideBlockFails) {
  std::istringstream bad("[1] \"S-01\"[2]\n");
  EXPECT_THROW(read_ibnetdiscover(bad), std::runtime_error);
}

}  // namespace
}  // namespace dfsssp
